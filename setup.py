"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517/660 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation`` take the legacy ``setup.py
develop`` path instead.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
