"""Tests for repro.scholar.trends."""

import pytest

from repro.errors import ReproError
from repro.scholar.trends import monthly_series, normalized_series, yearly_average


class TestMonthlySeries:
    def test_deterministic(self):
        assert monthly_series("edge computing", seed=4) == monthly_series(
            "edge computing", seed=4
        )

    def test_unknown_keyword(self):
        with pytest.raises(ReproError):
            monthly_series("metaverse")

    def test_monthly_resolution(self):
        series = monthly_series("cloud computing", 2010, 2011)
        assert len(series) == 24

    def test_non_negative(self):
        assert all(v >= 0 for _, v in monthly_series("cloud computing"))

    def test_invalid_range(self):
        with pytest.raises(ReproError):
            monthly_series("cloud computing", 2019, 2004)


class TestNormalization:
    def test_peak_is_100(self):
        series = normalized_series(["cloud computing", "edge computing"], seed=4)
        peak = max(v for points in series.values() for _, v in points)
        assert peak == pytest.approx(100.0)

    def test_cloud_peaks_before_edge_catches_up(self):
        """Figure 1 shape: cloud interest peaks ~2012 and declines; edge
        climbs from ~2015 but stays below cloud's peak through 2019."""
        series = normalized_series(["cloud computing", "edge computing"], seed=4)
        cloud = yearly_average(series["cloud computing"])
        edge = yearly_average(series["edge computing"])
        cloud_peak_year = max(cloud, key=cloud.get)
        assert 2011 <= cloud_peak_year <= 2013
        assert cloud[2019] < cloud[cloud_peak_year]
        assert edge[2019] > edge[2016] > edge[2015]
        assert edge[2019] < 100.0

    def test_edge_negligible_early(self):
        series = normalized_series(["cloud computing", "edge computing"], seed=4)
        edge = yearly_average(series["edge computing"])
        assert edge[2010] == pytest.approx(0.0, abs=0.5)


class TestYearlyAverage:
    def test_collapses_months(self):
        collapsed = yearly_average([(2010.0, 10.0), (2010.5, 20.0), (2011.0, 5.0)])
        assert collapsed[2010] == pytest.approx(15.0)
        assert collapsed[2011] == pytest.approx(5.0)
