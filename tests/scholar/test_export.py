"""Tests for repro.scholar.export."""

import pytest

from repro.errors import ReproError
from repro.scholar.corpus import make_publication
from repro.scholar.export import (
    citation_key,
    export_bibtex,
    export_csv,
    to_bibtex,
)


@pytest.fixture
def publication():
    return make_publication("edge computing", 2018, 42, seed=1)


class TestCitationKeys:
    def test_stable(self, publication):
        assert citation_key(publication) == citation_key(publication)

    def test_unique_across_indices(self):
        keys = {
            citation_key(make_publication("edge computing", 2018, i))
            for i in range(200)
        }
        assert len(keys) == 200

    def test_contains_year_and_keyword(self, publication):
        key = citation_key(publication)
        assert "2018" in key
        assert "edge" in key


class TestBibtex:
    def test_entry_structure(self, publication):
        entry = to_bibtex(publication)
        assert entry.startswith("@inproceedings{")
        assert publication.title in entry
        assert str(publication.year) in entry
        assert entry.rstrip().endswith("}")

    def test_author_count_matches(self, publication):
        entry = to_bibtex(publication)
        author_line = next(
            line for line in entry.splitlines() if "author" in line
        )
        assert author_line.count(" and ") == publication.num_authors - 1

    def test_batch_export(self):
        pubs = [make_publication("edge computing", 2018, i) for i in range(3)]
        body = export_bibtex(pubs)
        assert body.count("@inproceedings{") == 3

    def test_empty_batch_rejected(self):
        with pytest.raises(ReproError):
            export_bibtex([])


class TestCsv:
    def test_rows(self):
        pubs = [make_publication("cloud computing", 2012, i) for i in range(4)]
        text = export_csv(pubs)
        lines = text.strip().splitlines()
        assert lines[0].startswith("key,title,authors")
        assert len(lines) == 5

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            export_csv([])
