"""Tests for repro.scholar.crawler."""

import pytest

from repro.errors import CrawlerError, ReproError
from repro.scholar.corpus import publication_count
from repro.scholar.crawler import ScholarCrawler


class TestPaging:
    def test_page_shape(self):
        crawler = ScholarCrawler(seed=1)
        page = crawler.fetch_page("edge computing", 2016)
        assert page.total_estimate == publication_count("edge computing", 2016)
        assert len(page.entries) == crawler.page_size
        assert page.has_next

    def test_pagination_is_complete_and_unique(self):
        crawler = ScholarCrawler(seed=1, page_size=25)
        year = 2010  # small edge year
        records = list(crawler.crawl_year("edge computing", year))
        assert len(records) == publication_count("edge computing", year)
        assert len({r.identifier for r in records}) == len(records)

    def test_max_records_cap(self):
        crawler = ScholarCrawler(seed=1)
        records = list(crawler.crawl_year("cloud computing", 2015, max_records=23))
        assert len(records) == 23

    def test_negative_offset_rejected(self):
        with pytest.raises(ReproError):
            ScholarCrawler(seed=1).fetch_page("edge computing", 2016, start=-1)

    def test_bad_page_size_rejected(self):
        with pytest.raises(ReproError):
            ScholarCrawler(page_size=0)


class TestBudget:
    def test_captcha_wall(self):
        crawler = ScholarCrawler(seed=1, request_budget=3)
        crawler.count_results("edge computing", 2016)
        crawler.count_results("edge computing", 2017)
        crawler.count_results("edge computing", 2018)
        with pytest.raises(CrawlerError):
            crawler.count_results("edge computing", 2019)

    def test_requests_counted(self):
        crawler = ScholarCrawler(seed=1)
        crawler.yearly_counts("edge computing", 2015, 2019)
        assert crawler.requests_made == 5


class TestAnalysisHelpers:
    def test_yearly_counts_matches_corpus(self):
        crawler = ScholarCrawler(seed=1)
        series = crawler.yearly_counts("cloud computing", 2008, 2012)
        for year, count in series.items():
            assert count == publication_count("cloud computing", year)

    def test_top_cited_sorted(self):
        crawler = ScholarCrawler(seed=1, page_size=100, request_budget=10_000)
        top = crawler.top_cited("edge computing", 2011, n=5)
        citations = [pub.citations for pub in top]
        assert citations == sorted(citations, reverse=True)
