"""Tests for repro.scholar.corpus."""

import pytest

from repro.errors import ReproError
from repro.scholar.corpus import (
    FIRST_YEAR,
    LAST_YEAR,
    iter_publications,
    known_keywords,
    make_publication,
    publication_count,
    yearly_counts,
)


class TestCounts:
    def test_known_keywords(self):
        assert "cloud computing" in known_keywords()
        assert "edge computing" in known_keywords()

    def test_unknown_keyword(self):
        with pytest.raises(ReproError):
            publication_count("quantum blockchain", 2019)

    def test_zero_before_start(self):
        assert publication_count("edge computing", 2005) == 0

    def test_cloud_grows_through_2012(self):
        counts = [publication_count("cloud computing", y) for y in range(2008, 2013)]
        assert counts == sorted(counts)
        assert counts[-1] > counts[0] * 3

    def test_edge_rises_late(self):
        """Edge is negligible in 2012 and substantial by 2019 (Figure 1)."""
        assert publication_count("edge computing", 2012) < 200
        assert publication_count("edge computing", 2019) > 5_000

    def test_cloud_dwarfs_edge_in_2015(self):
        assert publication_count("cloud computing", 2015) > publication_count(
            "edge computing", 2015
        ) * 5

    def test_yearly_counts_span(self):
        counts = yearly_counts("cloud computing")
        assert set(counts) == set(range(FIRST_YEAR, LAST_YEAR + 1))

    def test_yearly_counts_validates_range(self):
        with pytest.raises(ReproError):
            yearly_counts("cloud computing", 2019, 2004)


class TestRecords:
    def test_deterministic(self):
        a = make_publication("edge computing", 2018, 5, seed=1)
        b = make_publication("edge computing", 2018, 5, seed=1)
        assert a == b

    def test_index_bounds_checked(self):
        total = publication_count("edge computing", 2018)
        with pytest.raises(ReproError):
            make_publication("edge computing", 2018, total)

    def test_identifier_unique(self):
        ids = {
            make_publication("edge computing", 2018, i).identifier for i in range(50)
        }
        assert len(ids) == 50

    def test_fields_plausible(self):
        pub = make_publication("cloud computing", 2015, 0)
        assert pub.year == 2015
        assert 1 <= pub.num_authors <= 8
        assert pub.citations >= 0
        assert "cloud computing" in pub.title

    def test_iter_publications_offset(self):
        first_ten = list(iter_publications("edge computing", 2018))[:10]
        from_five = next(iter(iter_publications("edge computing", 2018, start=5)))
        assert from_five == first_ten[5]
