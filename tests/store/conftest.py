"""Shared fixtures for the persistent-store suite.

Provides deterministic synthetic sample columns (no campaign run
needed — the store layer is schema-generic below the dataset) plus one
real TINY campaign dataset for the end-to-end fixtures.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest

from repro.store.format import SAMPLE_SCHEMA


def synthetic_columns(rows: int, seed: int = 0) -> Dict[str, np.ndarray]:
    """Deterministic sample columns of the canonical schema."""
    rng = np.random.default_rng(seed)
    rtt = np.round(rng.uniform(1.0, 300.0, rows), 3)
    rtt[rng.random(rows) < 0.05] = np.nan
    return {
        "probe_id": rng.integers(1, 5000, rows).astype("<i4"),
        "target_index": rng.integers(0, 101, rows).astype("<i4"),
        "timestamp": (1_500_000_000 + np.arange(rows, dtype="<i8") * 10_800),
        "rtt_min": rtt.astype("<f8"),
        "rtt_avg": (rtt * 1.1).astype("<f8"),
        "sent": np.full(rows, 3, dtype="<i2"),
        "rcvd": rng.integers(0, 4, rows).astype("<i2"),
    }


def columns_equal(left: Dict[str, np.ndarray], right: Dict[str, np.ndarray]) -> bool:
    """Bit-exact column comparison (NaNs compare equal by byte identity)."""
    if set(left) != set(right):
        return False
    for name in left:
        a, b = np.asarray(left[name]), np.asarray(right[name])
        if a.dtype != b.dtype or len(a) != len(b):
            return False
        if a.tobytes() != b.tobytes():
            return False
    return True


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "store"


@pytest.fixture(scope="session")
def tiny_dataset():
    """One frozen TINY campaign dataset (shared; treated read-only)."""
    from repro.core.campaign import Campaign, CampaignScale

    campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=7)
    dataset = campaign.run()
    return campaign, dataset


SCHEMA_COLUMNS = tuple(name for name, _ in SAMPLE_SCHEMA)
