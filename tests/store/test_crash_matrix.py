"""The exhaustive crash matrix: every fsim site x every crash kind.

For each store write path — durable writer, compaction, checkpoint
save, gc — the code under test runs once against a :class:`CountingFS`
to enumerate its operation sites, the sites expand into every
``(site, kind)`` crash cell, and each cell replays on a fresh copy of
the inputs with ``FaultyFS.at(cell)``.  After every simulated crash the
on-disk state must satisfy the layer's crash contract:

* **writer** — the store is either fully committed and byte-correct, or
  visibly uncommitted (no readable manifest); never a readable lie.
* **compact** — some complete generation is always fully readable with
  the same logical rows; debris is sweepable and the sweep converges.
* **checkpoint** — the file is absent, the old state, or the new state;
  never torn JSON.
* **gc** — the live generation is never deleted, crash or no crash.
* **stats backfill** — the manifest is the old one (no zone maps) or
  the new one (fully zoned); never torn, never partially zoned, and
  the data bytes are never touched.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.errors import SimulatedCrashError, StoreError
from repro.store import (
    CountingFS,
    FaultyFS,
    Manifest,
    StoreReader,
    StoreWriter,
    backfill_zone_maps,
    crash_points,
)
from repro.store.format import MANIFEST_NAME
from repro.store.scrub import scrub
from repro.store.writer import compact, gc_store

from tests.store.conftest import columns_equal, synthetic_columns

ROWS, ROWS_PER_SHARD = 24, 16


def _write_store(path, fs=None, rows_per_shard=ROWS_PER_SHARD):
    writer = StoreWriter(
        path,
        provenance={"seed": 3},
        rows_per_shard=rows_per_shard,
        fs=fs,
        durable=True,
    )
    writer.append_columns(synthetic_columns(ROWS, seed=8))
    writer.finalize()


def _read_columns(path):
    reader = StoreReader(path, verify="full")
    return {name: reader.column(name) for name in reader.manifest.columns}


def _enumerate(run):
    """Count one clean pass of ``run`` and expand its crash cells."""
    counting = CountingFS()
    run(counting)
    assert counting.sites, "the path under test bypassed the fsim seam"
    return crash_points(counting.sites)


class TestWriterCrashMatrix:
    def test_every_crash_leaves_committed_or_visibly_uncommitted(self, tmp_path):
        cells = _enumerate(lambda fs: _write_store(tmp_path / "count", fs=fs))
        expected = _read_columns(tmp_path / "count")
        assert len(cells) > 50  # the durable write path is well-instrumented
        for cell in cells:
            path = tmp_path / f"cell-{cell.step}-{cell.kind}"
            fs = FaultyFS.at(cell)
            with pytest.raises(SimulatedCrashError):
                _write_store(path, fs=fs)
            fs.power_loss()
            try:
                reader = StoreReader(path, verify="full")
            except StoreError:
                # Uncommitted: the scrub must agree there is no store
                # here (a manifest-level problem), not report a subtly
                # damaged one it would try to repair.
                report = scrub(path)
                assert not report.intact, cell
                assert any(
                    d.kind.startswith("manifest_") for d in report.damage
                ), cell
            else:
                assert reader.manifest.rows == ROWS, cell
                assert columns_equal(_read_columns(path), expected), cell


class TestDirectWriteCrashMatrix:
    """Shared-nothing direct writes obey the same writer contract.

    The direct path splits the durable work across processes — workers
    fsync their interior chunks, the parent writes and fsyncs boundary
    shards, the directory, and the manifest.  Simulated here in one
    process so every fsim site of the *combined* path gets a crash cell:
    wherever the write dies, the store is either fully committed and
    byte-correct or visibly uncommitted.
    """

    DIRECT_ROWS = 40

    def _write_direct(self, path, fs=None):
        from repro.store.writer import ShardRangeWriter, assemble_direct_store

        columns = synthetic_columns(self.DIRECT_ROWS, seed=8)
        fragments = []
        for lo, hi in [(0, 20), (20, self.DIRECT_ROWS)]:
            writer = ShardRangeWriter(
                path, row_start=lo, rows_per_shard=ROWS_PER_SHARD,
                fs=fs, durable=True,
            )
            writer.append_columns(
                {name: array[lo:hi] for name, array in columns.items()}
            )
            fragments.append(writer.finish())
        assemble_direct_store(
            path,
            fragments,
            provenance={"seed": 3},
            rows_per_shard=ROWS_PER_SHARD,
            fs=fs,
            durable=True,
        )

    def test_every_crash_leaves_committed_or_visibly_uncommitted(self, tmp_path):
        cells = _enumerate(lambda fs: self._write_direct(tmp_path / "count", fs=fs))
        expected = _read_columns(tmp_path / "count")
        # Worker interior shards, parent boundary shards, dir + manifest
        # syncs: the combined path is at least as instrumented as serial.
        assert len(cells) > 50
        for cell in cells:
            path = tmp_path / f"cell-{cell.step}-{cell.kind}"
            fs = FaultyFS.at(cell)
            with pytest.raises(SimulatedCrashError):
                self._write_direct(path, fs=fs)
            fs.power_loss()
            try:
                reader = StoreReader(path, verify="full")
            except StoreError:
                report = scrub(path)
                assert not report.intact, cell
                assert any(
                    d.kind.startswith("manifest_") for d in report.damage
                ), cell
            else:
                assert reader.manifest.rows == self.DIRECT_ROWS, cell
                assert columns_equal(_read_columns(path), expected), cell

    def test_direct_and_serial_commit_identical_bytes(self, tmp_path):
        """The clean passes of the two write paths agree exactly."""
        self._write_direct(tmp_path / "direct")
        serial = StoreWriter(
            tmp_path / "serial",
            provenance={"seed": 3},
            rows_per_shard=ROWS_PER_SHARD,
            durable=True,
        )
        serial.append_columns(synthetic_columns(self.DIRECT_ROWS, seed=8))
        serial.finalize()
        direct_files = sorted((tmp_path / "direct").iterdir())
        serial_files = sorted((tmp_path / "serial").iterdir())
        assert [f.name for f in direct_files] == [f.name for f in serial_files]
        for left, right in zip(direct_files, serial_files):
            assert left.read_bytes() == right.read_bytes(), left.name


class TestCompactCrashMatrix:
    @pytest.fixture
    def fragmented(self, tmp_path):
        """A store written at shard size 4 (uncanonical for 16)."""
        origin = tmp_path / "origin"
        _write_store(origin, rows_per_shard=4)
        return origin

    def test_previous_generation_survives_every_crash(self, fragmented, tmp_path):
        expected = _read_columns(fragmented)
        count_copy = tmp_path / "count"
        shutil.copytree(fragmented, count_copy)
        cells = _enumerate(
            lambda fs: compact(count_copy, rows_per_shard=ROWS_PER_SHARD, fs=fs)
        )
        for cell in cells:
            path = tmp_path / f"cell-{cell.step}-{cell.kind}"
            shutil.copytree(fragmented, path)
            fs = FaultyFS.at(cell)
            with pytest.raises(SimulatedCrashError):
                compact(path, rows_per_shard=ROWS_PER_SHARD, fs=fs)
            fs.power_loss()
            # Whichever generation's manifest is durable, the store it
            # names is complete: full verify passes, rows identical.
            assert columns_equal(_read_columns(path), expected), cell
            # And the debris of the dead generation sweeps away cleanly.
            gc_store(path)
            assert columns_equal(_read_columns(path), expected), cell

    def test_interrupted_compact_then_retry_converges(self, fragmented, tmp_path):
        """Crash mid-compaction, then compact again: canonical result."""
        expected = _read_columns(fragmented)
        shutil.copytree(fragmented, tmp_path / "c2")
        cells = [c for c in _enumerate(
            lambda fs: compact(tmp_path / "c2", rows_per_shard=ROWS_PER_SHARD, fs=fs)
        ) if c.op == "rename"]
        shutil.rmtree(tmp_path / "c2")
        shutil.copytree(fragmented, tmp_path / "c2")
        mid = cells[len(cells) // 2]
        fs = FaultyFS.at(mid)
        with pytest.raises(SimulatedCrashError):
            compact(tmp_path / "c2", rows_per_shard=ROWS_PER_SHARD, fs=fs)
        fs.power_loss()
        manifest = compact(tmp_path / "c2", rows_per_shard=ROWS_PER_SHARD)
        assert manifest.rows_per_shard == ROWS_PER_SHARD
        gc_store(tmp_path / "c2")
        assert columns_equal(_read_columns(tmp_path / "c2"), expected)


class TestCheckpointCrashMatrix:
    OLD = {100001: 1_500_000_000}
    NEW = {100001: 1_500_000_000, 100002: 1_500_100_000}

    def _save(self, path, fs=None):
        from repro.core.campaign import CollectionCheckpoint

        CollectionCheckpoint(high_water=dict(self.NEW)).save(path, fs=fs)

    def test_checkpoint_is_never_torn(self, tmp_path):
        from repro.core.campaign import CollectionCheckpoint

        cells = _enumerate(lambda fs: self._save(tmp_path / "count.json", fs=fs))
        for cell in cells:
            path = tmp_path / f"cell-{cell.step}-{cell.kind}.json"
            CollectionCheckpoint(high_water=dict(self.OLD)).save(path)
            fs = FaultyFS.at(cell)
            with pytest.raises(SimulatedCrashError):
                self._save(path, fs=fs)
            fs.power_loss()
            if path.exists():
                state = CollectionCheckpoint.load(path).high_water
                assert state in (self.OLD, self.NEW), cell
            # Absent is also legal for a first-ever save; with a prior
            # checkpoint present the rollback must restore it.
            else:
                pytest.fail(f"prior checkpoint vanished at {cell}")


class TestGcCrashMatrix:
    def _littered(self, path):
        _write_store(path)
        (path / "stray.tmp").write_bytes(b"debris")
        (path / "shard-9999-000000.rtt_min.bin").write_bytes(b"old generation")

    def test_gc_never_deletes_the_live_generation(self, tmp_path):
        self._littered(tmp_path / "count")
        expected = _read_columns(tmp_path / "count")
        cells = _enumerate(lambda fs: gc_store(tmp_path / "count", fs=fs))
        assert all(cell.op == "unlink" for cell in cells)
        for cell in cells:
            path = tmp_path / f"cell-{cell.step}-{cell.kind}"
            path.mkdir()
            self._littered(path)
            fs = FaultyFS.at(cell)
            with pytest.raises(SimulatedCrashError):
                gc_store(path, fs=fs)
            fs.power_loss()
            # The live store is untouched no matter where gc died...
            assert columns_equal(_read_columns(path), expected), cell
            # ...and a rerun finishes the sweep.
            gc_store(path)
            assert scrub(path).ok, cell

    def test_gc_refuses_a_directory_without_a_manifest(self, tmp_path):
        (tmp_path / "notastore").mkdir()
        (tmp_path / "notastore" / "x.bin").write_bytes(b"x")
        with pytest.raises(StoreError):
            gc_store(tmp_path / "notastore")
        assert (tmp_path / "notastore" / "x.bin").exists()


class TestBackfillCrashMatrix:
    def _v1_store(self, path):
        """A committed store hand-downgraded to a pre-zone-map manifest."""
        _write_store(path)
        manifest_path = path / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        payload["version"] = 1
        for shard in payload["shards"]:
            for chunk in shard["chunks"].values():
                chunk.pop("zone", None)
        manifest_path.write_text(json.dumps(payload, indent=1, sort_keys=True))

    def test_backfill_crash_never_corrupts_a_committed_manifest(self, tmp_path):
        origin = tmp_path / "origin"
        self._v1_store(origin)
        expected = _read_columns(origin)
        count_copy = tmp_path / "count"
        shutil.copytree(origin, count_copy)
        cells = _enumerate(lambda fs: backfill_zone_maps(count_copy, fs=fs))
        for cell in cells:
            path = tmp_path / f"cell-{cell.step}-{cell.kind}"
            shutil.copytree(origin, path)
            fs = FaultyFS.at(cell)
            with pytest.raises(SimulatedCrashError):
                backfill_zone_maps(path, fs=fs)
            fs.power_loss()
            # The manifest parses and names a fully verifiable store —
            # the commit is all-or-nothing, so zone coverage is 0 or
            # complete, and the version field agrees with it.
            payload = json.loads((path / MANIFEST_NAME).read_text())
            manifest = Manifest.load(path)
            zoned, total = manifest.zone_map_coverage()
            assert zoned in (0, total), cell
            assert payload["version"] == (2 if zoned else 1), cell
            assert columns_equal(_read_columns(path), expected), cell
            assert scrub(path).intact, cell
            # A rerun always completes the upgrade.
            manifest, _ = backfill_zone_maps(path)
            zoned, total = manifest.zone_map_coverage()
            assert zoned == total > 0, cell
            assert columns_equal(_read_columns(path), expected), cell


def test_manifest_json_is_valid_at_every_surviving_state(tmp_path):
    """A manifest that exists always parses: no torn manifest state."""
    cells = [
        c
        for c in _enumerate(lambda fs: _write_store(tmp_path / "count", fs=fs))
        if c.point == "manifest"
    ]
    assert cells  # the manifest path is instrumented
    for cell in cells:
        path = tmp_path / f"m-{cell.step}-{cell.kind}"
        fs = FaultyFS.at(cell)
        with pytest.raises(SimulatedCrashError):
            _write_store(path, fs=fs)
        fs.power_loss()
        manifest = path / MANIFEST_NAME
        if manifest.exists():
            json.loads(manifest.read_text())
