"""Round-trip properties: any batching, any shard size, same bytes back.

The store's core guarantee is that its on-disk layout is a pure function
of the row stream and ``rows_per_shard`` — never of how the rows arrived.
Hypothesis drives random batch splits and shard sizes against bit-exact
reconstruction; compaction must be deterministic and idempotent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.store import (
    SAMPLE_COLUMNS,
    Manifest,
    StoreReader,
    StoreWriter,
    compact,
    gc_store,
    write_dataset,
)

from tests.store.conftest import columns_equal, synthetic_columns


def _store_bytes(path) -> bytes:
    """Every file in the store, name-prefixed, concatenated in sorted order."""
    return b"".join(
        entry.name.encode() + b"\0" + entry.read_bytes()
        for entry in sorted(path.iterdir())
    )


def _write_in_batches(path, columns, splits, rows_per_shard):
    writer = StoreWriter(path, rows_per_shard=rows_per_shard)
    start = 0
    for end in list(splits) + [len(columns["probe_id"])]:
        if end <= start:
            continue
        writer.append_columns(
            {name: values[start:end] for name, values in columns.items()}
        )
        start = end
    return writer.finalize()


class TestBatchingInvariance:
    @given(
        rows=st.integers(0, 400),
        rows_per_shard=st.integers(1, 97),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_layout_independent_of_batch_splits(
        self, tmp_path_factory, rows, rows_per_shard, data
    ):
        columns = synthetic_columns(rows, seed=rows)
        splits = sorted(
            data.draw(
                st.lists(st.integers(0, rows), max_size=6, unique=True)
            )
        )
        base = tmp_path_factory.mktemp("rt")
        _write_in_batches(base / "one-shot", columns, [], rows_per_shard)
        _write_in_batches(base / "split", columns, splits, rows_per_shard)
        assert _store_bytes(base / "one-shot") == _store_bytes(base / "split")
        assert columns_equal(
            StoreReader(base / "split").columns(), columns
        )

    def test_single_row_batches_equal_bulk(self, tmp_path):
        columns = synthetic_columns(17, seed=3)
        _write_in_batches(tmp_path / "bulk", columns, [], rows_per_shard=5)
        _write_in_batches(
            tmp_path / "drip", columns, list(range(1, 17)), rows_per_shard=5
        )
        assert _store_bytes(tmp_path / "bulk") == _store_bytes(tmp_path / "drip")


class TestRoundTrip:
    @given(rows=st.integers(0, 300), rows_per_shard=st.integers(1, 120))
    @settings(max_examples=40, deadline=None)
    def test_columns_come_back_bit_exact(
        self, tmp_path_factory, rows, rows_per_shard
    ):
        columns = synthetic_columns(rows, seed=rows * 7 + rows_per_shard)
        path = tmp_path_factory.mktemp("rt") / "store"
        writer = StoreWriter(path, rows_per_shard=rows_per_shard)
        writer.append_columns(columns)
        manifest = writer.finalize()
        assert manifest.rows == rows
        reader = StoreReader(path)
        assert columns_equal(reader.columns(), columns)

    def test_empty_store_round_trips(self, store_path):
        writer = StoreWriter(store_path, provenance={"seed": 1})
        manifest = writer.finalize()
        assert manifest.rows == 0 and manifest.shards == []
        reader = StoreReader(store_path)
        assert reader.rows == 0
        for name in SAMPLE_COLUMNS:
            assert len(reader.column(name)) == 0

    def test_single_row_shards(self, store_path):
        columns = synthetic_columns(9, seed=5)
        writer = StoreWriter(store_path, rows_per_shard=1)
        writer.append_columns(columns)
        manifest = writer.finalize()
        assert len(manifest.shards) == 9
        assert all(shard.rows == 1 for shard in manifest.shards)
        assert columns_equal(StoreReader(store_path).columns(), columns)

    def test_single_shard_reads_are_memmaps(self, store_path):
        columns = synthetic_columns(50, seed=2)
        writer = StoreWriter(store_path, rows_per_shard=1000)
        writer.append_columns(columns)
        writer.finalize()
        column = StoreReader(store_path).column("rtt_avg")
        assert isinstance(column, np.memmap)
        assert not column.flags.writeable

    def test_multi_shard_reads_are_read_only(self, store_path):
        columns = synthetic_columns(50, seed=2)
        writer = StoreWriter(store_path, rows_per_shard=20)
        writer.append_columns(columns)
        writer.finalize()
        column = StoreReader(store_path).column("rtt_avg")
        assert not column.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            column[0] = 0.0


class TestCompaction:
    @given(rows=st.integers(0, 250), small=st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_compact_equals_direct_write(self, tmp_path_factory, rows, small):
        columns = synthetic_columns(rows, seed=rows + small)
        base = tmp_path_factory.mktemp("cp")
        _write_in_batches(base / "frag", columns, [], rows_per_shard=small)
        compact(base / "frag", rows_per_shard=100)
        # Chunk *contents* must match a store written canonically in one
        # pass; names differ only in generation.
        direct = _write_in_batches(base / "direct", columns, [], 100)
        compacted = Manifest.load(base / "frag")
        assert compacted.rows == direct.rows
        assert [s.rows for s in compacted.shards] == [
            s.rows for s in direct.shards
        ]
        for left, right in zip(compacted.shards, direct.shards):
            for column in SAMPLE_COLUMNS:
                assert left.chunks[column].sha256 == right.chunks[column].sha256
        assert columns_equal(StoreReader(base / "frag").columns(), columns)

    def test_compact_is_idempotent(self, store_path):
        columns = synthetic_columns(75, seed=11)
        writer = StoreWriter(store_path, rows_per_shard=10)
        writer.append_columns(columns)
        writer.finalize()
        first = compact(store_path, rows_per_shard=40)
        before = _store_bytes(store_path)
        second = compact(store_path, rows_per_shard=40)
        assert second.to_json() == first.to_json()
        assert _store_bytes(store_path) == before

    def test_compact_removes_old_generation_chunks(self, store_path):
        columns = synthetic_columns(30, seed=4)
        writer = StoreWriter(store_path, rows_per_shard=7)
        writer.append_columns(columns)
        old_files = set(writer.finalize().chunk_files())
        compact(store_path, rows_per_shard=30)
        remaining = {entry.name for entry in store_path.iterdir()}
        assert not (old_files & remaining)

    def test_gc_sweeps_orphans_and_tmp(self, store_path):
        columns = synthetic_columns(12, seed=9)
        writer = StoreWriter(store_path, rows_per_shard=100)
        writer.append_columns(columns)
        writer.finalize()
        (store_path / "shard-9999-000000.rtt_avg.bin").write_bytes(b"orphan")
        (store_path / "manifest.json.123.456.tmp").write_bytes(b"junk")
        removed = gc_store(store_path)
        assert sorted(removed) == [
            "manifest.json.123.456.tmp",
            "shard-9999-000000.rtt_avg.bin",
        ]
        StoreReader(store_path).verify("full")


class TestWriterContract:
    def test_refuses_overwrite(self, store_path):
        StoreWriter(store_path).finalize()
        with pytest.raises(StoreError):
            StoreWriter(store_path)

    def test_refuses_append_after_finalize(self, store_path):
        writer = StoreWriter(store_path)
        writer.finalize()
        with pytest.raises(StoreError):
            writer.append_columns(synthetic_columns(1))

    def test_refuses_ragged_batch(self, store_path):
        writer = StoreWriter(store_path)
        columns = synthetic_columns(4)
        columns["rcvd"] = columns["rcvd"][:2]
        with pytest.raises(StoreError):
            writer.append_columns(columns)

    def test_refuses_missing_column(self, store_path):
        writer = StoreWriter(store_path)
        columns = synthetic_columns(4)
        del columns["sent"]
        with pytest.raises(StoreError):
            writer.append_columns(columns)

    def test_abort_leaves_no_store(self, store_path):
        writer = StoreWriter(store_path, rows_per_shard=2)
        writer.append_columns(synthetic_columns(10))
        writer.abort()
        assert not store_path.exists()

    def test_append_batch_broadcasts_scalar_target(self, store_path):
        columns = synthetic_columns(6, seed=1)
        writer = StoreWriter(store_path)
        writer.append_batch(
            columns["probe_id"],
            42,
            columns["timestamp"],
            columns["rtt_min"],
            columns["rtt_avg"],
            columns["sent"],
            columns["rcvd"],
        )
        writer.finalize()
        target = StoreReader(store_path).column("target_index")
        assert target.dtype == np.dtype("<i4")
        assert (np.asarray(target) == 42).all()


class TestDatasetRoundTrip:
    def test_save_open_bit_exact(self, tiny_dataset, store_path):
        campaign, dataset = tiny_dataset
        dataset.save(store_path, provenance={"seed": 7})
        reopened = StoreReader(store_path).dataset(
            campaign.platform.probes, campaign.platform.fleet
        )
        for name in SAMPLE_COLUMNS:
            assert (
                reopened.column(name).tobytes() == dataset.column(name).tobytes()
            )
        assert reopened.num_samples == dataset.num_samples

    def test_open_rebuilds_platform_from_seed(self, tiny_dataset, store_path):
        from repro.core.dataset import CampaignDataset
        from repro.store.catalog import campaign_provenance

        campaign, dataset = tiny_dataset
        dataset.save(store_path, provenance=campaign_provenance(campaign))
        reopened = CampaignDataset.open(store_path)
        assert reopened.num_samples == dataset.num_samples
        assert reopened.integrity_report() == dataset.integrity_report()

    def test_write_dataset_matches_streaming_write(self, tiny_dataset, tmp_path):
        campaign, dataset = tiny_dataset
        write_dataset(dataset, tmp_path / "bulk", provenance={"seed": 7})
        writer = StoreWriter(tmp_path / "drip", provenance={"seed": 7})
        # Stream in ragged batches, as collection would.
        total = dataset.num_samples
        cursor = 0
        for step in (1, 7, 100, 1234):
            while cursor < total:
                end = min(total, cursor + step)
                writer.append_columns(
                    {
                        name: dataset.column(name)[cursor:end]
                        for name in SAMPLE_COLUMNS
                    }
                )
                cursor = end
        writer.finalize()
        assert _store_bytes(tmp_path / "bulk") == _store_bytes(tmp_path / "drip")
