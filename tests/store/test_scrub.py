"""Scrub classification and surgical repair.

Scrub must return the *complete* casualty list (a verifying reader
stops at the first problem), classify each kind correctly, and separate
integrity damage from sweepable debris.  Repair must quarantine the
damaged originals, re-synthesize only the affected windows from
provenance, and converge to a byte-identical store — or refuse with a
typed error when the manifest (the source of truth) is itself gone.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.errors import StoreRepairError
from repro.store import (
    CampaignCatalog,
    FaultyFS,
    StoreWriter,
    campaign_fingerprint,
    campaign_provenance,
    scrub,
    scrub_catalog,
)
from repro.store.format import MANIFEST_NAME
from repro.store.fsim import FsFaultProfile
from repro.store.scrub import QUARANTINE_DIR, repair

from tests.store.conftest import synthetic_columns


@pytest.fixture
def committed_store(tmp_path):
    path = tmp_path / "store"
    writer = StoreWriter(path, provenance={"seed": 3}, rows_per_shard=16)
    writer.append_columns(synthetic_columns(40, seed=8))
    writer.finalize()
    return path


def _chunks(path):
    return sorted(path.glob("shard-*.bin"))


class TestScrubClassification:
    def test_intact_store_scrubs_clean(self, committed_store):
        report = scrub(committed_store)
        assert report.ok and report.intact
        assert report.rows == 40
        assert report.shards == 3
        assert report.chunks_checked == 21  # 3 shards x 7 columns

    def test_missing_chunk(self, committed_store):
        _chunks(committed_store)[0].unlink()
        report = scrub(committed_store)
        assert [d.kind for d in report.damage] == ["missing_chunk"]
        assert report.damage[0].repairable
        assert report.damage[0].shard == 0
        assert not report.intact

    def test_truncated_chunk(self, committed_store):
        chunk = _chunks(committed_store)[3]
        chunk.write_bytes(chunk.read_bytes()[:-4])
        report = scrub(committed_store)
        assert [d.kind for d in report.damage] == ["truncated_chunk"]
        assert "bytes on disk" in report.damage[0].detail

    def test_checksum_mismatch(self, committed_store):
        chunk = _chunks(committed_store)[5]
        raw = bytearray(chunk.read_bytes())
        raw[len(raw) // 2] ^= 0x40
        chunk.write_bytes(bytes(raw))
        report = scrub(committed_store)
        assert [d.kind for d in report.damage] == ["checksum_mismatch"]
        assert "sha256" in report.damage[0].detail

    def test_debris_is_not_integrity_damage(self, committed_store):
        (committed_store / "leftover.tmp").write_bytes(b"torn")
        (committed_store / "shard-0009-000000.sent.bin").write_bytes(b"old")
        report = scrub(committed_store)
        assert not report.ok  # something to sweep
        assert report.intact  # but the store still reads
        kinds = sorted(d.kind for d in report.damage)
        assert kinds == ["orphan_chunk", "orphan_tmp"]

    def test_scrub_reports_every_problem_not_just_the_first(
        self, committed_store
    ):
        chunks = _chunks(committed_store)
        chunks[0].unlink()
        chunks[8].write_bytes(chunks[8].read_bytes()[:-2])
        (committed_store / "junk.tmp").write_bytes(b"x")
        report = scrub(committed_store)
        assert len(report.damage) == 3
        assert len(report.damaged_shards) == 2

    def test_manifest_missing(self, committed_store):
        (committed_store / MANIFEST_NAME).unlink()
        report = scrub(committed_store)
        assert [d.kind for d in report.damage] == ["manifest_missing"]
        assert not report.damage[0].repairable

    def test_manifest_unreadable(self, committed_store):
        manifest = committed_store / MANIFEST_NAME
        manifest.write_text(manifest.read_text()[: 40])
        report = scrub(committed_store)
        assert [d.kind for d in report.damage] == ["manifest_unreadable"]

    def test_report_round_trips_to_json(self, committed_store):
        _chunks(committed_store)[0].unlink()
        payload = json.dumps(scrub(committed_store).as_dict())
        decoded = json.loads(payload)
        assert decoded["intact"] is False
        assert decoded["damage"][0]["kind"] == "missing_chunk"


class TestScrubCatalog:
    def test_uncommitted_and_dangling_entries(self, tmp_path):
        from repro.core.campaign import Campaign, CampaignScale

        catalog = CampaignCatalog(tmp_path / "catalog")
        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=11)
        campaign.run(store=catalog)
        fingerprint = campaign_fingerprint(campaign_provenance(campaign))

        # An interrupted write: chunks, no manifest.
        half_done = tmp_path / "catalog" / ("e" * 64)
        half_done.mkdir()
        (half_done / "shard-0000-000000.sent.bin").write_bytes(b"x")
        # A store filed under the wrong fingerprint.
        shutil.copytree(
            tmp_path / "catalog" / fingerprint, tmp_path / "catalog" / ("f" * 64)
        )
        (tmp_path / "catalog" / "upload.tmp").write_bytes(b"x")

        reports, catalog_damage = scrub_catalog(tmp_path / "catalog")
        assert len(reports) == 2  # the genuine entry + the mis-filed copy
        assert all(r.intact for r in reports)
        kinds = sorted(d.kind for d in catalog_damage)
        assert kinds == ["dangling_entry", "orphan_tmp", "uncommitted_entry"]

    def test_empty_root_is_clean(self, tmp_path):
        reports, damage = scrub_catalog(tmp_path / "nothing-here")
        assert reports == [] and damage == []


@pytest.fixture(scope="module")
def campaign_store(tmp_path_factory):
    """A committed TINY campaign store plus a pristine byte snapshot."""
    from repro.core.campaign import Campaign, CampaignScale

    root = tmp_path_factory.mktemp("repairable")
    campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=7)
    catalog = CampaignCatalog(root / "catalog", rows_per_shard=4096)
    campaign.run(store=catalog)
    fingerprint = campaign_fingerprint(campaign_provenance(campaign))
    entry = catalog.path_for(fingerprint)
    pristine = root / "pristine"
    shutil.copytree(entry, pristine)
    return entry, pristine


def _store_bytes(path):
    return {
        p.name: p.read_bytes() for p in sorted(path.iterdir()) if p.is_file()
    }


@pytest.fixture
def damaged_copy(campaign_store, tmp_path):
    entry, pristine = campaign_store
    copy = tmp_path / "damaged"
    shutil.copytree(pristine, copy)
    return copy, pristine


class TestRepair:
    def test_repair_restores_exact_bytes(self, damaged_copy):
        store, pristine = damaged_copy
        chunks = _chunks(store)
        flipped = chunks[0]
        raw = bytearray(flipped.read_bytes())
        raw[7] ^= 0x01
        flipped.write_bytes(bytes(raw))
        chunks[-1].unlink()

        report = repair(store)

        assert report.verified
        assert sorted(report.repaired_chunks) == sorted(
            [flipped.name, chunks[-1].name]
        )
        assert report.resynthesized_windows > 0
        # Quarantine holds the damaged original (the deleted chunk had
        # nothing left to quarantine), and nothing was destroyed.
        assert report.quarantined == [flipped.name]
        assert (store / QUARANTINE_DIR / flipped.name).read_bytes() == bytes(raw)
        # Byte-for-byte identical to the pre-damage snapshot.
        assert _store_bytes(store) == _store_bytes(pristine)

    def test_repair_is_surgical_not_full_recollection(self, damaged_copy):
        store, _ = damaged_copy
        manifest = json.loads((store / MANIFEST_NAME).read_text())
        total_windows = len(manifest["windows"])
        _chunks(store)[0].unlink()
        report = repair(store)
        assert 0 < report.resynthesized_windows < total_windows

    def test_repair_sweeps_debris_on_an_intact_store(self, damaged_copy):
        store, pristine = damaged_copy
        (store / "upload.tmp").write_bytes(b"torn")
        report = repair(store)
        assert report.swept == ["upload.tmp"]
        assert report.repaired_chunks == []
        assert _store_bytes(store) == _store_bytes(pristine)

    def test_repair_refuses_without_manifest(self, damaged_copy):
        store, _ = damaged_copy
        (store / MANIFEST_NAME).unlink()
        with pytest.raises(StoreRepairError, match="re-collect"):
            repair(store)

    def test_repair_refuses_without_provenance(self, tmp_path):
        path = tmp_path / "anonymous"
        writer = StoreWriter(path, rows_per_shard=16)
        writer.append_columns(synthetic_columns(40, seed=8))
        writer.finalize()
        _chunks(path)[0].unlink()
        with pytest.raises(StoreRepairError, match="provenance"):
            repair(path)

    def test_repair_refuses_without_window_index(self, damaged_copy):
        store, _ = damaged_copy
        manifest = store / MANIFEST_NAME
        payload = json.loads(manifest.read_text())
        del payload["windows"]
        manifest.write_text(json.dumps(payload))
        _chunks(store)[0].unlink()
        with pytest.raises(StoreRepairError, match="window index"):
            repair(store)

    def test_repair_detects_lying_provenance(self, damaged_copy):
        store, _ = damaged_copy
        manifest = store / MANIFEST_NAME
        payload = json.loads(manifest.read_text())
        payload["provenance"]["seed"] = 8  # not the campaign that wrote this
        manifest.write_text(json.dumps(payload))
        _chunks(store)[0].unlink()
        with pytest.raises(StoreRepairError, match="does not reproduce"):
            repair(store)


class TestPowerLossEndToEnd:
    def test_lost_syncs_keep_the_commit_point_honest(self, tmp_path):
        """With every fsync lost, a power cut rolls back the manifest:
        the directory is visibly not-a-store, never a torn one."""
        fs = FaultyFS(profile=FsFaultProfile(name="amnesia", lost_fsync=1.0))
        writer = StoreWriter(
            tmp_path / "volatile", rows_per_shard=16, fs=fs, durable=True
        )
        writer.append_columns(synthetic_columns(40, seed=8))
        writer.finalize()
        assert scrub(tmp_path / "volatile").ok  # fine until the power cut
        fs.power_loss()
        report = scrub(tmp_path / "volatile")
        assert [d.kind for d in report.damage if d.kind.startswith("manifest")] == [
            "manifest_missing"
        ]
