"""Corruption is always a typed error, never silently-wrong data.

Every tampering mode — bit-flipped chunk, truncated chunk, truncated or
mangled manifest, missing file, checksum mismatch — must surface as
:class:`~repro.errors.StoreIntegrityError` at open/verify time.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreError, StoreIntegrityError
from repro.store import StoreReader, StoreWriter, open_dataset
from repro.store.format import MANIFEST_NAME

from tests.store.conftest import synthetic_columns


@pytest.fixture
def committed_store(tmp_path):
    path = tmp_path / "store"
    writer = StoreWriter(path, provenance={"seed": 3}, rows_per_shard=16)
    writer.append_columns(synthetic_columns(40, seed=8))
    writer.finalize()
    return path


def _a_chunk(path):
    return next(sorted(path.glob("shard-*.bin")).__iter__())


class TestChunkCorruption:
    def test_bit_flip_detected(self, committed_store):
        chunk = _a_chunk(committed_store)
        raw = bytearray(chunk.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        chunk.write_bytes(bytes(raw))
        with pytest.raises(StoreIntegrityError):
            StoreReader(committed_store, verify="full")

    def test_truncation_detected_even_sampled(self, committed_store):
        # Size checks cover every chunk in every verify mode, so a
        # truncated chunk cannot hide behind sampling.
        chunk = _a_chunk(committed_store)
        chunk.write_bytes(chunk.read_bytes()[:-8])
        with pytest.raises(StoreIntegrityError):
            StoreReader(committed_store, verify="sampled")

    def test_missing_chunk_detected(self, committed_store):
        _a_chunk(committed_store).unlink()
        with pytest.raises(StoreIntegrityError):
            StoreReader(committed_store, verify="full")

    def test_same_length_tamper_passes_off_mode_but_not_full(
        self, committed_store
    ):
        # verify="off" is an explicit opt-out — documents the trade.
        chunk = _a_chunk(committed_store)
        raw = bytearray(chunk.read_bytes())
        raw[0] ^= 0xFF
        chunk.write_bytes(bytes(raw))
        StoreReader(committed_store, verify="off")  # trusts the disk
        with pytest.raises(StoreIntegrityError):
            StoreReader(committed_store, verify="full")

    def test_open_dataset_never_returns_corrupt_data(self, committed_store):
        chunk = _a_chunk(committed_store)
        raw = bytearray(chunk.read_bytes())
        raw[3] ^= 0x10
        chunk.write_bytes(bytes(raw))
        with pytest.raises(StoreIntegrityError):
            open_dataset(committed_store)


class TestManifestCorruption:
    def test_truncated_manifest(self, committed_store):
        manifest = committed_store / MANIFEST_NAME
        text = manifest.read_text()
        manifest.write_text(text[: len(text) // 3])
        with pytest.raises(StoreIntegrityError):
            StoreReader(committed_store)

    def test_checksum_mismatch_in_manifest(self, committed_store):
        manifest = committed_store / MANIFEST_NAME
        payload = json.loads(manifest.read_text())
        chunk = payload["shards"][0]["chunks"]["rtt_avg"]
        chunk["sha256"] = "0" * 64
        manifest.write_text(json.dumps(payload))
        with pytest.raises(StoreIntegrityError):
            StoreReader(committed_store, verify="full")

    def test_row_count_mismatch_in_manifest(self, committed_store):
        manifest = committed_store / MANIFEST_NAME
        payload = json.loads(manifest.read_text())
        payload["rows"] += 1
        manifest.write_text(json.dumps(payload))
        with pytest.raises(StoreIntegrityError):
            StoreReader(committed_store, verify="off")  # shape check still runs

    def test_byte_length_contradiction_in_manifest(self, committed_store):
        manifest = committed_store / MANIFEST_NAME
        payload = json.loads(manifest.read_text())
        payload["shards"][0]["chunks"]["sent"]["bytes"] += 4
        manifest.write_text(json.dumps(payload))
        with pytest.raises(StoreIntegrityError):
            StoreReader(committed_store, verify="off")

    def test_missing_manifest_is_not_a_store(self, committed_store):
        (committed_store / MANIFEST_NAME).unlink()
        with pytest.raises(StoreError):
            StoreReader(committed_store)

    def test_future_version_is_store_error_not_integrity(self, committed_store):
        manifest = committed_store / MANIFEST_NAME
        payload = json.loads(manifest.read_text())
        payload["version"] += 1
        manifest.write_text(json.dumps(payload))
        with pytest.raises(StoreError) as excinfo:
            StoreReader(committed_store)
        assert not isinstance(excinfo.value, StoreIntegrityError)


class TestCatalogCorruption:
    def test_damaged_committed_entry_raises_not_miss(self, tmp_path):
        """Corruption in a cache entry must never silently re-collect."""
        from repro.core.campaign import Campaign, CampaignScale
        from repro.store.catalog import (
            CampaignCatalog,
            campaign_fingerprint,
            campaign_provenance,
        )

        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=11)
        catalog = CampaignCatalog(tmp_path / "catalog")
        campaign.run(store=catalog)
        fingerprint = campaign_fingerprint(campaign_provenance(campaign))
        entry = catalog.path_for(fingerprint)
        chunk = _a_chunk(entry)
        raw = bytearray(chunk.read_bytes())
        raw[0] ^= 0x01
        chunk.write_bytes(bytes(raw))

        fresh = Campaign.from_paper(scale=CampaignScale.TINY, seed=11)
        with pytest.raises(StoreIntegrityError):
            fresh.run(store=catalog)

    def test_uncommitted_entry_is_miss_and_gc_sweeps_it(self, tmp_path):
        from repro.core.campaign import Campaign, CampaignScale
        from repro.store.catalog import CampaignCatalog

        catalog = CampaignCatalog(tmp_path / "catalog")
        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=11)
        # Simulate an interrupted write: chunks, no manifest.
        writer = catalog.writer(campaign)
        writer.append_columns(synthetic_columns(8, seed=1))
        writer.flush()  # chunks on disk, never finalized
        assert catalog.lookup(campaign) is None
        removed = catalog.gc()
        assert removed  # the uncommitted dir went away
        assert catalog.entries() == []
