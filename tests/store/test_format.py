"""Manifest/layout unit tests: versioning, atomicity, schema lockstep."""

import json

import pytest

from repro.errors import StoreError, StoreIntegrityError
from repro.store.format import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    SAMPLE_SCHEMA,
    ChunkMeta,
    Manifest,
    ShardMeta,
    atomic_write_bytes,
    is_store_dir,
    shard_name,
)


def _manifest() -> Manifest:
    chunk = ChunkMeta(file="shard-0000-000000.probe_id.bin", bytes=8, sha256="ab" * 32)
    shard = ShardMeta(
        name="shard-0000-000000",
        rows=2,
        chunks={name: chunk for name, _ in SAMPLE_SCHEMA},
    )
    return Manifest(rows=2, provenance={"seed": 7}, shards=[shard])


class TestSchemaLockstep:
    def test_store_schema_matches_dataset_dtypes(self):
        import numpy as np

        from repro.core.dataset import SAMPLE_DTYPES

        assert [name for name, _ in SAMPLE_SCHEMA] == [
            name for name, _ in SAMPLE_DTYPES
        ]
        for (_, store_dtype), (_, ds_dtype) in zip(SAMPLE_SCHEMA, SAMPLE_DTYPES):
            assert np.dtype(store_dtype) == np.dtype(ds_dtype)
            assert np.dtype(store_dtype).byteorder in ("<", "=")  # little-endian


class TestManifestRoundTrip:
    def test_json_round_trip(self):
        manifest = _manifest()
        rebuilt = Manifest.from_json(manifest.to_json())
        assert rebuilt.rows == 2
        assert rebuilt.schema == SAMPLE_SCHEMA
        assert rebuilt.provenance == {"seed": 7}
        assert rebuilt.shards[0].chunks["probe_id"].sha256 == "ab" * 32
        assert rebuilt.to_json() == manifest.to_json()

    def test_save_load_disk(self, tmp_path):
        manifest = _manifest()
        manifest.save(tmp_path)
        assert is_store_dir(tmp_path)
        assert Manifest.load(tmp_path).to_json() == manifest.to_json()

    def test_save_is_atomic(self, tmp_path):
        _manifest().save(tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == [MANIFEST_NAME]

    def test_no_wall_clock_in_manifest(self):
        # Determinism: two saves of the same data must be byte-identical,
        # so nothing time-derived may enter the manifest.
        assert _manifest().to_json() == _manifest().to_json()


class TestManifestRejection:
    def test_truncated_json_is_integrity_error(self):
        text = _manifest().to_json()
        with pytest.raises(StoreIntegrityError):
            Manifest.from_json(text[: len(text) // 2])

    def test_wrong_format_marker_rejected(self):
        payload = json.loads(_manifest().to_json())
        payload["format"] = "parquet"
        with pytest.raises(StoreIntegrityError):
            Manifest.from_json(json.dumps(payload))

    def test_future_version_rejected_as_store_error(self):
        payload = json.loads(_manifest().to_json())
        payload["version"] = FORMAT_VERSION + 1
        with pytest.raises(StoreError):
            Manifest.from_json(json.dumps(payload))

    def test_missing_fields_are_integrity_error(self):
        payload = json.loads(_manifest().to_json())
        del payload["shards"]
        with pytest.raises(StoreIntegrityError):
            Manifest.from_json(json.dumps(payload))

    def test_non_store_dir_is_store_error(self, tmp_path):
        with pytest.raises(StoreError):
            Manifest.load(tmp_path)


class TestAtomicWrite:
    def test_leaves_only_target(self, tmp_path):
        atomic_write_bytes(tmp_path / "x.bin", b"abc")
        assert [p.name for p in tmp_path.iterdir()] == ["x.bin"]
        assert (tmp_path / "x.bin").read_bytes() == b"abc"

    def test_replaces_existing(self, tmp_path):
        (tmp_path / "x.bin").write_bytes(b"old")
        atomic_write_bytes(tmp_path / "x.bin", b"new")
        assert (tmp_path / "x.bin").read_bytes() == b"new"


def test_shard_names_sort_in_generation_then_index_order():
    names = [shard_name(g, i) for g in (0, 1) for i in (0, 1, 2)]
    assert names == sorted(names)
