"""Catalog semantics: fingerprint stability, cache hit/miss, gc."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.campaign import Campaign, CampaignScale
from repro.obs import Obs
from repro.store import SAMPLE_COLUMNS, CampaignCatalog
from repro.store.catalog import campaign_fingerprint, campaign_provenance

from tests.store.conftest import synthetic_columns


class TestFingerprint:
    def test_stable_across_processes(self):
        # Pinned value: any change here is a cache-invalidating format
        # break and must bump FORMAT_VERSION.
        provenance = {
            "seed": 7,
            "fault_profile": "none",
            "scale": "tiny",
            "interval_s": 10800,
            "start_time": 1500000000,
            "stop_time": 1500086400,
            "packets": 3,
        }
        assert campaign_fingerprint(provenance) == campaign_fingerprint(
            dict(reversed(list(provenance.items())))
        )
        assert len(campaign_fingerprint(provenance)) == 64

    def test_same_campaign_same_fingerprint(self):
        a = Campaign.from_paper(scale=CampaignScale.TINY, seed=7)
        b = Campaign.from_paper(scale=CampaignScale.TINY, seed=7)
        assert campaign_fingerprint(
            campaign_provenance(a)
        ) == campaign_fingerprint(campaign_provenance(b))

    def test_seed_changes_fingerprint(self):
        a = Campaign.from_paper(scale=CampaignScale.TINY, seed=7)
        b = Campaign.from_paper(scale=CampaignScale.TINY, seed=8)
        assert campaign_fingerprint(
            campaign_provenance(a)
        ) != campaign_fingerprint(campaign_provenance(b))

    def test_fault_profile_changes_fingerprint(self):
        a = Campaign.from_paper(scale=CampaignScale.TINY, seed=7)
        b = Campaign.from_paper(
            scale=CampaignScale.TINY, seed=7, faults="flaky"
        )
        assert campaign_fingerprint(
            campaign_provenance(a)
        ) != campaign_fingerprint(campaign_provenance(b))

    def test_provenance_excludes_worker_count(self):
        # Workers are byte-transparent; they must not fragment the cache.
        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=7)
        provenance = campaign_provenance(campaign)
        assert "workers" not in provenance
        assert "fast_path" not in provenance


class TestCollectOnceAnalyzeMany:
    def test_miss_then_hit(self, tmp_path):
        catalog = CampaignCatalog(tmp_path / "catalog")
        first = Campaign.from_paper(scale=CampaignScale.TINY, seed=7, obs=Obs())
        assert catalog.lookup(first) is None
        collected = first.run(store=catalog)
        assert catalog.lookup(first) is not None
        assert first.obs.registry.counter("store_cache_misses_total").value == 1

        again = Campaign.from_paper(scale=CampaignScale.TINY, seed=7, obs=Obs())
        reopened = again.run(store=catalog)
        assert again.obs.registry.counter("store_cache_hits_total").value == 1
        for name in SAMPLE_COLUMNS:
            assert (
                reopened.column(name).tobytes()
                == collected.column(name).tobytes()
            )

    def test_hit_skips_measurement_creation(self, tmp_path):
        catalog = CampaignCatalog(tmp_path / "catalog")
        Campaign.from_paper(scale=CampaignScale.TINY, seed=7).run(store=catalog)
        hit = Campaign.from_paper(scale=CampaignScale.TINY, seed=7)
        hit.run(store=catalog)
        # A cache hit never schedules measurements.
        assert not hit._msm_id_by_target

    def test_hit_dataset_is_frozen_and_analyzable(self, tmp_path):
        catalog = CampaignCatalog(tmp_path / "catalog")
        Campaign.from_paper(scale=CampaignScale.TINY, seed=7).run(store=catalog)
        dataset = Campaign.from_paper(scale=CampaignScale.TINY, seed=7).run(
            store=catalog
        )
        with pytest.raises(Exception):
            dataset.append(
                probe_ids=np.asarray([1]),
                target_key=None,
                timestamps=np.asarray([0]),
                rtt_min=np.asarray([1.0]),
                rtt_avg=np.asarray([1.0]),
            )
        report = dataset.integrity_report()
        assert report["samples"] == dataset.num_samples

    def test_distinct_campaigns_do_not_collide(self, tmp_path):
        catalog = CampaignCatalog(tmp_path / "catalog")
        Campaign.from_paper(scale=CampaignScale.TINY, seed=7).run(store=catalog)
        other = Campaign.from_paper(
            scale=CampaignScale.TINY, seed=7, faults="flaky"
        )
        assert catalog.lookup(other) is None
        other.run(store=catalog)
        assert len(catalog.entries()) == 2

    def test_store_accepts_plain_path(self, tmp_path):
        # Campaign.collect(store=...) takes a path or a catalog.
        dataset = Campaign.from_paper(scale=CampaignScale.TINY, seed=7).run(
            store=tmp_path / "catalog"
        )
        assert dataset.num_samples > 0
        assert CampaignCatalog(tmp_path / "catalog").entries()


class TestCatalogGC:
    def test_gc_removes_mismatched_entry(self, tmp_path):
        catalog = CampaignCatalog(tmp_path / "catalog")
        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=7)
        campaign.run(store=catalog)
        (entry,) = catalog.entries()
        moved = catalog.root / ("f" * 64)
        (catalog.root / entry).rename(moved)
        removed = catalog.gc()
        assert "f" * 64 in removed
        assert catalog.entries() == []

    def test_gc_keeps_healthy_entries(self, tmp_path):
        catalog = CampaignCatalog(tmp_path / "catalog")
        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=7)
        campaign.run(store=catalog)
        before = catalog.entries()
        assert catalog.gc() == []
        assert catalog.entries() == before

    def test_gc_sweeps_stray_tmp_files(self, tmp_path):
        catalog = CampaignCatalog(tmp_path / "catalog")
        catalog.root.mkdir(parents=True)
        (catalog.root / "x.123.456.tmp").write_bytes(b"junk")
        assert catalog.gc() == ["x.123.456.tmp"]

    def test_writer_addresses_by_fingerprint(self, tmp_path):
        catalog = CampaignCatalog(tmp_path / "catalog")
        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=7)
        writer = catalog.writer(campaign)
        expected = catalog.path_for(
            campaign_fingerprint(campaign_provenance(campaign))
        )
        assert writer.path == expected
        writer.append_columns(synthetic_columns(4, seed=0))
        writer.abort()
