"""Shared-nothing range writer: byte parity with the serial writer.

:class:`~repro.store.writer.ShardRangeWriter` is the worker half of the
direct-to-store ingest path: it writes *interior* store shards under
their final global names and hands back boundary partials.
:func:`~repro.store.writer.assemble_direct_store` is the parent half:
it stitches the partials into boundary shards and commits the manifest.
The contract these tests pin down is the whole point of the design —
for **any** contiguous split of the row stream, at **any** shard size,
the assembled store is byte-for-byte the one a serial
:class:`~repro.store.StoreWriter` would have produced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StoreError
from repro.store import StoreReader, StoreWriter
from repro.store.format import MANIFEST_NAME
from repro.store.scrub import scrub
from repro.store.writer import (
    ShardRangeWriter,
    assemble_direct_store,
    discard_fragments,
)

from tests.store.conftest import columns_equal, synthetic_columns

PROVENANCE = {"seed": 11}


def _slice_columns(columns, lo, hi):
    return {name: array[lo:hi] for name, array in columns.items()}


def _serial_store(path, columns, rows_per_shard):
    writer = StoreWriter(
        path,
        provenance=dict(PROVENANCE),
        rows_per_shard=rows_per_shard,
        durable=True,
    )
    writer.append_columns(columns)
    return writer.finalize()


def _direct_store(path, columns, cuts, rows_per_shard, batch=None):
    """Write ``columns`` as range fragments cut at ``cuts`` and commit."""
    fragments = []
    for lo, hi in zip(cuts[:-1], cuts[1:]):
        writer = ShardRangeWriter(
            path, row_start=lo, rows_per_shard=rows_per_shard, durable=True
        )
        step = batch or max(1, hi - lo)
        for start in range(lo, hi, step):
            writer.append_columns(
                _slice_columns(columns, start, min(start + step, hi))
            )
        fragments.append(writer.finish())
    return assemble_direct_store(
        path,
        fragments,
        provenance=dict(PROVENANCE),
        rows_per_shard=rows_per_shard,
    )


def _store_files(path):
    return {p.name: p.read_bytes() for p in path.iterdir()}


class TestRangeWriterByteParity:
    @pytest.mark.parametrize(
        "cuts,rows_per_shard",
        [
            ([0, 100], 16),            # single range (serial degenerate)
            ([0, 50, 100], 16),        # one interior cut off-boundary
            ([0, 32, 100], 16),        # a cut exactly on a boundary
            ([0, 7, 9, 40, 100], 16),  # tiny ranges inside one shard
            ([0, 33, 66, 100], 100),   # no range ever fills a shard
            ([0, 25, 50, 75, 100], 1), # every row is its own shard
        ],
    )
    def test_any_split_matches_the_serial_bytes(
        self, tmp_path, cuts, rows_per_shard
    ):
        columns = synthetic_columns(cuts[-1], seed=5)
        _serial_store(tmp_path / "serial", columns, rows_per_shard)
        _direct_store(tmp_path / "direct", columns, cuts, rows_per_shard)
        assert _store_files(tmp_path / "direct") == _store_files(
            tmp_path / "serial"
        )

    def test_batch_granularity_is_invisible(self, tmp_path):
        """Appending row-by-row or range-at-once: identical files."""
        columns = synthetic_columns(90, seed=6)
        _direct_store(tmp_path / "whole", columns, [0, 45, 90], 16)
        _direct_store(tmp_path / "dribble", columns, [0, 45, 90], 16, batch=1)
        assert _store_files(tmp_path / "whole") == _store_files(
            tmp_path / "dribble"
        )

    def test_assembled_store_verifies_and_scrubs_clean(self, tmp_path):
        columns = synthetic_columns(120, seed=7)
        _direct_store(tmp_path / "direct", columns, [0, 41, 83, 120], 16)
        reader = StoreReader(tmp_path / "direct", verify="full")
        assert reader.manifest.rows == 120
        assert columns_equal(
            {name: reader.column(name) for name in reader.manifest.columns},
            columns,
        )
        assert scrub(tmp_path / "direct").intact

    def test_out_of_order_fragment_arrival(self, tmp_path):
        """Assembly sorts by row_start; pipe arrival order is irrelevant."""
        columns = synthetic_columns(100, seed=8)
        fragments = []
        for lo, hi in [(0, 40), (40, 100)]:
            writer = ShardRangeWriter(
                tmp_path / "direct", row_start=lo, rows_per_shard=16,
                durable=True,
            )
            writer.append_columns(_slice_columns(columns, lo, hi))
            fragments.append(writer.finish())
        assemble_direct_store(
            tmp_path / "direct",
            list(reversed(fragments)),
            provenance=dict(PROVENANCE),
            rows_per_shard=16,
        )
        _serial_store(tmp_path / "serial", columns, 16)
        assert _store_files(tmp_path / "direct") == _store_files(
            tmp_path / "serial"
        )


class TestRangeWriterGeometry:
    def test_head_and_tail_straddle_the_global_boundaries(self, tmp_path):
        columns = synthetic_columns(50, seed=9)
        writer = ShardRangeWriter(tmp_path / "s", row_start=10, rows_per_shard=16)
        writer.append_columns(columns)
        fragment = writer.finish()
        # Rows 10..60 against 16-row shards: head 10..16, interior
        # [16, 32) and [32, 48), tail 48..60.
        assert fragment.head_rows == 6
        assert fragment.first_shard_index == 1
        assert [meta.name for meta in fragment.shards] == [
            "shard-0000-000001",
            "shard-0000-000002",
        ]
        assert fragment.tail_rows == 12
        assert columns_equal(fragment.head, _slice_columns(columns, 0, 6))
        assert columns_equal(fragment.tail, _slice_columns(columns, 38, 50))

    def test_range_inside_a_single_shard_is_all_head(self, tmp_path):
        columns = synthetic_columns(5, seed=9)
        writer = ShardRangeWriter(tmp_path / "s", row_start=18, rows_per_shard=16)
        writer.append_columns(columns)
        fragment = writer.finish()
        assert fragment.head_rows == 5
        assert not fragment.shards
        assert fragment.tail_rows == 0
        assert columns_equal(fragment.head, columns)

    def test_aligned_range_has_no_head(self, tmp_path):
        columns = synthetic_columns(20, seed=9)
        writer = ShardRangeWriter(tmp_path / "s", row_start=32, rows_per_shard=16)
        writer.append_columns(columns)
        fragment = writer.finish()
        assert fragment.head_rows == 0
        assert fragment.first_shard_index == 2
        assert len(fragment.shards) == 1
        assert fragment.tail_rows == 4

    def test_finish_is_single_shot(self, tmp_path):
        writer = ShardRangeWriter(tmp_path / "s", row_start=0, rows_per_shard=16)
        writer.finish()
        with pytest.raises(StoreError):
            writer.finish()
        with pytest.raises(StoreError):
            writer.append_columns(synthetic_columns(1))

    def test_validation(self, tmp_path):
        with pytest.raises(StoreError):
            ShardRangeWriter(tmp_path / "s", row_start=-1)
        with pytest.raises(StoreError):
            ShardRangeWriter(tmp_path / "s", row_start=0, rows_per_shard=0)


class TestAbortPaths:
    def test_discard_unlinks_interior_chunks(self, tmp_path):
        path = tmp_path / "s"
        writer = ShardRangeWriter(path, row_start=0, rows_per_shard=16)
        writer.append_columns(synthetic_columns(40, seed=3))
        assert list(path.iterdir())
        writer.discard()
        assert list(path.iterdir()) == []

    def test_discard_fragments_sweeps_everything(self, tmp_path):
        path = tmp_path / "s"
        columns = synthetic_columns(64, seed=3)
        fragments = []
        for lo, hi in [(0, 30), (30, 64)]:
            writer = ShardRangeWriter(path, row_start=lo, rows_per_shard=16)
            writer.append_columns(_slice_columns(columns, lo, hi))
            fragments.append(writer.finish())
        discard_fragments(path, fragments)
        assert not path.exists()

    def test_failed_assembly_leaves_no_manifest_and_sweeps_clean(
        self, tmp_path
    ):
        """An assembly that rejects its fragments commits nothing, and
        the abort sweep removes every chunk the workers streamed."""
        path = tmp_path / "s"
        columns = synthetic_columns(64, seed=3)
        fragments = []
        for lo, hi in [(0, 30), (40, 64)]:  # a gap: rows 30..40 missing
            writer = ShardRangeWriter(
                path, row_start=lo, rows_per_shard=16, durable=True
            )
            writer.append_columns(_slice_columns(columns, lo, hi))
            fragments.append(writer.finish())
        with pytest.raises(StoreError):
            assemble_direct_store(path, fragments, rows_per_shard=16)
        assert not (path / MANIFEST_NAME).exists()
        discard_fragments(path, fragments)
        assert not path.exists() or not any(path.glob("shard-*"))


class TestAssemblyValidation:
    def _fragment(self, path, columns, lo, hi, rows_per_shard=16):
        writer = ShardRangeWriter(
            path, row_start=lo, rows_per_shard=rows_per_shard
        )
        writer.append_columns(_slice_columns(columns, lo, hi))
        return writer.finish()

    def test_gap_in_the_tiling_is_rejected(self, tmp_path):
        columns = synthetic_columns(64, seed=4)
        fragments = [
            self._fragment(tmp_path / "s", columns, 0, 30),
            self._fragment(tmp_path / "s", columns, 40, 64),
        ]
        with pytest.raises(StoreError, match="do not tile"):
            assemble_direct_store(tmp_path / "s", fragments, rows_per_shard=16)

    def test_overlapping_fragments_are_rejected(self, tmp_path):
        columns = synthetic_columns(64, seed=4)
        fragments = [
            self._fragment(tmp_path / "s", columns, 0, 40),
            self._fragment(tmp_path / "s", columns, 30, 64),
        ]
        with pytest.raises(StoreError):
            assemble_direct_store(tmp_path / "s", fragments, rows_per_shard=16)

    def test_shard_size_mismatch_is_rejected(self, tmp_path):
        """Fragments written at the wrong shard size can't sneak in."""
        columns = synthetic_columns(64, seed=4)
        fragments = [self._fragment(tmp_path / "s", columns, 0, 64,
                                    rows_per_shard=32)]
        with pytest.raises(StoreError):
            assemble_direct_store(tmp_path / "s", fragments, rows_per_shard=16)

    def test_empty_fragment_set_commits_an_empty_store(self, tmp_path):
        manifest = assemble_direct_store(
            tmp_path / "s", [], provenance=dict(PROVENANCE), rows_per_shard=16
        )
        assert manifest.rows == 0
        assert StoreReader(tmp_path / "s").manifest.rows == 0


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@st.composite
def _splits(draw):
    rows = draw(st.integers(1, 120))
    rows_per_shard = draw(st.integers(1, 48))
    cut_set = draw(st.sets(st.integers(1, max(1, rows - 1)), max_size=5))
    cuts = [0] + sorted(c for c in cut_set if c < rows) + [rows]
    return rows, rows_per_shard, cuts


class TestRangeWriterPropertyParity:
    _example = 0

    @given(split=_splits())
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_arbitrary_splits_are_byte_identical(self, tmp_path, split):
        rows, rows_per_shard, cuts = split
        type(self)._example += 1
        columns = synthetic_columns(rows, seed=rows)
        serial = tmp_path / f"serial-{self._example}"
        direct = tmp_path / f"direct-{self._example}"
        _serial_store(serial, columns, rows_per_shard)
        _direct_store(direct, columns, cuts, rows_per_shard)
        assert _store_files(direct) == _store_files(serial)
