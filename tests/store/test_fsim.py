"""The filesystem fault-injection seam itself.

Before the crash matrix can mean anything, the seam's model has to be
right: unsynced data dies with the power, un-dirsynced renames roll
back, torn writes leave a durable prefix, crash-point replay hits
exactly the enumerated site, and seeded profiles replay their fault
schedule byte for byte.  This suite also pins the durability policy of
the two small-file writers (manifest, CSV) whose missing parent-dirsync
was an observable bug under this model.
"""

from __future__ import annotations

import errno

import numpy as np
import pytest

from repro.errors import ReproError, SimulatedCrashError, StoreError
from repro.store.fsim import (
    CRASH_KINDS_BY_OP,
    FSIM_PROFILES,
    CountingFS,
    CrashPoint,
    FaultyFS,
    FsFaultProfile,
    RealFS,
    crash_points,
    ensure_fs,
    get_fs_profile,
)

from tests.store.conftest import synthetic_columns


class TestSeamBasics:
    def test_real_fs_round_trip(self, tmp_path):
        fs = RealFS()
        target = tmp_path / "data.bin"
        fs.write_bytes(target, b"payload", point="t")
        fs.fsync_path(target, point="t")
        fs.replace(target, tmp_path / "final.bin", point="t")
        fs.fsync_dir(tmp_path, point="t")
        assert (tmp_path / "final.bin").read_bytes() == b"payload"
        fs.unlink(tmp_path / "final.bin", point="t")
        assert not (tmp_path / "final.bin").exists()

    def test_ensure_fs_normalizes_none(self):
        assert ensure_fs(None).name == "real"
        counting = CountingFS()
        assert ensure_fs(counting) is counting

    def test_counting_fs_records_ordered_sites(self, tmp_path):
        fs = CountingFS()
        fs.write_bytes(tmp_path / "a.tmp", b"x", point="a")
        fs.fsync_path(tmp_path / "a.tmp", point="a")
        fs.replace(tmp_path / "a.tmp", tmp_path / "a", point="a")
        fs.fsync_dir(tmp_path, point="a")
        assert [(s.step, s.op, s.point) for s in fs.sites] == [
            (0, "write", "a"),
            (1, "fsync", "a"),
            (2, "rename", "a"),
            (3, "dirsync", "a"),
        ]

    def test_crash_points_expand_kinds_per_op(self, tmp_path):
        fs = CountingFS()
        fs.write_bytes(tmp_path / "a.tmp", b"x", point="a")
        fs.replace(tmp_path / "a.tmp", tmp_path / "a", point="a")
        points = crash_points(fs.sites)
        assert [p.kind for p in points if p.op == "write"] == list(
            CRASH_KINDS_BY_OP["write"]
        )
        assert [p.kind for p in points if p.op == "rename"] == list(
            CRASH_KINDS_BY_OP["rename"]
        )

    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError, match="unknown fsim profile"):
            get_fs_profile("raid-fire")
        assert get_fs_profile("gremlin") is FSIM_PROFILES["gremlin"]
        custom = FsFaultProfile(name="mine", enospc=1.0)
        assert get_fs_profile(custom) is custom


class TestPowerLossModel:
    def test_unsynced_write_dies_with_the_power(self, tmp_path):
        fs = FaultyFS()
        fs.write_bytes(tmp_path / "cached", b"never flushed", point="t")
        fs.power_loss()
        assert not (tmp_path / "cached").exists()

    def test_fsynced_write_survives(self, tmp_path):
        fs = FaultyFS()
        fs.write_bytes(tmp_path / "flushed", b"durable", point="t")
        fs.fsync_path(tmp_path / "flushed", point="t")
        fs.power_loss()
        assert (tmp_path / "flushed").read_bytes() == b"durable"

    def test_rename_without_dirsync_rolls_back(self, tmp_path):
        target = tmp_path / "config"
        target.write_bytes(b"old generation")
        fs = FaultyFS()
        fs.write_bytes(tmp_path / "config.tmp", b"new generation", point="t")
        fs.fsync_path(tmp_path / "config.tmp", point="t")
        fs.replace(tmp_path / "config.tmp", target, point="t")
        assert target.read_bytes() == b"new generation"  # visible pre-crash
        fs.power_loss()
        assert target.read_bytes() == b"old generation"

    def test_rename_onto_nothing_rolls_back_to_absent(self, tmp_path):
        fs = FaultyFS()
        fs.write_bytes(tmp_path / "fresh.tmp", b"x", point="t")
        fs.fsync_path(tmp_path / "fresh.tmp", point="t")
        fs.replace(tmp_path / "fresh.tmp", tmp_path / "fresh", point="t")
        fs.power_loss()
        assert not (tmp_path / "fresh").exists()

    def test_dirsync_makes_the_rename_durable(self, tmp_path):
        fs = FaultyFS()
        fs.write_bytes(tmp_path / "kept.tmp", b"x", point="t")
        fs.fsync_path(tmp_path / "kept.tmp", point="t")
        fs.replace(tmp_path / "kept.tmp", tmp_path / "kept", point="t")
        fs.fsync_dir(tmp_path, point="t")
        fs.power_loss()
        assert (tmp_path / "kept").read_bytes() == b"x"

    def test_power_loss_is_idempotent(self, tmp_path):
        fs = FaultyFS()
        fs.write_bytes(tmp_path / "gone", b"x", point="t")
        fs.power_loss()
        fs.power_loss()
        assert not (tmp_path / "gone").exists()


class TestCrashPointReplay:
    def test_crashes_at_exactly_the_enumerated_step(self, tmp_path):
        point = CrashPoint(step=1, op="fsync", point="t", kind="crash_before_fsync")
        fs = FaultyFS.at(point)
        fs.write_bytes(tmp_path / "a.tmp", b"x", point="t")  # step 0: fine
        with pytest.raises(SimulatedCrashError) as excinfo:
            fs.fsync_path(tmp_path / "a.tmp", point="t")  # step 1: boom
        assert excinfo.value.kind == "crash_before_fsync"
        assert excinfo.value.step == 1
        assert fs.crashed
        # The crash applied the power-loss model: the unsynced temp died.
        assert not (tmp_path / "a.tmp").exists()

    def test_torn_write_leaves_a_durable_prefix(self, tmp_path):
        point = CrashPoint(step=0, op="write", point="t", kind="torn_write")
        fs = FaultyFS.at(point)
        with pytest.raises(SimulatedCrashError):
            fs.write_bytes(tmp_path / "torn", b"0123456789", point="t")
        assert (tmp_path / "torn").read_bytes() == b"01234"

    def test_replay_divergence_is_an_error_not_a_crash(self, tmp_path):
        point = CrashPoint(step=0, op="rename", point="t", kind="crash_before_rename")
        fs = FaultyFS.at(point)
        with pytest.raises(ReproError, match="diverged"):
            fs.write_bytes(tmp_path / "a", b"x", point="t")


class TestErrorPathFaults:
    def test_enospc_raises_oserror(self, tmp_path):
        fs = FaultyFS(profile=FsFaultProfile(name="t", enospc=1.0))
        with pytest.raises(OSError) as excinfo:
            fs.write_bytes(tmp_path / "full", b"x", point="t")
        assert excinfo.value.errno == errno.ENOSPC
        assert fs.stats() == {"enospc": 1}

    def test_short_write_leaves_half_and_raises(self, tmp_path):
        fs = FaultyFS(profile=FsFaultProfile(name="t", short_write=1.0))
        with pytest.raises(OSError) as excinfo:
            fs.write_bytes(tmp_path / "short", b"0123456789", point="t")
        assert excinfo.value.errno == errno.EIO
        assert (tmp_path / "short").read_bytes() == b"01234"

    def test_lost_fsync_silently_keeps_data_volatile(self, tmp_path):
        fs = FaultyFS(profile=FsFaultProfile(name="t", lost_fsync=1.0))
        fs.write_bytes(tmp_path / "volatile", b"x", point="t")
        fs.fsync_path(tmp_path / "volatile", point="t")  # no error, no flush
        fs.power_loss()
        assert not (tmp_path / "volatile").exists()
        assert fs.stats()["lost_fsync"] == 1

    def test_seeded_profile_replays_its_schedule(self, tmp_path):
        def soak(seed, root):
            fs = FaultyFS(seed=seed, profile="gremlin")
            outcomes = []
            for index in range(200):
                try:
                    fs.write_bytes(root / f"f{index}", b"payload", point="soak")
                    outcomes.append("ok")
                except OSError as exc:
                    outcomes.append(errno.errorcode[exc.errno])
                except SimulatedCrashError as exc:
                    outcomes.append(exc.kind)
            return outcomes, fs.stats()

        for name in ("a", "b", "c"):
            (tmp_path / name).mkdir()
        left = soak(42, tmp_path / "a")
        right = soak(42, tmp_path / "b")
        assert left == right
        assert soak(43, tmp_path / "c")[0] != left[0]  # the seed matters
        assert any(o != "ok" for o in left[0])  # gremlin actually fires


class TestDurabilityRegressions:
    """The two small-file writers must survive a power cut post-commit."""

    def test_manifest_save_survives_power_loss(self, tmp_path):
        from repro.store import StoreReader, StoreWriter

        fs = FaultyFS()
        writer = StoreWriter(
            tmp_path / "store", rows_per_shard=16, fs=fs, durable=True
        )
        writer.append_columns(synthetic_columns(24, seed=3))
        writer.finalize()
        fs.power_loss()
        # Without the parent-dirsync after the manifest rename, the
        # commit record would roll back here and the store would vanish.
        reader = StoreReader(tmp_path / "store", verify="full")
        assert reader.manifest.rows == 24

    def test_write_csv_survives_power_loss(self, tmp_path):
        from repro.frame import Frame
        from repro.frame.io import read_csv, write_csv

        frame = Frame({"x": np.arange(5), "y": np.arange(5) * 2.5})
        fs = FaultyFS()
        write_csv(frame, tmp_path / "out.csv", fs=fs)
        fs.power_loss()
        back = read_csv(tmp_path / "out.csv")
        assert np.array_equal(back["x"].astype(int), frame["x"])

    def test_checkpoint_enospc_is_one_line_store_error(self, tmp_path):
        from repro.core.campaign import CollectionCheckpoint

        checkpoint = CollectionCheckpoint(high_water={100001: 1_500_000_000})
        fs = FaultyFS(profile=FsFaultProfile(name="t", enospc=1.0))
        with pytest.raises(StoreError, match="checkpoint save failed") as excinfo:
            checkpoint.save(tmp_path / "checkpoint.json", fs=fs)
        assert "No space left" in str(excinfo.value)
        assert str(tmp_path / "checkpoint.json") in str(excinfo.value)
        # The rename never ran, so no partial file landed at the target.
        assert not (tmp_path / "checkpoint.json").exists()

    def test_writer_enospc_is_one_line_store_error(self, tmp_path):
        from repro.store import StoreWriter

        fs = FaultyFS(profile=FsFaultProfile(name="t", enospc=1.0))
        writer = StoreWriter(tmp_path / "store", rows_per_shard=8, fs=fs)
        with pytest.raises(StoreError, match="chunk write failed") as excinfo:
            writer.append_columns(synthetic_columns(16, seed=5))
        assert "repro store gc" in str(excinfo.value)
