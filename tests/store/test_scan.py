"""Zone-map and scan-engine correctness.

The load-bearing property: **pruning is invisible**.  For any store and
any predicate set, the scan with zone-map skipping yields exactly the
rows a full (skip-free) scan yields — row for row, byte for byte.
Hypothesis drives randomized predicates over randomized stores
(including NaN-heavy columns, where the ``!=`` edge cases live).

Plus the v1 back-compat contract: a pre-zone-map manifest still opens,
scans (pruning nothing), passes verification, and is upgraded in place
by ``backfill_zone_maps`` without changing a data byte.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError, StoreIntegrityError
from repro.frame.stats import ecdf, summarize
from repro.obs import Obs
from repro.store import (
    Manifest,
    Predicate,
    StoreReader,
    StoreWriter,
    ZoneMap,
    backfill_zone_maps,
    scan_store,
)
from repro.store.format import MANIFEST_NAME
from repro.store.scan import AggregateCache

from tests.store.conftest import synthetic_columns

OPS = ("==", "!=", "<", "<=", ">", ">=")


def counter(obs, name):
    """Current value of one obs counter (0 if never incremented)."""
    return obs.registry.counter(name).value


def build_store(path, rows, seed=0, rows_per_shard=64):
    writer = StoreWriter(
        path, provenance={"seed": seed}, rows_per_shard=rows_per_shard
    )
    columns = synthetic_columns(rows, seed=seed)
    writer.append_columns(columns)
    writer.finalize()
    return columns


def full_scan_rows(columns, predicates, select):
    """Reference semantics: numpy mask over the whole columns."""
    mask = np.ones(len(columns["timestamp"]), dtype=bool)
    for predicate in predicates:
        mask &= predicate.mask(columns[predicate.column])
    return {name: columns[name][mask] for name in select}


def scanned_rows(scan, select):
    parts = {name: [] for name in select}
    for chunk in scan.chunks():
        for name in select:
            parts[name].append(np.asarray(chunk[name]))
    return {
        name: (
            np.concatenate(arrays)
            if arrays
            else np.empty(0, dtype=scan.reader.column(name).dtype)
        )
        for name, arrays in parts.items()
    }


def rows_equal(left, right):
    for name in left:
        a, b = np.asarray(left[name]), np.asarray(right[name])
        if len(a) != len(b) or a.tobytes() != b.tobytes():
            return False
    return True


class TestZoneMapFormat:
    def test_writer_records_zones_for_every_chunk(self, tmp_path):
        build_store(tmp_path / "s", rows=200)
        manifest = Manifest.load(tmp_path / "s")
        zoned, total = manifest.zone_map_coverage()
        assert zoned == total > 0

    def test_zone_values_match_chunk_contents(self, tmp_path):
        columns = build_store(tmp_path / "s", rows=200, rows_per_shard=64)
        reader = StoreReader(tmp_path / "s")
        cursor = 0
        for shard in reader.manifest.shards:
            stop = cursor + shard.rows
            zone = shard.chunks["rtt_min"].zone
            window = columns["rtt_min"][cursor:stop]
            finite = window[~np.isnan(window)]
            assert zone.nulls == int(np.isnan(window).sum())
            assert zone.minimum == float(finite.min())
            assert zone.maximum == float(finite.max())
            int_zone = shard.chunks["probe_id"].zone
            assert int_zone.nulls == 0
            assert isinstance(int_zone.minimum, int)
            cursor = stop

    def test_all_nan_chunk_has_null_bounds(self):
        zone = ZoneMap.from_array(np.asarray([np.nan, np.nan]))
        assert zone.minimum is None and zone.maximum is None
        assert zone.nulls == 2

    def test_empty_chunk_zone(self):
        zone = ZoneMap.from_array(np.asarray([], dtype="<f8"))
        assert zone == ZoneMap(minimum=None, maximum=None, nulls=0)

    def test_zone_round_trips_through_json(self):
        zone = ZoneMap.from_array(np.asarray([1.5, np.nan, 3.5]))
        assert ZoneMap.from_dict(
            json.loads(json.dumps(zone.as_dict()))
        ) == zone


predicate_strategy = st.builds(
    lambda column, op, q: ("rtt_min", op, q * 300.0)
    if column == "rtt_min"
    else ("timestamp", op, 1_500_000_000 + int(q * 10_800 * 256)),
    st.sampled_from(["rtt_min", "timestamp"]),
    st.sampled_from(OPS),
    st.floats(min_value=0.0, max_value=1.0),
)


class TestPruningIsInvisible:
    @given(
        rows=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**16),
        raw_predicates=st.lists(predicate_strategy, min_size=1, max_size=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_pruned_scan_equals_full_scan_row_for_row(
        self, tmp_path_factory, rows, seed, raw_predicates
    ):
        path = tmp_path_factory.mktemp("scan") / "s"
        columns = build_store(path, rows=rows, seed=seed, rows_per_shard=32)
        predicates = [Predicate(c, o, v) for c, o, v in raw_predicates]
        select = ("timestamp", "rtt_min", "probe_id")
        scan = scan_store(path).select(*select)
        for predicate in predicates:
            scan = scan.filter(predicate.column, predicate.op, predicate.value)
        expected = full_scan_rows(columns, predicates, select)
        assert rows_equal(scanned_rows(scan, select), expected)

    def test_ne_predicate_keeps_nan_rows(self, tmp_path):
        """NaN != v is True: a != predicate must yield NaN rows, and an
        all-NaN chunk must not be pruned under it."""
        writer = StoreWriter(
            tmp_path / "s", provenance={"seed": 0}, rows_per_shard=4
        )
        rtt = np.asarray(
            [np.nan, np.nan, np.nan, np.nan, 10.0, 10.0, 10.0, 10.0]
        )
        n = len(rtt)
        writer.append_columns(
            {
                "probe_id": np.arange(n, dtype="<i4"),
                "target_index": np.zeros(n, dtype="<i4"),
                "timestamp": np.arange(n, dtype="<i8"),
                "rtt_min": rtt,
                "rtt_avg": rtt,
                "sent": np.full(n, 3, dtype="<i2"),
                "rcvd": np.full(n, 3, dtype="<i2"),
            }
        )
        writer.finalize()
        scan = scan_store(tmp_path / "s").select("rtt_min")
        kept = scanned_rows(scan.filter("rtt_min", "!=", 10.0), ("rtt_min",))
        # All four NaN rows survive; every 10.0 row is dropped.
        assert len(kept["rtt_min"]) == 4
        assert np.all(np.isnan(kept["rtt_min"]))
        # The uniform ==10 shard prunes wholesale under !=; the NaN
        # shard must not.
        obs = Obs()
        scan2 = scan_store(tmp_path / "s", obs=obs).select("rtt_min")
        scanned_rows(scan2.filter("rtt_min", "!=", 10.0), ("rtt_min",))
        assert counter(obs, "scan_rows_pruned_total") == 4

    def test_eq_nan_matches_nothing(self, tmp_path):
        build_store(tmp_path / "s", rows=64)
        scan = scan_store(tmp_path / "s").filter("rtt_min", "==", np.nan)
        assert scan.count() == 0

    def test_selective_predicate_skips_chunks(self, tmp_path):
        """Timestamps are monotone, so a narrow range prunes most
        shards — observable in the counters."""
        build_store(tmp_path / "s", rows=512, rows_per_shard=32)
        obs = Obs()
        scan = (
            scan_store(tmp_path / "s", obs=obs)
            .select("rtt_min")
            .filter("timestamp", ">=", 1_500_000_000)
            .filter("timestamp", "<", 1_500_000_000 + 32 * 10_800)
        )
        result = scanned_rows(scan, ("rtt_min",))
        assert len(result["rtt_min"]) == 32
        assert counter(obs, "scan_chunks_skipped_total") > 0
        assert counter(obs, "scan_rows_scanned_total") < 512

    def test_unknown_column_rejected(self, tmp_path):
        build_store(tmp_path / "s", rows=16)
        scan = scan_store(tmp_path / "s")
        with pytest.raises(StoreError):
            scan.filter("no_such", "<", 1)
        with pytest.raises(StoreError):
            scan.select("no_such")
        with pytest.raises(StoreError):
            Predicate("rtt_min", "~", 1.0)


class TestStreamingAggregatesOverStores:
    @pytest.fixture
    def store(self, tmp_path):
        columns = build_store(tmp_path / "s", rows=500, rows_per_shard=64)
        return tmp_path / "s", columns

    def test_summarize_matches_in_memory(self, store):
        path, columns = store
        result = scan_store(path).summarize("probe_id")
        expected = summarize(columns["probe_id"])
        assert result.count == expected.count
        assert result.minimum == expected.minimum
        assert result.maximum == expected.maximum
        assert np.isclose(result.mean, expected.mean)

    def test_ecdf_grid_matches_in_memory_at_every_edge(self, store):
        path, columns = store
        grid = scan_store(path).streaming_ecdf("rtt_min", bins=64)
        exact = ecdf(columns["rtt_min"])
        for edge in grid.edges:
            assert grid.fraction_below(edge) == exact.fraction_below(edge)

    def test_exact_quantile_matches_ecdf_quantile(self, store):
        path, columns = store
        scan = scan_store(path)
        exact = ecdf(columns["probe_id"].astype(np.float64))
        for q in (0.0, 0.1, 0.5, 0.9, 0.95, 1.0):
            assert scan.quantile("probe_id", q, exact=True) == exact.quantile(q)

    def test_exact_quantile_under_predicate(self, store):
        path, columns = store
        scan = scan_store(path).filter("rtt_min", "<=", 150.0)
        kept = columns["rtt_min"][columns["rtt_min"] <= 150.0]
        assert scan.quantile("rtt_min", 0.5, exact=True) == ecdf(
            kept
        ).quantile(0.5)

    def test_group_by_matches_aggregate(self, store):
        path, columns = store
        from repro.frame import Frame, aggregate

        spec = {"n": ("rtt_min", "count"), "hi": ("rtt_min", "max")}
        result = scan_store(path).group_by(["rcvd"], spec)
        frame = Frame(
            {"rcvd": columns["rcvd"], "rtt_min": columns["rtt_min"]}
        )
        expected = aggregate(frame, ["rcvd"], spec)
        assert list(result.col("rcvd").values) == list(
            expected.col("rcvd").values
        )
        assert list(result.col("n").values) == list(expected.col("n").values)

    def test_aggregate_cache_hits_on_second_pass(self, store, tmp_path):
        path, _ = store
        cache = AggregateCache(tmp_path / "agg")
        obs = Obs()
        scan = scan_store(path, obs=obs, cache=cache)
        first = scan.summarize("probe_id")
        misses = counter(obs, "scan_aggcache_misses_total")
        assert misses > 0
        second = scan.summarize("probe_id")
        assert counter(obs, "scan_aggcache_hits_total") == misses
        assert counter(obs, "scan_aggcache_misses_total") == misses
        assert second.as_dict() == first.as_dict()

    def test_append_only_recomputes_new_shards(self, tmp_path):
        """The incremental-recompute contract: extend a store's rows and
        the shared leading shards hit cache; only the tail misses."""
        cache = AggregateCache(tmp_path / "agg")
        columns = synthetic_columns(256, seed=3)
        small = {name: col[:128] for name, col in columns.items()}
        for label, cols in (("small", small), ("big", columns)):
            writer = StoreWriter(
                tmp_path / label, provenance={"seed": 3}, rows_per_shard=64
            )
            writer.append_columns(cols)
            writer.finalize()
        obs = Obs()
        scan_store(tmp_path / "small", obs=obs, cache=cache).summarize(
            "rtt_min"
        )
        assert counter(obs, "scan_aggcache_misses_total") == 2
        obs2 = Obs()
        scan_store(tmp_path / "big", obs=obs2, cache=cache).summarize(
            "rtt_min"
        )
        # 4 shards total: the 2 shared with "small" hit, 2 new miss.
        assert counter(obs2, "scan_aggcache_hits_total") == 2
        assert counter(obs2, "scan_aggcache_misses_total") == 2


class TestV1BackCompat:
    @pytest.fixture
    def v1_store(self, tmp_path):
        """A committed store whose manifest predates zone maps."""
        columns = build_store(tmp_path / "s", rows=200, rows_per_shard=64)
        manifest_path = tmp_path / "s" / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        payload["version"] = 1
        for shard in payload["shards"]:
            for chunk in shard["chunks"].values():
                chunk.pop("zone", None)
        manifest_path.write_text(json.dumps(payload, indent=1, sort_keys=True))
        return tmp_path / "s", columns

    def test_v1_manifest_opens_and_verifies(self, v1_store):
        path, _ = v1_store
        reader = StoreReader(path, verify="full")
        assert reader.rows == 200
        zoned, total = reader.manifest.zone_map_coverage()
        assert zoned == 0 and total > 0

    def test_v1_scan_prunes_nothing_but_matches(self, v1_store):
        path, columns = v1_store
        obs = Obs()
        predicates = [Predicate("timestamp", "<", 1_500_000_000 + 10 * 10_800)]
        scan = (
            scan_store(path, obs=obs)
            .select("rtt_min")
            .filter("timestamp", "<", 1_500_000_000 + 10 * 10_800)
        )
        result = scanned_rows(scan, ("rtt_min",))
        expected = full_scan_rows(columns, predicates, ("rtt_min",))
        assert rows_equal(result, expected)
        assert counter(obs, "scan_chunks_skipped_total") == 0

    def test_backfill_upgrades_v1_in_place(self, v1_store):
        path, _ = v1_store
        before = {
            name: (path / name).read_bytes()
            for name in Manifest.load(path).chunk_files()
        }
        manifest, updated = backfill_zone_maps(path)
        assert updated > 0
        zoned, total = manifest.zone_map_coverage()
        assert zoned == total
        reloaded = json.loads((path / MANIFEST_NAME).read_text())
        assert reloaded["version"] == 2
        # Data bytes untouched; the store still verifies fully.
        after = {
            name: (path / name).read_bytes()
            for name in Manifest.load(path).chunk_files()
        }
        assert before == after
        StoreReader(path, verify="full")
        # Second run is a no-op.
        _, again = backfill_zone_maps(path)
        assert again == 0

    def test_backfilled_store_prunes_like_a_native_one(self, v1_store):
        path, columns = v1_store
        backfill_zone_maps(path)
        obs = Obs()
        scan = (
            scan_store(path, obs=obs)
            .select("rtt_min")
            .filter("timestamp", "<", 1_500_000_000 + 10 * 10_800)
        )
        predicates = [Predicate("timestamp", "<", 1_500_000_000 + 10 * 10_800)]
        assert rows_equal(
            scanned_rows(scan, ("rtt_min",)),
            full_scan_rows(columns, predicates, ("rtt_min",)),
        )
        assert counter(obs, "scan_chunks_skipped_total") > 0

    def test_backfill_refuses_corrupt_chunks(self, v1_store):
        path, _ = v1_store
        victim = Manifest.load(path).chunk_files()[0]
        data = bytearray((path / victim).read_bytes())
        data[0] ^= 0xFF
        (path / victim).write_bytes(bytes(data))
        with pytest.raises(StoreIntegrityError):
            backfill_zone_maps(path)

    def test_unsupported_future_version_still_rejected(self, v1_store):
        path, _ = v1_store
        manifest_path = path / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        payload["version"] = 3
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(StoreError):
            Manifest.load(path)


class TestScrubChecksZoneMaps:
    def test_lying_zone_map_is_integrity_damage_and_repairable(self, tmp_path):
        from repro.store import scrub
        from repro.store.scan import backfill_zone_maps as backfill

        build_store(tmp_path / "s", rows=128, rows_per_shard=64)
        manifest_path = tmp_path / "s" / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        chunk = payload["shards"][0]["chunks"]["rtt_min"]
        chunk["zone"]["min"] = 250.0  # lies: prunes real rows
        manifest_path.write_text(json.dumps(payload, indent=1, sort_keys=True))
        report = scrub(tmp_path / "s")
        assert not report.intact
        kinds = {d.kind for d in report.damage}
        assert kinds == {"zone_map_mismatch"}
        # The zone-damage repair path: recompute from verified bytes.
        _, rebuilt = backfill(tmp_path / "s", refresh=True)
        assert rebuilt > 0
        assert scrub(tmp_path / "s").ok

    def test_repair_entry_point_fixes_zone_damage(self, tmp_path):
        from repro.store import repair, scrub

        build_store(tmp_path / "s", rows=64, rows_per_shard=64)
        manifest_path = tmp_path / "s" / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        payload["shards"][0]["chunks"]["rtt_min"]["zone"]["nulls"] = 9999
        manifest_path.write_text(json.dumps(payload, indent=1, sort_keys=True))
        assert not scrub(tmp_path / "s").intact
        result = repair(tmp_path / "s")
        assert result.zone_maps_rebuilt > 0
        assert result.verified
        assert scrub(tmp_path / "s").ok
