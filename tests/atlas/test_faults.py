"""Tests for repro.atlas.faults — the deterministic fault injector."""

import pytest

from repro.atlas.api.retry import SimulatedClock
from repro.atlas.faults import PROFILES, FaultInjector, FaultProfile, get_profile
from repro.errors import (
    AtlasError,
    MaintenanceError,
    TransientTransportError,
    TruncatedPageError,
)


def fault_schedule(seed, profile, calls=200, endpoint="results"):
    """Record which call indices fault, and with what, for a fresh injector."""
    injector = FaultInjector(seed, profile, clock=SimulatedClock())
    schedule = []
    for index in range(calls):
        try:
            injector.before_call(endpoint)
        except TransientTransportError as fault:
            schedule.append((index, type(fault).__name__))
    return schedule


class TestProfiles:
    def test_registry_levels(self):
        assert set(PROFILES) == {"none", "flaky", "outage", "hostile"}

    def test_none_is_noop(self):
        assert PROFILES["none"].is_noop
        assert not PROFILES["flaky"].is_noop

    def test_get_profile_by_name_and_passthrough(self):
        assert get_profile("flaky") is PROFILES["flaky"]
        custom = FaultProfile(name="custom", timeout=0.5)
        assert get_profile(custom) is custom

    def test_unknown_profile_rejected(self):
        with pytest.raises(AtlasError):
            get_profile("apocalypse")

    def test_flaky_never_corrupts_data(self):
        # The chaos identity guarantee rests on this: flaky faults are all
        # recoverable, so the collector can converge to the exact
        # fault-free dataset.
        assert PROFILES["flaky"].malformed == 0.0
        assert PROFILES["flaky"].maintenance == 0.0


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = fault_schedule(11, "flaky")
        b = fault_schedule(11, "flaky")
        assert a == b
        assert a  # the profile actually fires at these rates

    def test_different_seed_different_schedule(self):
        assert fault_schedule(11, "flaky") != fault_schedule(12, "flaky")

    def test_mangle_deterministic(self):
        page = [{"prb_id": i, "timestamp": i, "type": "ping"} for i in range(50)]
        outs = []
        for _ in range(2):
            injector = FaultInjector(3, "hostile", clock=SimulatedClock())
            mangled = []
            for _call in range(40):
                try:
                    mangled.append(injector.mangle_page(list(page)))
                except TruncatedPageError as exc:
                    mangled.append(("truncated", exc.got))
            outs.append(mangled)
        assert outs[0] == outs[1]


class TestDataFaults:
    def test_duplicates_are_copies_of_real_entries(self):
        page = [{"prb_id": i, "timestamp": i, "type": "ping"} for i in range(30)]
        injector = FaultInjector(
            0, FaultProfile(name="dup", duplicate_page=1.0), clock=SimulatedClock()
        )
        mangled = injector.mangle_page(list(page))
        assert len(mangled) > len(page)
        for entry in mangled:
            assert entry in page  # every entry equals a canonical one
        assert mangled[: len(page)] == page  # originals keep their order

    def test_malformed_blob_unparseable(self):
        from repro.atlas.results.base import Result
        from repro.errors import ResultParseError

        page = [
            {
                "type": "ping", "msm_id": 1, "prb_id": i, "timestamp": 100 + i,
                "sent": 3, "rcvd": 3,
                "result": [{"rtt": 10.0}, {"rtt": 11.0}, {"rtt": 12.0}],
            }
            for i in range(10)
        ]
        injector = FaultInjector(
            0, FaultProfile(name="bad", malformed=1.0), clock=SimulatedClock()
        )
        for _ in range(12):
            bad = 0
            for entry in injector.mangle_page(list(page)):
                try:
                    Result.get(entry)
                except ResultParseError:
                    bad += 1
            assert bad == 1  # exactly one corruption per page, unparseable

    def test_mangle_never_mutates_canonical_page(self):
        page = [{"prb_id": i, "timestamp": i, "type": "ping"} for i in range(10)]
        pristine = [dict(entry) for entry in page]
        injector = FaultInjector(
            0,
            FaultProfile(name="bad", malformed=1.0, duplicate_page=1.0),
            clock=SimulatedClock(),
        )
        for _ in range(10):
            injector.mangle_page(page)
        assert page == pristine


class TestMaintenance:
    def test_window_opens_and_clears_with_clock(self):
        clock = SimulatedClock()
        profile = FaultProfile(
            name="outage-only", maintenance=1.0, maintenance_duration_s=600.0
        )
        injector = FaultInjector(0, profile, clock=clock)
        with pytest.raises(MaintenanceError) as excinfo:
            injector.before_call("results")
        assert excinfo.value.retry_after == 600.0
        # Still inside the window: every call 503s with the remaining time.
        clock.sleep(300)
        with pytest.raises(MaintenanceError) as excinfo:
            injector.before_call("results")
        assert excinfo.value.retry_after == pytest.approx(300.0)
        # Window passed: the next draw opens a fresh one (p=1.0 here), but
        # the old window no longer blocks.
        clock.sleep(301)
        with pytest.raises(MaintenanceError) as excinfo:
            injector.before_call("results")
        assert excinfo.value.retry_after == 600.0

    def test_counts_accumulate(self):
        schedule = fault_schedule(5, "hostile", calls=300)
        injector = FaultInjector(5, "hostile", clock=SimulatedClock())
        for _ in range(300):
            try:
                injector.before_call("results")
            except TransientTransportError:
                pass
        assert sum(injector.counts.values()) == len(schedule)
        assert injector.stats() == {k: injector.counts[k] for k in sorted(injector.counts)}
