"""Tests for the columnar result path — platform, transport, client.

The platform's ``results_columns`` must be bit-identical to fetching the
raw dict stream and parsing it sample by sample (``PingColumns.
from_results`` over parsed :class:`PingResult` objects is the parity
reference), the transport must refuse to vouch for columns whenever a
fault injector could mangle the wire, and the client's ``columns()``
verb must report *why* a fetch has no columnar path instead of raising.
"""

import numpy as np
import pytest

from repro.atlas.api.client import AtlasResultsRequest
from repro.atlas.api.sources import AtlasSource
from repro.atlas.api.transport import Transport
from repro.atlas.platform import DEFAULT_KEY, AtlasPlatform
from repro.atlas.results.ping import PingColumns, PingResult
from repro.errors import AtlasAPIError, ResultParseError

T0 = 1_567_296_000
DAY = 86_400


@pytest.fixture(scope="module")
def backend() -> AtlasPlatform:
    return AtlasPlatform(seed=5)


def create(backend, msm_type="ping", af=4, oneoff=False, **definition) -> int:
    target = backend.hostname_for(backend.fleet[9])
    definition = {
        "target": target,
        "description": "test",
        "type": msm_type,
        "af": af,
        "is_oneoff": oneoff,
        **({"packets": 3, "size": 48} if msm_type == "ping" else {}),
        **({} if oneoff else {"interval": 10_800}),
        **definition,
    }
    return backend.create_measurement(
        definition,
        [AtlasSource(type="country", value="DE", requested=10)],
        T0,
        T0 + 2 * DAY,
        key=DEFAULT_KEY,
    )


def reference_columns(backend, msm_id, **window) -> PingColumns:
    """The scalar path, columnar-ized: fetch dicts, parse, stack."""
    raws = backend.results(msm_id, **window)
    return PingColumns.from_results([PingResult(raw) for raw in raws])


class TestPlatformColumns:
    def test_matches_scalar_parse_bitwise(self, backend):
        msm_id = create(backend)
        columns = backend.results_columns(msm_id)
        expected = reference_columns(backend, msm_id)
        assert len(columns) == len(expected) > 0
        assert np.array_equal(columns.probe_ids, expected.probe_ids)
        assert np.array_equal(columns.timestamps, expected.timestamps)
        assert np.array_equal(columns.rtt_min, expected.rtt_min, equal_nan=True)
        assert np.array_equal(columns.rtt_avg, expected.rtt_avg, equal_nan=True)
        assert np.array_equal(columns.sent, expected.sent)
        assert np.array_equal(columns.rcvd, expected.rcvd)

    def test_windowed_fetch_matches(self, backend):
        """A mid-flow window must skip the pre-window draws exactly as
        the scalar generator loop does."""
        msm_id = create(backend)
        window = {"start": T0 + DAY // 2, "stop": T0 + DAY + DAY // 2}
        columns = backend.results_columns(msm_id, **window)
        expected = reference_columns(backend, msm_id, **window)
        assert len(columns) == len(expected) > 0
        assert np.array_equal(columns.timestamps, expected.timestamps)
        assert np.array_equal(columns.rtt_min, expected.rtt_min, equal_nan=True)

    def test_probe_filter_matches(self, backend):
        msm_id = create(backend)
        wanted = backend.measurement(msm_id).probes[0].probe_id
        columns = backend.results_columns(msm_id, probe_ids=[wanted])
        assert len(columns) > 0
        assert set(columns.probe_ids) == {wanted}
        expected = reference_columns(backend, msm_id, probe_ids=[wanted])
        assert np.array_equal(columns.rtt_min, expected.rtt_min, equal_nan=True)

    def test_ipv6_flow_matches(self, backend):
        msm_id = create(backend, af=6)
        columns = backend.results_columns(msm_id)
        expected = reference_columns(backend, msm_id)
        assert np.array_equal(columns.rtt_min, expected.rtt_min, equal_nan=True)

    def test_oneoff_matches(self, backend):
        msm_id = create(backend, oneoff=True)
        columns = backend.results_columns(msm_id)
        expected = reference_columns(backend, msm_id)
        assert len(columns) == len(expected) > 0
        assert np.array_equal(columns.rtt_min, expected.rtt_min, equal_nan=True)

    def test_traceroute_has_no_batch_path(self, backend):
        msm_id = create(backend, msm_type="traceroute", oneoff=True)
        assert not backend.supports_batch(msm_id)
        assert backend.results_columns(msm_id) is None
        with pytest.raises(AtlasAPIError):
            list(backend.iter_results_batch(msm_id))

    def test_deterministic(self, backend):
        msm_id = create(backend)
        first = backend.results_columns(msm_id)
        second = backend.results_columns(msm_id)
        assert np.array_equal(first.rtt_min, second.rtt_min, equal_nan=True)

    def test_columnar_fetch_leaves_scalar_stream_untouched(self, backend):
        """Interleaving columnar and scalar fetches must not perturb
        either: flow streams are derived per call, never shared."""
        msm_id = create(backend)
        before = backend.results(msm_id)
        backend.results_columns(msm_id)
        assert backend.results(msm_id) == before


class TestPingColumnsContainer:
    def test_ragged_rejected(self):
        with pytest.raises(ResultParseError):
            PingColumns(
                probe_ids=np.zeros(2, dtype=np.int64),
                timestamps=np.zeros(1, dtype=np.int64),
                rtt_min=np.zeros(2),
                rtt_avg=np.zeros(2),
                sent=np.zeros(2, dtype=np.int64),
                rcvd=np.zeros(2, dtype=np.int64),
            )

    def test_concat_of_nothing_is_empty(self):
        assert len(PingColumns.concat([])) == 0

    def test_concat_preserves_order(self, backend):
        msm_id = create(backend)
        chunks = list(backend.iter_results_batch(msm_id))
        assert len(chunks) > 1
        whole = PingColumns.concat(chunks)
        assert len(whole) == sum(len(chunk) for chunk in chunks)
        assert np.array_equal(
            whole.timestamps,
            np.concatenate([chunk.timestamps for chunk in chunks]),
        )


class TestTransportGate:
    def test_clean_transport_serves_columns(self, backend):
        msm_id = create(backend)
        transport = Transport(backend)
        columns = transport.results_columns(msm_id)
        assert columns is not None and len(columns) > 0

    def test_chaos_transport_refuses(self, backend):
        """With an injector attached pages can be mangled — the raw dict
        stream is the only faithful representation, so no columns."""
        msm_id = create(backend)
        transport = Transport(backend, faults="flaky")
        assert transport.results_columns(msm_id) is None


class TestClientColumns:
    def test_columns_verb(self, backend):
        msm_id = create(backend)
        ok, columns = AtlasResultsRequest(msm_id=msm_id, platform=backend).columns()
        assert ok
        expected = reference_columns(backend, msm_id)
        assert np.array_equal(columns.rtt_min, expected.rtt_min, equal_nan=True)

    def test_columns_reports_fallback_reason(self, backend):
        msm_id = create(backend)
        request = AtlasResultsRequest(
            msm_id=msm_id, transport=Transport(backend, faults="flaky")
        )
        ok, payload = request.columns()
        assert not ok
        assert "error" in payload

    def test_columns_unknown_measurement(self, backend):
        ok, payload = AtlasResultsRequest(msm_id=999_999, platform=backend).columns()
        assert not ok
        assert "error" in payload
