"""Tests for repro.atlas.results.traceroute."""

import pytest

from repro.atlas.results.base import Result
from repro.atlas.results.traceroute import TracerouteResult
from repro.errors import ResultParseError


def make_raw(**overrides) -> dict:
    raw = {
        "af": 4,
        "dst_addr": "10.200.1.10",
        "dst_name": "eu-central-1.aws.repro.cloud",
        "from": "172.16.0.1",
        "fw": 5020,
        "msm_id": 100002,
        "paris_id": 16,
        "prb_id": 6001,
        "proto": "ICMP",
        "result": [
            {"hop": 1, "result": [{"from": "192.168.0.1", "rtt": 0.5, "ttl": 63}] * 3},
            {"hop": 2, "result": [{"x": "*"}] * 3},
            {
                "hop": 3,
                "result": [{"from": "10.200.1.10", "rtt": 6.2, "ttl": 61}] * 3,
            },
        ],
        "timestamp": 1_567_296_000,
        "type": "traceroute",
    }
    raw.update(overrides)
    return raw


class TestParsing:
    def test_dispatch(self):
        assert isinstance(Result.get(make_raw()), TracerouteResult)

    def test_type_mismatch(self):
        with pytest.raises(ResultParseError):
            TracerouteResult(make_raw(type="ping"))

    def test_hops_sorted(self):
        raw = make_raw()
        raw["result"] = list(reversed(raw["result"]))
        parsed = TracerouteResult(raw)
        assert [hop.index for hop in parsed.hops] == [1, 2, 3]

    def test_malformed_hop(self):
        with pytest.raises(ResultParseError):
            TracerouteResult(make_raw(result=[{"rtt": 1.0}]))


class TestSemantics:
    def test_total_hops(self):
        assert TracerouteResult(make_raw()).total_hops == 3

    def test_silent_hop(self):
        parsed = TracerouteResult(make_raw())
        assert not parsed.hops[1].responded
        assert parsed.hops[1].best_rtt is None
        assert parsed.hops[1].origin is None

    def test_destination_responded(self):
        parsed = TracerouteResult(make_raw())
        assert parsed.destination_ip_responded

    def test_destination_not_responded(self):
        raw = make_raw()
        raw["result"][2]["result"] = [{"x": "*"}] * 3
        parsed = TracerouteResult(raw)
        assert not parsed.destination_ip_responded

    def test_last_rtt(self):
        parsed = TracerouteResult(make_raw())
        assert parsed.last_rtt == pytest.approx(6.2)

    def test_last_rtt_falls_back_to_earlier_hop(self):
        raw = make_raw()
        raw["result"][2]["result"] = [{"x": "*"}] * 3
        parsed = TracerouteResult(raw)
        assert parsed.last_rtt == pytest.approx(0.5)

    def test_ip_path(self):
        parsed = TracerouteResult(make_raw())
        assert parsed.ip_path == ("192.168.0.1", None, "10.200.1.10")

    def test_best_rtt_is_minimum(self):
        raw = make_raw()
        raw["result"][0]["result"] = [
            {"from": "192.168.0.1", "rtt": 0.9},
            {"from": "192.168.0.1", "rtt": 0.4},
            {"from": "192.168.0.1", "rtt": 0.6},
        ]
        parsed = TracerouteResult(raw)
        assert parsed.hops[0].best_rtt == pytest.approx(0.4)
