"""Every AtlasAPIError status must surface as ``(False, error)``.

The cousteau contract is that request objects never leak exceptions for
API-level rejections: ``create()`` returns ``(False, error_payload)``
with the HTTP status in the detail.  This suite drives each status the
simulated platform can produce (400, 402, 403, 404) through the request
classes that can encounter it.
"""

import pytest

from repro.atlas.api.client import (
    AtlasCreateRequest,
    AtlasResultsRequest,
    AtlasStopRequest,
)
from repro.atlas.api.measurements import Ping
from repro.atlas.api.sources import AtlasSource
from repro.atlas.credits import CreditAccount
from repro.atlas.platform import DEFAULT_KEY, AtlasPlatform

T0 = 1_567_296_000
DAY = 86_400


@pytest.fixture(scope="module")
def backend() -> AtlasPlatform:
    platform = AtlasPlatform(seed=21)
    platform.register_account(CreditAccount(key="POOR", balance=10))
    return platform


def request_create(backend, *, target=None, start=T0, stop=T0 + DAY,
                   key=DEFAULT_KEY):
    return AtlasCreateRequest(
        measurements=[
            Ping(
                target=target or backend.hostname_for(backend.fleet[3]),
                description="error envelope test",
                interval=10_800,
            )
        ],
        sources=[AtlasSource(type="country", value="FR", requested=5)],
        start_time=start,
        stop_time=stop,
        key=key,
        platform=backend,
    ).create()


def assert_envelope(ok, response, status):
    assert ok is False
    payload = response[0] if isinstance(response, list) else response
    assert f"HTTP {status}" in payload["error"]["detail"]


class TestCreateRequest:
    def test_400_bad_target(self, backend):
        ok, response = request_create(backend, target="unknown.example")
        assert_envelope(ok, response, 400)

    def test_400_bad_window(self, backend):
        ok, response = request_create(backend, stop=T0)
        assert_envelope(ok, response, 400)

    def test_402_quota(self, backend):
        ok, response = request_create(backend, key="POOR")
        assert_envelope(ok, response, 402)

    def test_403_bad_key(self, backend):
        ok, response = request_create(backend, key="NO-SUCH-KEY")
        assert_envelope(ok, response, 403)


class TestResultsRequest:
    def test_404_missing_measurement(self, backend):
        ok, response = AtlasResultsRequest(
            msm_id=424_242, platform=backend
        ).create()
        assert_envelope(ok, response, 404)

    def test_404_missing_measurement_under_chaos(self, backend):
        from repro.atlas.api.transport import Transport

        transport = Transport(backend, faults="flaky")
        ok, response = AtlasResultsRequest(
            msm_id=424_242, transport=transport
        ).create()
        assert_envelope(ok, response, 404)


class TestStopRequest:
    def test_404_missing_measurement(self, backend):
        ok, response = AtlasStopRequest(msm_id=424_242, platform=backend).create()
        assert_envelope(ok, response, 404)

    def test_403_wrong_key(self, backend):
        ok, created = request_create(backend)
        assert ok
        msm_id = created["measurements"][0]
        ok, response = AtlasStopRequest(
            msm_id=msm_id, key="SOMEONE-ELSE", platform=backend
        ).create()
        assert_envelope(ok, response, 403)
        assert backend.measurement(msm_id).status != "Stopped"
