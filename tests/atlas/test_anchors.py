"""Tests for repro.atlas.anchors."""

import pytest

from repro.atlas.anchors import (
    anchors_in,
    anchors_of,
    country_pair_median,
    mesh_ping,
    mesh_sample,
)
from repro.atlas.platform import AtlasPlatform
from repro.errors import AtlasError

T0 = 1_567_296_000


@pytest.fixture(scope="module")
def backend() -> AtlasPlatform:
    return AtlasPlatform(seed=9)


class TestAnchorDirectory:
    def test_anchors_exist(self, backend):
        anchors = anchors_of(backend)
        assert len(anchors) > 100
        assert all(anchor.is_anchor for anchor in anchors)

    def test_anchors_in_country(self, backend):
        german = anchors_in(backend, "de")
        assert german
        assert all(anchor.country_code == "DE" for anchor in german)


class TestMeshPing:
    def test_basic(self, backend):
        a, b = anchors_of(backend)[:2]
        obs = mesh_ping(backend, a.probe_id, b.probe_id, T0)
        assert obs.sent == 3
        if obs.succeeded:
            assert obs.rtt_min > 0

    def test_deterministic(self, backend):
        a, b = anchors_of(backend)[:2]
        assert mesh_ping(backend, a.probe_id, b.probe_id, T0) == mesh_ping(
            backend, a.probe_id, b.probe_id, T0
        )

    def test_non_anchor_rejected(self, backend):
        anchor = anchors_of(backend)[0]
        home = next(p for p in backend.probes if not p.is_anchor)
        with pytest.raises(AtlasError):
            mesh_ping(backend, home.probe_id, anchor.probe_id, T0)

    def test_self_ping_rejected(self, backend):
        anchor = anchors_of(backend)[0]
        with pytest.raises(AtlasError):
            mesh_ping(backend, anchor.probe_id, anchor.probe_id, T0)

    def test_mesh_rtt_lacks_last_mile(self, backend):
        """Anchor mesh RTTs within one metro are tiny (wired, core-side)."""
        german = anchors_in(backend, "DE")[:4]
        records = mesh_sample(backend, german, german, [T0, T0 + 3600])
        assert records
        floor = min(record["rtt_min"] for record in records)
        assert floor < 12.0


class TestCountryPairMedian:
    def test_same_country_fast(self, backend):
        median = country_pair_median(backend, "DE", "DE", [T0, T0 + 3600])
        assert median < 20.0

    def test_cross_border_slower(self, backend):
        domestic = country_pair_median(backend, "DE", "DE", [T0])
        transatlantic = country_pair_median(backend, "DE", "US", [T0])
        assert transatlantic > domestic + 30.0

    def test_missing_anchors_rejected(self, backend):
        # Tiny countries have no anchors at this seed.
        with pytest.raises(AtlasError):
            country_pair_median(backend, "VU", "DE", [T0])
