"""Tests for repro.atlas.api.retry — backoff, breaker, budget."""

import pytest

from repro.atlas.api.retry import (
    CircuitBreaker,
    RetryEngine,
    RetryPolicy,
    SimulatedClock,
)
from repro.errors import (
    CircuitOpenError,
    RateLimitedError,
    RetryBudgetExhaustedError,
    RetryExhaustedError,
    ServerWobbleError,
)


def flaky_fn(failures, exc_factory=ServerWobbleError):
    """Callable that raises ``failures`` times, then returns 'ok'."""
    state = {"left": failures}

    def fn():
        if state["left"] > 0:
            state["left"] -= 1
            raise exc_factory()
        return "ok"

    return fn


class TestSimulatedClock:
    def test_monotonic_and_accounted(self):
        clock = SimulatedClock(start=100.0)
        clock.sleep(5)
        clock.sleep(-3)  # negative sleeps are clamped, time never rewinds
        assert clock.now() == 105.0
        assert clock.slept_total == 5.0


class TestBackoff:
    def test_retries_until_success(self):
        engine = RetryEngine(clock=SimulatedClock())
        assert engine.call("results", flaky_fn(3)) == "ok"
        assert engine.retries == 3
        assert engine.clock.slept_total > 0

    def test_exhausted_attempts_raise_with_last_fault(self):
        policy = RetryPolicy(max_attempts=3)
        engine = RetryEngine(policy, SimulatedClock())
        with pytest.raises(RetryExhaustedError) as excinfo:
            engine.call("results", flaky_fn(99))
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last, ServerWobbleError)
        # max_attempts *calls*, so attempts - 1 retries.
        assert engine.retries == 2

    def test_retry_after_is_honored(self):
        engine = RetryEngine(
            RetryPolicy(max_delay_s=1.0), SimulatedClock()
        )
        engine.call(
            "results", flaky_fn(1, lambda: RateLimitedError(retry_after=77.0))
        )
        # Jitter is capped at 1s, so the 77s sleep must come from Retry-After.
        assert engine.clock.slept_total >= 77.0

    def test_delay_capped(self):
        policy = RetryPolicy(max_attempts=20, max_delay_s=2.0,
                             breaker_threshold=1000)
        engine = RetryEngine(policy, SimulatedClock())
        with pytest.raises(RetryExhaustedError):
            engine.call("results", flaky_fn(99))
        assert engine.clock.slept_total <= 19 * 2.0

    def test_jitter_deterministic_per_seed(self):
        def slept(seed):
            engine = RetryEngine(clock=SimulatedClock(), seed=seed)
            engine.call("results", flaky_fn(4))
            return engine.clock.slept_total

        assert slept(7) == slept(7)
        assert slept(7) != slept(8)


class TestBudget:
    def test_budget_exhaustion_raises(self):
        policy = RetryPolicy(max_attempts=10, retry_budget=2)
        engine = RetryEngine(policy, SimulatedClock())
        with pytest.raises(RetryBudgetExhaustedError):
            engine.call("results", flaky_fn(99))
        assert engine.budget_left == 0

    def test_budget_spans_calls(self):
        policy = RetryPolicy(max_attempts=10, retry_budget=5)
        engine = RetryEngine(policy, SimulatedClock())
        engine.call("results", flaky_fn(2))
        engine.call("measurement", flaky_fn(2))
        assert engine.budget_left == 1
        with pytest.raises(RetryBudgetExhaustedError):
            engine.call("results", flaky_fn(99))


class TestCircuitBreaker:
    def test_opens_after_threshold_and_half_opens(self):
        breaker = CircuitBreaker("results", threshold=3, cooldown_s=60.0)
        for _ in range(3):
            breaker.record_failure(now=10.0)
        assert breaker.is_open
        assert not breaker.allow(now=10.0)
        assert breaker.remaining_cooldown(now=40.0) == 30.0
        assert breaker.allow(now=70.0)  # half-open probe permitted
        breaker.record_success()
        assert not breaker.is_open
        assert breaker.times_opened == 1

    def test_engine_waits_out_open_circuit(self):
        policy = RetryPolicy(
            max_attempts=4, breaker_threshold=2, breaker_cooldown_s=500.0,
            max_delay_s=1.0,
        )
        engine = RetryEngine(policy, SimulatedClock())
        with pytest.raises(RetryExhaustedError):
            engine.call("results", flaky_fn(99))
        # Breaker opened after failure 2; attempts 3 and 4 each had to
        # wait out (part of) the cooldown on the simulated clock.
        assert engine.breaker_for("results").is_open
        assert engine.clock.slept_total >= 500.0

    def test_engine_fails_fast_when_configured(self):
        policy = RetryPolicy(
            max_attempts=10, breaker_threshold=2, breaker_cooldown_s=500.0,
            wait_out_open_circuit=False,
        )
        engine = RetryEngine(policy, SimulatedClock())
        with pytest.raises(CircuitOpenError) as excinfo:
            engine.call("results", flaky_fn(99))
        assert excinfo.value.endpoint == "results"
        with pytest.raises(CircuitOpenError):
            engine.call("results", lambda: "ok")  # still open: refused outright

    def test_breakers_are_per_endpoint(self):
        policy = RetryPolicy(
            max_attempts=3, breaker_threshold=2, breaker_cooldown_s=500.0,
            wait_out_open_circuit=False,
        )
        engine = RetryEngine(policy, SimulatedClock())
        with pytest.raises(CircuitOpenError):
            engine.call("results", flaky_fn(99))
        # "results" tripped; "measurement" is untouched.
        assert engine.call("measurement", flaky_fn(1)) == "ok"

    def test_stats_shape(self):
        engine = RetryEngine(clock=SimulatedClock())
        engine.call("results", flaky_fn(2))
        stats = engine.stats()
        assert stats["retries"] == 2
        assert stats["budget_left"] == engine.policy.retry_budget - 2
        assert stats["simulated_sleep_s"] > 0
        assert stats["breakers_opened"] == 0
