"""Tests for repro.atlas.api.transport — the chaos seam."""

import pytest

from repro.atlas.api.retry import RetryPolicy
from repro.atlas.api.sources import AtlasSource
from repro.atlas.api.transport import (
    Transport,
    default_platform,
    reset_default_platform,
)
from repro.atlas.faults import PROFILES, FaultInjector
from repro.atlas.platform import DEFAULT_KEY, AtlasPlatform
from repro.errors import AtlasAPIError

T0 = 1_567_296_000
DAY = 86_400


def build_platform(seed=13):
    platform = AtlasPlatform(seed=seed)
    msm_id = platform.create_measurement(
        {
            "target": platform.hostname_for(platform.fleet[9]),
            "description": "chaos-seam test",
            "type": "ping",
            "af": 4,
            "is_oneoff": False,
            "packets": 3,
            "size": 48,
            "interval": 3_600,
        },
        [AtlasSource(type="country", value="DE", requested=5)],
        T0,
        T0 + 4 * DAY,
        key=DEFAULT_KEY,
    )
    return platform, msm_id


@pytest.fixture(scope="module")
def msm_platform():
    """A platform with one running measurement."""
    return build_platform()


class TestPassThrough:
    def test_no_injector_by_default(self, msm_platform):
        platform, _ = msm_platform
        transport = Transport(platform)
        assert transport.injector is None
        assert transport.fault_profile.name == "none"

    def test_noop_profile_means_no_injector(self, msm_platform):
        platform, _ = msm_platform
        assert Transport(platform, faults="none").injector is None
        assert Transport(platform, faults=PROFILES["none"]).injector is None

    def test_results_identical_to_platform(self, msm_platform):
        platform, msm_id = msm_platform
        transport = Transport(platform)
        assert transport.results(msm_id) == platform.results(msm_id)

    def test_default_platform_cached_and_resettable(self):
        reset_default_platform()
        first = default_platform()
        assert default_platform() is first
        reset_default_platform()
        second = default_platform()
        assert second is not first
        assert second.seed == first.seed == 0
        reset_default_platform()


class TestChaosPath:
    def test_flaky_converges_to_identical_results(self, msm_platform):
        platform, msm_id = msm_platform
        baseline = platform.results(msm_id)
        transport = Transport(platform, faults="flaky", page_size=20)
        chaotic = transport.results(msm_id)
        # flaky injects only recoverable faults; after the transport's
        # retries the stream may still carry injected duplicates, but
        # deduplicated it must equal the canonical results exactly.
        dedup, seen = [], set()
        for entry in chaotic:
            key = (entry["prb_id"], entry["timestamp"])
            if key not in seen:
                seen.add(key)
                dedup.append(entry)
        assert dedup == baseline
        stats = transport.stats()
        assert stats["profile"] == "flaky"
        assert sum(stats["faults"].values()) > 0
        assert stats["retries"] > 0

    def test_chaos_run_is_deterministic(self):
        runs = []
        for _ in range(2):
            platform, msm_id = build_platform()
            transport = Transport(platform, faults="hostile", page_size=20)
            runs.append((transport.results(msm_id), transport.stats()))
        assert runs[0] == runs[1]

    def test_missing_measurement_is_api_error_not_fault(self, msm_platform):
        platform, _ = msm_platform
        transport = Transport(platform, faults="flaky")
        with pytest.raises(AtlasAPIError):
            transport.results(999_999)

    def test_injector_instance_adopts_transport_clock(self, msm_platform):
        platform, msm_id = msm_platform
        injector = FaultInjector(platform.seed, "flaky")
        transport = Transport(platform, faults=injector)
        assert injector.clock is transport.clock
        transport.results(msm_id)
        assert transport.retry.clock is transport.clock

    def test_starved_retry_policy_eventually_raises(self, msm_platform):
        from repro.errors import TransportError

        platform, msm_id = msm_platform
        transport = Transport(
            platform,
            faults="hostile",
            retry=RetryPolicy(max_attempts=2, retry_budget=3),
            page_size=10,
        )
        with pytest.raises(TransportError):
            for _ in range(50):
                transport.results(msm_id)


class TestSeamWiring:
    def test_client_requests_share_transport(self, msm_platform):
        from repro.atlas.api.client import AtlasResultsRequest

        platform, msm_id = msm_platform
        transport = Transport(platform)
        request = AtlasResultsRequest(msm_id=msm_id, transport=transport)
        assert request.transport is transport
        assert request.platform is platform
        ok, results = request.create()
        assert ok and len(results) == len(platform.results(msm_id))

    def test_stream_uses_transport(self, msm_platform):
        from repro.atlas.api.stream import AtlasStream

        platform, msm_id = msm_platform
        transport = Transport(platform, faults="flaky", page_size=20)
        stream = AtlasStream(transport=transport)
        assert stream.platform is platform
        stream.start_stream(stream_type="result", msm=msm_id)
        delivered = list(stream.iter_merged())
        baseline = platform.results(msm_id)
        keys = {(r["prb_id"], r["timestamp"]) for r in delivered}
        assert keys == {(r["prb_id"], r["timestamp"]) for r in baseline}


class TestWorkerCloneStats:
    def test_clone_state_is_independent(self, msm_platform):
        platform, msm_id = msm_platform
        transport = Transport(platform, faults="flaky", page_size=20)
        transport.results(msm_id)
        dirty = transport.stats()
        assert sum(dirty["faults"].values()) > 0
        clone = transport.worker_clone()
        fresh = clone.stats()
        assert fresh["profile"] == "flaky"
        assert fresh["faults"] == {}
        assert fresh["retries"] == 0
        # Running the clone leaves the original's accounting untouched.
        clone.results(msm_id)
        assert transport.stats() == dirty

    def test_clone_replays_windowed_fetch_exactly(self, msm_platform):
        """Scoped schedules: for the same window a clone injects the
        faults the original would have — the parallel-parity keystone."""
        platform, msm_id = msm_platform
        window = (T0, T0 + DAY)
        first = Transport(platform, faults="flaky", page_size=20)
        baseline = first.results(msm_id, *window)
        clone = first.worker_clone()
        assert clone.results(msm_id, *window) == baseline
        assert clone.stats()["faults"] == first.stats()["faults"]

    def test_campaign_folds_worker_stats(self, msm_platform):
        """Campaign.transport_stats() aggregates clone accounting the way
        the parallel collector records it."""
        from repro.core.campaign import Campaign, CampaignScale

        campaign = Campaign.from_paper(
            scale=CampaignScale.TINY, seed=7, faults="flaky"
        )
        campaign.create_measurements()
        main_only = campaign.transport_stats()
        clones = [campaign.transport.worker_clone() for _ in range(2)]
        for clone in clones:
            clone.results(campaign.measurement_ids[0], T0, T0 + DAY)
            campaign._worker_transport_stats.append(clone.stats())
        folded = campaign.transport_stats()
        assert folded["retries"] == main_only["retries"] + sum(
            c.stats()["retries"] for c in clones
        )
        expected_faults = dict(main_only["faults"])
        for clone in clones:
            for kind, count in clone.stats()["faults"].items():
                expected_faults[kind] = expected_faults.get(kind, 0) + count
        assert folded["faults"] == expected_faults
        assert folded["budget_left"] == main_only["budget_left"] + sum(
            c.stats()["budget_left"] for c in clones
        )
