"""Tests for repro.atlas.credits."""

import pytest

from repro.atlas.credits import CreditAccount, ping_result_cost
from repro.errors import AtlasError, QuotaExceededError

DAY = 86_400


class TestCosts:
    def test_ping_cost_per_packet(self):
        assert ping_result_cost(3) == 3
        assert ping_result_cost(1) == 1

    def test_invalid_packets(self):
        with pytest.raises(AtlasError):
            ping_result_cost(0)


class TestCharging:
    def test_charge_reduces_balance(self):
        account = CreditAccount(key="k", balance=100)
        account.charge(30, timestamp=0)
        assert account.balance == 70
        assert account.spent_total == 30

    def test_negative_charge_rejected(self):
        account = CreditAccount(key="k")
        with pytest.raises(AtlasError):
            account.charge(-1, timestamp=0)

    def test_balance_exhaustion(self):
        account = CreditAccount(key="k", balance=10)
        with pytest.raises(QuotaExceededError):
            account.charge(11, timestamp=0)
        assert account.balance == 10  # not applied

    def test_daily_limit(self):
        account = CreditAccount(key="k", balance=10_000, daily_limit=100)
        account.charge(60, timestamp=0)
        with pytest.raises(QuotaExceededError):
            account.charge(50, timestamp=100)  # same day
        account.charge(50, timestamp=DAY)  # next day is fine

    def test_spent_on_day(self):
        account = CreditAccount(key="k")
        account.charge(10, timestamp=5)
        account.charge(20, timestamp=DAY + 5)
        assert account.spent_on_day(5) == 10
        assert account.spent_on_day(DAY + 100) == 20


class TestQuotaRaise:
    def test_paper_scale_needs_quota_raise(self):
        """A default account cannot fund a nine-month 3200-probe campaign;
        the raised quota of the acknowledgements makes it possible."""
        account = CreditAccount(key="k")
        per_day = 3 * 3300 * 8  # 3 packets x probes x 8 pings/day
        with pytest.raises(QuotaExceededError):
            for day in range(273):
                account.charge(per_day * 40, timestamp=day * DAY)  # ~101 targets
        account.raise_quota(daily_limit=50_000_000, balance=5_000_000_000)
        for day in range(273):
            account.charge(per_day * 40, timestamp=day * DAY)

    def test_raise_quota_validates(self):
        with pytest.raises(AtlasError):
            CreditAccount(key="k").raise_quota(daily_limit=0)

    def test_grant(self):
        account = CreditAccount(key="k", balance=5)
        account.grant(10)
        assert account.balance == 15
        with pytest.raises(AtlasError):
            account.grant(-1)
