"""Tests for repro.atlas.api.stream."""

import pytest

from repro.atlas.api.measurements import Ping
from repro.atlas.api.client import AtlasCreateRequest
from repro.atlas.api.sources import AtlasSource
from repro.atlas.api.stream import AtlasStream
from repro.atlas.platform import AtlasPlatform
from repro.errors import AtlasError

T0 = 1_567_296_000
DAY = 86_400


@pytest.fixture(scope="module")
def backend() -> AtlasPlatform:
    return AtlasPlatform(seed=12)


@pytest.fixture(scope="module")
def msm_ids(backend):
    ids = []
    for index in (0, 1):
        ok, response = AtlasCreateRequest(
            measurements=[
                Ping(
                    target=backend.hostname_for(backend.fleet[index]),
                    interval=21_600,
                )
            ],
            sources=[AtlasSource(type="country", value="US", requested=4)],
            start_time=T0,
            stop_time=T0 + DAY,
            platform=backend,
        ).create()
        assert ok
        ids.extend(response["measurements"])
    return ids


class TestStream:
    def test_callback_delivery(self, backend, msm_ids):
        stream = AtlasStream(platform=backend)
        seen = []
        stream.bind_channel("atlas_result", seen.append)
        stream.start_stream(stream_type="result", msm=msm_ids[0])
        delivered = stream.timeout()
        assert delivered == len(seen) > 0

    def test_merged_timestamp_order(self, backend, msm_ids):
        stream = AtlasStream(platform=backend)
        stream.start_stream(stream_type="result", msm=msm_ids[0])
        stream.start_stream(stream_type="result", msm=msm_ids[1])
        merged = list(stream.iter_merged())
        timestamps = [r["timestamp"] for r in merged]
        assert timestamps == sorted(timestamps)
        assert {r["msm_id"] for r in merged} == set(msm_ids)

    def test_unknown_channel_rejected(self, backend):
        with pytest.raises(AtlasError):
            AtlasStream(platform=backend).bind_channel("nope", print)

    def test_stream_requires_msm(self, backend):
        with pytest.raises(AtlasError):
            AtlasStream(platform=backend).start_stream(stream_type="result")

    def test_unsupported_type(self, backend):
        with pytest.raises(AtlasError):
            AtlasStream(platform=backend).start_stream(stream_type="probestatus")

    def test_disconnect_clears_subscriptions(self, backend, msm_ids):
        stream = AtlasStream(platform=backend)
        stream.start_stream(stream_type="result", msm=msm_ids[0])
        stream.disconnect()
        assert list(stream.iter_merged()) == []
