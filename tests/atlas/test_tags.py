"""Tests for repro.atlas.tags."""

from repro.atlas.tags import (
    PRIVILEGED_TAGS,
    WIRED_TAGS,
    WIRELESS_TAGS,
    classify_lastmile,
    is_privileged,
    is_wired,
    is_wireless,
    normalize,
)


class TestVocabulary:
    def test_cohort_tags_disjoint(self):
        assert not WIRED_TAGS & WIRELESS_TAGS

    def test_paper_tag_names_present(self):
        # §4.3 names these tags explicitly.
        assert {"ethernet", "broadband"} <= WIRED_TAGS
        assert {"lte", "wifi", "wlan"} <= WIRELESS_TAGS

    def test_privileged_tags(self):
        assert PRIVILEGED_TAGS == {"datacentre", "cloud"}


class TestPredicates:
    def test_is_privileged(self):
        assert is_privileged(["home", "cloud"])
        assert not is_privileged(["home", "ethernet"])

    def test_is_wired_wireless(self):
        assert is_wired(["ethernet"])
        assert is_wireless(["lte"])
        assert not is_wired(["lte"])
        assert not is_wireless(["dsl"])


class TestClassifier:
    def test_wired(self):
        assert classify_lastmile(["home", "fibre"]) == "wired"

    def test_wireless(self):
        assert classify_lastmile(["wlan"]) == "wireless"

    def test_ambiguous(self):
        assert classify_lastmile(["ethernet", "wifi"]) == "ambiguous"

    def test_untagged(self):
        assert classify_lastmile(["home"]) == "untagged"
        assert classify_lastmile([]) == "untagged"


class TestNormalize:
    def test_dedup_sort_lowercase(self):
        assert normalize(["LTE", "lte", " Home "]) == ("home", "lte")

    def test_drops_empty(self):
        assert normalize(["", "  ", "x"]) == ("x",)
