"""Tests for repro.atlas.results.ping — the sagan parsing contract."""

import json

import pytest

from repro.atlas.results.base import Result
from repro.atlas.results.ping import PingResult
from repro.errors import ResultParseError


def make_raw(**overrides) -> dict:
    raw = {
        "af": 4,
        "avg": 6.0,
        "dst_addr": "10.200.1.10",
        "dst_name": "eu-central-1.aws.repro.cloud",
        "from": "172.16.0.1",
        "fw": 5020,
        "max": 7.0,
        "min": 5.0,
        "msm_id": 100001,
        "prb_id": 6001,
        "proto": "ICMP",
        "rcvd": 3,
        "result": [{"rtt": 5.0}, {"rtt": 6.0}, {"rtt": 7.0}],
        "sent": 3,
        "size": 48,
        "step": 10800,
        "timestamp": 1_567_296_000,
        "type": "ping",
    }
    raw.update(overrides)
    return raw


class TestDispatch:
    def test_get_returns_ping_result(self):
        assert isinstance(Result.get(make_raw()), PingResult)

    def test_get_accepts_json_string(self):
        parsed = Result.get(json.dumps(make_raw()))
        assert parsed.probe_id == 6001

    def test_invalid_json_rejected(self):
        with pytest.raises(ResultParseError):
            Result.get("{not json")

    def test_unknown_type_rejected(self):
        with pytest.raises(ResultParseError):
            Result.get({"type": "dns"})

    def test_type_mismatch_rejected(self):
        with pytest.raises(ResultParseError):
            PingResult(make_raw(type="traceroute"))


class TestFields:
    def test_core_fields(self):
        parsed = PingResult(make_raw())
        assert parsed.measurement_id == 100001
        assert parsed.probe_id == 6001
        assert parsed.firmware == 5020
        assert parsed.origin == "172.16.0.1"
        assert parsed.created_timestamp == 1_567_296_000
        assert parsed.created.year == 2019

    def test_rtt_statistics(self):
        parsed = PingResult(make_raw())
        assert parsed.rtt_min == 5.0
        assert parsed.rtt_max == 7.0
        assert parsed.rtt_average == pytest.approx(6.0)
        assert parsed.rtt_median == 6.0

    def test_packet_objects(self):
        parsed = PingResult(make_raw())
        assert len(parsed.packets) == 3
        assert not parsed.packets[0].timed_out

    def test_loss_accounting(self):
        raw = make_raw(
            rcvd=1, result=[{"rtt": 5.0}, {"x": "*"}, {"x": "*"}], min=5.0, avg=5.0, max=5.0
        )
        parsed = PingResult(raw)
        assert parsed.packet_loss == pytest.approx(2 / 3)
        assert parsed.packets[1].timed_out
        assert parsed.succeeded

    def test_total_failure(self):
        raw = make_raw(
            rcvd=0, result=[{"x": "*"}] * 3, min=-1, avg=-1, max=-1
        )
        parsed = PingResult(raw)
        assert not parsed.succeeded
        assert parsed.rtt_min is None
        assert parsed.rtt_median is None
        assert parsed.packet_loss == 1.0

    def test_median_even_count(self):
        raw = make_raw(
            sent=4, rcvd=4,
            result=[{"rtt": 1.0}, {"rtt": 2.0}, {"rtt": 3.0}, {"rtt": 10.0}],
        )
        assert PingResult(raw).rtt_median == 2.5


class TestMalformedInput:
    def test_missing_required_field(self):
        raw = make_raw()
        del raw["sent"]
        with pytest.raises(ResultParseError):
            PingResult(raw)

    def test_rcvd_mismatch_rejected(self):
        raw = make_raw(rcvd=2)  # but 3 RTTs present
        with pytest.raises(ResultParseError):
            PingResult(raw)

    def test_negative_rtt_rejected(self):
        raw = make_raw(result=[{"rtt": -1.0}, {"x": "*"}, {"x": "*"}], rcvd=1)
        with pytest.raises(ResultParseError):
            PingResult(raw)

    def test_malformed_packet_entry(self):
        raw = make_raw(result=["oops", {"x": "*"}, {"x": "*"}], rcvd=0)
        with pytest.raises(ResultParseError):
            PingResult(raw)

    def test_non_dict_raw(self):
        with pytest.raises(ResultParseError):
            PingResult([1, 2, 3])

    def test_error_envelope(self):
        parsed = PingResult(make_raw(error={"detail": "probe gone"}))
        assert parsed.is_error
        assert "probe gone" in parsed.error_message
