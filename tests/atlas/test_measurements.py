"""Tests for repro.atlas.api.measurements."""

import pytest

from repro.atlas.api.measurements import Ping, Traceroute
from repro.errors import AtlasError


class TestPing:
    def test_api_struct(self):
        ping = Ping(target="host", description="d", interval=10_800, packets=3)
        struct = ping.build_api_struct()
        assert struct["type"] == "ping"
        assert struct["interval"] == 10_800
        assert struct["packets"] == 3
        assert struct["af"] == 4

    def test_target_required(self):
        with pytest.raises(AtlasError):
            Ping(target="").build_api_struct()

    def test_af_validated(self):
        with pytest.raises(AtlasError):
            Ping(target="h", af=5).build_api_struct()

    def test_interval_minimum(self):
        with pytest.raises(AtlasError):
            Ping(target="h", interval=30).build_api_struct()

    def test_oneoff_cannot_have_interval(self):
        with pytest.raises(AtlasError):
            Ping(target="h", is_oneoff=True, interval=300).build_api_struct()

    def test_oneoff_struct_has_no_interval(self):
        struct = Ping(target="h", is_oneoff=True).build_api_struct()
        assert "interval" not in struct
        assert struct["is_oneoff"] is True

    def test_packet_bounds(self):
        with pytest.raises(AtlasError):
            Ping(target="h", packets=0).build_api_struct()
        with pytest.raises(AtlasError):
            Ping(target="h", packets=99).build_api_struct()

    def test_default_interval_applied(self):
        struct = Ping(target="h").build_api_struct()
        assert struct["interval"] == 900


class TestTraceroute:
    def test_api_struct(self):
        tr = Traceroute(target="h", protocol="UDP", interval=3600)
        struct = tr.build_api_struct()
        assert struct["type"] == "traceroute"
        assert struct["protocol"] == "UDP"
        assert struct["max_hops"] == 32

    def test_tcp_mode_for_future_work(self):
        """§5 plans TCP-based probing; the definition supports it."""
        struct = Traceroute(target="h", protocol="TCP", port=443, interval=3600).build_api_struct()
        assert struct["protocol"] == "TCP"
        assert struct["port"] == 443

    def test_protocol_validated(self):
        with pytest.raises(AtlasError):
            Traceroute(target="h", protocol="GRPC").build_api_struct()

    def test_hops_validated(self):
        with pytest.raises(AtlasError):
            Traceroute(target="h", max_hops=0).build_api_struct()

    def test_port_validated(self):
        with pytest.raises(AtlasError):
            Traceroute(target="h", port=70_000).build_api_struct()
