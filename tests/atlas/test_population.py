"""Tests for repro.atlas.population — the §4.1 fleet."""

import pytest

from repro.atlas.population import (
    FIRST_PROBE_ID,
    generate_population,
    population_summary,
    probes_by_country,
)
from repro.atlas.probes import ProbeEnvironment
from repro.constants import MIN_PROBES, NUM_PROBE_COUNTRIES
from repro.geo.countries import get_country


@pytest.fixture(scope="module")
def fleet():
    return generate_population(seed=3)


class TestFootprint:
    def test_size(self, fleet):
        assert len(fleet) >= MIN_PROBES

    def test_countries(self, fleet):
        assert len({p.country_code for p in fleet}) == NUM_PROBE_COUNTRIES

    def test_ids_sequential_and_unique(self, fleet):
        ids = [p.probe_id for p in fleet]
        assert ids[0] == FIRST_PROBE_ID
        assert len(set(ids)) == len(ids)
        assert ids == sorted(ids)

    def test_counts_match_country_db(self, fleet):
        grouped = probes_by_country(seed=3)
        for code, probes in grouped.items():
            assert len(probes) == get_country(code).atlas_probes


class TestDeterminism:
    def test_same_seed_same_fleet(self):
        assert generate_population(seed=3) == generate_population(seed=3)

    def test_different_seed_differs(self):
        a = generate_population(seed=3)
        b = generate_population(seed=4)
        assert any(pa.location != pb.location for pa, pb in zip(a, b))


class TestComposition:
    def test_summary_bands(self, fleet):
        summary = population_summary(seed=3)
        # Atlas probes are mostly wired; some privileged hosts exist.
        assert 0.05 <= summary["wireless_share"] <= 0.30
        assert 0.03 <= summary["privileged_share"] <= 0.20
        assert 0.01 <= summary["anchor_share"] <= 0.12

    def test_privileged_probes_are_ethernet(self, fleet):
        for probe in fleet:
            if probe.environment.is_privileged:
                assert not probe.access.is_wireless

    def test_anchors_are_wired_core(self, fleet):
        for probe in fleet:
            if probe.is_anchor:
                assert probe.environment is ProbeEnvironment.CORE
                assert not probe.access.is_wireless

    def test_most_privileged_probes_tagged(self, fleet):
        """~80 % of privileged probes must be recognizable via tags —
        the paper's filter only works on 'clearly' tagged ones."""
        privileged = [p for p in fleet if p.environment.is_privileged]
        tagged = [
            p for p in privileged
            if "datacentre" in p.user_tags or "cloud" in p.user_tags
        ]
        assert len(tagged) / len(privileged) > 0.6

    def test_probes_scatter_near_country(self, fleet):
        for probe in fleet[:300]:
            country = get_country(probe.country_code)
            distance = probe.location.distance_km(country.centroid)
            assert distance < 3500.0, (probe.probe_id, probe.country_code)

    def test_wireless_probes_less_stable(self, fleet):
        wired = [p.stability for p in fleet if not p.access.is_wireless]
        wireless = [p.stability for p in fleet if p.access.is_wireless]
        assert sum(wired) / len(wired) > sum(wireless) / len(wireless)

    def test_australian_probes_near_coast(self, fleet):
        """Population-centroid override: AU probes cluster in the southeast."""
        australians = [p for p in fleet if p.country_code == "AU"]
        sydney_ish = sum(
            1 for p in australians
            if p.location.distance_km(get_country("AU").centroid) > 800
        )
        assert sydney_ish > len(australians) / 2
