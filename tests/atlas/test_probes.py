"""Tests for repro.atlas.probes."""

import pytest

from repro.atlas.probes import Probe, ProbeEnvironment, ProbeStatus
from repro.errors import AtlasError
from repro.geo.coordinates import LatLon
from repro.net.lastmile import AccessTechnology


def make_probe(**overrides) -> Probe:
    defaults = dict(
        probe_id=6001,
        country_code="DE",
        location=LatLon(50.0, 8.0),
        asn=64512,
        access=AccessTechnology.ETHERNET,
        environment=ProbeEnvironment.HOME,
        user_tags=("home", "ethernet"),
    )
    defaults.update(overrides)
    return Probe(**defaults)


class TestValidation:
    def test_positive_id_required(self):
        with pytest.raises(AtlasError):
            make_probe(probe_id=0)

    def test_country_validated(self):
        with pytest.raises(Exception):
            make_probe(country_code="XX")

    def test_stability_range(self):
        with pytest.raises(AtlasError):
            make_probe(stability=0.0)
        with pytest.raises(AtlasError):
            make_probe(stability=1.5)


class TestDerivedFields:
    def test_continent(self):
        assert make_probe().continent == "EU"

    def test_tags_merge_system_and_user(self):
        probe = make_probe()
        assert "system-ipv4-works" in probe.tags
        assert "ethernet" in probe.tags

    def test_anchor_tag(self):
        probe = make_probe(is_anchor=True)
        assert "system-anchor" in probe.tags

    def test_tags_sorted_deduped(self):
        probe = make_probe(user_tags=("ethernet", "Ethernet", "home"))
        assert probe.tags == tuple(sorted(set(probe.tags)))

    def test_address_stable_and_valid(self):
        probe = make_probe()
        assert probe.address == make_probe().address
        octets = probe.address.split(".")
        assert len(octets) == 4
        assert all(0 <= int(o) <= 255 for o in octets)

    def test_addresses_differ_by_id(self):
        assert make_probe(probe_id=6001).address != make_probe(probe_id=6002).address


class TestEnvironment:
    def test_privileged_environments(self):
        assert ProbeEnvironment.DATACENTRE.is_privileged
        assert ProbeEnvironment.CLOUD.is_privileged
        assert not ProbeEnvironment.HOME.is_privileged


class TestChurn:
    def test_online_share_tracks_stability(self):
        probe = make_probe(stability=0.9)
        online = sum(probe.is_online(tick) for tick in range(1000))
        assert 850 <= online <= 950

    def test_perfect_stability_always_online(self):
        probe = make_probe(stability=1.0)
        assert all(probe.is_online(tick) for tick in range(200))

    def test_abandoned_probe_offline(self):
        probe = make_probe(status=ProbeStatus.ABANDONED)
        assert not any(probe.is_online(tick) for tick in range(50))

    def test_churn_deterministic(self):
        probe = make_probe(stability=0.8)
        pattern1 = [probe.is_online(t) for t in range(100)]
        pattern2 = [probe.is_online(t) for t in range(100)]
        assert pattern1 == pattern2


class TestApiDict:
    def test_shape(self):
        payload = make_probe().as_api_dict()
        assert payload["id"] == 6001
        assert payload["country_code"] == "DE"
        assert payload["geometry"]["coordinates"] == [8.0, 50.0]  # lon, lat
        assert payload["status"]["name"] == "Connected"
        assert isinstance(payload["tags"], list)
