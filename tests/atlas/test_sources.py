"""Tests for repro.atlas.api.sources."""

import pytest

from repro.atlas.api.sources import AtlasSource, select_all
from repro.atlas.population import generate_population
from repro.errors import AtlasError, ProbeSelectionError


@pytest.fixture(scope="module")
def fleet():
    return generate_population(seed=3)


class TestValidation:
    def test_type_checked(self):
        with pytest.raises(AtlasError):
            AtlasSource(type="galaxy", value="x", requested=1)

    def test_requested_positive(self):
        with pytest.raises(AtlasError):
            AtlasSource(type="country", value="DE", requested=0)

    def test_area_values_checked(self):
        with pytest.raises(AtlasError):
            AtlasSource(type="area", value="ATLANTIS", requested=1)
        AtlasSource(type="area", value="WW", requested=1)
        AtlasSource(type="area", value="EU", requested=1)

    def test_tags_lowercased(self):
        source = AtlasSource(
            type="country", value="DE", requested=1, tags_include=("LTE",)
        )
        assert source.tags_include == ("lte",)

    def test_api_struct(self):
        source = AtlasSource(
            type="country", value="DE", requested=5,
            tags_include=("ethernet",), tags_exclude=("datacentre",),
        )
        struct = source.build_api_struct()
        assert struct["tags"] == {"include": ["ethernet"], "exclude": ["datacentre"]}


class TestSelection:
    def test_country_selection(self, fleet):
        chosen = AtlasSource(type="country", value="DE", requested=10).select(fleet)
        assert len(chosen) == 10
        assert all(p.country_code == "DE" for p in chosen)

    def test_requested_caps_result(self, fleet):
        chosen = AtlasSource(type="country", value="LU", requested=500).select(fleet)
        assert len(chosen) == 12  # Luxembourg only has 12 probes

    def test_area_continent(self, fleet):
        chosen = AtlasSource(type="area", value="AF", requested=30).select(fleet)
        assert all(p.continent == "AF" for p in chosen)

    def test_area_worldwide(self, fleet):
        chosen = AtlasSource(type="area", value="WW", requested=50).select(fleet)
        assert len(chosen) == 50

    def test_probes_list(self, fleet):
        wanted = [fleet[5].probe_id, fleet[10].probe_id]
        source = AtlasSource(
            type="probes", value=f"{wanted[0]},{wanted[1]}", requested=10
        )
        chosen = source.select(fleet)
        assert [p.probe_id for p in chosen] == sorted(wanted)

    def test_bad_probes_value(self, fleet):
        with pytest.raises(AtlasError):
            AtlasSource(type="probes", value="1,x", requested=1).select(fleet)

    def test_asn_selection(self, fleet):
        asn = fleet[0].asn
        chosen = AtlasSource(type="asn", value=str(asn), requested=99).select(fleet)
        assert all(p.asn == asn for p in chosen)

    def test_tag_include(self, fleet):
        chosen = AtlasSource(
            type="area", value="WW", requested=100, tags_include=("lte",)
        ).select(fleet)
        assert all("lte" in p.tags for p in chosen)

    def test_tag_exclude(self, fleet):
        chosen = AtlasSource(
            type="area", value="WW", requested=100, tags_exclude=("datacentre",)
        ).select(fleet)
        assert all("datacentre" not in p.tags for p in chosen)

    def test_empty_match_raises(self, fleet):
        with pytest.raises(ProbeSelectionError):
            AtlasSource(
                type="country", value="DE", requested=5,
                tags_include=("satellite", "datacentre"),
            ).select(fleet)

    def test_deterministic_order(self, fleet):
        source = AtlasSource(type="country", value="FR", requested=7)
        assert [p.probe_id for p in source.select(fleet)] == [
            p.probe_id for p in source.select(fleet)
        ]


class TestSelectAll:
    def test_union_deduplicates(self, fleet):
        a = AtlasSource(type="country", value="DE", requested=5)
        b = AtlasSource(type="area", value="EU", requested=5)
        union = select_all([a, b], fleet)
        ids = [p.probe_id for p in union]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)

    def test_requires_sources(self, fleet):
        with pytest.raises(AtlasError):
            select_all([], fleet)
