"""Tests for repro.atlas.platform — the simulated backend."""

import pytest

from repro.atlas.api.sources import AtlasSource
from repro.atlas.credits import CreditAccount
from repro.atlas.platform import DEFAULT_KEY, AtlasPlatform
from repro.errors import (
    AtlasAPIError,
    MeasurementNotFoundError,
    QuotaExceededError,
)

T0 = 1_567_296_000
DAY = 86_400


@pytest.fixture(scope="module")
def backend() -> AtlasPlatform:
    return AtlasPlatform(seed=5)


def make_ping_definition(backend, interval=10_800, packets=3, oneoff=False) -> dict:
    target = backend.hostname_for(backend.fleet[9])
    definition = {
        "target": target,
        "description": "test",
        "type": "ping",
        "af": 4,
        "is_oneoff": oneoff,
        "packets": packets,
        "size": 48,
    }
    if not oneoff:
        definition["interval"] = interval
    return definition


def create(backend, **kwargs) -> int:
    sources = kwargs.pop(
        "sources", [AtlasSource(type="country", value="DE", requested=10)]
    )
    return backend.create_measurement(
        make_ping_definition(backend, **kwargs.pop("definition_kwargs", {})),
        sources,
        kwargs.pop("start", T0),
        kwargs.pop("stop", T0 + 2 * DAY),
        key=kwargs.pop("key", DEFAULT_KEY),
    )


class TestTargets:
    def test_hostname_resolution(self, backend):
        vm = backend.fleet[0]
        assert backend.resolve_target(backend.hostname_for(vm)) is vm

    def test_address_resolution(self, backend):
        vm = backend.fleet[0]
        assert backend.resolve_target(vm.address) is vm

    def test_unknown_target(self, backend):
        with pytest.raises(AtlasAPIError):
            backend.resolve_target("example.com")


class TestMeasurementLifecycle:
    def test_create_and_metadata(self, backend):
        msm_id = create(backend)
        msm = backend.measurement(msm_id)
        assert msm.measurement_type == "ping"
        assert len(msm.probes) == 10
        payload = msm.as_api_dict()
        assert payload["id"] == msm_id
        assert payload["participant_count"] == 10

    def test_unknown_measurement(self, backend):
        with pytest.raises(MeasurementNotFoundError):
            backend.measurement(999_999)

    def test_stop(self, backend):
        msm_id = create(backend)
        backend.stop_measurement(msm_id)
        assert backend.measurement(msm_id).status == "Stopped"

    def test_stop_wrong_key(self, backend):
        msm_id = create(backend)
        with pytest.raises(AtlasAPIError):
            backend.stop_measurement(msm_id, key="SOMEONE-ELSE")

    def test_invalid_window(self, backend):
        with pytest.raises(AtlasAPIError):
            create(backend, start=T0, stop=T0)

    def test_invalid_key(self, backend):
        with pytest.raises(AtlasAPIError):
            create(backend, key="NOT-A-KEY")


class TestCharging:
    def test_periodic_charge_scales_with_duration(self):
        backend = AtlasPlatform(seed=6)
        account = backend.accounts[DEFAULT_KEY]
        before = account.balance
        create(backend)
        spent_two_days = before - account.balance
        before = account.balance
        create(backend, stop=T0 + 4 * DAY)
        spent_four_days = before - account.balance
        assert spent_four_days == pytest.approx(2 * spent_two_days, rel=0.05)

    def test_quota_enforced(self):
        backend = AtlasPlatform(seed=6)
        backend.register_account(CreditAccount(key="POOR", balance=10))
        with pytest.raises(QuotaExceededError):
            create(backend, key="POOR")

    def test_oneoff_charges_once(self):
        backend = AtlasPlatform(seed=6)
        account = backend.accounts[DEFAULT_KEY]
        before = account.balance
        backend.create_measurement(
            make_ping_definition(backend, oneoff=True),
            [AtlasSource(type="country", value="DE", requested=10)],
            T0,
            T0 + 60,
        )
        assert before - account.balance == 10 * 3  # probes x packets


class TestResults:
    def test_results_format(self, backend):
        msm_id = create(backend)
        results = backend.results(msm_id)
        assert results
        sample = results[0]
        assert sample["type"] == "ping"
        assert sample["msm_id"] == msm_id
        assert sample["sent"] == 3
        assert 0 <= sample["rcvd"] <= 3
        assert len(sample["result"]) == 3
        if sample["rcvd"] > 0:
            assert sample["min"] > 0

    def test_results_deterministic(self, backend):
        msm_id = create(backend)
        assert backend.results(msm_id) == backend.results(msm_id)

    def test_window_is_subset(self, backend):
        msm_id = create(backend)
        full = backend.results(msm_id)
        window = backend.results(msm_id, start=T0 + DAY, stop=T0 + 2 * DAY)
        full_keys = {(r["prb_id"], r["timestamp"]) for r in full}
        window_keys = {(r["prb_id"], r["timestamp"]) for r in window}
        assert window_keys <= full_keys
        assert all(T0 + DAY <= r["timestamp"] < T0 + 2 * DAY for r in window)

    def test_window_values_match_full_fetch(self, backend):
        """Windowing must not perturb the generated samples."""
        msm_id = create(backend)
        full = {
            (r["prb_id"], r["timestamp"]): r["min"]
            for r in backend.results(msm_id)
        }
        window = backend.results(msm_id, start=T0 + DAY)
        for r in window:
            assert full[(r["prb_id"], r["timestamp"])] == r["min"]

    def test_probe_filter(self, backend):
        msm_id = create(backend)
        msm = backend.measurement(msm_id)
        wanted = msm.probes[0].probe_id
        results = backend.results(msm_id, probe_ids=[wanted])
        assert results
        assert all(r["prb_id"] == wanted for r in results)

    def test_probes_spread_within_interval(self, backend):
        msm_id = create(backend)
        results = backend.results(msm_id)
        first_by_probe = {}
        for r in results:
            first_by_probe.setdefault(r["prb_id"], r["timestamp"])
        offsets = {t % 10_800 for t in first_by_probe.values()}
        assert len(offsets) > 1  # not all aligned to the interval boundary


class TestStopTruncation:
    def test_timed_stop_truncates_generation(self):
        backend = AtlasPlatform(seed=5)
        msm_id = create(backend)
        full = backend.results(msm_id)
        cutoff = T0 + DAY
        backend.stop_measurement(msm_id, at=cutoff)
        truncated = backend.results(msm_id)
        assert backend.measurement(msm_id).status == "Stopped"
        assert truncated
        assert all(r["timestamp"] < cutoff for r in truncated)
        # Everything generated before the stop is kept, byte for byte.
        assert truncated == [r for r in full if r["timestamp"] < cutoff]

    def test_expected_counts_shrink_with_stop(self):
        backend = AtlasPlatform(seed=5)
        msm_id = create(backend)
        msm = backend.measurement(msm_id)
        probe_id = msm.probes[0].probe_id
        before = backend.expected_result_count(msm_id, probe_id)
        backend.stop_measurement(msm_id, at=T0 + DAY)
        after = backend.expected_result_count(msm_id, probe_id)
        assert 0 < after < before
        assert backend.scheduled_tick_count(msm_id, probe_id) < before + after

    def test_untimed_stop_cancels_outright(self):
        backend = AtlasPlatform(seed=5)
        msm_id = create(backend)
        backend.stop_measurement(msm_id)
        assert backend.results(msm_id) == []
        assert backend.measurement(msm_id).effective_stop_time == T0

    def test_repeated_stops_only_move_earlier(self):
        backend = AtlasPlatform(seed=5)
        msm_id = create(backend)
        backend.stop_measurement(msm_id, at=T0 + DAY)
        backend.stop_measurement(msm_id, at=T0 + 2 * DAY)  # later: ignored
        assert backend.measurement(msm_id).effective_stop_time == T0 + DAY
        backend.stop_measurement(msm_id, at=T0 + DAY // 2)
        assert backend.measurement(msm_id).effective_stop_time == T0 + DAY // 2

    def test_stop_before_start_clamps_to_start(self):
        backend = AtlasPlatform(seed=5)
        msm_id = create(backend)
        backend.stop_measurement(msm_id, at=T0 - DAY)
        assert backend.measurement(msm_id).effective_stop_time == T0


class TestWindowIndependence:
    def test_split_windows_equal_full_fetch_with_flaky_probes(self):
        """Concatenated windows == one fetch, even for churn-heavy probes.

        Offline ticks must not consume RNG (they are skipped identically
        whatever the query window), so windowing never perturbs samples —
        the invariant resumable collection rests on.
        """
        from dataclasses import replace

        base = AtlasPlatform(seed=5)
        flaky_probes = tuple(
            replace(probe, stability=0.5)
            for probe in base.filter_probes(country_code="DE")[:8]
        )
        backend = AtlasPlatform(seed=5, probes=flaky_probes, fleet=base.fleet)
        msm_id = create(backend, stop=T0 + 4 * DAY)

        probe_ids = [p.probe_id for p in backend.measurement(msm_id).probes]
        churned = sum(
            backend.scheduled_tick_count(msm_id, pid)
            - backend.expected_result_count(msm_id, pid)
            for pid in probe_ids
        )
        assert churned > 0  # the property is exercised on offline ticks

        full = backend.results(msm_id)
        split = []
        edges = [T0, T0 + DAY, T0 + 2 * DAY + 5_000, T0 + 3 * DAY, T0 + 4 * DAY]
        for lo, hi in zip(edges, edges[1:]):
            split.extend(backend.results(msm_id, start=lo, stop=hi))
        key = lambda r: (r["prb_id"], r["timestamp"])
        assert sorted(split, key=key) == sorted(full, key=key)
        # Sample values, not just keys, are window-independent.
        assert {key(r): r["min"] for r in split} == {
            key(r): r["min"] for r in full
        }


class TestTraceroute:
    def test_traceroute_results(self, backend):
        target = backend.hostname_for(backend.fleet[9])
        definition = {
            "target": target,
            "type": "traceroute",
            "af": 4,
            "protocol": "ICMP",
            "interval": 21_600,
            "paris": 16,
        }
        msm_id = backend.create_measurement(
            definition,
            [AtlasSource(type="country", value="DE", requested=3)],
            T0,
            T0 + DAY,
        )
        results = backend.results(msm_id)
        assert results
        sample = results[0]
        assert sample["type"] == "traceroute"
        hops = sample["result"]
        assert hops[0]["hop"] == 1
        assert hops == sorted(hops, key=lambda h: h["hop"])

    def test_unsupported_type_rejected(self, backend):
        definition = {"target": backend.fleet[0].address, "type": "dns", "af": 4}
        with pytest.raises(AtlasAPIError):
            backend.create_measurement(
                definition,
                [AtlasSource(type="country", value="DE", requested=1)],
                T0,
                T0 + DAY,
            )


class TestProbeDirectory:
    def test_probe_lookup(self, backend):
        probe = backend.probes[0]
        assert backend.probe(probe.probe_id) is probe

    def test_unknown_probe(self, backend):
        with pytest.raises(AtlasAPIError):
            backend.probe(1)

    def test_filter_by_country_and_tags(self, backend):
        german_lte = backend.filter_probes(country_code="DE", tags=["lte"])
        assert german_lte
        for probe in german_lte:
            assert probe.country_code == "DE"
            assert "lte" in probe.tags

    def test_filter_anchors(self, backend):
        anchors = backend.filter_probes(is_anchor=True)
        assert anchors
        assert all(p.is_anchor for p in anchors)
