"""Tests for repro.atlas.api.client — the cousteau-compatible surface."""

import pytest

from repro.atlas.api.client import (
    AtlasCreateRequest,
    AtlasResultsRequest,
    AtlasStopRequest,
    MeasurementRequest,
    ProbeRequest,
    default_platform,
    reset_default_platform,
)
from repro.atlas.api.measurements import Ping
from repro.atlas.api.sources import AtlasSource
from repro.atlas.platform import AtlasPlatform
from repro.errors import AtlasError

T0 = 1_567_296_000
DAY = 86_400


@pytest.fixture(scope="module")
def backend() -> AtlasPlatform:
    return AtlasPlatform(seed=8)


def create_measurement(backend, **kwargs):
    ok, response = AtlasCreateRequest(
        measurements=[
            Ping(
                target=backend.hostname_for(backend.fleet[3]),
                description="client test",
                interval=kwargs.pop("interval", 10_800),
            )
        ],
        sources=[AtlasSource(type="country", value="FR", requested=5)],
        start_time=T0,
        stop_time=T0 + DAY,
        platform=backend,
        **kwargs,
    ).create()
    return ok, response


class TestCreateRequest:
    def test_success_shape(self, backend):
        ok, response = create_measurement(backend)
        assert ok is True
        assert len(response["measurements"]) == 1

    def test_requires_measurements(self, backend):
        with pytest.raises(AtlasError):
            AtlasCreateRequest(
                measurements=[],
                sources=[AtlasSource(type="country", value="FR", requested=1)],
                start_time=T0,
                stop_time=T0 + DAY,
                platform=backend,
            )

    def test_requires_sources(self, backend):
        with pytest.raises(AtlasError):
            AtlasCreateRequest(
                measurements=[Ping(target="x")],
                sources=[],
                start_time=T0,
                stop_time=T0 + DAY,
                platform=backend,
            )

    def test_error_returned_not_raised(self, backend):
        ok, response = AtlasCreateRequest(
            measurements=[Ping(target="unknown.example", interval=3600)],
            sources=[AtlasSource(type="country", value="FR", requested=5)],
            start_time=T0,
            stop_time=T0 + DAY,
            platform=backend,
        ).create()
        assert ok is False
        assert "detail" in response["error"]

    def test_oneoff_flag_propagates(self, backend):
        ok, response = AtlasCreateRequest(
            measurements=[Ping(target=backend.hostname_for(backend.fleet[3]))],
            sources=[AtlasSource(type="country", value="FR", requested=2)],
            start_time=T0,
            stop_time=T0 + 60,
            is_oneoff=True,
            platform=backend,
        ).create()
        assert ok
        msm = backend.measurement(response["measurements"][0])
        assert msm.is_oneoff


class TestResultsRequest:
    def test_fetch(self, backend):
        ok, response = create_measurement(backend)
        msm_id = response["measurements"][0]
        ok, results = AtlasResultsRequest(msm_id=msm_id, platform=backend).create()
        assert ok
        assert results
        assert all(r["msm_id"] == msm_id for r in results)

    def test_missing_measurement(self, backend):
        ok, results = AtlasResultsRequest(msm_id=424242, platform=backend).create()
        assert not ok
        assert "error" in results[0]


class TestStopRequest:
    def test_stop(self, backend):
        ok, response = create_measurement(backend)
        msm_id = response["measurements"][0]
        ok, _ = AtlasStopRequest(msm_id=msm_id, platform=backend).create()
        assert ok
        assert backend.measurement(msm_id).status == "Stopped"


class TestMeasurementRequest:
    def test_metadata(self, backend):
        ok, response = create_measurement(backend)
        msm_id = response["measurements"][0]
        payload = MeasurementRequest(msm_id=msm_id, platform=backend).get()
        assert payload["id"] == msm_id
        assert payload["type"] == "ping"


class TestProbeRequest:
    def test_iterate_country(self, backend):
        probes = list(ProbeRequest(country_code="DE", platform=backend))
        assert probes
        assert all(p["country_code"] == "DE" for p in probes)

    def test_tag_filter(self, backend):
        probes = list(ProbeRequest(tags=["lte"], platform=backend))
        assert probes
        assert all("lte" in p["tags"] for p in probes)

    def test_total_count(self, backend):
        request = ProbeRequest(country_code="LU", platform=backend)
        assert request.total_count() == len(list(request))


class TestDefaultPlatform:
    def test_cached_singleton(self):
        assert default_platform() is default_platform()

    def test_reset_gives_fresh_instance(self):
        stale = default_platform()
        reset_default_platform()
        fresh = default_platform()
        assert fresh is not stale
        assert fresh.seed == stale.seed  # same deterministic world, new state
        reset_default_platform()
