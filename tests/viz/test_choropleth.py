"""Tests for repro.viz.choropleth."""

import pytest

from repro.core.proximity import country_min_latency
from repro.errors import ReproError
from repro.viz.choropleth import BUCKET_SYMBOLS, bucket_listing, world_map


@pytest.fixture(scope="module")
def country_frame(tiny_dataset):
    return country_min_latency(tiny_dataset)


class TestBucketListing:
    def test_all_buckets_rendered(self, country_frame):
        listing = bucket_listing(country_frame)
        for label in BUCKET_SYMBOLS:
            assert label in listing

    def test_counts_add_up(self, country_frame):
        listing = bucket_listing(country_frame)
        total = 0
        for line in listing.splitlines():
            if "countries):" in line:
                total += int(line.split("(")[1].split()[0])
        assert total == len(country_frame)

    def test_bad_columns_rejected(self, country_frame):
        with pytest.raises(ReproError):
            bucket_listing(country_frame, columns=0)


class TestWorldMap:
    def test_dimensions(self, country_frame):
        rendered = world_map(country_frame, width=60, height=20)
        lines = rendered.splitlines()
        assert len(lines) == 21  # grid + legend
        assert all(len(line) == 60 for line in lines[:20])

    def test_legend_present(self, country_frame):
        rendered = world_map(country_frame)
        assert "<10 ms" in rendered

    def test_symbols_painted(self, country_frame):
        rendered = world_map(country_frame)
        assert any(symbol in rendered for symbol in BUCKET_SYMBOLS.values())

    def test_bad_dimensions(self, country_frame):
        with pytest.raises(ReproError):
            world_map(country_frame, width=0)
