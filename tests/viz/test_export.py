"""Tests for repro.viz.export."""

import pytest

from repro.errors import ReproError
from repro.frame import Frame, ecdf
from repro.viz.export import ecdf_payload, export_figure, frame_payload, load_figure


class TestPayloads:
    def test_ecdf_payload_downsamples(self):
        payload = ecdf_payload({"EU": ecdf(list(range(1000)))}, points=100)
        assert len(payload["EU"]["x"]) == 100
        assert payload["EU"]["p"][-1] == 1.0

    def test_frame_payload_plain_types(self):
        frame = Frame({"a": [1, 2], "b": ["x", "y"]})
        payload = frame_payload(frame)
        assert payload == {"a": [1, 2], "b": ["x", "y"]}


class TestRoundTrip:
    def test_export_and_load(self, tmp_path):
        path = tmp_path / "fig5.json"
        export_figure(
            path,
            figure="fig5",
            data={"EU": [1, 2, 3]},
            notes="test",
        )
        bundle = load_figure(path)
        assert bundle["figure"] == "fig5"
        assert bundle["data"]["EU"] == [1, 2, 3]

    def test_figure_name_required(self, tmp_path):
        with pytest.raises(ReproError):
            export_figure(tmp_path / "x.json", figure="", data={})

    def test_bad_bundle_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a bundle"}')
        with pytest.raises(ReproError):
            load_figure(path)
