"""Tests for repro.viz.ascii."""

import pytest

from repro.errors import ReproError
from repro.frame import Frame, ecdf
from repro.viz.ascii import bar_chart, cdf_plot, hbar, line_chart, table


class TestHbar:
    def test_full_bar(self):
        assert hbar(10, 10, width=10) == "█" * 10

    def test_empty_bar(self):
        assert hbar(0, 10, width=10).strip() == ""

    def test_clamps_overflow(self):
        assert hbar(20, 10, width=10) == "█" * 10

    def test_zero_max_rejected(self):
        with pytest.raises(ReproError):
            hbar(1, 0)

    def test_width_respected(self):
        assert len(hbar(3, 10, width=25)) == 25


class TestBarChart:
    def test_renders_all_items(self):
        chart = bar_chart({"EU": 8.0, "AF": 90.0})
        assert "EU" in chart and "AF" in chart
        assert chart.count("\n") == 1

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            bar_chart({})


class TestCdfPlot:
    def test_renders_markers_and_legend(self):
        curves = {"EU": ecdf([5.0, 8.0, 12.0]), "AF": ecdf([70.0, 90.0, 120.0])}
        plot = cdf_plot(curves, x_max=150.0)
        assert "E=EU" in plot
        assert "A=AF" in plot
        assert "1.00 |" in plot

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            cdf_plot({})

    def test_duplicate_initial_letters_disambiguated(self):
        curves = {"ASIA": ecdf([1.0]), "AFRICA": ecdf([2.0])}
        plot = cdf_plot(curves, x_max=5.0)
        assert "A=ASIA" in plot
        assert "B=AFRICA" in plot


class TestLineChart:
    def test_renders(self):
        chart = line_chart({"cloud": [(2004, 0.0), (2012, 100.0), (2019, 60.0)]})
        assert "C=cloud" in chart

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            line_chart({})


class TestTable:
    def test_renders_header_and_rows(self):
        frame = Frame({"country": ["DE", "FR"], "rtt": [5.1234, 9.5]})
        text = table(frame)
        lines = text.splitlines()
        assert lines[0].startswith("country")
        assert "5.12" in text

    def test_truncation(self):
        frame = Frame({"x": list(range(100))})
        text = table(frame, max_rows=5)
        assert "..." in text
