"""Shared fixtures.

The campaign fixtures are session-scoped because generating a dataset is
the expensive part of the suite; every analysis test shares one TINY run
and the calibration tests share one SMALL run.
"""

from __future__ import annotations

import pytest

from repro.atlas.platform import AtlasPlatform
from repro.core.campaign import Campaign, CampaignScale
from repro.core.dataset import CampaignDataset

#: Seed used by all shared fixtures; changing it must not break any test.
FIXTURE_SEED = 7


@pytest.fixture(scope="session")
def platform() -> AtlasPlatform:
    """A platform with the default population and fleet."""
    return AtlasPlatform(seed=FIXTURE_SEED)


@pytest.fixture(scope="session")
def tiny_campaign() -> Campaign:
    campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=FIXTURE_SEED)
    campaign.run_dataset = campaign.run()
    return campaign


@pytest.fixture(scope="session")
def tiny_dataset(tiny_campaign) -> CampaignDataset:
    return tiny_campaign.run_dataset


@pytest.fixture(scope="session")
def small_dataset() -> CampaignDataset:
    """The calibration dataset (roughly 275 k samples, ~20 s to build)."""
    campaign = Campaign.from_paper(scale=CampaignScale.SMALL, seed=FIXTURE_SEED)
    return campaign.run()
