"""Tests for repro.core.diurnal."""

import math

import numpy as np
import pytest

from repro.core.diurnal import (
    continent_matrix,
    hourly_profile,
    peak_hour,
    peak_to_trough,
)
from repro.errors import CampaignError


class TestHourlyProfile:
    def test_24_rows(self, tiny_dataset):
        profile = hourly_profile(tiny_dataset)
        assert len(profile) == 24
        assert list(profile["hour"]) == list(range(24))

    def test_samples_partition(self, tiny_dataset):
        from repro.core.filtering import unprivileged_mask

        profile = hourly_profile(tiny_dataset)
        assert sum(profile["samples"]) == int(
            np.sum(unprivileged_mask(tiny_dataset))
        )

    def test_continent_filter(self, tiny_dataset):
        eu = hourly_profile(tiny_dataset, continent="EU")
        world = hourly_profile(tiny_dataset)
        assert sum(eu["samples"]) < sum(world["samples"])

    def test_unknown_continent(self, tiny_dataset):
        with pytest.raises(CampaignError):
            hourly_profile(tiny_dataset, continent="XX")


class TestDiurnalShape:
    def test_peak_in_waking_hours(self, tiny_dataset):
        """The congestion model peaks in the local evening."""
        hour = peak_hour(tiny_dataset)
        assert 14 <= hour <= 23

    def test_peak_to_trough_above_one(self, tiny_dataset):
        ratio = peak_to_trough(tiny_dataset)
        assert ratio > 1.02

    def test_evening_beats_early_morning(self, tiny_dataset):
        profile = hourly_profile(tiny_dataset)
        by_hour = {int(r["hour"]): r["median"] for r in profile.iter_rows()}
        evening = np.nanmean([by_hour[h] for h in (19, 20, 21)])
        morning = np.nanmean([by_hour[h] for h in (3, 4, 5)])
        assert evening > morning


class TestContinentMatrix:
    def test_design_cells_populated(self, tiny_dataset):
        matrix = continent_matrix(tiny_dataset)
        # Within-continent cells exist for every probe continent.
        for source in ("NA", "EU", "AS", "OC"):
            assert not math.isnan(matrix[source][source])
        # The §4.1 fallbacks.
        assert not math.isnan(matrix["AF"]["EU"])
        assert not math.isnan(matrix["SA"]["NA"])

    def test_out_of_design_cells_empty(self, tiny_dataset):
        matrix = continent_matrix(tiny_dataset)
        assert math.isnan(matrix["EU"].get("AS", float("nan")))
        assert math.isnan(matrix["NA"].get("EU", float("nan")))

    def test_adjacent_continents_are_competitive(self, tiny_dataset):
        """The §4.1 fallbacks exist because adjacent continents genuinely
        compete: for the median Latin American probe, North American
        regions are at least as reachable as the lone Sao Paulo metro,
        and Europe is within reach of Africa's single region."""
        matrix = continent_matrix(tiny_dataset)
        assert matrix["SA"]["NA"] <= matrix["SA"]["SA"] * 1.1
        assert matrix["AF"]["EU"] <= matrix["AF"]["AF"] * 1.5
