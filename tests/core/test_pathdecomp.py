"""Tests for repro.core.pathdecomp — the TCP-traceroute extension."""

import pytest

from repro.atlas.platform import AtlasPlatform
from repro.core.pathdecomp import (
    access_share_by_cohort,
    decompose,
    decompose_all,
    run_traceroute_survey,
)
from repro.errors import CampaignError

T0 = 1_567_296_000


@pytest.fixture(scope="module")
def survey():
    platform = AtlasPlatform(seed=9)
    wired = [
        p.probe_id
        for p in platform.filter_probes(country_code="DE", tags=["ethernet"])
    ][:6]
    wireless = [
        p.probe_id for p in platform.filter_probes(country_code="DE", tags=["lte"])
    ][:6]
    results = run_traceroute_survey(
        platform,
        ["aws:eu-central-1", "gcp:europe-west3"],
        wired + wireless,
        T0,
    )
    return platform, results


class TestSurvey:
    def test_requires_inputs(self):
        platform = AtlasPlatform(seed=9)
        with pytest.raises(CampaignError):
            run_traceroute_survey(platform, [], [6001], T0)
        with pytest.raises(CampaignError):
            run_traceroute_survey(platform, ["aws:eu-central-1"], [], T0)

    def test_results_are_traceroutes(self, survey):
        _, results = survey
        assert results
        assert all(result.raw_data["type"] == "traceroute" for result in results)

    def test_tcp_protocol_used(self, survey):
        _, results = survey
        assert all(result.protocol == "TCP" for result in results)


class TestDecomposition:
    def test_split_adds_up(self, survey):
        _, results = survey
        splits = decompose_all(results)
        assert splits
        for split in splits:
            assert split.total_ms == pytest.approx(
                split.access_ms + split.core_ms
            )
            assert 0.0 <= split.access_share <= 1.0

    def test_undecomposable_paths_skipped(self, survey):
        _, results = survey
        splits = decompose_all(results)
        # A few paths have silent hop 2s or failed destinations.
        assert len(splits) <= len(results)

    def test_short_traceroute_returns_none(self, survey):
        _, results = survey
        crippled_hops = results[0].hops[:1]

        # A minimal stand-in with one hop cannot be decomposed.
        class OneHop:
            total_hops = 1
            last_rtt = 5.0
            hops = crippled_hops
            probe_id = 1
            destination_name = "x"

        assert decompose(OneHop()) is None


class TestCohortShares:
    def test_wireless_access_dominates(self, survey):
        """The last mile is the bottleneck — overwhelmingly so on radio."""
        platform, results = survey
        frame = access_share_by_cohort(platform, decompose_all(results))
        rows = {row["cohort"]: row for row in frame.iter_rows()}
        assert rows["wireless"]["median_access_share"] > rows["wired"][
            "median_access_share"
        ]
        assert rows["wireless"]["median_access_ms"] > 10.0

    def test_empty_rejected(self, survey):
        platform, _ = survey
        with pytest.raises(CampaignError):
            access_share_by_cohort(platform, [])
