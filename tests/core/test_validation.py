"""Tests for repro.core.validation and repro.core.paper_report."""

import pytest

from repro.core.paper_report import generate_report, write_report
from repro.core.report import headline_report
from repro.core.validation import (
    PAPER_CHECKS,
    all_pass,
    summary_text,
    validate,
)


@pytest.fixture(scope="module")
def report(tiny_dataset):
    return headline_report(tiny_dataset)


class TestChecks:
    def test_every_claim_encoded(self):
        # One check per headline claim plus the ordering/coverage ones.
        assert len(PAPER_CHECKS) == 11
        names = [check.name for check in PAPER_CHECKS]
        assert len(names) == len(set(names))

    def test_results_shape(self, report):
        results = validate(report)
        assert len(results) == len(PAPER_CHECKS)
        for result in results:
            assert isinstance(result.passed, bool)
            assert result.expected

    def test_orderings_pass_even_at_tiny(self, report):
        """Band checks may miss at TINY scale, but the paper's orderings
        must hold at any scale."""
        by_name = {r.name: r for r in validate(report)}
        assert by_name["under-served trail well-connected (ordering)"].passed
        assert by_name["wireless penalty (paper: ~2.5x)"].passed

    def test_small_scale_passes_everything(self, small_dataset):
        results = validate(headline_report(small_dataset))
        assert all_pass(results), summary_text(results)

    def test_summary_text(self, report):
        text = summary_text(validate(report))
        assert "paper-shape checks passed" in text
        assert text.count("\n") == len(PAPER_CHECKS)


class TestPaperReport:
    def test_generates_all_sections(self, tiny_dataset):
        text = generate_report(tiny_dataset, seed=7)
        for heading in (
            "Headline statistics",
            "Paper-shape validation",
            "Figure 1",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "What-if",
        ):
            assert heading in text, heading

    def test_write_report(self, tiny_dataset, tmp_path):
        path = tmp_path / "report.md"
        write_report(tiny_dataset, path, seed=7)
        assert path.read_text(encoding="utf-8").startswith("# Latency Shears")
