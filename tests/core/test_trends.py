"""Tests for repro.core.trends (Figure 1 analysis)."""

import pytest

from repro.core.trends import (
    FIGURE1_KEYWORDS,
    collect_figure1,
    detect_eras,
    growth_summary,
)
from repro.errors import ReproError
from repro.frame import Frame
from repro.scholar.crawler import ScholarCrawler


@pytest.fixture(scope="module")
def figure1() -> Frame:
    return collect_figure1(ScholarCrawler(seed=5), seed=5)


class TestCollection:
    def test_both_keywords_full_span(self, figure1):
        for keyword in FIGURE1_KEYWORDS:
            sub = figure1.filter(figure1["keyword"] == keyword)
            assert len(sub) == 16  # 2004..2019

    def test_columns(self, figure1):
        assert figure1.columns == (
            "keyword", "year", "publications", "search_interest",
        )

    def test_interest_normalized(self, figure1):
        assert max(figure1["search_interest"]) <= 100.0


class TestEras:
    def test_boundaries_ordered(self, figure1):
        eras = detect_eras(figure1)
        assert eras.cdn_until < eras.cloud_from < eras.edge_from

    def test_cloud_era_starts_late_2000s(self, figure1):
        eras = detect_eras(figure1)
        assert 2007 <= eras.cloud_from <= 2010

    def test_edge_era_starts_mid_2010s(self, figure1):
        eras = detect_eras(figure1)
        assert 2014 <= eras.edge_from <= 2018

    def test_era_of(self, figure1):
        eras = detect_eras(figure1)
        assert eras.era_of(2005) == "CDN"
        assert eras.era_of(2012) == "Cloud"
        assert eras.era_of(2019) == "Edge"

    def test_missing_keyword_rejected(self):
        frame = Frame(
            {
                "keyword": ["cloud computing"],
                "year": [2010],
                "publications": [100],
                "search_interest": [50.0],
            }
        )
        with pytest.raises(ReproError):
            detect_eras(frame)


class TestGrowth:
    def test_summary_keys(self, figure1):
        summary = growth_summary(figure1)
        assert "cloud_interest_peak_year" in summary
        assert "edge_pub_growth" in summary

    def test_cloud_peaked_then_declined(self, figure1):
        summary = growth_summary(figure1)
        assert 2011 <= summary["cloud_interest_peak_year"] <= 2013

    def test_edge_growth_explosive(self, figure1):
        summary = growth_summary(figure1)
        assert summary["edge_pub_growth"] > 10
