"""Supervised collection: chaos determinism, the watchdog, degraded mode.

The supervisor's contract: seeded worker chaos is a pure function of
``(seed, window, attempt)`` — never of worker count — hangs are reaped
or survived by the deadline alone, respawned attempts eventually
complete the dataset, and windows that keep dying are quarantined into
an explicit degraded mode that surfaces in the health report and never
commits to a store.
"""

from __future__ import annotations

import pytest

from repro.atlas.faults import WORKER_PROFILES, get_worker_profile
from repro.core.campaign import Campaign, CampaignScale, CollectionCheckpoint
from repro.core.dataset import CampaignDataset
from repro.core.completeness import health_report
from repro.core.supervisor import Supervisor, WorkerChaos
from repro.errors import AtlasError


def _tiny(seed=7, **kwargs):
    return Campaign.from_paper(scale=CampaignScale.TINY, seed=seed, **kwargs)


class TestWorkerProfiles:
    def test_registry_and_lookup(self):
        assert get_worker_profile("steady").is_noop
        assert not get_worker_profile("crashy").is_noop
        assert get_worker_profile(WORKER_PROFILES["wedged"]).name == "wedged"

    def test_unknown_profile_rejected(self):
        with pytest.raises(AtlasError, match="unknown worker fault profile"):
            get_worker_profile("immortal")


class TestWorkerChaos:
    def test_decisions_are_deterministic(self):
        left = WorkerChaos(7, "pathological")
        right = WorkerChaos(7, "pathological")
        args = (100042, 1_500_000_000, 1_500_600_000)
        decisions = [left.decide(*args, attempt) for attempt in range(8)]
        assert decisions == [right.decide(*args, attempt) for attempt in range(8)]

    def test_attempt_rerolls_the_fate(self):
        """A window that dies on one attempt must not die identically
        forever — the attempt number is part of the key."""
        chaos = WorkerChaos(7, "pathological")
        fates = {
            chaos.decide(100000 + w, 1_500_000_000, 1_500_600_000, attempt)
            for w in range(40)
            for attempt in range(4)
        }
        assert None in fates  # survival is reachable on some attempt

    def test_noop_profile_never_strikes(self):
        chaos = WorkerChaos(7, "steady")
        assert all(
            chaos.decide(100000 + w, 0, 1, 0) is None for w in range(200)
        )


class TestSupervisedCollection:
    def test_chaos_survives_to_a_complete_dataset(self):
        campaign = _tiny()
        baseline = campaign.run()
        supervised = _tiny()
        dataset = supervised.run(workers=2, worker_faults="crashy")
        report = supervised.supervision
        assert report is not None
        assert report.crashes > 0 and report.respawns > 0
        assert not report.degraded
        assert report.collected == report.windows
        assert dataset.num_samples == baseline.num_samples

    def test_casualty_counts_are_worker_count_invariant(self):
        reports = []
        for workers in (1, 4):
            campaign = _tiny()
            campaign.run(workers=workers, worker_faults="pathological")
            reports.append(campaign.supervision)
        assert reports[0].crashes == reports[1].crashes
        assert reports[0].hangs == reports[1].hangs

    def test_steady_profile_bypasses_the_supervisor(self):
        campaign = _tiny()
        campaign.run(workers=2, worker_faults="steady")
        assert campaign.supervision is None

    def test_hang_under_deadline_is_recovered_not_reaped(self):
        campaign = _tiny()
        campaign.create_measurements()
        dataset = CampaignDataset(campaign.platform.probes, campaign.platform.fleet)
        supervisor = Supervisor(
            campaign, workers=2, worker_faults="wedged", deadline_s=1200.0
        )
        report = supervisor.collect_into(dataset)
        assert report.hangs == 0  # nothing reaped: 600s < 1200s deadline
        assert report.hangs_recovered > 0
        assert report.collected == report.windows

    def test_hang_past_deadline_is_reaped(self):
        campaign = _tiny()
        campaign.create_measurements()
        dataset = CampaignDataset(campaign.platform.probes, campaign.platform.fleet)
        supervisor = Supervisor(
            campaign, workers=2, worker_faults="wedged", deadline_s=300.0
        )
        report = supervisor.collect_into(dataset)
        assert report.hangs > 0 and report.hangs_recovered == 0
        assert report.collected == report.windows


class TestDegradedMode:
    def _degraded_run(self, **collect_kwargs):
        """One attempt per window: any strike quarantines immediately."""
        campaign = _tiny()
        campaign.create_measurements()
        dataset = CampaignDataset(campaign.platform.probes, campaign.platform.fleet)
        supervisor = Supervisor(
            campaign, workers=2, worker_faults="pathological", max_attempts=1
        )
        report = supervisor.collect_into(dataset, **collect_kwargs)
        dataset.freeze()
        return campaign, dataset, report

    def test_quarantine_past_max_attempts(self):
        campaign, dataset, report = self._degraded_run()
        assert report.degraded
        # Respawn rounds still happen (a dead worker's untouched
        # remainder needs a new worker) but every quarantined window
        # died on its one and only attempt.
        assert report.collected + len(report.quarantined) == report.windows
        assert dataset.num_samples < _tiny().run().num_samples

    def test_checkpoint_never_advances_past_a_quarantined_window(self):
        checkpoint = CollectionCheckpoint()
        campaign, _, report = self._degraded_run(checkpoint=checkpoint)
        for msm_id, _ in report.quarantined:
            assert checkpoint.collected_through(
                msm_id, campaign.start_time
            ) < campaign.stop_time

    def test_health_report_surfaces_the_supervision_section(self):
        campaign, dataset, report = self._degraded_run()
        health = health_report(campaign, dataset)
        section = health["supervision"]
        assert section["degraded"] is True
        assert section["quarantined"][0]["msm_id"] == report.quarantined[0][0]

    def test_degraded_collection_never_commits_to_the_store(
        self, tmp_path, monkeypatch
    ):
        import repro.core.supervisor as supervisor_module
        from repro.store import CampaignCatalog

        original = supervisor_module.Supervisor

        class OneStrike(original):
            def __init__(self, campaign, **kwargs):
                kwargs["max_attempts"] = 1
                super().__init__(campaign, **kwargs)

        monkeypatch.setattr(supervisor_module, "Supervisor", OneStrike)
        catalog = CampaignCatalog(tmp_path / "catalog")
        campaign = _tiny()
        campaign.run(store=catalog, workers=2, worker_faults="pathological")
        assert campaign.supervision.degraded
        assert catalog.entries() == []  # a partial dataset is never cached

    def test_resume_after_degraded_run_completes_the_dataset(self):
        """The quarantined windows stay pending: a later supervised run
        with working workers picks them up and finishes byte-identically."""
        checkpoint = CollectionCheckpoint()
        campaign = _tiny()
        campaign.create_measurements()
        dataset = CampaignDataset(campaign.platform.probes, campaign.platform.fleet)
        Supervisor(
            campaign, workers=2, worker_faults="pathological", max_attempts=1
        ).collect_into(dataset, checkpoint=checkpoint)
        assert campaign.supervision.degraded

        # The outage ends: resume over the same checkpoint, no faults.
        campaign.collect_into(dataset, checkpoint=checkpoint)
        dataset.freeze()
        baseline = _tiny().run()
        assert dataset.num_samples == baseline.num_samples
