"""Tests for repro.core.feasibility (measured Figure 8)."""

import pytest

from repro.apps.catalog import get_application
from repro.core.feasibility import (
    ContinentLatency,
    app_verdict_for_continent,
    cloud_sufficient_share,
    edge_beneficiaries,
    feasibility_matrix,
    measured_latency,
)
from repro.errors import CampaignError


class TestMeasuredLatency:
    def test_all_continents(self, tiny_dataset):
        latencies = measured_latency(tiny_dataset)
        assert set(latencies) == {"NA", "EU", "OC", "AS", "SA", "AF"}

    def test_quartiles_ordered(self, tiny_dataset):
        for latency in measured_latency(tiny_dataset).values():
            assert latency.p25 <= latency.median <= latency.p75

    def test_empty_samples_rejected(self):
        import numpy as np

        with pytest.raises(CampaignError):
            ContinentLatency.from_samples("EU", np.asarray([]))


class TestVerdicts:
    def test_cloud_serves_relaxed_apps_in_eu(self, tiny_dataset):
        latency = measured_latency(tiny_dataset)["EU"]
        verdict = app_verdict_for_continent(
            get_application("smart-home"), latency
        )
        assert verdict == "cloud"

    def test_onboard_for_av_everywhere(self, tiny_dataset):
        for latency in measured_latency(tiny_dataset).values():
            verdict = app_verdict_for_continent(
                get_application("autonomous-vehicles"), latency
            )
            assert verdict == "onboard"

    def test_africa_needs_edge_for_gaming(self, tiny_dataset):
        """Under-served continents are where edge latency gains exist
        (paper §6: 'in developing regions, gains are more significant')."""
        latency = measured_latency(tiny_dataset)["AF"]
        verdict = app_verdict_for_continent(
            get_application("cloud-gaming"), latency
        )
        assert verdict in ("edge", "cloud-marginal")


class TestMatrix:
    def test_matrix_shape(self, tiny_dataset):
        matrix = feasibility_matrix(tiny_dataset)
        assert "application" in matrix
        assert "fz_verdict" in matrix
        assert "EU" in matrix
        from repro.apps.catalog import all_applications

        assert len(matrix) == len(all_applications())

    def test_beneficiaries_are_fz_members(self, tiny_dataset):
        beneficiaries = edge_beneficiaries(tiny_dataset)
        matrix = feasibility_matrix(tiny_dataset)
        fz_apps = {
            str(row["application"])
            for row in matrix.iter_rows()
            if row["fz_verdict"] == "IN_ZONE"
        }
        assert set(beneficiaries) <= fz_apps

    def test_cloud_sufficient_share_ordering(self, tiny_dataset):
        """Well-connected continents have the cloud serving more apps."""
        shares = cloud_sufficient_share(tiny_dataset)
        assert shares["EU"] >= shares["AF"]
        assert shares["NA"] >= shares["SA"]
        assert all(0.0 <= s <= 1.0 for s in shares.values())
