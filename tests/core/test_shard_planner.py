"""Property-based tests for the parallel-collection shard planner.

``plan_shards`` carries the exactly-once guarantee the whole parity
contract rests on: if an index were dropped or doubled, the merged
dataset would silently diverge from a serial run.  Hypothesis sweeps
arbitrary (fleet size, worker count) combinations instead of a handful
of hand-picked ones.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign import (
    plan_row_shards,
    plan_shards,
    resolve_workers,
)
from repro.errors import CampaignError


class TestPlanShardsProperties:
    @given(count=st.integers(0, 600), workers=st.integers(1, 64))
    @settings(max_examples=200)
    def test_every_measurement_assigned_exactly_once_in_order(
        self, count, workers
    ):
        shards = plan_shards(count, workers)
        flat = [index for shard in shards for index in shard]
        # Concatenating the shards reproduces range(count) exactly:
        # every index once, canonical order, contiguous shards.
        assert flat == list(range(count))

    @given(count=st.integers(0, 600), workers=st.integers(1, 64))
    @settings(max_examples=200)
    def test_shards_are_balanced_and_never_empty(self, count, workers):
        shards = plan_shards(count, workers)
        assert len(shards) == min(workers, count)
        assert all(shard for shard in shards)
        if shards:
            sizes = [len(shard) for shard in shards]
            assert max(sizes) - min(sizes) <= 1

    @given(count=st.integers(0, 40), workers=st.integers(1, 1000))
    @settings(max_examples=100)
    def test_more_workers_than_measurements(self, count, workers):
        """Oversubscription degrades to one-measurement shards, never
        empty ones."""
        shards = plan_shards(count, workers)
        if workers >= count:
            assert shards == [[index] for index in range(count)]

    @given(count=st.integers(0, 600))
    @settings(max_examples=100)
    def test_single_worker_degenerates_to_serial(self, count):
        shards = plan_shards(count, 1)
        if count == 0:
            assert shards == []
        else:
            assert shards == [list(range(count))]


ROW_PLANS = st.tuples(
    st.lists(st.integers(0, 5000), max_size=60),
    st.integers(1, 16),
    st.integers(1, 4096),
)


class TestPlanRowShardsProperties:
    """Store-aware plans: the direct-write invariants, swept broadly.

    A :class:`~repro.core.campaign.RowShard` slice is writable
    shared-nothing only if its geometry is *exactly* consistent with the
    global row stream — its interior shards must land on global
    ``rows_per_shard`` boundaries, under their final indices, with the
    head/tail partials accounting for every remaining row.  These
    properties are what make direct-store manifest concatenation
    byte-identical to a serial write.
    """

    @given(plan_input=ROW_PLANS)
    @settings(max_examples=200)
    def test_slices_tile_measurements_and_rows_exactly(self, plan_input):
        counts, workers, rows_per_shard = plan_input
        plan = plan_row_shards(counts, workers, rows_per_shard)
        # Entry ranges concatenate to range(len(counts)): exactly once,
        # canonical order, no gaps.
        flat = [
            index for shard in plan for index in range(*shard.entries)
        ]
        assert flat == list(range(len(counts)))
        # Row offsets are the prefix sums of the entry counts — each
        # slice knows its true global position in the row stream.
        cursor = 0
        for shard in plan:
            lo, hi = shard.entries
            assert shard.row_start == cursor
            assert shard.rows == sum(counts[lo:hi])
            cursor += shard.rows
        assert cursor == sum(counts)

    @given(plan_input=ROW_PLANS)
    @settings(max_examples=200)
    def test_interior_shards_land_on_exact_global_boundaries(
        self, plan_input
    ):
        counts, workers, rows_per_shard = plan_input
        total = sum(counts)
        for shard in plan_row_shards(counts, workers, rows_per_shard):
            head = shard.head_rows(rows_per_shard)
            interior = shard.interior_shards(rows_per_shard)
            tail = shard.tail_rows(rows_per_shard)
            # The three segments account for every row in the slice.
            assert head + interior * rows_per_shard + tail == shard.rows
            assert 0 <= tail < rows_per_shard
            first_interior_row = shard.row_start + head
            if head < shard.rows:
                # The head fills up to the first global boundary …
                assert first_interior_row % rows_per_shard == 0
            # … and every interior shard is a whole global shard: its
            # final index times rows_per_shard is its global row span,
            # entirely inside this slice.
            first = shard.first_shard_index(rows_per_shard)
            for offset in range(interior):
                lo = (first + offset) * rows_per_shard
                assert lo == first_interior_row + offset * rows_per_shard
                assert shard.row_start <= lo
                assert lo + rows_per_shard <= shard.row_start + shard.rows
                assert lo + rows_per_shard <= total

    @given(plan_input=ROW_PLANS)
    @settings(max_examples=200)
    def test_interior_shard_indices_are_disjoint_across_workers(
        self, plan_input
    ):
        counts, workers, rows_per_shard = plan_input
        plan = plan_row_shards(counts, workers, rows_per_shard)
        claimed = []
        for shard in plan:
            first = shard.first_shard_index(rows_per_shard)
            claimed.extend(
                range(first, first + shard.interior_shards(rows_per_shard))
            )
        # No two workers ever write the same global shard file, and
        # claims arrive in ascending global order.
        assert claimed == sorted(set(claimed))

    @given(counts=st.lists(st.integers(0, 5000), max_size=60))
    @settings(max_examples=100)
    def test_single_worker_single_slice(self, counts):
        plan = plan_row_shards(counts, 1, 64)
        if not counts:
            assert plan == []
        else:
            (only,) = plan
            assert only.entries == (0, len(counts))
            assert only.row_start == 0
            assert only.rows == sum(counts)

    @given(plan_input=ROW_PLANS)
    @settings(max_examples=100)
    def test_row_balance_cuts_at_proportional_targets(self, plan_input):
        """No slice overshoots its balanced target by more than one
        window — the planner cuts as soon as the target is crossed."""
        counts, workers, rows_per_shard = plan_input
        total = sum(counts)
        plan = plan_row_shards(counts, workers, rows_per_shard)
        for shard in plan[:-1]:
            end = shard.row_start + shard.rows
            lo, hi = shard.entries
            last_window = counts[hi - 1]
            # Before its last window the slice was under *some* target.
            assert any(
                end - last_window < (total * k) // workers <= end
                or end == (total * k) // workers
                for k in range(1, workers + 1)
            )


class TestPlanRowShardsValidation:
    def test_negative_count_rejected(self):
        with pytest.raises(CampaignError):
            plan_row_shards([10, -1], 2, 64)

    @pytest.mark.parametrize("workers", [0, -3])
    def test_nonpositive_workers_rejected(self, workers):
        with pytest.raises(CampaignError):
            plan_row_shards([10], workers, 64)

    @pytest.mark.parametrize("rows_per_shard", [0, -64])
    def test_nonpositive_rows_per_shard_rejected(self, rows_per_shard):
        with pytest.raises(CampaignError):
            plan_row_shards([10], 2, rows_per_shard)


class TestPlanShardsValidation:
    def test_negative_count_rejected(self):
        with pytest.raises(CampaignError):
            plan_shards(-1, 4)

    @pytest.mark.parametrize("workers", [0, -3])
    def test_nonpositive_workers_rejected(self, workers):
        with pytest.raises(CampaignError):
            plan_shards(10, workers)


class TestResolveWorkers:
    def test_none_and_one_mean_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_auto_is_positive_and_capped(self):
        assert 1 <= resolve_workers("auto") <= 8

    def test_explicit_count_passes_through(self):
        assert resolve_workers(6) == 6

    @pytest.mark.parametrize("workers", [0, -2])
    def test_nonpositive_rejected(self, workers):
        with pytest.raises(CampaignError):
            resolve_workers(workers)
