"""Property-based tests for the parallel-collection shard planner.

``plan_shards`` carries the exactly-once guarantee the whole parity
contract rests on: if an index were dropped or doubled, the merged
dataset would silently diverge from a serial run.  Hypothesis sweeps
arbitrary (fleet size, worker count) combinations instead of a handful
of hand-picked ones.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign import plan_shards, resolve_workers
from repro.errors import CampaignError


class TestPlanShardsProperties:
    @given(count=st.integers(0, 600), workers=st.integers(1, 64))
    @settings(max_examples=200)
    def test_every_measurement_assigned_exactly_once_in_order(
        self, count, workers
    ):
        shards = plan_shards(count, workers)
        flat = [index for shard in shards for index in shard]
        # Concatenating the shards reproduces range(count) exactly:
        # every index once, canonical order, contiguous shards.
        assert flat == list(range(count))

    @given(count=st.integers(0, 600), workers=st.integers(1, 64))
    @settings(max_examples=200)
    def test_shards_are_balanced_and_never_empty(self, count, workers):
        shards = plan_shards(count, workers)
        assert len(shards) == min(workers, count)
        assert all(shard for shard in shards)
        if shards:
            sizes = [len(shard) for shard in shards]
            assert max(sizes) - min(sizes) <= 1

    @given(count=st.integers(0, 40), workers=st.integers(1, 1000))
    @settings(max_examples=100)
    def test_more_workers_than_measurements(self, count, workers):
        """Oversubscription degrades to one-measurement shards, never
        empty ones."""
        shards = plan_shards(count, workers)
        if workers >= count:
            assert shards == [[index] for index in range(count)]

    @given(count=st.integers(0, 600))
    @settings(max_examples=100)
    def test_single_worker_degenerates_to_serial(self, count):
        shards = plan_shards(count, 1)
        if count == 0:
            assert shards == []
        else:
            assert shards == [list(range(count))]


class TestPlanShardsValidation:
    def test_negative_count_rejected(self):
        with pytest.raises(CampaignError):
            plan_shards(-1, 4)

    @pytest.mark.parametrize("workers", [0, -3])
    def test_nonpositive_workers_rejected(self, workers):
        with pytest.raises(CampaignError):
            plan_shards(10, workers)


class TestResolveWorkers:
    def test_none_and_one_mean_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_auto_is_positive_and_capped(self):
        assert 1 <= resolve_workers("auto") <= 8

    def test_explicit_count_passes_through(self):
        assert resolve_workers(6) == 6

    @pytest.mark.parametrize("workers", [0, -2])
    def test_nonpositive_rejected(self, workers):
        with pytest.raises(CampaignError):
            resolve_workers(workers)
