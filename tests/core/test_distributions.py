"""Tests for repro.core.distributions (Figure 6)."""

import numpy as np

from repro.core.distributions import (
    all_samples_cdf_by_continent,
    eu_tail_analysis,
    provider_comparison,
    samples_by_continent,
    threshold_table,
)
from repro.core.filtering import unprivileged_mask


class TestSampleGrouping:
    def test_partition_of_nearest_samples(self, tiny_dataset):
        from repro.core.nearest import nearest_target_mask

        groups = samples_by_continent(tiny_dataset)
        total = sum(len(values) for values in groups.values())
        expected = nearest_target_mask(tiny_dataset, unprivileged_mask(tiny_dataset))
        assert total == int(np.sum(expected))

    def test_all_targets_mode_partitions_everything(self, tiny_dataset):
        groups = samples_by_continent(tiny_dataset, nearest_only=False)
        total = sum(len(values) for values in groups.values())
        assert total == int(np.sum(unprivileged_mask(tiny_dataset)))

    def test_nearest_is_subset(self, tiny_dataset):
        nearest = samples_by_continent(tiny_dataset)
        full = samples_by_continent(tiny_dataset, nearest_only=False)
        for continent, values in nearest.items():
            assert len(values) <= len(full[continent])

    def test_cdfs_match_groups(self, tiny_dataset):
        groups = samples_by_continent(tiny_dataset)
        cdfs = all_samples_cdf_by_continent(tiny_dataset)
        for continent, values in groups.items():
            assert len(cdfs[continent]) == len(values)


class TestThresholdTable:
    def test_columns(self, tiny_dataset):
        frame = threshold_table(tiny_dataset)
        assert "under_mtp" in frame
        assert "under_pl" in frame
        assert len(frame) == 6

    def test_shares_valid(self, tiny_dataset):
        frame = threshold_table(tiny_dataset)
        for row in frame.iter_rows():
            assert 0.0 <= row["under_mtp"] <= row["under_pl"] <= 1.0

    def test_quartiles_ordered(self, tiny_dataset):
        frame = threshold_table(tiny_dataset)
        for row in frame.iter_rows():
            assert row["p25"] <= row["median"] <= row["p75"] <= row["p95"]


class TestEuTail:
    def test_eastern_europe_drives_the_tail(self, tiny_dataset):
        analysis = eu_tail_analysis(tiny_dataset)
        assert analysis["eu_eastern_median"] > analysis["eu_western_median"]

    def test_na_lacks_eu_tail(self, tiny_dataset):
        """'the long tail of latency distribution for EU is largely
        missing from NA.'"""
        analysis = eu_tail_analysis(tiny_dataset)
        assert analysis["na_p95"] < analysis["eu_p95"]


class TestProviderComparison:
    def test_all_providers_measured(self, tiny_dataset):
        frame = provider_comparison(tiny_dataset)
        assert len(frame) == 7

    def test_medians_positive(self, tiny_dataset):
        frame = provider_comparison(tiny_dataset)
        for row in frame.iter_rows():
            assert row["median"] > 0
            assert row["median"] <= row["p90"]
