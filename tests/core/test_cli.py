"""Tests for repro.cli."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_figure_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])


class TestCommands:
    def test_footprint(self, capsys):
        assert main(["footprint"]) == 0
        out = capsys.readouterr().out
        assert "datacenter countries: 21" in out

    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "Cloud gaming" in out
        assert "edge feasibility zone" in out

    def test_whatif(self, capsys):
        assert main(["whatif"]) == 0
        out = capsys.readouterr().out
        assert "5g-promised" in out
        assert "ar-vr" in out

    def test_figure_1(self, capsys):
        assert main(["figure", "1"]) == 0
        out = capsys.readouterr().out
        assert "eras:" in out

    def test_figure_2(self, capsys):
        assert main(["figure", "2"]) == 0
        assert "Q1" in capsys.readouterr().out

    def test_figure_8(self, capsys):
        assert main(["figure", "8"]) == 0
        assert "cloud-gaming" in capsys.readouterr().out


class TestCampaignCommands:
    """Commands that run a (tiny) campaign — slower, but end-to-end."""

    def test_run(self, capsys):
        assert main(["run", "--scale", "tiny", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "wireless penalty" in out
        assert "paper=" in out

    def test_figure_5(self, capsys):
        assert main(["figure", "5", "--scale", "tiny", "--seed", "5"]) == 0
        assert "RTT (ms)" in capsys.readouterr().out

    def test_export(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert main(
            ["export", "--scale", "tiny", "--seed", "5", "--out", str(out_dir)]
        ) == 0
        assert (out_dir / "dataset.csv").exists()
        assert (out_dir / "fig5.json").exists()

    def test_validate_returns_status(self, capsys):
        # TINY misses a couple of band checks by design; the command
        # reports them and signals via the exit code.
        code = main(["validate", "--scale", "tiny", "--seed", "5"])
        out = capsys.readouterr().out
        assert "paper-shape checks passed" in out
        assert code in (0, 1)

    def test_report_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert main(
            ["report", "--scale", "tiny", "--seed", "5", "--out", str(path)]
        ) == 0
        text = path.read_text(encoding="utf-8")
        assert "# Latency Shears" in text
        assert "Figure 6" in text


class TestChaosFlags:
    def test_faults_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--faults", "apocalyptic"])

    def test_run_with_faults_reports_health(self, capsys):
        assert main(
            ["run", "--scale", "tiny", "--seed", "5", "--faults", "flaky"]
        ) == 0
        out = capsys.readouterr().out
        assert "chaos profile flaky" in out
        assert "retries" in out
        assert "wireless penalty" in out  # the report still renders

    def test_resume_clean_run_leaves_no_state(self, tmp_path, capsys):
        state = tmp_path / "state"
        assert main(
            ["run", "--scale", "tiny", "--seed", "5",
             "--resume", str(state)]
        ) == 0
        assert not (state / "checkpoint.json").exists()
        assert not (state / "partial.csv").exists()

    def test_corrupt_resume_state_reported_cleanly(self, tmp_path, capsys):
        state = tmp_path / "state"
        state.mkdir()
        (state / "checkpoint.json").write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--scale", "tiny", "--seed", "5",
                  "--resume", str(state)])
        assert excinfo.value.code == 2
        assert "corrupt resume state" in capsys.readouterr().err

    def test_interrupt_then_resume_recovers_everything(self, tmp_path, capsys):
        """Drive the CLI's resume helper through an interruption and
        verify the resumed dataset matches a fault-free run."""
        import numpy as np

        from repro.atlas.api.retry import RetryPolicy
        from repro.atlas.api.transport import Transport
        from repro.cli import _resume_collect
        from repro.core.campaign import Campaign, CampaignScale

        baseline_campaign = Campaign.from_paper(
            scale=CampaignScale.TINY, seed=5
        )
        baseline = baseline_campaign.run()

        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=5)
        campaign.create_measurements()
        campaign.transport = Transport(
            campaign.platform,
            faults="flaky",
            retry=RetryPolicy(max_attempts=2, retry_budget=4),
        )
        state = tmp_path / "state"
        assert _resume_collect(campaign, state) is None
        assert (state / "checkpoint.json").exists()
        assert (state / "partial.csv").exists()

        # Second invocation, as a fresh process would run it.
        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=5)
        campaign.create_measurements()
        campaign.transport = Transport(campaign.platform, faults="flaky")
        resumed = _resume_collect(campaign, state)
        assert resumed is not None
        assert not (state / "checkpoint.json").exists()
        assert resumed.num_samples == baseline.num_samples
        key = lambda ds: sorted(
            zip(ds.column("probe_id"), ds.column("timestamp"),
                ds.column("target_index"))
        )
        assert key(resumed) == key(baseline)
        assert np.array_equal(
            np.sort(resumed.column("rtt_min")),
            np.sort(baseline.column("rtt_min")),
            equal_nan=True,
        )


class TestObservabilityFlags:
    def test_log_level_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--log-level", "chatty"])

    def test_common_flags_parse_on_every_subcommand(self):
        parser = build_parser()
        for command in (["run"], ["report"], ["obs", "report"]):
            args = parser.parse_args(
                command + ["--log-level", "debug", "--json-logs"]
            )
            assert args.log_level == "debug"
            assert args.json_logs is True

    def test_collect_alias(self, capsys):
        assert main(["collect", "--scale", "tiny", "--seed", "5"]) == 0
        assert "wireless penalty" in capsys.readouterr().out

    def test_metrics_out_writes_snapshot_and_prometheus(self, tmp_path, capsys):
        import json

        out = tmp_path / "metrics.json"
        assert main(
            ["run", "--scale", "tiny", "--seed", "5",
             "--metrics-out", str(out)]
        ) == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["counters"]["campaign_measurements_collected_total"] > 0
        prom = (tmp_path / "metrics.prom").read_text()
        assert "# TYPE campaign_measurements_collected_total counter" in prom

    def test_report_health_emits_json(self, capsys):
        import json

        assert main(
            ["report", "--scale", "tiny", "--seed", "5", "--health"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) >= {"collection", "fleet", "metrics"}
        assert report["fleet"]["delivery_rate"] == pytest.approx(1.0)

    def test_obs_report_with_trace(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        assert main(
            ["obs", "report", "--scale", "tiny", "--seed", "5",
             "--faults", "flaky", "--trace-out", str(trace)]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        counters = report["metrics"]["counters"]
        fault_keys = [k for k in counters if k.startswith("faults_injected_total")]
        assert fault_keys, "chaos run must record injected faults"
        lines = trace.read_text().splitlines()
        names = {json.loads(line)["name"] for line in lines}
        assert {"campaign.collect", "campaign.fetch"} <= names

    def test_json_logs_shape_warnings(self, tmp_path, capsys):
        # A clean tiny run emits no warnings; the flag must still be
        # accepted and leave stdout parseable for --health consumers.
        import json

        assert main(
            ["report", "--scale", "tiny", "--seed", "5", "--health",
             "--log-level", "info", "--json-logs"]
        ) == 0
        assert "collection" in json.loads(capsys.readouterr().out)
