"""Calibration against the paper's published shape (SMALL campaign).

These tests pin the reproduction to the quantitative claims of §4; the
bands are deliberately generous (the substrate is a simulator and SMALL
subsamples probes), but the *orderings* and *threshold crossings* are the
paper's and must hold exactly.

The shared ``small_dataset`` fixture takes ~20 s to generate; everything
here reuses it.
"""

import numpy as np
import pytest

from repro.constants import MTP_MS, PL_MS
from repro.core.distributions import samples_by_continent
from repro.core.lastmile import added_wireless_latency_ms
from repro.core.proximity import min_rtt_cdf_by_continent
from repro.core.report import headline_report


@pytest.fixture(scope="module")
def report(small_dataset):
    return headline_report(small_dataset)


class TestFigure4Claims:
    def test_countries_under_10ms(self, report):
        """Paper: 32 countries under 10 ms."""
        assert 22 <= report.countries_under_10ms <= 42

    def test_countries_10_to_20(self, report):
        """Paper: another 21 countries in 10-20 ms."""
        assert 13 <= report.countries_10_to_20ms <= 30

    def test_countries_beyond_pl(self, report):
        """Paper: all but 16 countries meet the PL threshold."""
        assert 8 <= report.countries_over_pl <= 26

    def test_majority_of_population_served(self, report):
        """Abstract: the cloud is close enough for the majority of the
        world's population."""
        assert report.population_share_under_pl > 0.75


class TestFigure5Claims:
    def test_eu_na_probes_under_mtp(self, report):
        """Paper: ~80 % of EU and NA probes reach a datacenter within MTP."""
        assert report.probe_share_under_mtp["EU"] >= 0.65
        assert report.probe_share_under_mtp["NA"] >= 0.65

    def test_well_connected_half_of_all_probes(self, small_dataset):
        """Paper: EU+NA under-MTP probes are ~50 % of all probes."""
        cdfs = min_rtt_cdf_by_continent(small_dataset)
        total = sum(len(cdf) for cdf in cdfs.values())
        fast = sum(
            len(cdfs[c]) * cdfs[c].fraction_below(MTP_MS) for c in ("EU", "NA")
        )
        assert 0.35 <= fast / total <= 0.65

    def test_oceania_within_50ms(self, small_dataset):
        """Paper: almost all Oceania probes reach the cloud within 50 ms."""
        cdfs = min_rtt_cdf_by_continent(small_dataset)
        assert cdfs["OC"].fraction_below(50.0) >= 0.6

    def test_africa_latam_within_pl(self, small_dataset):
        """Paper: ~75 % of AF and SA probes under 100 ms (best case)."""
        cdfs = min_rtt_cdf_by_continent(small_dataset)
        assert cdfs["AF"].fraction_below(PL_MS) >= 0.6
        assert cdfs["SA"].fraction_below(PL_MS) >= 0.6


class TestFigure6Claims:
    def test_well_connected_beat_pl(self, report):
        """Paper: >75 % of NA/EU/OC samples below the PL threshold."""
        for continent in ("NA", "EU"):
            assert report.sample_share_under_pl[continent] >= 0.75, continent
        # Oceania's average is dragged by Pacific-island probes that the
        # one-per-country floor over-weights at SMALL scale.
        assert report.sample_share_under_pl["OC"] >= 0.72

    def test_underserved_fractional(self, report):
        """Paper: AS/SA/AF visibly miss PL for a large share of samples
        (our simulator is somewhat more optimistic for AS/SA than the
        published curves; see EXPERIMENTS.md)."""
        for continent in ("AS", "SA"):
            assert report.sample_share_under_pl[continent] <= 0.90, continent
        assert report.sample_share_under_pl["AF"] <= 0.60
        # And they all trail NA/EU clearly.
        floor = min(
            report.sample_share_under_pl["NA"], report.sample_share_under_pl["EU"]
        )
        for continent in ("AS", "SA", "AF"):
            assert report.sample_share_under_pl[continent] < floor - 0.05

    def test_top_quartile_na_eu_supports_mtp(self, small_dataset):
        """Paper: the top 25 % of NA and EU probes can support MTP."""
        groups = samples_by_continent(small_dataset)
        for continent in ("NA", "EU"):
            p25 = float(np.percentile(groups[continent], 25))
            assert p25 <= MTP_MS, continent

    def test_continent_ordering(self, report):
        """NA/EU >> AS > AF in sample share under PL."""
        shares = report.sample_share_under_pl
        assert shares["EU"] > shares["AS"] > shares["AF"]
        assert shares["NA"] > shares["SA"]


class TestFigure7Claims:
    def test_wireless_penalty(self, report):
        """Paper: wireless probes take ~2.5x longer."""
        assert 1.8 <= report.wireless_penalty <= 3.5

    def test_added_wireless_latency(self, small_dataset):
        """Paper cites 10-40 ms of added last-mile wireless latency."""
        assert 8.0 <= added_wireless_latency_ms(small_dataset) <= 50.0


class TestFacebookCheckpoint:
    def test_most_users_under_40ms(self, report):
        """Schlinker et al.: clients rarely observe >40 ms to Facebook;
        our NA+EU samples should mostly sit under 40 ms too."""
        assert report.facebook_share_under_40ms >= 0.7
