"""Tests for repro.core.campaign."""

import numpy as np
import pytest

from repro.atlas.api.retry import RetryPolicy
from repro.atlas.api.transport import Transport
from repro.atlas.credits import CreditAccount
from repro.atlas.platform import AtlasPlatform
from repro.constants import CAMPAIGN_START_TS
from repro.core.campaign import Campaign, CampaignScale, CollectionCheckpoint
from repro.errors import CampaignError, CollectionInterruptedError


class TestScales:
    def test_full_matches_paper_methodology(self):
        full = CampaignScale.FULL
        assert full.interval_s == 3 * 3600
        assert full.duration_days == 273  # nine months
        assert full.probe_fraction == 1.0

    def test_vantage_count_floor(self):
        assert CampaignScale.TINY.vantage_count(1) == 1
        assert CampaignScale.TINY.vantage_count(420) == 1

    def test_vantage_count_proportional(self):
        assert CampaignScale.SMALL.vantage_count(420) == 52 or \
            CampaignScale.SMALL.vantage_count(420) == 53
        assert CampaignScale.FULL.vantage_count(420) == 420


class TestPlanning:
    def test_plan_covers_every_probe_country(self, tiny_campaign):
        plan = tiny_campaign.plan
        total = plan.total_vantage_points
        assert total == 166  # one per probed country at TINY

    def test_af_probes_target_eu(self, tiny_campaign):
        eu_vm = next(
            vm for vm in tiny_campaign.platform.fleet if vm.region.continent == "EU"
        )
        ids = tiny_campaign._vantage_ids_for_target(eu_vm)
        continents = {
            tiny_campaign.platform.probe(pid).continent for pid in ids
        }
        assert continents == {"EU", "AF"}

    def test_sa_probes_target_na(self, tiny_campaign):
        na_vm = next(
            vm for vm in tiny_campaign.platform.fleet if vm.region.continent == "NA"
        )
        ids = tiny_campaign._vantage_ids_for_target(na_vm)
        continents = {
            tiny_campaign.platform.probe(pid).continent for pid in ids
        }
        assert continents == {"NA", "SA"}

    def test_na_probes_stay_home(self, tiny_campaign):
        as_vm = next(
            vm for vm in tiny_campaign.platform.fleet if vm.region.continent == "AS"
        )
        ids = tiny_campaign._vantage_ids_for_target(as_vm)
        continents = {
            tiny_campaign.platform.probe(pid).continent for pid in ids
        }
        assert continents == {"AS"}


class TestExecution:
    def test_one_measurement_per_region(self, tiny_campaign):
        assert len(tiny_campaign.measurement_ids) == 101

    def test_double_create_idempotent(self, tiny_campaign):
        """Re-running create_measurements must not duplicate measurements."""
        ids_before = list(tiny_campaign.measurement_ids)
        ids_again = tiny_campaign.create_measurements()
        assert ids_again == ids_before
        assert len(tiny_campaign.platform.list_measurements(
            key=tiny_campaign.api_key)) == len(ids_before)

    def test_collect_before_create_rejected(self):
        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=99)
        with pytest.raises(CampaignError):
            campaign.collect()

    def test_dataset_covers_fleet(self, tiny_dataset):
        assert len(np.unique(tiny_dataset.column("target_index"))) == 101

    def test_timestamps_in_window(self, tiny_dataset, tiny_campaign):
        timestamps = tiny_dataset.column("timestamp")
        assert timestamps.min() >= CAMPAIGN_START_TS
        assert timestamps.max() < tiny_campaign.stop_time

    def test_quota_was_raised(self, tiny_campaign):
        account = tiny_campaign.platform.accounts[tiny_campaign.api_key]
        assert account.spent_total > 0

    def test_windowed_collection_concatenates(self):
        """Two non-overlapping windows equal the full collection —
        the 'measurements are ongoing' incremental-analysis mode."""
        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=61)
        campaign.create_measurements()
        midpoint = campaign.start_time + campaign.scale.duration_s // 2
        full = campaign.collect()

        from repro.core.dataset import CampaignDataset

        incremental = CampaignDataset(
            campaign.platform.probes, campaign.platform.fleet
        )
        campaign.collect_into(incremental, stop=midpoint)
        first_half = incremental._buffer.size
        campaign.collect_into(incremental, start=midpoint)
        incremental.freeze()

        assert 0 < first_half < len(incremental)
        assert incremental.num_samples == full.num_samples
        # Same multiset of samples (order differs: window-major).
        full_keys = sorted(
            zip(full.column("probe_id"), full.column("timestamp"),
                full.column("target_index"))
        )
        inc_keys = sorted(
            zip(incremental.column("probe_id"), incremental.column("timestamp"),
                incremental.column("target_index"))
        )
        assert full_keys == inc_keys

    def test_collect_window_bounds_respected(self, tiny_campaign):
        midpoint = (
            tiny_campaign.start_time + tiny_campaign.scale.duration_s // 2
        )
        window = tiny_campaign.collect(start=midpoint)
        assert window.column("timestamp").min() >= midpoint

    def test_quota_interrupted_create_is_resumable(self):
        """A mid-loop QuotaExceededError leaves create_measurements
        retryable: top up the account and call again — already-created
        measurements are skipped, never duplicated."""
        platform = AtlasPlatform(seed=44)
        # TINY creation costs ~115k credits (~1.1k per measurement); 50k
        # runs dry partway through the fleet loop.
        platform.register_account(
            CreditAccount(key="TIGHT", balance=50_000, daily_limit=10_000_000)
        )
        campaign = Campaign(
            platform, scale=CampaignScale.TINY, api_key="TIGHT"
        )
        with pytest.raises(CampaignError, match="quota|balance|402"):
            campaign.create_measurements()
        partial = list(campaign.measurement_ids)
        assert 0 < len(partial) < len(platform.fleet)

        platform.accounts["TIGHT"].grant(200_000)
        ids = campaign.create_measurements()
        assert len(ids) == len(platform.fleet)
        assert len(set(ids)) == len(ids)
        assert ids[: len(partial)] == partial  # fleet order preserved
        assert len(platform.list_measurements(key="TIGHT")) == len(ids)

        # And the campaign is fully usable afterwards.
        dataset = campaign.collect(stop=campaign.start_time + 43_200)
        assert dataset.num_samples > 0

    def test_interrupted_collection_resumes_without_loss(self):
        """Checkpointed collection survives a transport giving out mid-run
        and resumes to the exact fault-free dataset."""
        baseline_campaign = Campaign.from_paper(
            scale=CampaignScale.TINY, seed=47
        )
        baseline_campaign.create_measurements()
        baseline = baseline_campaign.collect()

        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=47)
        campaign.create_measurements()
        # Swap in a chaos transport too starved to ride out the faults.
        campaign.transport = Transport(
            campaign.platform,
            faults="flaky",
            retry=RetryPolicy(max_attempts=2, retry_budget=4),
        )
        checkpoint = CollectionCheckpoint()
        with pytest.raises(CollectionInterruptedError) as excinfo:
            campaign.collect(checkpoint=checkpoint)
        interrupted = excinfo.value
        assert interrupted.checkpoint is checkpoint
        partial = interrupted.dataset
        done = len(checkpoint.high_water)
        assert 0 < done < len(campaign.measurement_ids)
        assert campaign.collection_stats.interruptions == 1
        # The error names the measurement whose fetch died — the first
        # uncollected one in fleet order, absent from the checkpoint.
        assert interrupted.msm_id == campaign.measurement_ids[done]
        assert interrupted.msm_id not in checkpoint.high_water

        # Resume through a healthy-policy transport, same chaos profile.
        campaign.transport = Transport(campaign.platform, faults="flaky")
        resumed = campaign.collect(checkpoint=checkpoint, dataset=partial)
        assert resumed.num_samples == baseline.num_samples
        for column in ("probe_id", "target_index", "timestamp"):
            assert np.array_equal(
                resumed.column(column), baseline.column(column)
            )
        assert np.array_equal(
            resumed.column("rtt_min"), baseline.column("rtt_min"),
            equal_nan=True,
        )

    def test_checkpoint_roundtrips_through_json(self, tmp_path):
        checkpoint = CollectionCheckpoint()
        checkpoint.mark(100_001, 1_600_000_000)
        checkpoint.mark(100_002, 1_600_100_000)
        checkpoint.mark(100_001, 1_500_000_000)  # older: ignored
        path = tmp_path / "checkpoint.json"
        checkpoint.save(path)
        loaded = CollectionCheckpoint.load(path)
        assert loaded.high_water == {
            100_001: 1_600_000_000,
            100_002: 1_600_100_000,
        }
        assert loaded.collected_through(100_003, default=7) == 7

    def test_checkpointed_recollection_is_noop(self):
        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=47)
        campaign.create_measurements()
        checkpoint = CollectionCheckpoint()
        first = campaign.collect(checkpoint=checkpoint)
        again = campaign.collect(checkpoint=checkpoint)
        assert first.num_samples > 0
        assert again.num_samples == 0  # everything already covered

    def test_run_deterministic(self):
        a = Campaign.from_paper(scale=CampaignScale.TINY, seed=31).run()
        b = Campaign.from_paper(scale=CampaignScale.TINY, seed=31).run()
        assert np.array_equal(a.column("rtt_min"), b.column("rtt_min"),
                              equal_nan=True)
        assert np.array_equal(a.column("probe_id"), b.column("probe_id"))
