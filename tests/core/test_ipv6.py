"""Tests for the dual-stack extension (repro.core.ipv6 + platform af=6)."""

import pytest

from repro.atlas.api.client import AtlasCreateRequest
from repro.atlas.api.measurements import Ping
from repro.atlas.api.sources import AtlasSource
from repro.atlas.platform import AtlasPlatform
from repro.core.ipv6 import dual_stack_comparison, v6_penalty_by_continent
from repro.errors import CampaignError

T0 = 1_567_296_000


@pytest.fixture(scope="module")
def backend() -> AtlasPlatform:
    return AtlasPlatform(seed=9)


class TestPlatformV6:
    def test_v6_population_share(self, backend):
        dual = sum(1 for probe in backend.probes if probe.has_ipv6)
        share = dual / len(backend.probes)
        assert 0.35 <= share <= 0.75  # circa-2019 deployment

    def test_v6_system_tag(self, backend):
        probe = next(p for p in backend.probes if p.has_ipv6)
        assert "system-ipv6-works" in probe.tags
        probe = next(p for p in backend.probes if not p.has_ipv6)
        assert "system-ipv6-works" not in probe.tags

    def test_v6_address_format(self, backend):
        probe = next(p for p in backend.probes if p.has_ipv6)
        assert probe.address_v6.startswith("2001:db8:")
        probe = next(p for p in backend.probes if not p.has_ipv6)
        assert probe.address_v6 == ""

    def test_af6_measurement_filters_probes(self, backend):
        target = backend.hostname_for(backend.fleet[9])
        ok, response = AtlasCreateRequest(
            measurements=[Ping(target=target, interval=21_600, af=6)],
            sources=[AtlasSource(type="country", value="DE", requested=30)],
            start_time=T0,
            stop_time=T0 + 86_400,
            platform=backend,
        ).create()
        assert ok
        msm = backend.measurement(response["measurements"][0])
        assert all(probe.has_ipv6 for probe in msm.probes)

    def test_af6_results_use_v6_addresses(self, backend):
        target = backend.hostname_for(backend.fleet[9])
        ok, response = AtlasCreateRequest(
            measurements=[Ping(target=target, interval=21_600, af=6)],
            sources=[AtlasSource(type="country", value="DE", requested=5)],
            start_time=T0,
            stop_time=T0 + 86_400,
            platform=backend,
        ).create()
        assert ok
        results = backend.results(response["measurements"][0])
        assert results
        assert all(r["af"] == 6 for r in results)
        assert all(r["from"].startswith("2001:db8:") for r in results)


class TestDualStackStudy:
    @pytest.fixture(scope="class")
    def comparison(self, backend):
        return dual_stack_comparison(
            backend,
            "aws:eu-central-1",
            T0,
            probes_per_country=2,
            countries=("DE", "FR", "NL", "GB", "PL"),
        )

    def test_rows_have_both_families(self, comparison):
        assert len(comparison) > 5
        for row in comparison.iter_rows():
            assert row["v4_ms"] > 0
            assert row["v6_ms"] > 0

    def test_v6_penalty_positive_on_median(self, comparison):
        penalties = sorted(comparison["v6_penalty_ms"])
        median = penalties[len(penalties) // 2]
        assert median > 0.0

    def test_penalty_modest(self, comparison):
        """The v6 penalty is real but small — single-digit ms in EU."""
        penalties = v6_penalty_by_continent(comparison)
        assert 0.0 < penalties["EU"] < 10.0

    def test_empty_selection_rejected(self, backend):
        with pytest.raises(CampaignError):
            dual_stack_comparison(
                backend, "aws:eu-central-1", T0, countries=("XXX",)
            )
