"""Tests for repro.core.whatif — the 5G scenarios of §5."""

import pytest

from repro.apps.feasibility import Verdict
from repro.core.whatif import (
    SCENARIOS,
    rescued_market_busd,
    scenario_report,
    scenario_verdicts,
    verdict_changes,
    zone_for_scenario,
)
from repro.errors import ReproError


class TestScenarios:
    def test_unknown_scenario(self):
        with pytest.raises(ReproError):
            zone_for_scenario("6g")

    def test_zone_uses_scenario_floor(self):
        zone = zone_for_scenario("5g-promised")
        assert zone.latency_low_ms == SCENARIOS["5g-promised"]

    def test_baseline_matches_static_analysis(self):
        from repro.apps.feasibility import assess_all

        assert scenario_verdicts("wireless-2020") == assess_all()


class TestPaperSkepticism:
    def test_measured_5g_rescues_nothing(self):
        """Early 5G as measured does not move the hyped apps into the FZ."""
        changes = verdict_changes("5g-measured")
        rescued = [
            c for c in changes
            if c.scenario is Verdict.IN_ZONE and c.baseline is not Verdict.IN_ZONE
        ]
        assert rescued == []

    def test_promised_5g_rescues_the_hype(self):
        """Only the marketing-number 5G pulls AR/VR and autonomous
        vehicles into the zone — the paper's central caveat."""
        verdicts = scenario_verdicts("5g-promised")
        assert verdicts["ar-vr"] is Verdict.IN_ZONE
        assert verdicts["autonomous-vehicles"] is Verdict.IN_ZONE

    def test_rescued_market_ordering(self):
        assert rescued_market_busd("5g-promised") > rescued_market_busd(
            "5g-measured"
        )

    def test_lte_today_worse_or_equal(self):
        report = scenario_report()
        assert (
            report["lte-today"]["apps_in_zone"]
            <= report["5g-promised"]["apps_in_zone"]
        )

    def test_report_covers_all_scenarios(self):
        assert set(scenario_report()) == set(SCENARIOS)
