"""Tests for repro.core.proximity (Figures 4 and 5)."""

import numpy as np
import pytest

from repro.core.proximity import (
    BUCKET_LABELS,
    bucket_counts,
    bucket_label,
    countries_beyond_pl,
    country_min_latency,
    min_rtt_cdf_by_continent,
    per_probe_min,
    population_within,
)


class TestBucketLabel:
    @pytest.mark.parametrize(
        "rtt,expected",
        [
            (5.0, "<10 ms"),
            (10.0, "<10 ms"),
            (15.0, "10-20 ms"),
            (35.0, "20-50 ms"),
            (99.0, "50-100 ms"),
            (300.0, ">100 ms"),
        ],
    )
    def test_edges(self, rtt, expected):
        assert bucket_label(rtt) == expected


class TestPerProbeMin:
    def test_minimum_of_all_samples(self, tiny_dataset):
        minima = per_probe_min(tiny_dataset)
        probe_id, expected = next(iter(minima.items()))
        mask = (tiny_dataset.column("probe_id") == probe_id) & tiny_dataset.succeeded_mask()
        assert expected == pytest.approx(
            float(np.min(tiny_dataset.column("rtt_min")[mask]))
        )

    def test_excludes_privileged_probes(self, tiny_dataset):
        minima = per_probe_min(tiny_dataset)
        for probe_id in minima:
            probe = tiny_dataset.probe(probe_id)
            assert "datacentre" not in probe.user_tags
            assert "cloud" not in probe.user_tags


class TestCountryMinLatency:
    def test_frame_shape(self, tiny_dataset):
        frame = country_min_latency(tiny_dataset)
        assert frame.columns == ("country", "continent", "min_rtt", "bucket")
        assert len(frame) > 100

    def test_one_row_per_country(self, tiny_dataset):
        frame = country_min_latency(tiny_dataset)
        countries = list(frame["country"])
        assert len(countries) == len(set(countries))

    def test_bucket_consistent_with_value(self, tiny_dataset):
        frame = country_min_latency(tiny_dataset)
        for row in frame.iter_rows():
            assert row["bucket"] == bucket_label(float(row["min_rtt"]))

    def test_datacenter_countries_are_fast(self, tiny_dataset):
        """Countries hosting datacenters lead the map (paper §4.2)."""
        frame = country_min_latency(tiny_dataset)
        german = frame.filter(frame["country"] == "DE")
        assert float(german.row(0)["min_rtt"]) < 20.0

    def test_bucket_counts_sum(self, tiny_dataset):
        frame = country_min_latency(tiny_dataset)
        counts = bucket_counts(frame)
        assert set(counts) == set(BUCKET_LABELS)
        assert sum(counts.values()) == len(frame)

    def test_beyond_pl_mostly_africa(self, tiny_dataset):
        frame = country_min_latency(tiny_dataset)
        losers = countries_beyond_pl(frame)
        from repro.geo.countries import get_country

        african = sum(1 for c in losers if get_country(c).continent == "AF")
        assert african >= len(losers) / 2


class TestContinentCdfs:
    def test_all_continents_present(self, tiny_dataset):
        cdfs = min_rtt_cdf_by_continent(tiny_dataset)
        assert set(cdfs) == {"NA", "EU", "OC", "AS", "SA", "AF"}

    def test_well_connected_beat_underserved(self, tiny_dataset):
        cdfs = min_rtt_cdf_by_continent(tiny_dataset)
        assert cdfs["EU"].quantile(0.5) < cdfs["AF"].quantile(0.5)
        assert cdfs["NA"].quantile(0.5) < cdfs["SA"].quantile(0.5)


class TestPopulationCoverage:
    def test_share_in_unit_interval(self, tiny_dataset):
        share = population_within(tiny_dataset, 100.0)
        assert 0.0 < share <= 1.0

    def test_monotone_in_threshold(self, tiny_dataset):
        assert population_within(tiny_dataset, 20.0) <= population_within(
            tiny_dataset, 100.0
        )
