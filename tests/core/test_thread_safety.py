"""Thread-safety regression tests for shared collection state.

Parallel collection (thread executor) and any multi-threaded client hit
:class:`CreditAccount` and :class:`CollectionCheckpoint` concurrently.
These tests hammer the exact races their locks exist to close: lost
updates in check-then-apply charging, lost high-water advances, and torn
checkpoint files.  Without the locks each of these fails within a few
runs; with them they must pass every time.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.atlas.credits import CreditAccount
from repro.core.campaign import CollectionCheckpoint
from repro.errors import QuotaExceededError

THREADS = 8
ROUNDS = 250


def _hammer(worker, threads=THREADS):
    """Run ``worker(thread_index)`` on every thread through a barrier so
    they pile onto the shared state at the same instant."""
    barrier = threading.Barrier(threads)

    def runner(index):
        barrier.wait()
        return worker(index)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        futures = [pool.submit(runner, index) for index in range(threads)]
        return [future.result() for future in futures]


class TestCreditAccountConcurrency:
    def test_concurrent_charges_conserve_credits(self):
        """No lost updates: N threads x M unit charges debit exactly N*M
        from the balance, the total, and the per-day spend map."""
        account = CreditAccount(key="k", balance=10 ** 9, daily_limit=10 ** 9)
        start = account.balance

        _hammer(lambda _i: [account.charge(1, timestamp=0) for _ in range(ROUNDS)])

        expected = THREADS * ROUNDS
        assert start - account.balance == expected
        assert account.spent_total == expected
        assert account.spent_on_day(0) == expected

    def test_concurrent_overdraw_never_goes_negative(self):
        """The check-then-apply in charge() is atomic: with a balance
        covering only half the attempted charges, exactly balance-many
        succeed and the rest raise — never a negative balance."""
        balance = THREADS * ROUNDS // 2
        account = CreditAccount(key="k", balance=balance, daily_limit=10 ** 9)

        def worker(_index):
            succeeded = 0
            for _ in range(ROUNDS):
                try:
                    account.charge(1, timestamp=0)
                    succeeded += 1
                except QuotaExceededError:
                    pass
            return succeeded

        succeeded = sum(_hammer(worker))
        assert succeeded == balance
        assert account.balance == 0
        assert account.spent_total == balance

    def test_concurrent_daily_limit_is_exact(self):
        """Same atomicity for the daily limit path."""
        limit = THREADS * ROUNDS // 4
        account = CreditAccount(key="k", balance=10 ** 9, daily_limit=limit)

        def worker(_index):
            succeeded = 0
            for _ in range(ROUNDS):
                try:
                    account.charge(1, timestamp=86_400 * 3)
                    succeeded += 1
                except QuotaExceededError:
                    pass
            return succeeded

        succeeded = sum(_hammer(worker))
        assert succeeded == limit
        assert account.spent_on_day(86_400 * 3) == limit


class TestCheckpointConcurrency:
    def test_concurrent_marks_keep_every_high_water(self):
        """Interleaved marks on disjoint measurements lose nothing, and
        racing marks on a shared measurement keep the maximum."""
        checkpoint = CollectionCheckpoint()

        def worker(index):
            for round_index in range(ROUNDS):
                checkpoint.mark(index, round_index)  # private msm
                checkpoint.mark(10_000, index * ROUNDS + round_index)  # shared

        _hammer(worker)

        for index in range(THREADS):
            assert checkpoint.high_water[index] == ROUNDS - 1
        assert checkpoint.high_water[10_000] == THREADS * ROUNDS - 1

    def test_mark_never_regresses(self):
        checkpoint = CollectionCheckpoint()
        checkpoint.mark(1, 100)
        checkpoint.mark(1, 50)
        assert checkpoint.high_water[1] == 100

    def test_save_racing_marks_is_always_valid_json(self, tmp_path):
        """A saver looping against markers: every on-disk state must
        parse and round-trip — the atomic tmp-file-plus-rename write
        never exposes a torn file."""
        checkpoint = CollectionCheckpoint()
        path = tmp_path / "checkpoint.json"
        stop = threading.Event()
        failures = []

        def marker(index):
            for round_index in range(ROUNDS):
                checkpoint.mark(index, round_index)

        def saver():
            while not stop.is_set():
                checkpoint.save(path)
                try:
                    loaded = CollectionCheckpoint.load(path)
                except (json.JSONDecodeError, ValueError) as exc:
                    failures.append(exc)
                    return
                for msm_id, through in loaded.high_water.items():
                    if not (0 <= through < ROUNDS):
                        failures.append((msm_id, through))
                        return

        saver_thread = threading.Thread(target=saver)
        saver_thread.start()
        try:
            _hammer(marker)
        finally:
            stop.set()
            saver_thread.join()

        assert failures == []
        checkpoint.save(path)
        final = CollectionCheckpoint.load(path)
        assert final.high_water == checkpoint.high_water
        # No stray tmp files left behind by the atomic writes.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_concurrent_saves_leave_one_coherent_file(self, tmp_path):
        """Many threads saving the same checkpoint concurrently: the
        pid/tid-unique temp names mean no cross-thread clobbering, and
        the survivor is a complete snapshot."""
        checkpoint = CollectionCheckpoint()
        for index in range(50):
            checkpoint.mark(index, index * 10)
        path = tmp_path / "checkpoint.json"

        _hammer(lambda _i: [checkpoint.save(path) for _ in range(50)])

        loaded = CollectionCheckpoint.load(path)
        assert loaded.high_water == checkpoint.high_water
        assert list(tmp_path.glob("*.tmp")) == []
