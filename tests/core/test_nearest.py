"""Tests for repro.core.nearest."""

import numpy as np
import pytest

from repro.core.filtering import unprivileged_mask
from repro.core.nearest import nearest_target_by_probe, nearest_target_mask
from repro.errors import CampaignError


class TestNearestTargetByProbe:
    def test_every_probe_gets_a_target(self, tiny_dataset):
        mask = unprivileged_mask(tiny_dataset)
        best = nearest_target_by_probe(tiny_dataset, mask)
        probes_in_mask = set(np.unique(tiny_dataset.column("probe_id")[mask]))
        assert set(best) == {int(p) for p in probes_in_mask}

    def test_chosen_target_has_lowest_median(self, tiny_dataset):
        mask = unprivileged_mask(tiny_dataset)
        best = nearest_target_by_probe(tiny_dataset, mask)
        probe_ids = tiny_dataset.column("probe_id")
        targets = tiny_dataset.column("target_index")
        rtts = tiny_dataset.column("rtt_min")
        # Spot-check a handful of probes against a brute-force search.
        for probe_id in list(best)[:5]:
            probe_mask = mask & (probe_ids == probe_id)
            medians = {}
            for target in np.unique(targets[probe_mask]):
                values = np.sort(rtts[probe_mask & (targets == target)])
                # Lower-median convention, matching the implementation.
                medians[int(target)] = float(values[(len(values) - 1) // 2])
            brute = min(medians, key=medians.get)
            assert medians[best[probe_id]] <= medians[brute] + 1e-9

    def test_empty_mask_rejected(self, tiny_dataset):
        empty = np.zeros(len(tiny_dataset), dtype=bool)
        with pytest.raises(CampaignError):
            nearest_target_by_probe(tiny_dataset, empty)


class TestNearestTargetMask:
    def test_subset_of_input(self, tiny_dataset):
        mask = unprivileged_mask(tiny_dataset)
        nearest = nearest_target_mask(tiny_dataset, mask)
        assert not np.any(nearest & ~mask)

    def test_single_target_per_probe(self, tiny_dataset):
        mask = unprivileged_mask(tiny_dataset)
        nearest = nearest_target_mask(tiny_dataset, mask)
        probe_ids = tiny_dataset.column("probe_id")[nearest]
        targets = tiny_dataset.column("target_index")[nearest]
        for probe_id in np.unique(probe_ids)[:20]:
            assert len(np.unique(targets[probe_ids == probe_id])) == 1

    def test_lowers_median(self, tiny_dataset):
        """Nearest-only samples are faster than all-targets samples."""
        mask = unprivileged_mask(tiny_dataset)
        nearest = nearest_target_mask(tiny_dataset, mask)
        rtts = tiny_dataset.column("rtt_min")
        assert np.median(rtts[nearest]) < np.median(rtts[mask])
