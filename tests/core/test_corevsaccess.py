"""Tests for repro.core.corevsaccess."""

import math

import pytest

from repro.atlas.platform import AtlasPlatform
from repro.core.corevsaccess import decompose_pair, survey

T0 = 1_567_296_000
TIMESTAMPS = [T0 + k * 21_600 for k in range(6)]


@pytest.fixture(scope="module")
def backend() -> AtlasPlatform:
    return AtlasPlatform(seed=9)


class TestDecomposePair:
    def test_components_non_negative(self, backend):
        pair = decompose_pair(backend, "DE", "DE", TIMESTAMPS)
        assert pair.core_ms > 0
        assert pair.wired_access_ms >= 0
        if not math.isnan(pair.wireless_access_ms):
            assert pair.wireless_access_ms >= 0

    def test_wireless_access_exceeds_wired(self, backend):
        pair = decompose_pair(backend, "DE", "DE", TIMESTAMPS)
        assert pair.wireless_access_ms > pair.wired_access_ms

    def test_modern_bottleneck_is_wireless_access(self, backend):
        """The paper's premise: for wireless users in well-connected
        countries, the access network, not the core, is the bottleneck."""
        pair = decompose_pair(backend, "DE", "DE", TIMESTAMPS)
        assert pair.wireless_bottleneck == "access"

    def test_long_haul_core_dominates(self, backend):
        """Over intercontinental paths the core grows; the comparison
        flips — exactly why the paper separates the two regimes."""
        pair = decompose_pair(backend, "DE", "US", TIMESTAMPS)
        assert pair.core_ms > 50.0
        assert pair.wired_bottleneck == "core"


class TestSurvey:
    def test_frame_shape(self, backend):
        frame = survey(backend, [("DE", "DE"), ("FR", "DE")], TIMESTAMPS)
        assert len(frame) == 2
        assert "core_ms" in frame
        assert "wireless_bottleneck" in frame
