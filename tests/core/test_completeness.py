"""Tests for repro.core.completeness and the platform accounting it uses."""

import numpy as np
import pytest

from repro.core.completeness import completeness_frame, fleet_summary
from repro.errors import AtlasAPIError, CampaignError


@pytest.fixture(scope="module")
def accounting(tiny_campaign, tiny_dataset):
    return completeness_frame(tiny_campaign, tiny_dataset)


class TestPlatformAccounting:
    def test_expected_never_exceeds_scheduled(self, tiny_campaign):
        platform = tiny_campaign.platform
        msm_id = tiny_campaign.measurement_ids[0]
        msm = platform.measurement(msm_id)
        for probe in msm.probes[:10]:
            expected = platform.expected_result_count(msm_id, probe.probe_id)
            scheduled = platform.scheduled_tick_count(msm_id, probe.probe_id)
            assert 0 <= expected <= scheduled

    def test_unknown_probe_rejected(self, tiny_campaign):
        platform = tiny_campaign.platform
        msm_id = tiny_campaign.measurement_ids[0]
        absent = next(
            p.probe_id
            for p in platform.probes
            if all(p.probe_id != q.probe_id
                   for q in platform.measurement(msm_id).probes)
        )
        with pytest.raises(AtlasAPIError):
            platform.expected_result_count(msm_id, absent)

    def test_list_measurements(self, tiny_campaign):
        platform = tiny_campaign.platform
        listed = platform.list_measurements(key=tiny_campaign.api_key)
        assert len(listed) == len(tiny_campaign.measurement_ids)
        assert platform.list_measurements(measurement_type="traceroute") == []


class TestCompletenessFrame:
    def test_delivery_matches_expectation_exactly(self, accounting):
        """The simulator's delivery is deterministic: every online tick
        produces a result, so completeness is exactly 1.0."""
        assert all(value == pytest.approx(1.0) for value in accounting["completeness"])

    def test_uptime_tracks_stability(self, accounting):
        uptimes = accounting["uptime"].astype(float)
        stabilities = accounting["stability"].astype(float)
        # Positively correlated: churn is driven by the stability field.
        # (At TINY scale each probe has only 8 scheduled ticks per
        # measurement, so uptime is quantized to eighths, capping the
        # achievable correlation.)
        correlation = np.corrcoef(uptimes, stabilities)[0, 1]
        assert correlation > 0.3

    def test_requires_run_campaign(self, tiny_dataset):
        from repro.core.campaign import Campaign, CampaignScale

        fresh = Campaign.from_paper(scale=CampaignScale.TINY, seed=55)
        with pytest.raises(CampaignError):
            completeness_frame(fresh, tiny_dataset)


class TestFleetSummary:
    def test_rates(self, accounting):
        summary = fleet_summary(accounting)
        assert summary["delivery_rate"] == pytest.approx(1.0)
        assert 0.85 <= summary["uptime_rate"] <= 1.0

    def test_wireless_probes_flakier(self, accounting):
        summary = fleet_summary(accounting)
        assert summary["wireless_uptime"] < summary["wired_uptime"]

    def test_collection_stats_folded_in(self, accounting, tiny_campaign):
        summary = fleet_summary(accounting, stats=tiny_campaign.collection_stats)
        assert summary["quarantined"] == 0.0
        assert summary["duplicates_dropped"] == 0.0
        assert summary["interruptions"] == 0.0
        assert summary["quarantine_share"] == 0.0


class TestCollectionHealth:
    def test_report_shape(self, tiny_campaign):
        from repro.core.completeness import collection_health

        health = collection_health(tiny_campaign)
        # Stats accumulate across collect() calls, so other tests sharing
        # the session fixture can only grow them past the initial run.
        assert health["samples_appended"] >= tiny_campaign.run_dataset.num_samples
        assert health["measurements_collected"] >= len(
            tiny_campaign.measurement_ids
        )
        assert health["quarantined"] == 0
        assert health["transport"]["profile"] == "none"
        assert health["transport"]["retries"] == 0


class TestHealthReport:
    def test_collection_always_present(self, tiny_campaign):
        from repro.core.completeness import collection_health, health_report

        report = health_report(tiny_campaign)
        assert set(report) == {"collection"}
        assert report["collection"] == collection_health(tiny_campaign)

    def test_fleet_embedded_when_dataset_given(self, tiny_campaign, tiny_dataset):
        from repro.core.completeness import health_report

        report = health_report(tiny_campaign, tiny_dataset)
        assert "fleet" in report
        assert report["fleet"]["delivery_rate"] == pytest.approx(1.0)
        # The session campaign is uninstrumented: no metrics section.
        assert "metrics" not in report

    def test_metrics_embedded_for_instrumented_campaign(self):
        from repro.core.campaign import Campaign, CampaignScale
        from repro.core.completeness import health_report
        from repro.obs import Obs

        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=7, obs=Obs())
        dataset = campaign.run()
        report = health_report(campaign, dataset)
        assert set(report) == {"collection", "fleet", "metrics"}
        counters = report["metrics"]["counters"]
        assert counters["dataset_samples_appended_total"] == len(dataset)

    def test_report_is_json_serializable(self, tiny_campaign, tiny_dataset):
        import json

        from repro.core.completeness import health_report

        text = json.dumps(
            health_report(tiny_campaign, tiny_dataset), sort_keys=True, default=float
        )
        assert json.loads(text)["collection"]["transport"]["profile"] == "none"
