"""Tests for repro.core.providers (the CloudCmp-style comparison)."""

import pytest

from repro.core.providers import (
    footprint_summary,
    provider_continent_medians,
    provider_matrix,
    provider_rankings,
)


class TestLongTable:
    def test_covers_all_providers(self, tiny_dataset):
        frame = provider_continent_medians(tiny_dataset)
        assert len(set(frame["provider"])) == 7

    def test_rows_positive(self, tiny_dataset):
        frame = provider_continent_medians(tiny_dataset)
        for row in frame.iter_rows():
            assert row["median_ms"] > 0
            assert row["samples"] > 0


class TestMatrix:
    def test_one_row_per_provider(self, tiny_dataset):
        matrix = provider_matrix(tiny_dataset)
        assert len(matrix) == 7
        assert "provider" in matrix

    def test_underserved_rows_slower_for_every_provider(self, tiny_dataset):
        """Rows are *probe* continents: African users reach every provider
        (via the EU fallback), just slower — for all seven of them."""
        matrix = provider_matrix(tiny_dataset)
        for row in matrix.iter_rows():
            assert float(row["AF"]) > float(row["EU"])


class TestRankings:
    def test_complete_and_ordered(self, tiny_dataset):
        rankings = provider_rankings(tiny_dataset)
        assert len(rankings) == 7
        medians = list(rankings["median_ms"])
        assert medians == sorted(medians)
        assert list(rankings["rank"]) == list(range(1, 8))

    def test_backbone_labels(self, tiny_dataset):
        rankings = provider_rankings(tiny_dataset)
        backbones = set(rankings["backbone"])
        assert backbones == {"private", "public"}

    def test_no_provider_is_unusable(self, tiny_dataset):
        """The paper's conclusions hold for all seven providers: even the
        slowest serves its shared footprint within ~2x of the fastest."""
        rankings = provider_rankings(tiny_dataset)
        medians = list(rankings["median_ms"])
        assert medians[-1] < 2.5 * medians[0]


class TestFootprint:
    def test_summary(self, tiny_dataset):
        summary = footprint_summary(tiny_dataset)
        assert summary["azure"]["regions"] == 22
        assert summary["digitalocean"]["regions"] == 9
        assert all(1 <= info["rank"] <= 7 for info in summary.values())
