"""Tests for repro.core.filtering."""

import numpy as np

from repro.core.filtering import cohort_masks, cohort_sizes, unprivileged_mask


class TestUnprivilegedMask:
    def test_excludes_failed_pings(self, tiny_dataset):
        mask = unprivileged_mask(tiny_dataset)
        rcvd = tiny_dataset.column("rcvd")
        assert not np.any(rcvd[mask] == 0)

    def test_excludes_tagged_privileged(self, tiny_dataset):
        mask = unprivileged_mask(tiny_dataset)
        privileged = tiny_dataset.probe_privileged()
        assert not np.any(privileged[mask])

    def test_untagged_privileged_slip_through(self, tiny_dataset):
        """The filter sees tags, not ground truth: some datacenter probes
        hide (the real study had the same blind spot)."""
        mask = unprivileged_mask(tiny_dataset)
        probe_ids = set(np.unique(tiny_dataset.column("probe_id")[mask]))
        hidden = [
            p for p in tiny_dataset.probes
            if p.environment.is_privileged
            and "datacentre" not in p.user_tags
            and "cloud" not in p.user_tags
            and p.probe_id in probe_ids
        ]
        # With ~300 privileged probes and 80% tagging, some hide.
        assert hidden


class TestCohorts:
    def test_masks_disjoint(self, tiny_dataset):
        masks = cohort_masks(tiny_dataset)
        assert not np.any(masks["wired"] & masks["wireless"])

    def test_cohorts_exclude_privileged(self, tiny_dataset):
        masks = cohort_masks(tiny_dataset)
        privileged = tiny_dataset.probe_privileged()
        for mask in masks.values():
            assert not np.any(privileged[mask])

    def test_cohort_membership_matches_tags(self, tiny_dataset):
        masks = cohort_masks(tiny_dataset)
        cohorts = tiny_dataset.probe_cohorts()
        assert set(np.unique(cohorts[masks["wired"]])) <= {"wired"}
        assert set(np.unique(cohorts[masks["wireless"]])) <= {"wireless"}

    def test_sizes_positive(self, tiny_dataset):
        wired, wireless = cohort_sizes(tiny_dataset)
        assert wired > wireless > 0
