"""Tests for repro.core.lastmile (Figure 7)."""

import math

import pytest

from repro.core.lastmile import (
    added_wireless_latency_ms,
    cohort_timeseries,
    wireless_penalty,
)
from repro.errors import CampaignError


class TestTimeseries:
    def test_frame_shape(self, tiny_dataset):
        frame = cohort_timeseries(tiny_dataset, bucket_s=2 * 86_400)
        assert "wired_median" in frame
        assert "wireless_median" in frame
        assert len(frame) >= 2

    def test_buckets_cover_campaign(self, tiny_dataset):
        frame = cohort_timeseries(tiny_dataset, bucket_s=86_400)
        starts = list(frame["bucket_start"])
        assert starts == sorted(starts)
        deltas = {b - a for a, b in zip(starts, starts[1:])}
        assert deltas == {86_400}

    def test_wireless_above_wired_in_every_bucket(self, tiny_dataset):
        frame = cohort_timeseries(tiny_dataset, bucket_s=2 * 86_400)
        for row in frame.iter_rows():
            if math.isnan(row["wired_median"]) or math.isnan(row["wireless_median"]):
                continue
            assert row["wireless_median"] > row["wired_median"]

    def test_bad_bucket_rejected(self, tiny_dataset):
        with pytest.raises(CampaignError):
            cohort_timeseries(tiny_dataset, bucket_s=0)


class TestPenalty:
    def test_penalty_in_paper_band(self, tiny_dataset):
        """The paper reports ~2.5x; we accept a generous band at TINY scale."""
        penalty = wireless_penalty(tiny_dataset)
        assert 1.5 <= penalty <= 4.0

    def test_added_latency_positive(self, tiny_dataset):
        """Prior studies cite 10-40 ms added wireless latency; at TINY
        scale (tiny, globally-spread cohorts) we only pin the sign and a
        loose ceiling — the calibration suite checks the band at SMALL."""
        added = added_wireless_latency_ms(tiny_dataset)
        assert 5.0 <= added <= 90.0
