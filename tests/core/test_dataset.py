"""Tests for repro.core.dataset."""

import math

import numpy as np
import pytest

from repro.atlas.population import generate_population
from repro.cloud.vm import deploy_fleet
from repro.core.dataset import CampaignDataset
from repro.errors import CampaignError


@pytest.fixture
def dataset() -> CampaignDataset:
    probes = generate_population(seed=2)[:5]
    targets = deploy_fleet()[:3]
    ds = CampaignDataset(probes, targets)
    for k, probe in enumerate(probes):
        failed = k == 4
        ds.append(
            probe_id=probe.probe_id,
            target_key=targets[k % 3].key,
            timestamp=1_567_296_000 + k * 100,
            rtt_min=math.nan if failed else 10.0 + k,
            rtt_avg=math.nan if failed else 12.0 + k,
            sent=3,
            rcvd=0 if failed else 3,
        )
    return ds


class TestConstruction:
    def test_requires_probes_and_targets(self):
        with pytest.raises(CampaignError):
            CampaignDataset([], deploy_fleet()[:1])
        with pytest.raises(CampaignError):
            CampaignDataset(generate_population(seed=2)[:1], [])

    def test_unknown_target_key(self, dataset):
        with pytest.raises(CampaignError):
            dataset.target_index_of("aws:mars-1")

    def test_unknown_probe(self, dataset):
        with pytest.raises(CampaignError):
            dataset.probe(1)


class TestFreeze:
    def test_length(self, dataset):
        assert len(dataset) == 5

    def test_append_after_freeze_rejected(self, dataset):
        dataset.freeze()
        with pytest.raises(CampaignError):
            dataset.append(dataset.probes[0].probe_id, dataset.targets[0].key,
                           0, 1.0, 1.0, 3, 3)

    def test_freeze_idempotent(self, dataset):
        dataset.freeze()
        dataset.freeze()
        assert len(dataset) == 5

    def test_column_dtypes(self, dataset):
        assert dataset.column("probe_id").dtype == np.int32
        assert dataset.column("rtt_min").dtype == np.float64
        assert dataset.column("sent").dtype == np.int16

    def test_unknown_column(self, dataset):
        with pytest.raises(CampaignError):
            dataset.column("nope")


class TestDerivedVectors:
    def test_probe_lookup_alignment(self, dataset):
        countries = dataset.probe_countries()
        for i in range(len(dataset)):
            probe_id = int(dataset.column("probe_id")[i])
            assert countries[i] == dataset.probe(probe_id).country_code

    def test_target_vectors(self, dataset):
        providers = dataset.target_providers()
        continents = dataset.target_continents()
        for i in range(len(dataset)):
            vm = dataset.targets[int(dataset.column("target_index")[i])]
            assert providers[i] == vm.region.provider_slug
            assert continents[i] == vm.region.continent

    def test_succeeded_mask(self, dataset):
        mask = dataset.succeeded_mask()
        assert list(mask) == [True, True, True, True, False]


class TestFrameView:
    def test_to_frame_columns(self, dataset):
        frame = dataset.to_frame()
        assert set(frame.columns) >= {
            "probe_id", "country", "continent", "cohort", "privileged",
            "target", "provider", "timestamp", "rtt_min",
        }
        assert len(frame) == 5

    def test_to_frame_with_mask(self, dataset):
        frame = dataset.to_frame(dataset.succeeded_mask())
        assert len(frame) == 4


class TestIntegrity:
    def test_report(self, dataset):
        report = dataset.integrity_report()
        assert report["samples"] == 5
        assert report["failed_share"] == pytest.approx(0.2)
        assert report["probes_seen"] == 5
        assert report["targets_seen"] == 3


class TestDedupGuard:
    def test_duplicate_appends_dropped_and_counted(self):
        probes = generate_population(seed=2)[:2]
        targets = deploy_fleet()[:1]
        ds = CampaignDataset(probes, targets, dedup=True)
        for _ in range(3):
            ds.append(probes[0].probe_id, targets[0].key,
                      1_567_296_000, 10.0, 12.0, 3, 3)
        ds.append(probes[1].probe_id, targets[0].key,
                  1_567_296_000, 11.0, 13.0, 3, 3)
        assert len(ds) == 2
        assert ds.duplicates_dropped == 2

    def test_disabled_by_default(self, dataset):
        probe = dataset.probes[0]
        dataset.append(probe.probe_id, dataset.targets[0].key,
                       1_567_296_000, 10.0, 12.0, 3, 3)
        dataset.append(probe.probe_id, dataset.targets[0].key,
                       1_567_296_000, 10.0, 12.0, 3, 3)
        assert len(dataset) == 7
        assert dataset.duplicates_dropped == 0


class TestFromFrame:
    def test_round_trip(self, dataset):
        rebuilt = CampaignDataset.from_frame(
            dataset.to_frame(), dataset.probes, dataset.targets
        )
        assert rebuilt.num_samples == dataset.num_samples
        for column in ("probe_id", "target_index", "timestamp", "sent", "rcvd"):
            assert list(rebuilt.column(column)) == list(dataset.column(column))
        assert np.array_equal(
            rebuilt.column("rtt_min"), dataset.column("rtt_min"), equal_nan=True
        )

    def test_rebuilt_dataset_accepts_appends(self, dataset):
        """from_frame exists to resume collection: the rebuilt dataset
        must be unfrozen and honor its dedup guard."""
        rebuilt = CampaignDataset.from_frame(
            dataset.to_frame(), dataset.probes, dataset.targets, dedup=True
        )
        probe = dataset.probes[0]
        before = rebuilt._buffer.probe_id[:]
        # Re-appending an existing sample is swallowed by the guard...
        rebuilt.append(probe.probe_id, dataset.targets[0].key,
                       int(dataset.column("timestamp")[0]), 10.0, 12.0, 3, 3)
        assert rebuilt._buffer.probe_id == before
        assert rebuilt.duplicates_dropped == 1
        # ...while a genuinely new sample still lands.
        rebuilt.append(probe.probe_id, dataset.targets[0].key,
                       2_000_000_000, 10.0, 12.0, 3, 3)
        assert rebuilt.num_samples == dataset.num_samples + 1


class TestExport:
    def test_csv_round_trip(self, dataset, tmp_path):
        path = tmp_path / "dataset.csv"
        dataset.export_csv(path)
        loaded = CampaignDataset.load_csv(path)
        assert len(loaded) == 5
        assert list(loaded["probe_id"]) == list(dataset.column("probe_id"))
        # NaN RTTs survive as the failed sample's marker.
        assert math.isnan(loaded["rtt_min"][4]) or loaded["rtt_min"][4] == "nan"
