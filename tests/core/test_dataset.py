"""Tests for repro.core.dataset."""

import math

import numpy as np
import pytest

from repro.atlas.population import generate_population
from repro.cloud.vm import deploy_fleet
from repro.core.dataset import CampaignDataset, _SampleBuffer
from repro.errors import CampaignError


@pytest.fixture
def dataset() -> CampaignDataset:
    probes = generate_population(seed=2)[:5]
    targets = deploy_fleet()[:3]
    ds = CampaignDataset(probes, targets)
    for k, probe in enumerate(probes):
        failed = k == 4
        ds.append(
            probe_id=probe.probe_id,
            target_key=targets[k % 3].key,
            timestamp=1_567_296_000 + k * 100,
            rtt_min=math.nan if failed else 10.0 + k,
            rtt_avg=math.nan if failed else 12.0 + k,
            sent=3,
            rcvd=0 if failed else 3,
        )
    return ds


class TestConstruction:
    def test_requires_probes_and_targets(self):
        with pytest.raises(CampaignError):
            CampaignDataset([], deploy_fleet()[:1])
        with pytest.raises(CampaignError):
            CampaignDataset(generate_population(seed=2)[:1], [])

    def test_unknown_target_key(self, dataset):
        with pytest.raises(CampaignError):
            dataset.target_index_of("aws:mars-1")

    def test_unknown_probe(self, dataset):
        with pytest.raises(CampaignError):
            dataset.probe(1)


class TestFreeze:
    def test_length(self, dataset):
        assert len(dataset) == 5

    def test_append_after_freeze_rejected(self, dataset):
        dataset.freeze()
        with pytest.raises(CampaignError):
            dataset.append(dataset.probes[0].probe_id, dataset.targets[0].key,
                           0, 1.0, 1.0, 3, 3)

    def test_freeze_idempotent(self, dataset):
        dataset.freeze()
        dataset.freeze()
        assert len(dataset) == 5

    def test_column_dtypes(self, dataset):
        assert dataset.column("probe_id").dtype == np.int32
        assert dataset.column("rtt_min").dtype == np.float64
        assert dataset.column("sent").dtype == np.int16

    def test_unknown_column(self, dataset):
        with pytest.raises(CampaignError):
            dataset.column("nope")


class TestDerivedVectors:
    def test_probe_lookup_alignment(self, dataset):
        countries = dataset.probe_countries()
        for i in range(len(dataset)):
            probe_id = int(dataset.column("probe_id")[i])
            assert countries[i] == dataset.probe(probe_id).country_code

    def test_target_vectors(self, dataset):
        providers = dataset.target_providers()
        continents = dataset.target_continents()
        for i in range(len(dataset)):
            vm = dataset.targets[int(dataset.column("target_index")[i])]
            assert providers[i] == vm.region.provider_slug
            assert continents[i] == vm.region.continent

    def test_succeeded_mask(self, dataset):
        mask = dataset.succeeded_mask()
        assert list(mask) == [True, True, True, True, False]


class TestFrameView:
    def test_to_frame_columns(self, dataset):
        frame = dataset.to_frame()
        assert set(frame.columns) >= {
            "probe_id", "country", "continent", "cohort", "privileged",
            "target", "provider", "timestamp", "rtt_min",
        }
        assert len(frame) == 5

    def test_to_frame_with_mask(self, dataset):
        frame = dataset.to_frame(dataset.succeeded_mask())
        assert len(frame) == 4


class TestIntegrity:
    def test_report(self, dataset):
        report = dataset.integrity_report()
        assert report["samples"] == 5
        assert report["failed_share"] == pytest.approx(0.2)
        assert report["probes_seen"] == 5
        assert report["targets_seen"] == 3


class TestDedupGuard:
    def test_duplicate_appends_dropped_and_counted(self):
        probes = generate_population(seed=2)[:2]
        targets = deploy_fleet()[:1]
        ds = CampaignDataset(probes, targets, dedup=True)
        for _ in range(3):
            ds.append(probes[0].probe_id, targets[0].key,
                      1_567_296_000, 10.0, 12.0, 3, 3)
        ds.append(probes[1].probe_id, targets[0].key,
                  1_567_296_000, 11.0, 13.0, 3, 3)
        assert len(ds) == 2
        assert ds.duplicates_dropped == 2

    def test_disabled_by_default(self, dataset):
        probe = dataset.probes[0]
        dataset.append(probe.probe_id, dataset.targets[0].key,
                       1_567_296_000, 10.0, 12.0, 3, 3)
        dataset.append(probe.probe_id, dataset.targets[0].key,
                       1_567_296_000, 10.0, 12.0, 3, 3)
        assert len(dataset) == 7
        assert dataset.duplicates_dropped == 0


class TestFromFrame:
    def test_round_trip(self, dataset):
        rebuilt = CampaignDataset.from_frame(
            dataset.to_frame(), dataset.probes, dataset.targets
        )
        assert rebuilt.num_samples == dataset.num_samples
        for column in ("probe_id", "target_index", "timestamp", "sent", "rcvd"):
            assert list(rebuilt.column(column)) == list(dataset.column(column))
        assert np.array_equal(
            rebuilt.column("rtt_min"), dataset.column("rtt_min"), equal_nan=True
        )

    def test_rebuilt_dataset_accepts_appends(self, dataset):
        """from_frame exists to resume collection: the rebuilt dataset
        must be unfrozen and honor its dedup guard."""
        rebuilt = CampaignDataset.from_frame(
            dataset.to_frame(), dataset.probes, dataset.targets, dedup=True
        )
        probe = dataset.probes[0]
        before = rebuilt._buffer.size
        # Re-appending an existing sample is swallowed by the guard...
        rebuilt.append(probe.probe_id, dataset.targets[0].key,
                       int(dataset.column("timestamp")[0]), 10.0, 12.0, 3, 3)
        assert rebuilt._buffer.size == before
        assert rebuilt.duplicates_dropped == 1
        # ...while a genuinely new sample still lands.
        rebuilt.append(probe.probe_id, dataset.targets[0].key,
                       2_000_000_000, 10.0, 12.0, 3, 3)
        assert rebuilt.num_samples == dataset.num_samples + 1


class TestSampleBuffer:
    """The numpy-backed append buffer behind the dataset."""

    def test_geometric_growth(self):
        buffer = _SampleBuffer()
        assert buffer._capacity == 0
        buffer.append_row(1, 0, 100, 1.0, 2.0, 3, 3)
        assert buffer._capacity == _SampleBuffer._INITIAL_CAPACITY
        buffer.reserve(3 * _SampleBuffer._INITIAL_CAPACITY)
        assert buffer._capacity == 4 * _SampleBuffer._INITIAL_CAPACITY

    def test_growth_preserves_prefix(self):
        buffer = _SampleBuffer()
        for k in range(10):
            buffer.append_row(k, k, 100 + k, float(k), float(k), 3, 3)
        buffer.reserve(10_000)
        final = buffer.finalize()
        assert list(final["probe_id"]) == list(range(10))
        assert list(final["timestamp"]) == list(range(100, 110))

    def test_extend_is_bulk_slice_assignment(self):
        buffer = _SampleBuffer()
        n = 5_000  # spans several doublings
        ids = np.arange(n, dtype=np.int32)
        buffer.extend(ids, ids, np.arange(n, dtype=np.int64),
                      np.ones(n), np.ones(n),
                      np.full(n, 3, dtype=np.int16), np.full(n, 3, dtype=np.int16))
        assert buffer.size == n
        final = buffer.finalize()
        assert np.array_equal(final["probe_id"], ids)
        assert final["probe_id"].dtype == np.int32
        assert final["sent"].dtype == np.int16

    def test_finalize_is_right_sized_copy(self):
        buffer = _SampleBuffer()
        buffer.append_row(1, 0, 100, 1.0, 2.0, 3, 3)
        final = buffer.finalize()
        assert len(final["probe_id"]) == 1
        # Mutating the finalized columns must not leak back into the buffer.
        final["probe_id"][0] = 99
        assert buffer.finalize()["probe_id"][0] == 1

    def test_dedup_extend_fancy_index_path(self):
        """A partially-duplicated bulk extend keeps only the fresh rows,
        in order, through the fancy-index fallback."""
        probes = generate_population(seed=2)[:3]
        targets = deploy_fleet()[:1]
        ds = CampaignDataset(probes, targets, dedup=True)
        ids = [probes[0].probe_id, probes[1].probe_id, probes[2].probe_id]
        ds.extend_samples(targets[0].key, ids, [100, 200, 300],
                          [1.0, 2.0, 3.0], [1.5, 2.5, 3.5], [3, 3, 3], [3, 3, 3])
        appended = ds.extend_samples(
            targets[0].key,
            [probes[0].probe_id, probes[1].probe_id, probes[2].probe_id],
            [100, 250, 300],  # first and last collide with existing rows
            [9.0, 9.0, 9.0], [9.0, 9.0, 9.0], [3, 3, 3], [3, 3, 3],
        )
        assert appended == 1
        assert ds.duplicates_dropped == 2
        assert len(ds) == 4
        assert list(ds.column("timestamp")) == [100, 200, 300, 250]


class TestMemoizedDerived:
    """Derived sample-aligned vectors are computed once per dataset."""

    def test_probe_lookup_cached(self, dataset):
        first = dataset.probe_countries()
        assert dataset.probe_countries() is first

    def test_target_vectors_cached(self, dataset):
        assert dataset.target_providers() is dataset.target_providers()
        assert dataset.target_continents() is dataset.target_continents()

    def test_succeeded_mask_cached(self, dataset):
        first = dataset.succeeded_mask()
        assert dataset.succeeded_mask() is first
        assert list(first) == [True, True, True, True, False]

    def test_freeze_transition_invalidates(self, dataset):
        """A vector computed before an explicit freeze (which itself
        forces the freeze) stays valid; the freeze clears any cache so
        nothing computed against a stale buffer can survive."""
        dataset.freeze()
        cached = dataset.succeeded_mask()
        assert dataset._derived  # populated
        dataset.freeze()  # idempotent freeze keeps the frozen columns
        assert dataset.succeeded_mask() is cached


class TestExport:
    def test_csv_round_trip(self, dataset, tmp_path):
        path = tmp_path / "dataset.csv"
        dataset.export_csv(path)
        loaded = CampaignDataset.load_csv(path)
        assert len(loaded) == 5
        assert list(loaded["probe_id"]) == list(dataset.column("probe_id"))
        # NaN RTTs survive as the failed sample's marker.
        assert math.isnan(loaded["rtt_min"][4]) or loaded["rtt_min"][4] == "nan"
