"""Tests for repro.core.locality (the §6 privacy/locality analysis)."""

import numpy as np
import pytest

from repro.core.locality import (
    cloud_locality_summary,
    domestic_share_by_continent,
    locality_with_national_edge,
    nearest_region_locality,
)


class TestNearestRegionLocality:
    def test_one_row_per_measured_probe(self, tiny_dataset):
        frame = nearest_region_locality(tiny_dataset)
        ids = list(frame["probe_id"])
        assert len(ids) == len(set(ids))
        assert len(frame) > 100

    def test_domestic_flag_consistent(self, tiny_dataset):
        frame = nearest_region_locality(tiny_dataset)
        for row in frame.iter_rows():
            assert row["domestic"] == (row["country"] == row["region_country"])

    def test_datacenter_countries_stay_home(self, tiny_dataset):
        """Probes in DC-hosting countries overwhelmingly stay domestic."""
        frame = nearest_region_locality(tiny_dataset)
        mask = np.isin(frame["country"], ["US", "DE", "JP"])
        domestic = frame["domestic"].astype(bool)[mask]
        assert np.mean(domestic) > 0.8


class TestShares:
    def test_continent_ordering(self, tiny_dataset):
        """Locality is a rich-region privilege: EU/NA far above AF."""
        shares = domestic_share_by_continent(tiny_dataset)
        assert shares["EU"] > shares["AF"]
        assert shares["NA"] > shares["AF"]
        assert 0.0 <= shares["AF"] < 0.2

    def test_summary_fields(self, tiny_dataset):
        summary = cloud_locality_summary(tiny_dataset)
        assert 0.0 < summary["probe_share_domestic"] < 1.0
        assert 0.0 < summary["population_share_domestic"] <= 1.0
        assert summary["countries_fully_foreign"] > 100  # only 21 host DCs

    def test_most_countries_cannot_keep_data_home(self, tiny_dataset):
        """The §6 privacy argument quantified: for the vast majority of
        countries, using the cloud means crossing a border."""
        frame = nearest_region_locality(tiny_dataset)
        countries = np.unique(frame["country"])
        summary = cloud_locality_summary(tiny_dataset)
        assert summary["countries_fully_foreign"] >= 0.75 * len(countries)


class TestEdgeDelta:
    def test_national_edge_fixes_locality(self, tiny_dataset):
        delta = locality_with_national_edge(tiny_dataset)
        assert delta["probe_share_domestic_after"] == 1.0
        assert (
            delta["probe_share_domestic_before"]
            < delta["probe_share_domestic_after"]
        )
        assert delta["countries_gaining_locality"] > 100
