"""Tests for repro.core.report."""

import math

from repro.core.report import headline_report


class TestHeadlineReport:
    def test_counts_consistent(self, tiny_dataset):
        report = headline_report(tiny_dataset)
        assert report.samples == tiny_dataset.num_samples
        assert report.targets == 101
        assert report.countries > 100
        assert (
            report.countries_under_10ms
            + report.countries_10_to_20ms
            <= report.countries
        )

    def test_shares_valid(self, tiny_dataset):
        report = headline_report(tiny_dataset)
        for share in report.probe_share_under_mtp.values():
            assert 0.0 <= share <= 1.0
        for share in report.sample_share_under_pl.values():
            assert 0.0 <= share <= 1.0
        assert 0.0 <= report.facebook_share_under_40ms <= 1.0
        assert 0.0 <= report.population_share_under_pl <= 1.0

    def test_penalty_positive(self, tiny_dataset):
        report = headline_report(tiny_dataset)
        assert report.wireless_penalty > 1.0

    def test_paper_comparison_complete(self, tiny_dataset):
        comparison = headline_report(tiny_dataset).paper_comparison()
        assert len(comparison) == 7
        for claim, values in comparison.items():
            assert set(values) == {"paper", "measured"}, claim
            assert not math.isnan(values["paper"])

    def test_summary_renders(self, tiny_dataset):
        text = headline_report(tiny_dataset).summary()
        assert "countries <10ms" in text
        assert "wireless penalty" in text
        assert len(text.splitlines()) >= 5

    def test_campaign_shortcut(self, tiny_campaign, tiny_dataset):
        report = tiny_campaign.headline_report(tiny_dataset)
        assert report.samples == tiny_dataset.num_samples
