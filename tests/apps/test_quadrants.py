"""Tests for repro.apps.quadrants."""

from repro.apps.catalog import all_applications, get_application
from repro.apps.quadrants import (
    Quadrant,
    classify,
    market_share_by_quadrant,
    quadrant_table,
)


class TestClassification:
    def test_wearables_q1(self):
        assert classify(get_application("wearables")) is Quadrant.Q1

    def test_arvr_q2(self):
        assert classify(get_application("ar-vr")) is Quadrant.Q2

    def test_autonomous_vehicles_q2(self):
        assert classify(get_application("autonomous-vehicles")) is Quadrant.Q2

    def test_smart_city_q3(self):
        assert classify(get_application("smart-city")) is Quadrant.Q3

    def test_smart_home_q4(self):
        assert classify(get_application("smart-home")) is Quadrant.Q4

    def test_weather_q4(self):
        assert classify(get_application("weather-monitoring")) is Quadrant.Q4


class TestQuadrantProperties:
    def test_latency_sensitivity(self):
        assert Quadrant.Q1.latency_sensitive
        assert Quadrant.Q2.latency_sensitive
        assert not Quadrant.Q3.latency_sensitive

    def test_bandwidth_heaviness(self):
        assert Quadrant.Q2.bandwidth_heavy
        assert Quadrant.Q3.bandwidth_heavy
        assert not Quadrant.Q1.bandwidth_heavy


class TestTable:
    def test_partition_complete(self):
        table = quadrant_table()
        total = sum(len(apps) for apps in table.values())
        assert total == len(all_applications())

    def test_every_quadrant_populated(self):
        table = quadrant_table()
        for quadrant, apps in table.items():
            assert apps, quadrant

    def test_q2_has_the_hype(self):
        """'these are popularly heralded as the driving force behind
        edge computing' — Q2 must hold the big-market apps."""
        shares = market_share_by_quadrant()
        assert shares[Quadrant.Q2] > shares[Quadrant.Q1]
        assert shares[Quadrant.Q2] > max(
            shares[Quadrant.Q1], shares[Quadrant.Q4]
        )

    def test_market_totals_positive(self):
        for share in market_share_by_quadrant().values():
            assert share > 0
