"""Tests for repro.apps.thresholds."""

import pytest

from repro.apps.thresholds import (
    ALL_THRESHOLDS,
    HRT,
    MTP,
    PL,
    classify_latency,
    hud_budget_ms,
    mtp_network_budget_ms,
    strictest_satisfied,
)
from repro.errors import ReproError


class TestConstants:
    def test_paper_values(self):
        assert MTP.limit_ms == 20.0
        assert PL.limit_ms == 100.0
        assert HRT.limit_ms == 250.0

    def test_order_strictest_first(self):
        limits = [t.limit_ms for t in ALL_THRESHOLDS]
        assert limits == sorted(limits)


class TestClassification:
    def test_very_fast_meets_all(self):
        assert classify_latency(5.0) == ("MTP", "PL", "HRT")

    def test_medium_meets_pl_hrt(self):
        assert classify_latency(50.0) == ("PL", "HRT")

    def test_slow_meets_none(self):
        assert classify_latency(400.0) == ()

    def test_boundary_inclusive(self):
        assert "MTP" in classify_latency(20.0)

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            classify_latency(-1.0)

    def test_strictest_satisfied(self):
        assert strictest_satisfied(10.0) == "MTP"
        assert strictest_satisfied(99.0) == "PL"
        assert strictest_satisfied(200.0) == "HRT"
        assert strictest_satisfied(9_999.0) == "NONE"


class TestBudgets:
    def test_mtp_network_budget(self):
        # 20 ms minus ~13 ms of display pipeline = ~7 ms.
        assert mtp_network_budget_ms() == pytest.approx(7.0)

    def test_custom_display_budget(self):
        assert mtp_network_budget_ms(display_ms=10.0) == pytest.approx(10.0)

    def test_display_budget_validated(self):
        with pytest.raises(ReproError):
            mtp_network_budget_ms(display_ms=25.0)

    def test_hud_budget(self):
        assert hud_budget_ms() == 2.5
