"""Tests for repro.apps.catalog."""

import pytest

from repro.apps.catalog import (
    Application,
    all_applications,
    get_application,
    hyped_applications,
)
from repro.errors import ReproError


class TestCatalog:
    def test_size(self):
        # Figure 2 draws roughly this many driving applications.
        assert 12 <= len(all_applications()) <= 20

    def test_lookup(self):
        app = get_application("cloud-gaming")
        assert app.name == "Cloud gaming"

    def test_unknown(self):
        with pytest.raises(ReproError):
            get_application("time-travel")

    def test_paper_mentions_present(self):
        for slug in (
            "ar-vr", "autonomous-vehicles", "cloud-gaming", "smart-home",
            "wearables", "traffic-monitoring", "smart-city",
        ):
            get_application(slug)


class TestValidation:
    def test_bad_latency_range(self):
        with pytest.raises(ReproError):
            Application("x", "X", 10.0, 5.0, 1.0, 2.0, 1.0, True)

    def test_bad_bandwidth_range(self):
        with pytest.raises(ReproError):
            Application("x", "X", 1.0, 2.0, 3.0, 1.0, 1.0, True)

    def test_negative_market(self):
        with pytest.raises(ReproError):
            Application("x", "X", 1.0, 2.0, 1.0, 2.0, -1.0, True)


class TestDerived:
    def test_geometric_center(self):
        app = Application("x", "X", 10.0, 40.0, 1.0, 4.0, 1.0, True)
        assert app.latency_center_ms == pytest.approx(20.0)
        assert app.bandwidth_center_gb_day == pytest.approx(2.0)

    def test_strictness_narrower_is_higher(self):
        tight = Application("a", "A", 10.0, 12.0, 1.0, 2.0, 1.0, True)
        loose = Application("b", "B", 10.0, 1000.0, 1.0, 2.0, 1.0, True)
        assert tight.latency_strictness > loose.latency_strictness


class TestPaperShape:
    def test_arvr_network_budget_below_wireless_floor(self):
        """The display-pipeline arithmetic (§3) pushes AR/VR's network
        budget below the ~10 ms wireless floor — key to Figure 8."""
        assert get_application("ar-vr").latency_center_ms < 10.0

    def test_autonomous_vehicles_strictest(self):
        av = get_application("autonomous-vehicles")
        assert av.latency_center_ms < 10.0
        assert av.market_2025_busd > 100.0

    def test_hyped_are_large_markets(self):
        hyped = hyped_applications()
        assert len(hyped) == 4
        floor = min(app.market_2025_busd for app in hyped)
        others = [a for a in all_applications() if a not in hyped]
        assert all(a.market_2025_busd <= floor for a in others)

    def test_human_centric_majority(self):
        """'Majority applications in Figure 2 are human-centric.'"""
        apps = all_applications()
        human = sum(1 for a in apps if a.human_centric)
        assert human >= len(apps) / 2
