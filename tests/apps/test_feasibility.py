"""Tests for repro.apps.feasibility — the Figure 8 punchline."""

import pytest

from repro.apps.catalog import get_application
from repro.apps.feasibility import (
    FeasibilityZone,
    Verdict,
    assess,
    assess_all,
    zone_market_share,
)
from repro.errors import ReproError


class TestZoneGeometry:
    def test_defaults_from_paper(self):
        zone = FeasibilityZone()
        assert zone.latency_low_ms == 10.0
        assert zone.latency_high_ms == 250.0
        assert zone.bandwidth_min_gb_day == 1.0

    def test_invalid_bounds(self):
        with pytest.raises(ReproError):
            FeasibilityZone(latency_low_ms=100.0, latency_high_ms=10.0)
        with pytest.raises(ReproError):
            FeasibilityZone(bandwidth_min_gb_day=0.0)

    def test_full_overlap(self):
        zone = FeasibilityZone()
        app = get_application("traffic-monitoring")  # 100-1000 ms? partially
        assert 0.0 <= zone.overlap(app) <= 1.0

    def test_overlap_zero_for_far_apps(self):
        zone = FeasibilityZone()
        weather = get_application("weather-monitoring")
        assert zone.overlap(weather) == pytest.approx(0.0)

    def test_latency_overlap_partial(self):
        zone = FeasibilityZone()
        gaming = get_application("cloud-gaming")  # 30-100 ms, inside
        assert zone.latency_overlap(gaming) == pytest.approx(1.0)


class TestVerdicts:
    def test_in_zone_apps(self):
        verdicts = assess_all()
        for slug in ("traffic-monitoring", "cloud-gaming", "video-analytics"):
            assert verdicts[slug] is Verdict.IN_ZONE, slug

    def test_onboard_apps(self):
        """The paper: autonomous vehicles and AR/VR are too stringent even
        for a basestation-colocated edge."""
        verdicts = assess_all()
        assert verdicts["autonomous-vehicles"] is Verdict.ONBOARD_REQUIRED
        assert verdicts["ar-vr"] is Verdict.ONBOARD_REQUIRED
        assert verdicts["industrial-robots"] is Verdict.ONBOARD_REQUIRED

    def test_cloud_sufficient_apps(self):
        verdicts = assess_all()
        for slug in ("wearables", "smart-home", "weather-monitoring"):
            assert verdicts[slug] is Verdict.CLOUD_SUFFICIENT, slug

    def test_aggregation_only_apps(self):
        verdicts = assess_all()
        assert verdicts["smart-city"] is Verdict.AGGREGATION_ONLY

    def test_custom_zone_changes_verdicts(self):
        """A hypothetical 1 ms-floor edge (perfect 5G) rescues AR/VR."""
        optimistic = FeasibilityZone(latency_low_ms=1.0)
        assert assess(get_application("ar-vr"), optimistic) is Verdict.IN_ZONE


class TestMarketPunchline:
    def test_fz_market_pales(self):
        """'the predicted market share of applications within the edge FZ
        pales compared to those for which edge does not provide much
        benefit.'"""
        inside, outside = zone_market_share()
        assert outside > inside * 2

    def test_market_totals_cover_catalog(self):
        from repro.apps.catalog import all_applications

        inside, outside = zone_market_share()
        total = sum(app.market_2025_busd for app in all_applications())
        assert inside + outside == pytest.approx(total)
