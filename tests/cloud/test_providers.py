"""Tests for repro.cloud.providers."""

import pytest

from repro.constants import NUM_PROVIDERS
from repro.cloud.providers import (
    PROVIDER_SLUGS,
    BackboneType,
    all_providers,
    get_provider,
)
from repro.errors import ReproError


class TestRegistry:
    def test_seven_providers(self):
        assert len(all_providers()) == NUM_PROVIDERS

    def test_paper_roster(self):
        assert set(PROVIDER_SLUGS) == {
            "aws", "gcp", "azure", "alibaba", "digitalocean", "linode", "vultr",
        }

    def test_lookup_case_insensitive(self):
        assert get_provider("AWS").slug == "aws"

    def test_unknown_rejected(self):
        with pytest.raises(ReproError):
            get_provider("oracle")


class TestBackbones:
    def test_hyperscalers_private(self):
        for slug in ("aws", "gcp", "azure", "alibaba"):
            assert get_provider(slug).has_private_backbone, slug

    def test_small_providers_public(self):
        for slug in ("digitalocean", "linode", "vultr"):
            provider = get_provider(slug)
            assert provider.backbone is BackboneType.PUBLIC, slug
