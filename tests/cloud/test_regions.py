"""Tests for repro.cloud.regions — the §4.1 catalog invariants."""

import pytest

from repro.constants import NUM_CLOUD_REGIONS, NUM_DATACENTER_COUNTRIES
from repro.cloud.regions import (
    all_regions,
    datacenter_countries,
    get_region,
    iter_regions,
    regions_per_provider,
)
from repro.errors import ReproError
from repro.geo.countries import get_country


class TestCatalogInvariants:
    def test_101_regions(self):
        assert len(all_regions()) == NUM_CLOUD_REGIONS

    def test_21_countries(self):
        assert len(datacenter_countries()) == NUM_DATACENTER_COUNTRIES

    def test_unique_keys(self):
        keys = [region.key for region in all_regions()]
        assert len(keys) == len(set(keys))

    def test_every_provider_present(self):
        counts = regions_per_provider()
        assert set(counts) == {
            "aws", "gcp", "azure", "alibaba", "digitalocean", "linode", "vultr",
        }
        assert sum(counts.values()) == NUM_CLOUD_REGIONS

    def test_hyperscalers_have_most_regions(self):
        counts = regions_per_provider()
        assert counts["azure"] > counts["vultr"]
        assert counts["aws"] > counts["digitalocean"]

    def test_africa_has_exactly_one_region(self):
        """'only one operating region' in Africa (paper §4.3)."""
        african = list(iter_regions(continent="AF"))
        assert len(african) == 1
        assert african[0].country_code == "ZA"

    def test_all_continents_covered(self):
        continents = {region.continent for region in all_regions()}
        assert continents == {"NA", "EU", "SA", "AS", "AF", "OC"}

    def test_region_countries_resolve(self):
        for region in all_regions():
            get_country(region.country_code)

    def test_locations_inside_country_ballpark(self):
        """Region coordinates sit within 3000 km of the country centroid."""
        for region in all_regions():
            distance = region.location.distance_km(region.country.centroid)
            assert distance < 3000.0, region.key


class TestLookups:
    def test_get_region(self):
        region = get_region("aws:eu-central-1")
        assert region.city == "Frankfurt"
        assert region.country_code == "DE"

    def test_unknown_region(self):
        with pytest.raises(ReproError):
            get_region("aws:mars-central-1")

    def test_iter_by_provider(self):
        aws = list(iter_regions(provider="aws"))
        assert len(aws) == 17
        assert all(region.provider_slug == "aws" for region in aws)

    def test_iter_by_country(self):
        german = list(iter_regions(country="de"))
        assert {region.provider_slug for region in german} == {
            "aws", "gcp", "azure", "digitalocean", "linode", "vultr", "alibaba",
        }

    def test_iter_combined_filters(self):
        assert len(list(iter_regions(provider="azure", continent="EU"))) == 7
