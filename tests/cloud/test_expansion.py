"""Tests for repro.cloud.expansion."""

import pytest

from repro.cloud.expansion import CandidateRegion, ExpansionStudy, candidate_regions
from repro.cloud.regions import datacenter_countries
from repro.errors import ReproError
from repro.geo.coordinates import LatLon


class TestCandidates:
    def test_candidates_avoid_existing_countries(self):
        existing = set(datacenter_countries())
        for candidate in candidate_regions():
            assert candidate.country_code not in existing

    def test_sorted_by_population(self):
        from repro.geo.countries import get_country

        populations = [
            get_country(c.country_code).population_m for c in candidate_regions()
        ]
        assert populations == sorted(populations, reverse=True)

    def test_limit(self):
        assert len(candidate_regions(limit=5)) == 5


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self, tiny_dataset):
        return ExpansionStudy(tiny_dataset, candidates=candidate_regions(limit=12))

    def test_adding_regions_never_hurts(self, study):
        base = study.minima_with([])
        extended = study.minima_with(list(study.candidates[:4]))
        for probe_id in base:
            assert extended[probe_id] <= base[probe_id] + 1e-9

    def test_greedy_improves_monotonically(self, study):
        chosen = study.greedy(4)
        previous = study.population_weighted_latency(study.minima_with([]))
        for end in range(1, 5):
            current = study.population_weighted_latency(
                study.minima_with(chosen[:end])
            )
            assert current <= previous + 1e-9
            previous = current

    def test_greedy_targets_underserved_populations(self, study):
        """Greedy picks go to populous countries in AS/SA/AF — the
        paper's 'wider deployment ... especially in Asia, Latin America,
        and Africa'."""
        from repro.geo.countries import get_country

        chosen = study.greedy(5)
        continents = {get_country(c.country_code).continent for c in chosen}
        assert continents <= {"AS", "SA", "AF"}

    def test_report_improves_reachability(self, study):
        report = study.report(study.greedy(6))
        assert report["pw_latency_after"] < report["pw_latency_before"]
        assert (
            report["countries_beyond_pl_after"]
            <= report["countries_beyond_pl_before"]
        )

    def test_invalid_k(self, study):
        with pytest.raises(ReproError):
            study.greedy(0)

    def test_empty_candidates_rejected(self, tiny_dataset):
        with pytest.raises(ReproError):
            ExpansionStudy(tiny_dataset, candidates=[])

    def test_custom_candidate(self, tiny_dataset):
        nairobi = CandidateRegion(country_code="KE", location=LatLon(-1.3, 36.8))
        study = ExpansionStudy(tiny_dataset, candidates=[nairobi])
        report = study.report([nairobi])
        assert report["regions_added"] == 1
        assert report["median_probe_gain_ms"] >= 0.0
