"""Tests for repro.cloud.vm and repro.cloud.backbone."""

import pytest

from repro.cloud.backbone import PRIVATE_BACKBONE, adjustment_for, adjustment_for_slug
from repro.cloud.providers import get_provider
from repro.cloud.vm import deploy_fleet, vm_by_address, vm_for_region
from repro.errors import ReproError
from repro.net.pathmodel import PUBLIC_INTERNET


class TestFleet:
    def test_one_vm_per_region(self):
        fleet = deploy_fleet()
        assert len(fleet) == 101
        assert len({vm.region.key for vm in fleet}) == 101

    def test_addresses_unique(self):
        fleet = deploy_fleet()
        assert len({vm.address for vm in fleet}) == len(fleet)

    def test_fleet_cached(self):
        assert deploy_fleet() is deploy_fleet()

    def test_vm_for_region(self):
        vm = vm_for_region("gcp:europe-west3")
        assert vm.region.city == "Frankfurt"

    def test_vm_by_address_round_trip(self):
        for vm in deploy_fleet()[:10]:
            assert vm_by_address(vm.address) is vm

    def test_unknown_address(self):
        with pytest.raises(ReproError):
            vm_by_address("8.8.8.8")


class TestBackboneAdjustments:
    def test_private_providers_get_discount(self):
        assert adjustment_for(get_provider("aws")) is PRIVATE_BACKBONE
        assert adjustment_for_slug("gcp") is PRIVATE_BACKBONE

    def test_public_providers_unadjusted(self):
        assert adjustment_for_slug("linode") is PUBLIC_INTERNET
        assert adjustment_for_slug("vultr") is PUBLIC_INTERNET

    def test_discount_is_modest(self):
        """The paper's findings hold across providers; the private-backbone
        edge must be a nudge, not a regime change."""
        assert 0.9 <= PRIVATE_BACKBONE.path_factor < 1.0
        assert 0.3 <= PRIVATE_BACKBONE.peering_factor < 1.0

    def test_vm_adjustment_matches_provider(self):
        vm = vm_for_region("aws:eu-central-1")
        assert vm.adjustment is PRIVATE_BACKBONE
        vm = vm_for_region("linode:eu-central")
        assert vm.adjustment is PUBLIC_INTERNET
