"""Smoke tests: the example scripts must run end to end.

Each example is executed in-process (importing its ``main``) with stdout
captured; only the faster examples are exercised — the SMALL-scale ones
are covered by their underlying APIs elsewhere in the suite.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesPresent:
    def test_at_least_seven_examples(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 7

    def test_all_examples_have_docstrings_and_main(self):
        for script in EXAMPLES_DIR.glob("*.py"):
            text = script.read_text(encoding="utf-8")
            assert '"""' in text, script.name
            assert "def main()" in text, script.name
            assert '__name__ == "__main__"' in text, script.name


class TestExamplesRun:
    def test_quickstart(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["quickstart.py"])
        module = _load_example("quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "Paper vs. measured" in out

    def test_custom_measurement(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["custom_measurement.py"])
        module = _load_example("custom_measurement.py")
        module.main()
        out = capsys.readouterr().out
        assert "Ping results" in out
        assert "Credits spent" in out

    def test_core_vs_lastmile(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["core_vs_lastmile.py"])
        module = _load_example("core_vs_lastmile.py")
        module.main()
        out = capsys.readouterr().out
        assert "wireless_bottleneck" in out

    def test_full_campaign_tiny(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(
            sys,
            "argv",
            ["full_campaign.py", "--scale", "tiny", "--out", str(tmp_path)],
        )
        module = _load_example("full_campaign.py")
        module.main()
        assert (tmp_path / "dataset.csv").exists()
        assert (tmp_path / "fig6.json").exists()
