"""Tests for repro.geo.countries — the study's §4.1 footprint invariants."""

import pytest

from repro.constants import MIN_PROBES, NUM_PROBE_COUNTRIES
from repro.errors import UnknownCountryError
from repro.geo.continents import CONTINENT_CODES
from repro.geo.countries import (
    all_countries,
    countries_with_probes,
    get_country,
    iter_countries,
    total_probe_count,
    world_internet_users_m,
    world_population_m,
)


class TestLookups:
    def test_get_country_case_insensitive(self):
        assert get_country("de").name == "Germany"
        assert get_country("DE").iso2 == "DE"

    def test_unknown_country(self):
        with pytest.raises(UnknownCountryError):
            get_country("ZZ")

    def test_iter_by_continent(self):
        european = list(iter_countries("EU"))
        assert all(c.continent == "EU" for c in european)
        assert any(c.iso2 == "DE" for c in european)

    def test_iter_all(self):
        assert len(list(iter_countries())) == len(all_countries())


class TestPaperFootprint:
    def test_166_probe_countries(self):
        assert len(countries_with_probes()) == NUM_PROBE_COUNTRIES

    def test_at_least_3200_probes(self):
        assert total_probe_count() >= MIN_PROBES

    def test_probe_density_is_eu_heavy(self):
        """The real platform's European bias must be present."""
        eu = sum(c.atlas_probes for c in iter_countries("EU"))
        assert eu / total_probe_count() > 0.5

    def test_germany_hosts_most_probes(self):
        top = max(all_countries(), key=lambda c: c.atlas_probes)
        assert top.iso2 == "DE"


class TestRecordValidity:
    def test_unique_iso_codes(self):
        codes = [c.iso2 for c in all_countries()]
        assert len(codes) == len(set(codes))

    def test_every_continent_populated(self):
        present = {c.continent for c in all_countries()}
        assert present == set(CONTINENT_CODES)

    def test_field_ranges(self):
        for country in all_countries():
            assert len(country.iso2) == 2
            assert country.population_m > 0
            assert 0.0 < country.internet_share <= 1.0
            assert country.infra_tier in (1, 2, 3, 4)
            assert country.atlas_probes >= 0
            assert country.area_kkm2 > 0

    def test_scatter_radius_bounded(self):
        for country in all_countries():
            assert 0 < country.scatter_radius_km <= 900.0

    def test_internet_users_consistency(self):
        germany = get_country("DE")
        assert germany.internet_users_m == pytest.approx(
            germany.population_m * germany.internet_share
        )

    def test_world_totals_plausible(self):
        # The database should cover most of the world's ~7.7 B people.
        assert 6_000 < world_population_m() < 8_200
        assert 3_000 < world_internet_users_m() < world_population_m()

    def test_tier_correlates_with_internet_share(self):
        """Tier-1 countries are, on average, far better connected."""
        tier1 = [c.internet_share for c in all_countries() if c.infra_tier == 1]
        tier4 = [c.internet_share for c in all_countries() if c.infra_tier == 4]
        assert sum(tier1) / len(tier1) > sum(tier4) / len(tier4) + 0.3
