"""Tests for repro.geo.continents."""

import pytest

from repro.errors import GeoError
from repro.geo.continents import (
    ADJACENT_TARGETS,
    CONTINENT_CODES,
    UNDER_SERVED,
    WELL_CONNECTED,
    adjacent_target_continents,
    all_continents,
    get_continent,
    is_well_connected,
)


class TestRegistry:
    def test_six_continents(self):
        assert len(CONTINENT_CODES) == 6

    def test_figure_order(self):
        # The paper's figures lead with the well-connected continents.
        assert CONTINENT_CODES[:3] == ("NA", "EU", "OC")

    def test_lookup_case_insensitive(self):
        assert get_continent("eu").name == "Europe"
        assert get_continent("EU").code == "EU"

    def test_unknown_raises(self):
        with pytest.raises(GeoError):
            get_continent("XX")

    def test_all_continents_matches_codes(self):
        assert tuple(c.code for c in all_continents()) == CONTINENT_CODES

    def test_latin_america_naming(self):
        # The paper groups Central/South America as "Latin America".
        assert get_continent("SA").name == "Latin America"


class TestGroupings:
    def test_partition(self):
        assert set(WELL_CONNECTED) | set(UNDER_SERVED) == set(CONTINENT_CODES)
        assert not set(WELL_CONNECTED) & set(UNDER_SERVED)

    def test_is_well_connected(self):
        assert is_well_connected("NA")
        assert is_well_connected("eu")
        assert not is_well_connected("AF")


class TestAdjacency:
    def test_africa_measures_europe(self):
        assert adjacent_target_continents("AF") == ("EU",)

    def test_latam_measures_north_america(self):
        assert adjacent_target_continents("SA") == ("NA",)

    def test_well_connected_have_no_fallback(self):
        for code in WELL_CONNECTED:
            assert adjacent_target_continents(code) == ()

    def test_fallbacks_point_to_well_connected(self):
        for targets in ADJACENT_TARGETS.values():
            for code in targets:
                assert code in WELL_CONNECTED
