"""Tests for repro.geo.coordinates."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeoError
from repro.geo.coordinates import (
    EARTH_RADIUS_KM,
    LatLon,
    bounding_box,
    destination_point,
    haversine_km,
    initial_bearing_deg,
    midpoint,
    nearest,
)

lat_strategy = st.floats(min_value=-89.9, max_value=89.9)
lon_strategy = st.floats(min_value=-179.9, max_value=179.9)
point_strategy = st.builds(LatLon, lat_strategy, lon_strategy)


class TestLatLon:
    def test_valid_construction(self):
        point = LatLon(48.86, 2.35)
        assert point.lat == 48.86
        assert point.as_tuple() == (48.86, 2.35)

    @pytest.mark.parametrize("lat", [-90.1, 91.0, 1000.0])
    def test_rejects_bad_latitude(self, lat):
        with pytest.raises(GeoError):
            LatLon(lat, 0.0)

    @pytest.mark.parametrize("lon", [-180.5, 181.0])
    def test_rejects_bad_longitude(self, lon):
        with pytest.raises(GeoError):
            LatLon(0.0, lon)

    def test_poles_and_antimeridian_allowed(self):
        LatLon(90.0, 180.0)
        LatLon(-90.0, -180.0)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(50.0, 8.0, 50.0, 8.0) == 0.0

    def test_known_distance_paris_london(self):
        # Paris to London is ~344 km.
        distance = haversine_km(48.8566, 2.3522, 51.5074, -0.1278)
        assert distance == pytest.approx(344, abs=10)

    def test_known_distance_ny_london(self):
        # New York to London is ~5570 km.
        distance = haversine_km(40.7128, -74.0060, 51.5074, -0.1278)
        assert distance == pytest.approx(5570, abs=60)

    def test_antipodal_is_half_circumference(self):
        distance = haversine_km(0.0, 0.0, 0.0, 180.0)
        assert distance == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-6)

    @given(point_strategy, point_strategy)
    @settings(max_examples=100)
    def test_symmetry(self, a, b):
        d1 = haversine_km(a.lat, a.lon, b.lat, b.lon)
        d2 = haversine_km(b.lat, b.lon, a.lat, a.lon)
        assert d1 == pytest.approx(d2, abs=1e-9)

    @given(point_strategy, point_strategy)
    @settings(max_examples=100)
    def test_bounded_by_half_circumference(self, a, b):
        distance = a.distance_km(b)
        assert 0.0 <= distance <= math.pi * EARTH_RADIUS_KM + 1e-6


class TestDestinationPoint:
    def test_zero_distance_is_identity(self):
        origin = LatLon(12.0, 34.0)
        result = destination_point(origin, 45.0, 0.0)
        assert result.lat == pytest.approx(origin.lat, abs=1e-9)
        assert result.lon == pytest.approx(origin.lon, abs=1e-9)

    def test_rejects_negative_distance(self):
        with pytest.raises(GeoError):
            destination_point(LatLon(0, 0), 0.0, -1.0)

    def test_due_north(self):
        result = destination_point(LatLon(0.0, 0.0), 0.0, 111.2)
        assert result.lat == pytest.approx(1.0, abs=0.01)
        assert result.lon == pytest.approx(0.0, abs=1e-6)

    @given(point_strategy, st.floats(0, 359.9), st.floats(1.0, 3000.0))
    @settings(max_examples=100)
    def test_round_trip_distance(self, origin, bearing, distance):
        target = destination_point(origin, bearing, distance)
        assert origin.distance_km(target) == pytest.approx(distance, rel=0.01)


class TestBearing:
    def test_due_east(self):
        bearing = initial_bearing_deg(LatLon(0.0, 0.0), LatLon(0.0, 10.0))
        assert bearing == pytest.approx(90.0, abs=0.1)

    @given(point_strategy, point_strategy)
    @settings(max_examples=100)
    def test_range(self, a, b):
        bearing = initial_bearing_deg(a, b)
        assert 0.0 <= bearing < 360.0


class TestMidpoint:
    def test_midpoint_equidistant(self):
        a = LatLon(10.0, 20.0)
        b = LatLon(-30.0, 60.0)
        mid = midpoint(a, b)
        assert a.distance_km(mid) == pytest.approx(b.distance_km(mid), rel=1e-6)

    def test_midpoint_on_equator(self):
        mid = midpoint(LatLon(0.0, 0.0), LatLon(0.0, 90.0))
        assert mid.lat == pytest.approx(0.0, abs=1e-9)
        assert mid.lon == pytest.approx(45.0, abs=1e-9)


class TestNearest:
    def test_picks_closest(self):
        point = LatLon(50.0, 8.0)
        candidates = [
            ("far", LatLon(0.0, 0.0)),
            ("near", LatLon(50.1, 8.1)),
            ("mid", LatLon(48.0, 2.0)),
        ]
        key, distance = nearest(point, candidates)
        assert key == "near"
        assert distance < 20.0

    def test_empty_candidates_raise(self):
        with pytest.raises(GeoError):
            nearest(LatLon(0, 0), [])


class TestBoundingBox:
    def test_single_point(self):
        sw, ne = bounding_box([LatLon(5.0, 6.0)])
        assert sw == ne == LatLon(5.0, 6.0)

    def test_spans_points(self):
        sw, ne = bounding_box([LatLon(1, 2), LatLon(-3, 10), LatLon(5, -4)])
        assert sw == LatLon(-3, -4)
        assert ne == LatLon(5, 10)

    def test_empty_raises(self):
        with pytest.raises(GeoError):
            bounding_box([])
