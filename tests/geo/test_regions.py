"""Tests for repro.geo.regions."""

import pytest

from repro.errors import GeoError
from repro.geo.countries import all_countries, get_country
from repro.geo.regions import (
    SUBREGIONS,
    countries_in_subregion,
    is_eastern_europe,
    subregion_of,
)


class TestAssignments:
    def test_no_country_in_two_subregions(self):
        seen = {}
        for name, members in SUBREGIONS.items():
            for code in members:
                assert code not in seen, (code, name, seen.get(code))
                seen[code] = name

    def test_subregion_members_share_continent(self):
        """Every subregion's known members sit in one continent."""
        for name in SUBREGIONS:
            continents = {
                get_country(code).continent
                for code in countries_in_subregion(name)
            }
            assert len(continents) == 1, (name, continents)

    def test_most_countries_assigned(self):
        assigned = sum(
            1 for country in all_countries()
            if not subregion_of(country.iso2).startswith("other-")
        )
        assert assigned / len(all_countries()) > 0.85

    def test_fallback_label(self):
        # A country left out of every set gets a continent default.
        for country in all_countries():
            label = subregion_of(country.iso2)
            assert label in SUBREGIONS or label.startswith("other-")


class TestLookups:
    def test_subregion_of(self):
        assert subregion_of("DE") == "western-europe"
        assert subregion_of("UA") == "eastern-europe"
        assert subregion_of("KE") == "eastern-africa"
        assert subregion_of("BR") == "south-america"

    def test_case_insensitive(self):
        assert subregion_of("de") == "western-europe"

    def test_unknown_subregion(self):
        with pytest.raises(GeoError):
            countries_in_subregion("atlantis")

    def test_countries_in_subregion_sorted(self):
        members = countries_in_subregion("northern-europe")
        assert list(members) == sorted(members)
        assert "SE" in members


class TestPaperCohorts:
    def test_eastern_europe_cohort(self):
        assert is_eastern_europe("RU")
        assert is_eastern_europe("PL")
        assert not is_eastern_europe("DE")
        assert not is_eastern_europe("PT")

    def test_eastern_europe_has_no_datacenters(self):
        """The Figure 6 tail narrative: the eastern cohort hosts none of
        the 101 regions (Sweden/Finland are 'northern' here)."""
        from repro.cloud.regions import datacenter_countries

        eastern = set(countries_in_subregion("eastern-europe"))
        assert not eastern & set(datacenter_countries())
