"""Chaos-hardening integration tests.

The headline guarantee of the fault-injection work: a campaign collected
through a fault-injecting transport converges to the *same dataset* a
fault-free run produces — exactly identical under recoverable-only
profiles, identical up to quarantined malformed blobs under hostile ones
— and never crashes.
"""

import numpy as np
import pytest

from repro.core.campaign import Campaign, CampaignScale
from repro.core.completeness import collection_health

#: Matches tests/conftest.FIXTURE_SEED so the session fixtures double as
#: the fault-free baselines here.
FIXTURE_SEED = 7

COLUMNS = ("probe_id", "target_index", "timestamp", "sent", "rcvd")


def assert_datasets_identical(chaotic, baseline):
    assert chaotic.num_samples == baseline.num_samples
    for column in COLUMNS:
        assert np.array_equal(chaotic.column(column), baseline.column(column))
    for column in ("rtt_min", "rtt_avg"):
        assert np.array_equal(
            chaotic.column(column), baseline.column(column), equal_nan=True
        )


class TestFlakyIdentity:
    def test_small_campaign_converges_to_baseline(self, small_dataset):
        """SMALL scale under the flaky profile: retries + dedup recover
        the byte-identical dataset, and the faults actually fired."""
        campaign = Campaign.from_paper(
            scale=CampaignScale.SMALL, seed=FIXTURE_SEED, faults="flaky"
        )
        dataset = campaign.run()
        assert_datasets_identical(dataset, small_dataset)
        health = collection_health(campaign)
        assert health["transport"]["profile"] == "flaky"
        assert sum(health["transport"]["faults"].values()) > 0
        assert health["transport"]["retries"] > 0
        assert health["quarantined"] == 0  # flaky is recoverable-only


class TestHarsherProfiles:
    def test_outage_converges_exactly(self, tiny_dataset):
        """Maintenance windows stall collection (on the simulated clock)
        but lose nothing: outage injects no unrecoverable faults."""
        campaign = Campaign.from_paper(
            scale=CampaignScale.TINY, seed=FIXTURE_SEED, faults="outage"
        )
        dataset = campaign.run()
        assert_datasets_identical(dataset, tiny_dataset)
        health = collection_health(campaign)
        assert health["transport"]["simulated_sleep_s"] > 0

    def test_hostile_converges_up_to_quarantine(self, tiny_dataset):
        """Malformed blobs are quarantined, never crash the collector;
        everything else converges."""
        campaign = Campaign.from_paper(
            scale=CampaignScale.TINY, seed=FIXTURE_SEED, faults="hostile"
        )
        dataset = campaign.run()
        health = collection_health(campaign)
        quarantined = health["quarantined"]
        assert quarantined > 0
        # A malformed blob may also hit an injected duplicate, so the
        # sample deficit is at most the quarantine count.
        deficit = tiny_dataset.num_samples - dataset.num_samples
        assert 0 <= deficit <= quarantined
        # Surviving samples are a subset of the baseline, values intact.
        baseline = {
            (p, t, ts): r
            for p, t, ts, r in zip(
                tiny_dataset.column("probe_id"),
                tiny_dataset.column("target_index"),
                tiny_dataset.column("timestamp"),
                tiny_dataset.column("rtt_min"),
            )
        }
        for p, t, ts, r in zip(
            dataset.column("probe_id"),
            dataset.column("target_index"),
            dataset.column("timestamp"),
            dataset.column("rtt_min"),
        ):
            expected = baseline[(int(p), int(t), int(ts))]
            assert (np.isnan(r) and np.isnan(expected)) or r == expected


class TestDeterminism:
    def test_hostile_runs_replay_byte_identically(self):
        runs = []
        for _ in range(2):
            campaign = Campaign.from_paper(
                scale=CampaignScale.TINY, seed=99, faults="hostile"
            )
            dataset = campaign.run()
            runs.append((dataset, collection_health(campaign)))
        dataset_a, health_a = runs[0]
        dataset_b, health_b = runs[1]
        assert_datasets_identical(dataset_a, dataset_b)
        assert health_a == health_b
        assert health_a["quarantined"] == health_b["quarantined"]
