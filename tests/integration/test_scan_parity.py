"""Out-of-core analysis parity: store-backed figures match in-memory.

The scan engine's end-to-end contract: pointing the CLI at a committed
store (``--from-store``) must produce **byte-identical stdout** to the
same command analyzing the freshly collected in-memory dataset — for
the paper's CDF figures (5 and 6) and the full Markdown report, under
every transport fault profile.  Zone-map pruning, streaming reduction,
and aggregate caching are invisible to every downstream artifact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.campaign import Campaign, CampaignScale
from repro.frame.stats import ecdf, summarize
from repro.obs import Obs
from repro.store import CampaignCatalog

SEED = 7

PROFILES = ("none", "flaky", "outage")


def build_campaign(profile, obs=None):
    return Campaign.from_paper(
        scale=CampaignScale.TINY,
        seed=SEED,
        faults=None if profile == "none" else profile,
        obs=obs,
    )


@pytest.fixture(scope="module")
def committed(tmp_path_factory):
    """One committed catalog per fault profile: (catalog_root, store_dir)."""
    root = tmp_path_factory.mktemp("catalogs")
    stores = {}
    for profile in PROFILES:
        catalog = root / profile
        build_campaign(profile).run(store=catalog)
        (fingerprint,) = CampaignCatalog(catalog).entries()
        stores[profile] = (catalog, catalog / fingerprint)
    return stores


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestCliParity:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("number", ["5", "6"])
    def test_figure_from_store_byte_identical(
        self, capsys, committed, profile, number
    ):
        base = (
            "figure", number,
            "--scale", "tiny", "--seed", str(SEED), "--faults", profile,
        )
        in_memory = run_cli(capsys, *base)
        _, store_dir = committed[profile]
        from_store = run_cli(capsys, *base, "--from-store", str(store_dir))
        assert from_store == in_memory

    @pytest.mark.parametrize("profile", PROFILES)
    def test_report_from_store_byte_identical(self, capsys, committed, profile):
        base = (
            "report",
            "--scale", "tiny", "--seed", str(SEED), "--faults", profile,
        )
        in_memory = run_cli(capsys, *base)
        _, store_dir = committed[profile]
        from_store = run_cli(capsys, *base, "--from-store", str(store_dir))
        assert from_store == in_memory


class TestScanAnalysisParity:
    """The scan path itself (no dataset materialization) agrees with the
    in-memory reducers on the same committed bytes."""

    @pytest.mark.parametrize("profile", PROFILES)
    def test_campaign_scan_summary_matches_dataset(self, committed, profile):
        catalog, _ = committed[profile]
        obs = Obs()
        campaign = build_campaign(profile, obs=obs)
        dataset = campaign.run()
        scan = campaign.scan(catalog)
        column = dataset.column("rtt_min").astype(np.float64)
        finite = column[~np.isnan(column)]
        streamed = scan.filter("rtt_min", ">=", 0.0).summarize("rtt_min")
        expected = summarize(finite)
        assert streamed.count == expected.count
        assert streamed.minimum == expected.minimum
        assert streamed.maximum == expected.maximum
        assert np.isclose(streamed.mean, expected.mean)
        # Digest quantiles stay within their documented rank window.
        exact = ecdf(finite)
        for q, estimate in (
            (0.5, streamed.median), (0.95, streamed.p95),
        ):
            eps = scan_rank_eps(len(finite))
            lo = exact.quantile(max(0.0, q - eps))
            hi = exact.quantile(min(1.0, q + eps))
            assert lo <= estimate <= hi

    def test_scan_prunes_on_selective_predicate(self, committed, tmp_path):
        """Campaign rows arrive ordered by target, so a selective
        ``target_index`` predicate must skip most shards of a
        many-shard store — without changing a single answer."""
        import shutil

        from repro.store import compact, scan_store
        from repro.store.writer import gc_store

        _, store_dir = committed["none"]
        small_shards = tmp_path / "sharded"
        shutil.copytree(store_dir, small_shards)
        compact(small_shards, rows_per_shard=2048)
        gc_store(small_shards)
        dataset = build_campaign("none").run()
        targets = dataset.column("target_index")
        cutoff = int(np.quantile(targets, 0.05))
        obs = Obs()
        scan = scan_store(small_shards, obs=obs).filter(
            "target_index", "<=", cutoff
        )
        assert scan.count() == int((targets <= cutoff).sum())
        skipped = obs.registry.counter("scan_chunks_skipped_total").value
        scanned = obs.registry.counter("scan_rows_scanned_total").value
        assert skipped > 0
        assert scanned < len(targets)

    def test_scan_misses_cleanly_without_a_store(self, tmp_path):
        from repro.errors import CampaignError

        campaign = build_campaign("none")
        with pytest.raises(CampaignError):
            campaign.scan(tmp_path / "empty-catalog")


def scan_rank_eps(count):
    from repro.frame.streaming import DEFAULT_COMPRESSION, digest_rank_eps

    return digest_rank_eps(DEFAULT_COMPRESSION, count)
