"""Store round-trip parity: persisted campaigns analyze identically.

The store's end-to-end contract: a dataset saved to a store and
reopened — by a store-backed collection at any worker count, under any
fault profile — is **byte-identical** to the in-memory dataset the same
campaign produces, and every downstream analysis (headline report,
figure payloads) is therefore identical too.  Corruption surfaces as
:class:`~repro.errors.StoreIntegrityError` before any data is served.
"""

import pytest

from repro.core.campaign import Campaign, CampaignScale
from repro.core.report import headline_report
from repro.errors import StoreIntegrityError
from repro.store import CampaignCatalog, open_dataset

from .conftest import dataset_fingerprint

FIXTURE_SEED = 7

PROFILES = ("none", "flaky", "outage")


def build_campaign(profile):
    return Campaign.from_paper(
        scale=CampaignScale.TINY,
        seed=FIXTURE_SEED,
        faults=None if profile == "none" else profile,
    )


@pytest.fixture(scope="module")
def baselines():
    """In-memory serial datasets, one per profile."""
    return {profile: build_campaign(profile).run() for profile in PROFILES}


class TestStoreRoundTripParity:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_store_backed_run_byte_identical(
        self, baselines, tmp_path, profile, workers
    ):
        catalog = tmp_path / "catalog"
        stored = build_campaign(profile).run(workers=workers, store=catalog)
        assert dataset_fingerprint(stored) == dataset_fingerprint(
            baselines[profile]
        )
        # And the cache hit that follows serves the same bytes again.
        reopened = build_campaign(profile).run(store=catalog)
        assert dataset_fingerprint(reopened) == dataset_fingerprint(
            baselines[profile]
        )

    @pytest.mark.parametrize("workers", [1, 4])
    def test_store_bytes_independent_of_worker_count(self, tmp_path, workers):
        """Not just the reloaded dataset — the files themselves match."""
        serial_root = tmp_path / "serial"
        sharded_root = tmp_path / f"workers{workers}"
        build_campaign("flaky").run(store=serial_root)
        build_campaign("flaky").run(workers=workers, store=sharded_root)
        (serial_fp,) = CampaignCatalog(serial_root).entries()
        (sharded_fp,) = CampaignCatalog(sharded_root).entries()
        assert serial_fp == sharded_fp
        serial_files = sorted((serial_root / serial_fp).iterdir())
        sharded_files = sorted((sharded_root / sharded_fp).iterdir())
        assert [f.name for f in serial_files] == [f.name for f in sharded_files]
        for left, right in zip(serial_files, sharded_files):
            assert left.read_bytes() == right.read_bytes(), left.name

    def test_save_then_open_matches_streamed_store(self, baselines, tmp_path):
        """dataset.save() and collect(store=) produce the same entry bytes."""
        from repro.store.catalog import (
            campaign_fingerprint,
            campaign_provenance,
        )

        campaign = build_campaign("none")
        streamed_root = tmp_path / "streamed"
        build_campaign("none").run(store=streamed_root)
        fingerprint = campaign_fingerprint(campaign_provenance(campaign))
        saved_path = tmp_path / "saved"
        baselines["none"].save(
            saved_path, provenance=campaign_provenance(campaign)
        )
        streamed_path = streamed_root / fingerprint
        saved_files = {p.name: p.read_bytes() for p in saved_path.iterdir()}
        streamed_files = {
            p.name: p.read_bytes() for p in streamed_path.iterdir()
        }
        assert saved_files == streamed_files


class TestAnalysisParity:
    def test_headline_report_identical(self, baselines, tmp_path):
        stored = build_campaign("none").run(store=tmp_path / "catalog")
        assert headline_report(stored) == headline_report(baselines["none"])

    def test_figure_payload_identical(self, baselines, tmp_path):
        from repro.core.proximity import min_rtt_cdf_by_continent
        from repro.viz import ecdf_payload

        stored = build_campaign("flaky").run(store=tmp_path / "catalog")
        assert ecdf_payload(
            min_rtt_cdf_by_continent(stored)
        ) == ecdf_payload(min_rtt_cdf_by_continent(baselines["flaky"]))


class TestCorruptionSurface:
    def test_corrupt_store_raises_before_serving(self, tmp_path):
        catalog_root = tmp_path / "catalog"
        build_campaign("none").run(store=catalog_root)
        (entry_fp,) = CampaignCatalog(catalog_root).entries()
        chunk = next(
            iter(sorted((catalog_root / entry_fp).glob("shard-*.bin")))
        )
        raw = bytearray(chunk.read_bytes())
        raw[7] ^= 0x40
        chunk.write_bytes(bytes(raw))
        with pytest.raises(StoreIntegrityError):
            open_dataset(catalog_root / entry_fp)
        with pytest.raises(StoreIntegrityError):
            build_campaign("none").run(store=catalog_root)
