"""Shared harness for the parallel-collection parity suite.

The determinism contract under test (DESIGN.md): collecting a campaign
with ``workers=N`` must produce a frozen dataset **byte-identical** to a
serial run of the same campaign — same seed, same scale, same fault
profile — together with an equal checkpoint and equivalent collector and
transport accounting.  :class:`ParityHarness` packages that comparison so
every parity test states only *which* campaign it runs, not *how* parity
is checked.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

import pytest

from repro.core.campaign import (
    Campaign,
    CampaignScale,
    CollectionCheckpoint,
    ParallelCollector,
)
from repro.core.dataset import CampaignDataset

#: Worker count the parity suite fans out to; CI pins it via the
#: environment so the matrix exercises exactly what the job advertises.
PARITY_WORKERS = int(os.environ.get("REPRO_PARITY_WORKERS", "4"))

#: Every frozen sample column, in schema order.  Byte-identity means
#: *all* of them, serialized, match — values and row order both.
SAMPLE_COLUMNS = (
    "probe_id", "target_index", "timestamp",
    "rtt_min", "rtt_avg", "sent", "rcvd",
)


def dataset_fingerprint(dataset: CampaignDataset) -> bytes:
    """The frozen dataset as one order-sensitive byte string."""
    return b"".join(dataset.column(name).tobytes() for name in SAMPLE_COLUMNS)


@dataclass
class CollectionOutcome:
    """Everything one collection run produced that parity compares."""

    dataset: CampaignDataset
    checkpoint: CollectionCheckpoint
    collector_stats: Dict[str, int]
    transport_stats: Dict[str, object]
    campaign: Campaign


class ParityHarness:
    """Reusable serial-vs-parallel determinism checker.

    Build one per (seed, scale, profile) configuration, call :meth:`run`
    once serially and once with workers, then :meth:`assert_parity`.
    Each run gets a *fresh* campaign so no platform or transport state
    leaks between the two sides of the comparison.
    """

    def __init__(
        self,
        seed: int,
        scale: CampaignScale,
        profile: str = "none",
        fast_path: str = "auto",
    ):
        self.seed = seed
        self.scale = scale
        self.profile = profile
        self.fast_path = fast_path

    def build_campaign(self) -> Campaign:
        faults = None if self.profile == "none" else self.profile
        campaign = Campaign.from_paper(
            scale=self.scale,
            seed=self.seed,
            faults=faults,
            fast_path=self.fast_path,
        )
        campaign.create_measurements()
        return campaign

    def run(
        self, workers: Optional[int] = None, executor: Optional[str] = None
    ) -> CollectionOutcome:
        """Collect a fresh campaign; ``workers=None`` means serial.

        ``executor`` forces the pool flavour (``"thread"`` /
        ``"process"``) through :class:`ParallelCollector` directly —
        ``campaign.collect`` only exposes the auto choice.
        """
        campaign = self.build_campaign()
        checkpoint = CollectionCheckpoint()
        if workers is not None and executor is not None:
            dataset = CampaignDataset(
                campaign.platform.probes, campaign.platform.fleet
            )
            ParallelCollector(
                campaign, workers=workers, executor=executor
            ).collect_into(dataset, checkpoint=checkpoint)
            dataset.freeze()
        else:
            dataset = campaign.collect(checkpoint=checkpoint, workers=workers)
        return CollectionOutcome(
            dataset=dataset,
            checkpoint=checkpoint,
            collector_stats=campaign.collection_stats.as_dict(),
            transport_stats=campaign.transport_stats(),
            campaign=campaign,
        )

    # -- assertions -----------------------------------------------------------

    @staticmethod
    def assert_datasets_byte_identical(
        actual: CampaignDataset, expected: CampaignDataset
    ) -> None:
        assert actual.num_samples == expected.num_samples
        assert dataset_fingerprint(actual) == dataset_fingerprint(expected)

    @staticmethod
    def assert_checkpoints_equal(
        actual: CollectionCheckpoint, expected: CollectionCheckpoint
    ) -> None:
        assert actual.high_water == expected.high_water

    @staticmethod
    def assert_transport_stats_equivalent(
        actual: Dict[str, object], expected: Dict[str, object]
    ) -> None:
        """Fault/retry accounting must agree up to documented caveats.

        ``budget_left`` is excluded: every parallel worker carries its
        own full retry budget, so the summed remainder is larger than a
        single serial engine's by construction.  ``simulated_sleep_s``
        gets a millisecond-scale tolerance because each engine rounds
        its own total before they are summed.
        """
        assert set(actual) == set(expected)
        for key in set(actual) - {"simulated_sleep_s", "budget_left"}:
            assert actual[key] == expected[key], f"transport stat {key!r}"
        assert actual["simulated_sleep_s"] == pytest.approx(
            expected["simulated_sleep_s"], abs=0.01
        )

    def assert_parity(
        self, parallel: CollectionOutcome, serial: CollectionOutcome
    ) -> None:
        self.assert_datasets_byte_identical(parallel.dataset, serial.dataset)
        self.assert_checkpoints_equal(parallel.checkpoint, serial.checkpoint)
        assert parallel.collector_stats == serial.collector_stats
        self.assert_transport_stats_equivalent(
            parallel.transport_stats, serial.transport_stats
        )


@pytest.fixture
def parity_harness():
    """Factory fixture: ``parity_harness(seed, scale, profile)``."""
    return ParityHarness
