"""Scalar-vs-vectorized fast-path parity suite.

The tentpole guarantee of the batch synthesis fast path: collecting a
campaign through the columnar fetch (``fast_path="auto"``/``"on"``)
produces a frozen dataset **byte-identical** to the per-sample scalar
pipeline (``fast_path="off"``) — same seed, same scale, same fault
profile, same worker count.  Under fault injection the columnar fetch is
unavailable by design (the chaos engine mangles the raw dict stream), so
``"auto"`` must converge to the scalar bytes via fallback, and ``"on"``
must refuse loudly rather than silently measure the wrong path.
"""

import numpy as np
import pytest

from repro.atlas.api.retry import RetryPolicy
from repro.atlas.api.transport import Transport
from repro.core.campaign import Campaign, CampaignScale, CollectionCheckpoint
from repro.errors import CampaignError, CollectionInterruptedError

from .conftest import PARITY_WORKERS, ParityHarness, dataset_fingerprint

FIXTURE_SEED = 7

ALL_PROFILES = ("none", "flaky", "outage", "hostile")


class TestTinyFastPathParity:
    """TINY campaigns: full fast-vs-scalar cross-check per profile."""

    @pytest.mark.parametrize("profile", ALL_PROFILES)
    def test_fast_matches_scalar(self, profile):
        """auto (vectorized on a clean wire, fallback under chaos) and
        off (always scalar) must agree byte-for-byte — datasets,
        checkpoints, and accounting alike."""
        scalar = ParityHarness(
            FIXTURE_SEED, CampaignScale.TINY, profile, fast_path="off"
        ).run()
        fast = ParityHarness(
            FIXTURE_SEED, CampaignScale.TINY, profile, fast_path="auto"
        ).run()
        harness = ParityHarness(FIXTURE_SEED, CampaignScale.TINY, profile)
        harness.assert_parity(fast, scalar)

    def test_fast_parallel_matches_scalar_serial(self):
        """Vectorized + sharded vs scalar + serial: the two orthogonal
        fast paths compose without perturbing a byte."""
        scalar = ParityHarness(
            FIXTURE_SEED, CampaignScale.TINY, "none", fast_path="off"
        ).run()
        fast = ParityHarness(
            FIXTURE_SEED, CampaignScale.TINY, "none", fast_path="auto"
        ).run(workers=PARITY_WORKERS)
        harness = ParityHarness(FIXTURE_SEED, CampaignScale.TINY, "none")
        harness.assert_parity(fast, scalar)

    def test_forced_on_matches_scalar(self):
        """fast_path='on' (no silent fallback possible) still produces
        the scalar bytes on a clean transport."""
        scalar = ParityHarness(
            FIXTURE_SEED, CampaignScale.TINY, "none", fast_path="off"
        ).run()
        forced = ParityHarness(
            FIXTURE_SEED, CampaignScale.TINY, "none", fast_path="on"
        ).run()
        ParityHarness.assert_datasets_byte_identical(
            forced.dataset, scalar.dataset
        )


class TestSmallFastPathParity:
    """SMALL compares one scalar run against the shared session baseline
    (built through the fast path by ``tests/conftest.py``), so the
    expensive scalar side runs exactly once."""

    def test_scalar_small_matches_fast_baseline(self, small_dataset):
        scalar = ParityHarness(
            FIXTURE_SEED, CampaignScale.SMALL, "none", fast_path="off"
        ).run()
        ParityHarness.assert_datasets_byte_identical(
            scalar.dataset, small_dataset
        )
        assert np.array_equal(
            scalar.dataset.column("rtt_min"),
            small_dataset.column("rtt_min"),
            equal_nan=True,
        )


class TestFastPathModes:
    """The mode knob itself: validation and refusal semantics."""

    def test_unknown_mode_rejected(self):
        with pytest.raises(CampaignError):
            Campaign.from_paper(
                scale=CampaignScale.TINY, seed=FIXTURE_SEED, fast_path="warp"
            )

    def test_forced_on_refuses_chaos_transport(self):
        """'on' exists for benchmarks that must not silently measure the
        scalar path — a chaos transport cannot serve columns, so the
        collection raises instead of falling back."""
        campaign = Campaign.from_paper(
            scale=CampaignScale.TINY,
            seed=FIXTURE_SEED,
            faults="flaky",
            fast_path="on",
        )
        campaign.create_measurements()
        with pytest.raises((CampaignError, CollectionInterruptedError)):
            campaign.collect()

    def test_auto_fallback_under_chaos_counts_faults(self):
        """'auto' under chaos really exercises the scalar machinery: the
        transport injects faults, which the columnar path never sees."""
        outcome = ParityHarness(
            FIXTURE_SEED, CampaignScale.TINY, "flaky", fast_path="auto"
        ).run()
        assert sum(outcome.transport_stats["faults"].values()) > 0


class TestFastPathResume:
    """Resume-after-interruption with the fast path enabled: the scalar
    prefix collected under chaos and the vectorized remainder collected
    after recovery must merge into the serial scalar byte stream."""

    SEED = 47

    def test_resume_through_fast_path_matches_scalar_bytes(self):
        baseline_campaign = Campaign.from_paper(
            scale=CampaignScale.TINY, seed=self.SEED, fast_path="off"
        )
        baseline_campaign.create_measurements()
        baseline = baseline_campaign.collect()

        # Interrupt mid-run: flaky faults with a one-attempt budget make
        # the first transient fault terminal.  Chaos forces the scalar
        # path for the prefix regardless of the campaign's mode.
        campaign = Campaign.from_paper(
            scale=CampaignScale.TINY, seed=self.SEED, fast_path="auto"
        )
        campaign.create_measurements()
        campaign.transport = Transport(
            campaign.platform, faults="flaky", retry=RetryPolicy(max_attempts=1)
        )
        checkpoint = CollectionCheckpoint()
        with pytest.raises(CollectionInterruptedError) as excinfo:
            campaign.collect(checkpoint=checkpoint, workers=PARITY_WORKERS)
        exc = excinfo.value
        assert 0 < len(exc.checkpoint.high_water) < len(campaign.measurement_ids)

        # Recover onto a clean transport: the remainder now takes the
        # vectorized columnar fetch, in parallel.
        campaign.transport = Transport(campaign.platform)
        resumed = campaign.collect(
            checkpoint=exc.checkpoint,
            dataset=exc.dataset,
            workers=PARITY_WORKERS,
        )
        assert resumed.num_samples == baseline.num_samples
        assert dataset_fingerprint(resumed) == dataset_fingerprint(baseline)
