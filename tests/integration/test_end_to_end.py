"""Cross-module integration tests.

These exercise full paths through the system the way a user would:
campaign -> export -> reload -> analysis, the client-API workflow the
paper's methodology describes, and the CLI against the library.
"""

import numpy as np
import pytest

from repro.atlas.api.client import (
    AtlasResultsRequest,
    MeasurementRequest,
)
from repro.atlas.api.stream import AtlasStream
from repro.core.dataset import CampaignDataset
from repro.core.proximity import country_min_latency
from repro.core.report import headline_report
from repro.frame import read_json
from repro.viz import load_figure


class TestDatasetRoundTrip:
    def test_export_reload_preserves_analysis(self, tiny_dataset, tmp_path):
        path = tmp_path / "dataset.csv"
        tiny_dataset.export_csv(path)
        reloaded = CampaignDataset.load_csv(path)
        assert len(reloaded) == tiny_dataset.num_samples
        # The denormalized frame carries what the analyses join on.
        assert set(np.unique(reloaded["country"])) == set(
            np.unique(tiny_dataset.probe_countries())
        )
        # Spot-check RTT agreement.
        assert list(reloaded["rtt_min"][:50]) == pytest.approx(
            list(tiny_dataset.column("rtt_min")[:50]), nan_ok=True
        )

    def test_figure_bundles_round_trip(self, tiny_dataset, tmp_path):
        from repro.core.proximity import min_rtt_cdf_by_continent
        from repro.viz import ecdf_payload, export_figure

        path = tmp_path / "fig5.json"
        export_figure(
            path,
            figure="fig5",
            data=ecdf_payload(min_rtt_cdf_by_continent(tiny_dataset)),
        )
        bundle = load_figure(path)
        assert set(bundle["data"]) == {"NA", "EU", "OC", "AS", "SA", "AF"}
        for series in bundle["data"].values():
            assert series["p"][-1] == pytest.approx(1.0)


class TestClientWorkflowParity:
    def test_campaign_measurements_visible_via_api(self, tiny_campaign):
        msm_id = tiny_campaign.measurement_ids[0]
        payload = MeasurementRequest(
            msm_id=msm_id, platform=tiny_campaign.platform
        ).get()
        assert payload["type"] == "ping"
        assert payload["interval"] == tiny_campaign.scale.interval_s

    def test_stream_matches_fetch(self, tiny_campaign):
        msm_id = tiny_campaign.measurement_ids[3]
        ok, fetched = AtlasResultsRequest(
            msm_id=msm_id, platform=tiny_campaign.platform
        ).create()
        assert ok
        stream = AtlasStream(platform=tiny_campaign.platform)
        stream.start_stream(stream_type="result", msm=msm_id)
        streamed = list(stream.iter_merged())
        assert len(streamed) == len(fetched)
        assert {r["timestamp"] for r in streamed} == {
            r["timestamp"] for r in fetched
        }

    def test_dataset_matches_raw_results(self, tiny_campaign, tiny_dataset):
        """The dataset rows for one measurement equal the raw API data."""
        msm_id = tiny_campaign.measurement_ids[0]
        vm = tiny_campaign.platform.fleet[0]
        ok, raw = AtlasResultsRequest(
            msm_id=msm_id, platform=tiny_campaign.platform
        ).create()
        assert ok
        target_index = tiny_dataset.target_index_of(vm.key)
        mask = tiny_dataset.column("target_index") == target_index
        assert int(np.sum(mask)) == len(raw)
        raw_min = sorted(
            r["min"] for r in raw if r["rcvd"] > 0
        )
        ds_min = sorted(
            v for v in tiny_dataset.column("rtt_min")[mask] if not np.isnan(v)
        )
        assert raw_min == pytest.approx(ds_min)


class TestSeedIsolation:
    def test_reports_differ_across_seeds_but_shapes_hold(self):
        from repro.core.campaign import Campaign, CampaignScale

        report_a = headline_report(
            Campaign.from_paper(scale=CampaignScale.TINY, seed=100).run()
        )
        report_b = headline_report(
            Campaign.from_paper(scale=CampaignScale.TINY, seed=200).run()
        )
        # Different randomness...
        assert report_a.wireless_penalty != report_b.wireless_penalty
        # ...same paper-shape conclusions.
        for report in (report_a, report_b):
            assert report.sample_share_under_pl["EU"] > report.sample_share_under_pl["AF"]
            assert report.wireless_penalty > 1.3
            assert report.countries_over_pl < 40


class TestCountryFrameConsistency:
    def test_country_frame_against_raw_minima(self, tiny_dataset):
        from repro.core.proximity import per_probe_min

        frame = country_min_latency(tiny_dataset)
        minima = per_probe_min(tiny_dataset)
        german_probes = [
            pid for pid in minima
            if tiny_dataset.probe(pid).country_code == "DE"
        ]
        expected = min(minima[pid] for pid in german_probes)
        row = frame.filter(frame["country"] == "DE").row(0)
        assert float(row["min_rtt"]) == pytest.approx(expected, abs=0.01)
