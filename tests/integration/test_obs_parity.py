"""Observability parity: instrumentation must not perturb collection.

The PR's two hard guarantees, enforced end to end:

1. **Dataset transparency** — a campaign collected with a live
   :class:`~repro.obs.Obs` context produces a frozen dataset
   byte-identical to the same campaign collected uninstrumented, for
   every fault profile and worker count.  Telemetry observes the
   collection; it never participates in it.

2. **Snapshot determinism** — the metrics snapshot of an instrumented
   run is a pure function of ``(seed, fault profile, retry policy,
   worker count)``: repeat runs produce equal snapshots, and the
   schedule-derived counters (faults injected, retries, samples
   appended, fetch paths) agree even across worker counts because fault
   and jitter schedules are scoped per result window.

Wall-clock only ever appears in trace ``wall_ms`` annotations, which is
exactly why the trace is not part of this comparison surface.
"""

import pytest

from repro.core.campaign import Campaign, CampaignScale
from repro.obs import Obs

from .conftest import dataset_fingerprint

#: Matches tests/conftest.FIXTURE_SEED so session fixtures double as
#: cross-checks for the runs built here.
FIXTURE_SEED = 7

PROFILES = ("none", "flaky", "outage")

#: Counters whose values derive purely from the scoped fault/retry/
#: collection schedule — equal across worker counts, not just repeats.
SCHEDULE_COUNTER_PREFIXES = (
    "faults_injected_total",
    "campaign_",
    "dataset_samples_appended_total",
    "dataset_duplicates_dropped_total",
)


def collect(profile, workers=None, obs=None, store=None):
    """One fresh TINY campaign collected to a frozen dataset."""
    campaign = Campaign.from_paper(
        scale=CampaignScale.TINY,
        seed=FIXTURE_SEED,
        faults=None if profile == "none" else profile,
        obs=obs,
    )
    dataset = campaign.run(workers=workers, store=store)
    return campaign, dataset


def instrumented_run(profile, workers):
    campaign, dataset = collect(profile, workers=workers, obs=Obs())
    return dataset_fingerprint(dataset), campaign.obs.registry.snapshot()


def schedule_counters(snapshot):
    return {
        key: value
        for key, value in snapshot["counters"].items()
        if key.startswith(SCHEDULE_COUNTER_PREFIXES)
    }


@pytest.fixture(scope="module")
def baselines():
    """Uninstrumented serial fingerprints, one per profile."""
    return {
        profile: dataset_fingerprint(collect(profile)[1]) for profile in PROFILES
    }


class TestDatasetTransparency:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_instrumented_dataset_byte_identical(self, baselines, profile, workers):
        fingerprint, snapshot = instrumented_run(profile, workers)
        assert fingerprint == baselines[profile]
        # The run really was instrumented — the snapshot is non-trivial.
        assert snapshot["counters"]["campaign_measurements_collected_total"] > 0


class TestSnapshotDeterminism:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_repeat_runs_produce_equal_snapshots(self, baselines, profile, workers):
        first_fp, first_snap = instrumented_run(profile, workers)
        second_fp, second_snap = instrumented_run(profile, workers)
        assert first_snap == second_snap
        assert first_fp == second_fp == baselines[profile]

    @pytest.mark.parametrize("profile", PROFILES)
    def test_schedule_counters_agree_across_worker_counts(self, profile):
        _, serial_snap = instrumented_run(profile, 1)
        _, sharded_snap = instrumented_run(profile, 4)
        assert schedule_counters(serial_snap) == schedule_counters(sharded_snap)


class TestStoreBackedTelemetry:
    """Store-backed runs stay byte-transparent and fully observable.

    The persistent store rides the same obs context as the collection
    it instruments: writing through a store must not perturb the
    dataset, and the telemetry report (``repro obs report``) must carry
    the ``store_*`` counters for both the write and the cache-hit path.
    """

    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_store_backed_dataset_byte_identical(
        self, baselines, tmp_path, profile, workers
    ):
        campaign, dataset = collect(
            profile, workers=workers, obs=Obs(), store=tmp_path / "catalog"
        )
        assert dataset_fingerprint(dataset) == baselines[profile]
        counters = campaign.obs.registry.snapshot()["counters"]
        assert counters["store_cache_misses_total"] == 1
        assert counters["store_rows_written_total"] == dataset.num_samples
        assert counters["store_chunks_written_total"] > 0

    def test_obs_report_carries_store_metrics(self, tmp_path):
        from repro.core.completeness import health_report

        catalog = tmp_path / "catalog"
        campaign, dataset = collect("flaky", obs=Obs(), store=catalog)
        report = health_report(campaign, dataset)
        counters = report["metrics"]["counters"]
        assert counters["store_rows_written_total"] == dataset.num_samples
        assert counters["store_bytes_written_total"] > 0

        hit_campaign, hit_dataset = collect("flaky", obs=Obs(), store=catalog)
        hit_report = health_report(hit_campaign, hit_dataset)
        hit_counters = hit_report["metrics"]["counters"]
        assert hit_counters["store_cache_hits_total"] == 1
        assert hit_counters["store_chunks_verified_total"] > 0
        assert "store_rows_written_total" not in hit_counters

    def test_store_write_spans_present(self, tmp_path):
        campaign, _ = collect("none", obs=Obs(), store=tmp_path / "catalog")
        names = {s["name"] for s in campaign.obs.tracer.finished}
        assert {"store.write", "store.shard"} <= names


class TestTraceStructure:
    def test_parallel_trace_adopts_worker_spans_in_shard_order(self):
        campaign, _ = collect("flaky", workers=4, obs=Obs())
        finished = campaign.obs.tracer.finished
        shard_spans = [s for s in finished if s["name"] == "campaign.shard"]
        assert len(shard_spans) == 4
        # Worker exports merge in canonical shard order: the shard
        # indices appear in ascending order in the adopted trace.
        assert [s["attrs"]["shard"] for s in shard_spans] == [0, 1, 2, 3]
        fetch_spans = [s for s in finished if s["name"] == "campaign.fetch"]
        snapshot = campaign.obs.registry.snapshot()
        assert len(fetch_spans) == snapshot["counters"][
            "campaign_measurements_collected_total"
        ]
