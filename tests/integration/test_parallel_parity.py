"""Serial-vs-parallel determinism parity suite.

The tentpole guarantee of the parallel collection engine: fanning the
fetch out over workers changes *nothing* about the frozen dataset — not
one byte — under every fault profile, including an interruption mid-run.
Each test builds fresh campaigns through :class:`ParityHarness`
(``tests/integration/conftest.py``) and lets it compare datasets,
checkpoints, and fault/retry accounting.
"""

import numpy as np
import pytest

from repro.atlas.api.retry import RetryPolicy
from repro.atlas.api.transport import Transport
from repro.core.campaign import Campaign, CampaignScale, CollectionCheckpoint
from repro.errors import CollectionInterruptedError

from .conftest import PARITY_WORKERS, ParityHarness, dataset_fingerprint

#: Matches tests/conftest.FIXTURE_SEED so session fixtures double as
#: serial baselines for the expensive SMALL comparisons.
FIXTURE_SEED = 7

ALL_PROFILES = ("none", "flaky", "outage", "hostile")


class TestTinyParity:
    """TINY campaigns: full serial-vs-parallel cross-check per profile."""

    @pytest.mark.parametrize("profile", ALL_PROFILES)
    def test_parallel_matches_serial(self, profile):
        harness = ParityHarness(FIXTURE_SEED, CampaignScale.TINY, profile)
        serial = harness.run()
        parallel = harness.run(workers=PARITY_WORKERS)
        harness.assert_parity(parallel, serial)

    def test_thread_executor_parity(self):
        """The thread pool (fork-less platforms) honours the same
        contract; hostile is the profile with the most shared state."""
        harness = ParityHarness(FIXTURE_SEED, CampaignScale.TINY, "hostile")
        serial = harness.run()
        threaded = harness.run(workers=PARITY_WORKERS, executor="thread")
        harness.assert_parity(threaded, serial)

    def test_more_workers_than_measurements(self):
        """Oversubscribed pool: one-measurement shards, same bytes."""
        harness = ParityHarness(FIXTURE_SEED, CampaignScale.TINY, "flaky")
        serial = harness.run()
        oversubscribed = harness.run(workers=1000, executor="thread")
        harness.assert_parity(oversubscribed, serial)

    def test_worker_counts_agree_with_each_other(self):
        """2, 3, and 5 workers shard differently but fingerprint alike."""
        harness = ParityHarness(FIXTURE_SEED, CampaignScale.TINY, "outage")
        prints = {
            workers: dataset_fingerprint(
                harness.run(workers=workers, executor="thread").dataset
            )
            for workers in (2, 3, 5)
        }
        assert len(set(prints.values())) == 1


class TestSmallParity:
    """SMALL campaigns compare against the shared session baseline
    (built serially by ``tests/conftest.py``) to avoid a second ~20 s
    serial run per test."""

    def test_parallel_small_matches_serial_baseline(self, small_dataset):
        harness = ParityHarness(FIXTURE_SEED, CampaignScale.SMALL, "none")
        parallel = harness.run(workers=PARITY_WORKERS)
        harness.assert_datasets_byte_identical(parallel.dataset, small_dataset)

    def test_parallel_flaky_small_matches_serial_baseline(self, small_dataset):
        """Chaos + parallelism together still converge to the fault-free
        serial bytes (test_chaos proves serial flaky == baseline)."""
        harness = ParityHarness(FIXTURE_SEED, CampaignScale.SMALL, "flaky")
        parallel = harness.run(workers=PARITY_WORKERS)
        harness.assert_datasets_byte_identical(parallel.dataset, small_dataset)
        assert sum(parallel.transport_stats["faults"].values()) > 0


class TestInterruptionParity:
    """A terminal mid-shard failure must leave exactly the state a serial
    interruption leaves: same checkpoint, same partial bytes, same
    failing measurement — so a resume replays the serial byte stream."""

    SEED = 47

    def _starved_campaign(self):
        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=self.SEED)
        campaign.create_measurements()
        # max_attempts=1 makes the first injected transient fault
        # terminal; the scoped fault schedule then fixes *which*
        # measurements die independent of collection order.
        campaign.transport = Transport(
            campaign.platform,
            faults="flaky",
            retry=RetryPolicy(max_attempts=1),
        )
        return campaign

    def _interrupt(self, campaign, workers=None):
        checkpoint = CollectionCheckpoint()
        with pytest.raises(CollectionInterruptedError) as excinfo:
            campaign.collect(checkpoint=checkpoint, workers=workers)
        return excinfo.value

    def test_parallel_interruption_is_prefix_consistent(self):
        serial_exc = self._interrupt(self._starved_campaign())
        parallel_exc = self._interrupt(
            self._starved_campaign(), workers=PARITY_WORKERS
        )

        # Same failing measurement, recorded on the error.
        assert serial_exc.msm_id is not None
        assert parallel_exc.msm_id == serial_exc.msm_id

        # Same canonical-prefix checkpoint: strictly the measurements
        # before the failure, in fleet order, nothing from later shards.
        assert parallel_exc.checkpoint.high_water == serial_exc.checkpoint.high_water
        done = len(serial_exc.checkpoint.high_water)
        campaign = self._starved_campaign()
        assert 0 < done < len(campaign.measurement_ids)
        assert set(serial_exc.checkpoint.high_water) == set(
            campaign.measurement_ids[:done]
        )
        assert campaign.measurement_ids[done] == serial_exc.msm_id

        # Same partial dataset, byte for byte.
        serial_exc.dataset.freeze()
        parallel_exc.dataset.freeze()
        assert dataset_fingerprint(parallel_exc.dataset) == dataset_fingerprint(
            serial_exc.dataset
        )

    def test_resume_after_parallel_interruption_matches_serial_bytes(self):
        baseline_campaign = Campaign.from_paper(
            scale=CampaignScale.TINY, seed=self.SEED
        )
        baseline_campaign.create_measurements()
        baseline = baseline_campaign.collect()

        campaign = self._starved_campaign()
        exc = self._interrupt(campaign, workers=PARITY_WORKERS)
        assert campaign.collection_stats.interruptions == 1

        # Resume in parallel through a healthy-policy chaos transport.
        campaign.transport = Transport(campaign.platform, faults="flaky")
        resumed = campaign.collect(
            checkpoint=exc.checkpoint,
            dataset=exc.dataset,
            workers=PARITY_WORKERS,
        )
        assert resumed.num_samples == baseline.num_samples
        assert dataset_fingerprint(resumed) == dataset_fingerprint(baseline)
        assert np.array_equal(
            resumed.column("rtt_min"), baseline.column("rtt_min"), equal_nan=True
        )
