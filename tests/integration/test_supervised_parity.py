"""Supervised collection is byte-identical to an unsupervised run.

The strongest claim the supervisor makes: crash/hang chaos plus
watchdog respawns change *nothing* about the dataset — across transport
fault profiles (none / flaky / outage), worker counts, and worker-fault
profiles, a supervised collection that completes every window produces
the same bytes, the same checkpoint, and (store-backed) the same
committed store as a run whose workers never died.
"""

from __future__ import annotations

import pytest

from repro.core.campaign import Campaign, CampaignScale, CollectionCheckpoint

from tests.integration.conftest import dataset_fingerprint

SEED = 7

#: Transport-fault x worker-fault chaos levels the parity matrix covers.
TRANSPORT_PROFILES = ("none", "flaky", "outage")


def _campaign(profile: str) -> Campaign:
    faults = None if profile == "none" else profile
    campaign = Campaign.from_paper(
        scale=CampaignScale.TINY, seed=SEED, faults=faults
    )
    campaign.create_measurements()
    return campaign


@pytest.fixture(scope="module")
def baselines():
    """Serial unsupervised fingerprints, one per transport profile."""
    results = {}
    for profile in TRANSPORT_PROFILES:
        campaign = _campaign(profile)
        checkpoint = CollectionCheckpoint()
        dataset = campaign.collect(checkpoint=checkpoint)
        results[profile] = (dataset_fingerprint(dataset), checkpoint.high_water)
    return results


@pytest.mark.parametrize("profile", TRANSPORT_PROFILES)
@pytest.mark.parametrize("workers", [1, 4])
def test_supervised_run_is_byte_identical(baselines, profile, workers):
    campaign = _campaign(profile)
    checkpoint = CollectionCheckpoint()
    dataset = campaign.collect(
        checkpoint=checkpoint, workers=workers, worker_faults="pathological"
    )
    report = campaign.supervision
    assert report is not None and not report.degraded
    assert report.crashes + report.hangs > 0  # the chaos actually fired
    expected_fp, expected_hw = baselines[profile]
    assert dataset_fingerprint(dataset) == expected_fp
    assert checkpoint.high_water == expected_hw


@pytest.mark.parametrize("worker_faults", ["crashy", "wedged"])
def test_every_worker_fault_profile_preserves_parity(baselines, worker_faults):
    campaign = _campaign("none")
    dataset = campaign.collect(workers=4, worker_faults=worker_faults)
    assert not campaign.supervision.degraded
    assert dataset_fingerprint(dataset) == baselines["none"][0]


def test_supervised_store_commit_matches_unsupervised(tmp_path, baselines):
    """A supervised (non-degraded) store-backed run commits the same
    cache entry an unsupervised run would, and a later unsupervised
    campaign gets a byte-identical cache hit from it."""
    from repro.store import CampaignCatalog

    catalog = CampaignCatalog(tmp_path / "catalog")
    supervised = Campaign.from_paper(scale=CampaignScale.TINY, seed=SEED)
    stored = supervised.run(
        store=catalog, workers=4, worker_faults="pathological"
    )
    assert not supervised.supervision.degraded
    assert dataset_fingerprint(stored) == baselines["none"][0]

    fresh = Campaign.from_paper(scale=CampaignScale.TINY, seed=SEED)
    assert catalog.lookup(fresh) is not None  # hit, not a re-collection
    cached = fresh.run(store=catalog)
    assert dataset_fingerprint(cached) == baselines["none"][0]
