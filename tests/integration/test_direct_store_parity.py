"""Direct-to-store multiprocess ingest: byte parity with serial writes.

The shared-nothing collector (:class:`~repro.core.campaign.
DirectStoreCollector`) forks workers that stream interior store shards
straight to disk.  Its entire correctness story is *byte identity*: for
every fault profile and worker count — whichever path actually engages
(direct for a clean wire, the stitched record path under chaos) — the
committed store files are identical to a serial write, worker crashes
and hangs included.  A degraded collection must never commit at all.
"""

import os

import pytest

from repro.core.campaign import Campaign, CampaignScale
from repro.errors import CampaignError
from repro.store import CampaignCatalog

FIXTURE_SEED = 7

PROFILES = ("none", "flaky", "outage")

HAS_FORK = hasattr(os, "fork")


def build_campaign(profile="none"):
    return Campaign.from_paper(
        scale=CampaignScale.TINY,
        seed=FIXTURE_SEED,
        faults=None if profile == "none" else profile,
    )


def store_files(root):
    """name -> bytes for the single catalog entry under ``root``."""
    (fingerprint,) = CampaignCatalog(root).entries()
    return {
        p.name: p.read_bytes() for p in sorted((root / fingerprint).iterdir())
    }


@pytest.fixture(scope="module")
def serial_files(tmp_path_factory):
    """Serial store bytes, one entry per profile — the parity baseline."""
    out = {}
    for profile in PROFILES:
        root = tmp_path_factory.mktemp(f"serial-{profile}")
        build_campaign(profile).run(store=root)
        out[profile] = store_files(root)
    return out


class TestDirectStoreByteParity:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_store_bytes_identical_across_paths(
        self, serial_files, tmp_path, profile, workers
    ):
        """Every (profile, workers) combination commits the serial bytes.

        With a clean wire and real parallelism the direct fork path
        engages; chaos profiles and ``workers=1`` fall back to the
        stitched record path — either way the files must match.
        """
        campaign = build_campaign(profile)
        campaign.run(workers=workers, store=tmp_path / "catalog")
        assert store_files(tmp_path / "catalog") == serial_files[profile]
        direct_engaged = bool(campaign.worker_process_stats)
        assert direct_engaged == (
            HAS_FORK and workers > 1 and profile == "none"
        )

    @pytest.mark.skipif(not HAS_FORK, reason="direct path requires os.fork")
    def test_threaded_executor_matches_direct_bytes(
        self, serial_files, tmp_path
    ):
        """Forcing the thread executor (no direct path) changes nothing."""
        campaign = build_campaign("none")
        campaign.run(workers=4, store=tmp_path / "catalog", executor="thread")
        assert not campaign.worker_process_stats
        assert store_files(tmp_path / "catalog") == serial_files["none"]

    @pytest.mark.skipif(not HAS_FORK, reason="direct path requires os.fork")
    def test_direct_on_commits_and_reports_worker_stats(
        self, serial_files, tmp_path
    ):
        campaign = build_campaign("none")
        dataset = campaign.run(
            workers=2, store=tmp_path / "catalog", direct="on"
        )
        assert store_files(tmp_path / "catalog") == serial_files["none"]
        stats = campaign.worker_process_stats
        assert len(stats) == 2
        assert sum(s["rows"] for s in stats) == len(dataset)
        for entry in stats:
            assert entry["pid"] != os.getpid()  # really another process
            assert entry["rows_per_s"] > 0

    def test_direct_on_refuses_what_it_cannot_guarantee(self, tmp_path):
        """``direct='on'`` is a demand, not a hint: anything that forces
        the fallback (chaos wire, thread executor, no store) is an error
        rather than a silent downgrade."""
        with pytest.raises(CampaignError, match="direct"):
            build_campaign("flaky").run(
                workers=2, store=tmp_path / "c1", direct="on"
            )
        with pytest.raises(CampaignError, match="direct"):
            build_campaign("none").run(
                workers=2, store=tmp_path / "c2", direct="on",
                executor="thread",
            )
        with pytest.raises(CampaignError):
            build_campaign("none").run(workers=2, direct="on")

    @pytest.mark.skipif(not HAS_FORK, reason="direct path requires os.fork")
    def test_cache_hit_after_direct_commit(self, serial_files, tmp_path):
        """A second run against the committed catalog opens, not collects."""
        build_campaign("none").run(
            workers=4, store=tmp_path / "catalog", direct="on"
        )
        reopening = build_campaign("none")
        reopening.run(store=tmp_path / "catalog")
        assert reopening.collection_stats.measurements_collected == 0
        assert store_files(tmp_path / "catalog") == serial_files["none"]


@pytest.mark.skipif(not HAS_FORK, reason="direct path requires os.fork")
class TestDirectStoreUnderWorkerChaos:
    def test_crashes_and_respawns_still_commit_serial_bytes(
        self, serial_files, tmp_path
    ):
        """Worker deaths mid-stream never leak into the committed bytes:
        respawned ranges rewrite identical chunks."""
        campaign = build_campaign("none")
        campaign.run(
            workers=2,
            store=tmp_path / "catalog",
            worker_faults="pathological",
        )
        report = campaign.supervision
        assert report.crashes + report.hangs > 0
        assert report.respawns == report.crashes + report.hangs
        assert not report.degraded
        assert store_files(tmp_path / "catalog") == serial_files["none"]

    def test_degraded_run_never_commits_then_clean_rerun_does(
        self, serial_files, tmp_path, monkeypatch
    ):
        """Interruption + resume: a quarantine-degraded direct run leaves
        the catalog empty; the clean retry commits the serial bytes."""
        import repro.core.supervisor as supervisor_module

        original = supervisor_module.Supervisor

        class OneStrike(original):
            def __init__(self, campaign, **kwargs):
                kwargs["max_attempts"] = 1
                super().__init__(campaign, **kwargs)

        monkeypatch.setattr(supervisor_module, "Supervisor", OneStrike)
        catalog_root = tmp_path / "catalog"
        degraded = build_campaign("none")
        dataset = degraded.run(
            workers=2, store=catalog_root, worker_faults="pathological"
        )
        assert degraded.supervision.degraded
        assert degraded.supervision.quarantined
        assert CampaignCatalog(catalog_root).entries() == []
        # The fallback dataset still served the surviving windows.
        assert len(dataset) > 0
        monkeypatch.setattr(supervisor_module, "Supervisor", original)
        build_campaign("none").run(workers=2, store=catalog_root)
        assert store_files(catalog_root) == serial_files["none"]
