"""Tests for repro.net.physics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkModelError
from repro.net.physics import (
    DATACENTER_INTERNAL_RTT_MS,
    RTT_MS_PER_KM,
    estimate_hop_count,
    hop_rtt_ms,
    propagation_rtt_ms,
    wire_rtt_ms,
)


class TestPropagation:
    def test_hundred_km_is_one_ms(self):
        # 2/3 c fiber: 100 km of one-way path costs 1 ms of RTT.
        assert propagation_rtt_ms(100.0) == pytest.approx(1.0)

    def test_zero(self):
        assert propagation_rtt_ms(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(NetworkModelError):
            propagation_rtt_ms(-1.0)

    def test_transatlantic_plausible(self):
        # ~6500 km of cable should cost ~65 ms of RTT by propagation alone.
        assert propagation_rtt_ms(6500.0) == pytest.approx(65.0)


class TestHops:
    def test_metro_path_few_hops(self):
        assert estimate_hop_count(3.0) == 4

    def test_intercontinental_path_many_hops(self):
        assert 15 <= estimate_hop_count(12_000.0) <= 26

    def test_monotone_in_distance(self):
        hops = [estimate_hop_count(d) for d in (1, 10, 100, 1000, 10_000)]
        assert hops == sorted(hops)

    def test_capped(self):
        assert estimate_hop_count(1e9) == 26

    def test_negative_rejected(self):
        with pytest.raises(NetworkModelError):
            estimate_hop_count(-5.0)

    def test_hop_rtt_positive(self):
        assert hop_rtt_ms(500.0) > 0


class TestWireRtt:
    def test_composition(self):
        path_km = 800.0
        expected = (
            path_km * RTT_MS_PER_KM
            + hop_rtt_ms(path_km)
            + DATACENTER_INTERNAL_RTT_MS
        )
        assert wire_rtt_ms(path_km) == pytest.approx(expected)

    @given(st.floats(0, 40_000))
    @settings(max_examples=100)
    def test_exceeds_propagation(self, path_km):
        assert wire_rtt_ms(path_km) > propagation_rtt_ms(path_km)

    @given(st.floats(0, 20_000), st.floats(0, 20_000))
    @settings(max_examples=100)
    def test_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert wire_rtt_ms(lo) <= wire_rtt_ms(hi) + 1e-9
