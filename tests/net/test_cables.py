"""Tests for repro.net.cables — the gateway/cable map must be coherent."""

import pytest

from repro.errors import NetworkModelError
from repro.geo.countries import all_countries, get_country
from repro.net.cables import (
    COUNTRY_GATEWAY_OVERRIDES,
    GATEWAYS,
    LINKS,
    SUBMARINE_SLACK,
    TERRESTRIAL_SLACK,
    link_length_km,
)


class TestGateways:
    def test_every_gateway_country_exists(self):
        for gateway in GATEWAYS.values():
            get_country(gateway.country)

    def test_gateway_continent_matches_location_tag(self):
        # Special case: Honolulu/Guam are tagged OC (Pacific hubs) despite
        # US sovereignty; everything else matches its country's continent.
        pacific = {"honolulu", "guam"}
        for name, gateway in GATEWAYS.items():
            if name in pacific:
                assert gateway.continent == "OC"
            else:
                assert gateway.continent == get_country(gateway.country).continent

    def test_every_continent_has_gateways(self):
        continents = {gateway.continent for gateway in GATEWAYS.values()}
        assert continents == {"EU", "NA", "SA", "AS", "AF", "OC"}


class TestLinks:
    def test_endpoints_exist(self):
        for a, b, _kind in LINKS:
            assert a in GATEWAYS, a
            assert b in GATEWAYS, b

    def test_no_self_links(self):
        for a, b, _kind in LINKS:
            assert a != b

    def test_no_duplicate_links(self):
        seen = set()
        for a, b, _kind in LINKS:
            key = tuple(sorted((a, b)))
            assert key not in seen, key
            seen.add(key)

    def test_kinds_valid(self):
        for _a, _b, kind in LINKS:
            assert kind in ("terrestrial", "submarine")

    def test_length_applies_slack(self):
        km_t = link_length_km("london", "paris", "terrestrial")
        km_s = link_length_km("london", "paris", "submarine")
        assert km_s / km_t == pytest.approx(SUBMARINE_SLACK / TERRESTRIAL_SLACK)

    def test_unknown_gateway_rejected(self):
        with pytest.raises(NetworkModelError):
            link_length_km("london", "atlantis", "submarine")

    def test_unknown_kind_rejected(self):
        with pytest.raises(NetworkModelError):
            link_length_km("london", "paris", "quantum")

    def test_transatlantic_length_plausible(self):
        km = link_length_km("london", "new-york", "submarine")
        assert 5500 <= km <= 7500


class TestOverrides:
    def test_overrides_reference_known_gateways(self):
        for country, gateways in COUNTRY_GATEWAY_OVERRIDES.items():
            get_country(country)
            for name in gateways:
                assert name in GATEWAYS, (country, name)

    def test_african_countries_covered(self):
        """Every African country needs a curated landing (the paper's
        Africa findings depend on realistic exit points)."""
        overridden = set(COUNTRY_GATEWAY_OVERRIDES)
        for country in all_countries():
            if country.continent == "AF" and country.atlas_probes > 0:
                assert country.iso2 in overridden, country.iso2

    def test_east_africa_exits_at_mombasa(self):
        assert COUNTRY_GATEWAY_OVERRIDES["KE"] == ("mombasa",)
        assert "mombasa" in COUNTRY_GATEWAY_OVERRIDES["TZ"]

    def test_latam_trombones_through_miami(self):
        assert "miami" in COUNTRY_GATEWAY_OVERRIDES["CU"]
        assert "miami" in COUNTRY_GATEWAY_OVERRIDES["VE"]
