"""Tests for repro.net.lastmile."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkModelError
from repro.net.lastmile import (
    PROFILES,
    TECH_MIX,
    TIER_SCALE,
    AccessTechnology,
    choose_technology,
    floor_ms,
    sample_ms,
)
from repro.net.rng import stream

tech_strategy = st.sampled_from(list(AccessTechnology))
tier_strategy = st.sampled_from([1, 2, 3, 4])


class TestAccessTechnology:
    def test_wireless_membership(self):
        assert AccessTechnology.LTE.is_wireless
        assert AccessTechnology.WIFI.is_wireless
        assert AccessTechnology.SATELLITE.is_wireless
        assert not AccessTechnology.ETHERNET.is_wireless
        assert not AccessTechnology.DSL.is_wireless

    def test_atlas_tags(self):
        assert AccessTechnology.LTE.atlas_tag == "lte"
        assert AccessTechnology.ETHERNET.atlas_tag == "ethernet"

    def test_all_have_profiles(self):
        for tech in AccessTechnology:
            assert tech in PROFILES


class TestFloors:
    def test_ordering_matches_reality(self):
        """Ethernet < fibre < wifi < cable < dsl < lte < satellite floors."""
        floors = {tech: PROFILES[tech].floor_ms for tech in AccessTechnology}
        assert floors[AccessTechnology.ETHERNET] < floors[AccessTechnology.FIBRE]
        assert floors[AccessTechnology.CABLE] < floors[AccessTechnology.DSL]
        assert floors[AccessTechnology.DSL] < floors[AccessTechnology.LTE]
        assert floors[AccessTechnology.LTE] < floors[AccessTechnology.SATELLITE]

    def test_tier_scaling(self):
        for tech in AccessTechnology:
            assert floor_ms(tech, 4) > floor_ms(tech, 1)

    def test_unknown_tier_rejected(self):
        with pytest.raises(NetworkModelError):
            floor_ms(AccessTechnology.DSL, 7)

    def test_lte_floor_in_paper_band(self):
        """Prior work: wireless adds 10-40 ms; LTE's floor sits in-band."""
        assert 10.0 <= floor_ms(AccessTechnology.LTE, 1) <= 40.0


class TestSampling:
    @given(tech_strategy, tier_strategy, st.floats(0.0, 0.9))
    @settings(max_examples=100)
    def test_sample_at_least_floor(self, tech, tier, utilization):
        rng = stream(1, "test", tech.value, tier)
        value = sample_ms(tech, tier, rng, utilization)
        assert value >= floor_ms(tech, tier) - 1e-9

    def test_bad_utilization_rejected(self):
        rng = stream(1, "x")
        with pytest.raises(NetworkModelError):
            sample_ms(AccessTechnology.DSL, 1, rng, utilization=1.0)

    def test_congestion_increases_mean(self):
        rng1 = stream(2, "a")
        rng2 = stream(2, "a")
        idle = np.mean([sample_ms(AccessTechnology.DSL, 2, rng1, 0.0) for _ in range(800)])
        busy = np.mean([sample_ms(AccessTechnology.DSL, 2, rng2, 0.8) for _ in range(800)])
        assert busy > idle

    def test_wireless_mean_far_above_wired(self):
        """The raw material of the paper's 2.5x wireless penalty."""
        rng_w = stream(3, "wired")
        rng_l = stream(3, "wireless")
        wired = np.mean(
            [sample_ms(AccessTechnology.ETHERNET, 1, rng_w, 0.3) for _ in range(800)]
        )
        wireless = np.mean(
            [sample_ms(AccessTechnology.LTE, 1, rng_l, 0.3) for _ in range(800)]
        )
        assert wireless > wired + 20.0

    def test_satellite_dominates_everything(self):
        rng = stream(4, "sat")
        value = sample_ms(AccessTechnology.SATELLITE, 1, rng, 0.0)
        assert value > 400.0


class TestTechMix:
    def test_mixes_normalized(self):
        for tier, mix in TECH_MIX.items():
            assert sum(weight for _, weight in mix) == pytest.approx(1.0), tier

    def test_all_tiers_present(self):
        assert set(TECH_MIX) == set(TIER_SCALE) == {1, 2, 3, 4}

    def test_choose_technology_deterministic(self):
        a = choose_technology(2, stream(5, "mix"))
        b = choose_technology(2, stream(5, "mix"))
        assert a == b

    def test_poor_tiers_more_wireless(self):
        """Tier 4 fleets skew wireless compared to tier 1."""
        def wireless_share(tier):
            rng = stream(6, "share", tier)
            picks = [choose_technology(tier, rng) for _ in range(1500)]
            return sum(1 for t in picks if t.is_wireless) / len(picks)

        assert wireless_share(4) > wireless_share(1) + 0.1

    def test_unknown_tier_rejected(self):
        with pytest.raises(NetworkModelError):
            choose_technology(0, stream(1, "x"))
