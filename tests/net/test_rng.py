"""Tests for repro.net.rng — determinism is the simulator's foundation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.rng import SeedSequenceTree, derive_seed, stream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_no_concatenation_ambiguity(self):
        # ("ab",) must differ from ("a", "b").
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    @given(st.integers(0, 2**31), st.text(max_size=20))
    @settings(max_examples=100)
    def test_result_is_64_bit(self, root, label):
        value = derive_seed(root, label)
        assert 0 <= value < 2**64


class TestStream:
    def test_same_labels_same_sequence(self):
        a = stream(7, "ping", 1).random(5)
        b = stream(7, "ping", 1).random(5)
        assert list(a) == list(b)

    def test_different_labels_diverge(self):
        a = stream(7, "ping", 1).random(5)
        b = stream(7, "ping", 2).random(5)
        assert list(a) != list(b)


class TestSeedSequenceTree:
    def test_stream_shortcut(self):
        tree = SeedSequenceTree(9)
        assert list(tree.stream("x").random(3)) == list(stream(9, "x").random(3))

    def test_uniform_in_range(self):
        tree = SeedSequenceTree(5)
        value = tree.uniform(2.0, 3.0, "probe", 1)
        assert 2.0 <= value <= 3.0

    def test_uniform_deterministic(self):
        tree = SeedSequenceTree(5)
        assert tree.uniform(0, 1, "a") == tree.uniform(0, 1, "a")

    def test_child_seed_matches_derive(self):
        tree = SeedSequenceTree(11)
        assert tree.child_seed("k", 3) == derive_seed(11, "k", 3)
