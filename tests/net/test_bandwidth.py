"""Tests for repro.net.bandwidth — the FZ's bandwidth axis."""

import pytest

from repro.constants import FZ_BANDWIDTH_GB_PER_DAY
from repro.errors import NetworkModelError
from repro.net.bandwidth import (
    CAPACITIES,
    aggregation_threshold_gb_day,
    bandwidth_pressure,
    needs_aggregation,
    sustained_mbps,
    uplink_capacity_mbps,
)
from repro.net.lastmile import AccessTechnology


class TestCapacities:
    def test_all_technologies_covered(self):
        assert set(CAPACITIES) == set(AccessTechnology)

    def test_uplink_never_exceeds_downlink(self):
        for capacity in CAPACITIES.values():
            assert capacity.uplink_mbps <= capacity.downlink_mbps

    def test_tier_degrades_capacity(self):
        assert uplink_capacity_mbps(
            AccessTechnology.LTE, 4
        ) < uplink_capacity_mbps(AccessTechnology.LTE, 1)

    def test_unknown_tier(self):
        with pytest.raises(NetworkModelError):
            uplink_capacity_mbps(AccessTechnology.LTE, 0)


class TestArithmetic:
    def test_sustained_rate(self):
        # 1 GB/day is ~0.093 Mbps sustained.
        assert sustained_mbps(1.0) == pytest.approx(0.0926, abs=0.001)

    def test_negative_volume(self):
        with pytest.raises(NetworkModelError):
            sustained_mbps(-1.0)

    def test_pressure_monotone_in_volume(self):
        low = bandwidth_pressure(0.1, AccessTechnology.LTE, 2)
        high = bandwidth_pressure(10.0, AccessTechnology.LTE, 2)
        assert high > low

    def test_invalid_entities(self):
        with pytest.raises(NetworkModelError):
            bandwidth_pressure(1.0, AccessTechnology.LTE, 2, entities_per_link=0)


class TestPaperThreshold:
    def test_one_gb_per_day_emerges(self):
        """The paper's ~1 GB/day estimate falls out of LTE/DSL links."""
        lte = aggregation_threshold_gb_day(AccessTechnology.LTE, 2)
        dsl = aggregation_threshold_gb_day(AccessTechnology.DSL, 2)
        assert 0.5 <= lte <= 3.0
        assert 0.5 <= dsl <= 3.0
        # And the constant used in the FZ sits inside the derived band.
        assert min(dsl, lte) <= FZ_BANDWIDTH_GB_PER_DAY * 1.5

    def test_fibre_threshold_much_higher(self):
        fibre = aggregation_threshold_gb_day(AccessTechnology.FIBRE, 1)
        lte = aggregation_threshold_gb_day(AccessTechnology.LTE, 2)
        assert fibre > 10 * lte

    def test_share_validation(self):
        with pytest.raises(NetworkModelError):
            aggregation_threshold_gb_day(
                AccessTechnology.LTE, 2, sustainable_share=0.0
            )


class TestVerdicts:
    def test_smart_home_needs_no_aggregation(self):
        assert not needs_aggregation(0.3)

    def test_camera_feeds_do(self):
        assert needs_aggregation(20.0)

    def test_threshold_consistency(self):
        """needs_aggregation flips exactly at the derived threshold."""
        threshold = aggregation_threshold_gb_day(AccessTechnology.LTE, 2)
        assert not needs_aggregation(threshold * 0.9)
        assert needs_aggregation(threshold * 1.1)
