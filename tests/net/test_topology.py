"""Tests for repro.net.topology — routing behaviour drives every figure."""

import pytest

from repro.geo.coordinates import LatLon
from repro.geo.countries import get_country
from repro.net.topology import (
    DOMESTIC_INFLATION,
    TIER_PEERING_RTT_MS,
    TransitModel,
    default_transit_model,
)


@pytest.fixture(scope="module")
def model() -> TransitModel:
    return default_transit_model()


class TestConstruction:
    def test_default_is_cached(self):
        assert default_transit_model() is default_transit_model()

    def test_every_country_has_gateways(self, model):
        from repro.geo.countries import all_countries

        for country in all_countries():
            assert model.gateways_for(country), country.iso2

    def test_gateway_path_symmetric(self, model):
        assert model.gateway_path_km("london", "tokyo") == pytest.approx(
            model.gateway_path_km("tokyo", "london")
        )

    def test_domestic_gateways_all_available(self, model):
        """A country owning gateways enters/exits through all of them."""
        us_gateways = set(model.gateways_for(get_country("US")))
        assert {"miami", "seattle", "new-york", "los-angeles"} <= us_gateways

    def test_override_wins_over_domestic(self, model):
        # Australia has a curated override (sydney, perth).
        assert set(model.gateways_for(get_country("AU"))) == {"sydney", "perth"}

    def test_gateway_path_triangle(self, model):
        direct = model.gateway_path_km("london", "singapore")
        via = model.gateway_path_km("london", "mumbai") + model.gateway_path_km(
            "mumbai", "singapore"
        )
        assert direct <= via + 1e-6


class TestDomesticRoutes:
    def test_same_country_is_domestic(self, model):
        germany = get_country("DE")
        route = model.route(LatLon(48.1, 11.6), germany, LatLon(50.1, 8.7), germany)
        assert route.kind == "domestic"

    def test_domestic_inflation_applied(self, model):
        germany = get_country("DE")
        a, b = LatLon(48.1, 11.6), LatLon(50.1, 8.7)
        route = model.route(a, germany, b, germany)
        assert route.path_km == pytest.approx(
            a.distance_km(b) * DOMESTIC_INFLATION[germany.infra_tier]
        )

    def test_tier4_domestic_slower_than_tier1(self, model):
        a, b = LatLon(9.0, 7.0), LatLon(6.5, 3.4)
        nigeria = get_country("NG")
        route_ng = model.route(a, nigeria, b, nigeria)
        # Same geometry inside a tier-1 country would be much faster.
        assert route_ng.path_km > a.distance_km(b) * 2.0


class TestInternationalRoutes:
    def test_europe_short_hop(self, model):
        # Vienna-ish probe to a Frankfurt datacenter: ~10 ms floor.
        route = model.route(
            LatLon(48.2, 16.4), get_country("AT"), LatLon(50.1, 8.7), get_country("DE")
        )
        assert 5.0 <= route.floor_rtt_ms <= 15.0

    def test_direct_shortcut_beats_trombone(self, model):
        """Vancouver to an Oregon datacenter must not detour via Toronto."""
        route = model.route(
            LatLon(49.3, -123.1),
            get_country("CA"),
            LatLon(45.8, -119.7),
            get_country("US"),
        )
        assert route.kind == "direct"
        assert route.floor_rtt_ms < 15.0

    def test_no_direct_shortcut_for_tier4(self, model):
        """African cross-border traffic trombones through its gateways."""
        route = model.route(
            LatLon(0.3, 32.6),  # Kampala
            get_country("UG"),
            LatLon(-1.3, 36.8),  # Nairobi
            get_country("KE"),
        )
        assert route.kind == "gateway"

    def test_africa_to_europe_floor_band(self, model):
        # Lagos to a London datacenter: tens of ms, under 120.
        route = model.route(
            LatLon(6.5, 3.4), get_country("NG"), LatLon(51.5, -0.1), get_country("GB")
        )
        assert 50.0 <= route.floor_rtt_ms <= 120.0

    def test_transpacific_floor_band(self, model):
        route = model.route(
            LatLon(35.7, 139.7), get_country("JP"),
            LatLon(37.3, -121.9), get_country("US"),
        )
        assert 85.0 <= route.floor_rtt_ms <= 160.0

    def test_peering_penalty_charged(self, model):
        route = model.route(
            LatLon(6.5, 3.4), get_country("NG"), LatLon(51.5, -0.1), get_country("GB")
        )
        assert route.peering_ms >= TIER_PEERING_RTT_MS[4]

    def test_floor_positive_everywhere(self, model):
        from repro.geo.countries import countries_with_probes

        london = LatLon(51.5, -0.1)
        gb = get_country("GB")
        for country in countries_with_probes()[:40]:
            route = model.route(country.centroid, country, london, gb)
            assert route.floor_rtt_ms > 0

    def test_route_prefers_cheapest_gateway_pair(self, model):
        """Brazil reaches Miami via Fortaleza, not via Buenos Aires."""
        route = model.route(
            LatLon(-23.5, -46.6), get_country("BR"),
            LatLon(25.8, -80.2), get_country("US"),
        )
        assert route.kind in ("gateway", "direct")
        assert route.floor_rtt_ms < 120.0
