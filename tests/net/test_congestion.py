"""Tests for repro.net.congestion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkModelError
from repro.net.congestion import (
    _MAX_UTILIZATION,
    is_weekend,
    local_hour,
    path_noise_ms,
    queue_delay_ms,
    utilization,
)
from repro.net.rng import stream

NOON_UTC = 1_567_339_200  # 2019-09-01 12:00:00 UTC (a Sunday)


class TestLocalHour:
    def test_utc_at_zero_longitude(self):
        assert local_hour(NOON_UTC, 0.0) == pytest.approx(12.0)

    def test_eastward_offset(self):
        assert local_hour(NOON_UTC, 90.0) == pytest.approx(18.0)

    def test_westward_wraps(self):
        assert local_hour(NOON_UTC, -105.0) == pytest.approx(5.0)

    @given(st.integers(0, 2_000_000_000), st.floats(-180, 180))
    @settings(max_examples=100)
    def test_range(self, timestamp, longitude):
        hour = local_hour(timestamp, longitude)
        assert 0.0 <= hour < 24.0


class TestWeekend:
    def test_epoch_was_thursday(self):
        assert not is_weekend(0)

    def test_known_sunday(self):
        assert is_weekend(NOON_UTC)  # 2019-09-01 was a Sunday

    def test_known_monday(self):
        assert not is_weekend(NOON_UTC + 86_400)


class TestUtilization:
    @given(
        st.integers(0, 2_000_000_000),
        st.floats(-180, 180),
        st.sampled_from([1, 2, 3, 4]),
    )
    @settings(max_examples=100)
    def test_bounded(self, timestamp, longitude, tier):
        rho = utilization(timestamp, longitude, tier)
        assert 0.0 < rho <= _MAX_UTILIZATION

    def test_evening_peak_exceeds_night(self):
        # 20:30 local vs 04:30 local at longitude 0.
        evening = NOON_UTC + int(8.5 * 3600)
        night = NOON_UTC - int(7.5 * 3600)
        assert utilization(evening, 0.0, 2) > utilization(night, 0.0, 2)

    def test_poorer_tiers_run_hotter(self):
        assert utilization(NOON_UTC, 0.0, 4) > utilization(NOON_UTC, 0.0, 1)

    def test_unknown_tier_rejected(self):
        with pytest.raises(NetworkModelError):
            utilization(NOON_UTC, 0.0, 9)


class TestQueueDelay:
    def test_non_negative(self):
        rng = stream(1, "queue")
        for _ in range(50):
            assert queue_delay_ms(NOON_UTC, 0.0, 2, rng) >= 0.0

    def test_tier4_queues_longer_on_average(self):
        rng1, rng4 = stream(2, "t1"), stream(2, "t4")
        mean1 = np.mean([queue_delay_ms(NOON_UTC, 0.0, 1, rng1) for _ in range(800)])
        mean4 = np.mean([queue_delay_ms(NOON_UTC, 0.0, 4, rng4) for _ in range(800)])
        assert mean4 > mean1


class TestPathNoise:
    def test_non_negative(self):
        rng = stream(3, "noise")
        assert path_noise_ms(1000.0, rng) >= 0.0

    def test_negative_path_rejected(self):
        with pytest.raises(NetworkModelError):
            path_noise_ms(-1.0, stream(1, "x"))

    def test_noise_grows_with_distance(self):
        rng_short, rng_long = stream(4, "s"), stream(4, "l")
        short = np.mean([path_noise_ms(10.0, rng_short) for _ in range(800)])
        long = np.mean([path_noise_ms(15_000.0, rng_long) for _ in range(800)])
        assert long > short
