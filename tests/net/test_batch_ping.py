"""Property tests for the vectorized ping batch — scalar parity.

The contract under test (DESIGN.md, "fast path"): fed the same flow
streams, :meth:`LatencyModel.ping_batch` over ``n`` timestamps is
**bit-identical** to ``n`` scalar :meth:`LatencyModel.ping` calls
consuming the streams tick by tick — min, avg, received counts, and the
raw per-packet RTTs alike.  Hypothesis drives the seed, tick count,
packet count, technology, and timing grid so the equality is a property
of the design, not of one lucky configuration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coordinates import LatLon
from repro.geo.countries import get_country
from repro.net.lastmile import AccessTechnology
from repro.net.pathmodel import LatencyModel, PingDrawStreams

MUNICH = LatLon(48.1, 11.6)
FRANKFURT = LatLon(50.1, 8.7)
LAGOS = LatLon(6.5, 3.4)
T0 = 1_567_296_000

TECHS = (
    AccessTechnology.ETHERNET,
    AccessTechnology.LTE,
    AccessTechnology.SATELLITE,
)


def _scalar_pings(model, timestamps, tech, packets, draws):
    germany = get_country("DE")
    return [
        model.ping(
            MUNICH, germany, tech, FRANKFURT, germany, int(ts),
            origin_id=1, target_id="aws:eu-central-1",
            packets=packets, draws=draws,
        )
        for ts in timestamps
    ]


def _batch(model, timestamps, tech, packets, draws):
    germany = get_country("DE")
    return model.ping_batch(
        MUNICH, germany, tech, FRANKFURT, germany, timestamps,
        origin_id=1, target_id="aws:eu-central-1",
        packets=packets, draws=draws,
    )


def _assert_batch_equals_scalars(batch, observations):
    assert len(batch) == len(observations)
    for row, obs in enumerate(observations):
        assert int(batch.received[row]) == obs.received
        got = batch.observation(row)
        assert got == obs
        # The reduced columns are the exact scalar reductions — bitwise,
        # not approximately.
        if obs.succeeded:
            assert batch.rtt_min[row] == obs.rtt_min
            assert batch.rtt_avg[row] == obs.rtt_avg
        else:
            assert np.isnan(batch.rtt_min[row])
            assert np.isnan(batch.rtt_avg[row])


class TestBatchScalarParity:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        ticks=st.integers(min_value=1, max_value=40),
        packets=st.integers(min_value=1, max_value=5),
        tech=st.sampled_from(TECHS),
        interval=st.integers(min_value=60, max_value=21_600),
    )
    def test_batch_equals_scalar_loop(self, seed, ticks, packets, tech, interval):
        """Same seed and flow labels: batch columns == N scalar pings."""
        model = LatencyModel(seed=seed)
        timestamps = np.arange(ticks, dtype=np.int64) * interval + T0
        scalar = _scalar_pings(
            model, timestamps, tech, packets,
            PingDrawStreams(seed, "flow", 1),
        )
        batch = _batch(
            model, timestamps, tech, packets,
            PingDrawStreams(seed, "flow", 1),
        )
        _assert_batch_equals_scalars(batch, scalar)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        ticks=st.integers(min_value=2, max_value=30),
        split=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_split_pooling_invariant(self, seed, ticks, split):
        """Drawing ``a`` ticks then ``b`` ticks == drawing ``a+b`` at
        once — the stream property windowed fetches and pre-window skips
        stand on."""
        cut = int(round(split * ticks))
        timestamps = np.arange(ticks, dtype=np.int64) * 3_600 + T0
        model = LatencyModel(seed=seed)

        whole = _batch(
            model, timestamps, AccessTechnology.ETHERNET, 3,
            PingDrawStreams(seed, "flow", 2),
        )
        parts = PingDrawStreams(seed, "flow", 2)
        head = _batch(model, timestamps[:cut], AccessTechnology.ETHERNET, 3, parts)
        tail = _batch(model, timestamps[cut:], AccessTechnology.ETHERNET, 3, parts)

        stitched_min = np.concatenate([head.rtt_min, tail.rtt_min])
        stitched_avg = np.concatenate([head.rtt_avg, tail.rtt_avg])
        assert np.array_equal(whole.rtt_min, stitched_min, equal_nan=True)
        assert np.array_equal(whole.rtt_avg, stitched_avg, equal_nan=True)
        assert np.array_equal(
            whole.rtts_ms, np.concatenate([head.rtts_ms, tail.rtts_ms])
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32))
    def test_default_streams_are_the_flow_streams(self, seed):
        """Omitting ``draws`` derives the same per-flow streams both
        paths document — so the default batch equals the default scalar
        loop fed explicit streams."""
        model = LatencyModel(seed=seed)
        timestamps = np.arange(12, dtype=np.int64) * 7_200 + T0
        germany = get_country("DE")
        implicit = model.ping_batch(
            MUNICH, germany, AccessTechnology.ETHERNET, FRANKFURT, germany,
            timestamps, origin_id=5, target_id="gcp:europe-west3",
        )
        explicit = model.ping_batch(
            MUNICH, germany, AccessTechnology.ETHERNET, FRANKFURT, germany,
            timestamps, origin_id=5, target_id="gcp:europe-west3",
            draws=PingDrawStreams(seed, "ping", 5, "gcp:europe-west3"),
        )
        assert np.array_equal(implicit.rtts_ms, explicit.rtts_ms)
        assert np.array_equal(implicit.received, explicit.received)


class TestBatchAcrossTiers:
    """Parity holds on high-loss, high-congestion paths too (tier-4
    origin, satellite uplink) where bursty loss and bufferbloat branches
    actually fire."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        tech=st.sampled_from(TECHS),
    )
    def test_lossy_path_parity(self, seed, tech):
        model = LatencyModel(seed=seed)
        nigeria = get_country("NG")
        gb = get_country("GB")
        london = LatLon(51.5, -0.1)
        timestamps = np.arange(30, dtype=np.int64) * 5_400 + T0
        draws = PingDrawStreams(seed, "lossy", 9)
        scalar = [
            model.ping(
                LAGOS, nigeria, tech, london, gb, int(ts),
                origin_id=9, target_id="azure:uksouth", packets=3,
                draws=draws,
            )
            for ts in timestamps
        ]
        batch = model.ping_batch(
            LAGOS, nigeria, tech, london, gb, timestamps,
            origin_id=9, target_id="azure:uksouth", packets=3,
            draws=PingDrawStreams(seed, "lossy", 9),
        )
        _assert_batch_equals_scalars(batch, scalar)
        # The property is only interesting if some bursts actually lose
        # packets on this path; tier 4 + 30 ticks makes that overwhelmingly
        # likely, but do not fail a rare all-clear draw.
        losses = sum(obs.sent - obs.received for obs in scalar)
        assert losses >= 0


class TestBatchShape:
    def test_empty_timestamps(self):
        model = LatencyModel(seed=3)
        batch = _batch(
            model, np.asarray([], dtype=np.int64), AccessTechnology.ETHERNET,
            3, None,
        )
        assert len(batch) == 0
        assert batch.rtts_ms.shape == (0, 3)

    def test_quantized_to_platform_precision(self):
        model = LatencyModel(seed=3)
        timestamps = np.arange(50, dtype=np.int64) * 3_600 + T0
        batch = _batch(model, timestamps, AccessTechnology.ETHERNET, 3, None)
        finite = batch.rtt_min[~np.isnan(batch.rtt_min)]
        assert np.array_equal(np.round(finite, 3), finite)

    def test_zero_packets_rejected(self):
        from repro.errors import NetworkModelError

        model = LatencyModel(seed=3)
        with pytest.raises(NetworkModelError):
            _batch(model, np.asarray([T0]), AccessTechnology.ETHERNET, 0, None)
