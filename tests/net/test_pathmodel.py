"""Tests for repro.net.pathmodel — the LatencyModel contract."""

import numpy as np
import pytest

from repro.errors import NetworkModelError
from repro.geo.coordinates import LatLon
from repro.geo.countries import get_country
from repro.net.lastmile import AccessTechnology
from repro.net.pathmodel import (
    PUBLIC_INTERNET,
    EndpointAdjustment,
    LatencyModel,
    PingObservation,
)

MUNICH = LatLon(48.1, 11.6)
FRANKFURT = LatLon(50.1, 8.7)
T0 = 1_567_296_000


@pytest.fixture(scope="module")
def model() -> LatencyModel:
    return LatencyModel(seed=11)


def _ping(model, timestamp=T0, packets=3, tech=AccessTechnology.ETHERNET, rng=None):
    germany = get_country("DE")
    return model.ping(
        MUNICH, germany, tech, FRANKFURT, germany, timestamp,
        origin_id=1, target_id="aws:eu-central-1", packets=packets, rng=rng,
    )


class TestPingObservation:
    def test_properties(self):
        obs = PingObservation(timestamp=1, sent=3, received=2, rtts_ms=(5.0, 7.0))
        assert obs.succeeded
        assert obs.rtt_min == 5.0
        assert obs.rtt_max == 7.0
        assert obs.rtt_avg == 6.0
        assert obs.loss_rate == pytest.approx(1 / 3)

    def test_failed_observation(self):
        obs = PingObservation(timestamp=1, sent=3, received=0, rtts_ms=())
        assert not obs.succeeded
        assert np.isnan(obs.rtt_min)

    def test_rtts_must_match_received(self):
        with pytest.raises(NetworkModelError):
            PingObservation(timestamp=1, sent=3, received=2, rtts_ms=(5.0,))

    def test_cannot_receive_more_than_sent(self):
        with pytest.raises(NetworkModelError):
            PingObservation(timestamp=1, sent=1, received=2, rtts_ms=(1.0, 2.0))


class TestEndpointAdjustment:
    def test_public_internet_is_identity(self):
        assert PUBLIC_INTERNET.path_factor == 1.0
        assert PUBLIC_INTERNET.peering_factor == 1.0

    def test_invalid_rejected(self):
        with pytest.raises(NetworkModelError):
            EndpointAdjustment(path_factor=0.0)
        with pytest.raises(NetworkModelError):
            EndpointAdjustment(peering_factor=-1.0)


class TestDeterminism:
    def test_same_inputs_same_observation(self, model):
        assert _ping(model) == _ping(model)

    def test_different_timestamps_differ(self, model):
        assert _ping(model, T0) != _ping(model, T0 + 3600)

    def test_different_seeds_differ(self):
        a = _ping(LatencyModel(seed=1))
        b = _ping(LatencyModel(seed=2))
        assert a != b

    def test_route_cache_transparent(self, model):
        germany = get_country("DE")
        first = model.route(MUNICH, germany, FRANKFURT, germany)
        second = model.route(MUNICH, germany, FRANKFURT, germany)
        assert first is second  # cached object


class TestFloor:
    def test_samples_never_beat_floor(self, model):
        germany = get_country("DE")
        floor = model.floor_rtt_ms(
            MUNICH, germany, AccessTechnology.ETHERNET, FRANKFURT, germany
        )
        for k in range(60):
            obs = _ping(model, T0 + k * 10_800)
            if obs.succeeded:
                assert obs.rtt_min >= floor - 1e-6

    def test_min_converges_near_floor(self, model):
        germany = get_country("DE")
        floor = model.floor_rtt_ms(
            MUNICH, germany, AccessTechnology.ETHERNET, FRANKFURT, germany
        )
        best = min(
            _ping(model, T0 + k * 10_800).rtt_min
            for k in range(200)
            if _ping(model, T0 + k * 10_800).succeeded
        )
        assert best <= floor * 1.6

    def test_wireless_floor_higher(self, model):
        germany = get_country("DE")
        wired = model.floor_rtt_ms(
            MUNICH, germany, AccessTechnology.ETHERNET, FRANKFURT, germany
        )
        wireless = model.floor_rtt_ms(
            MUNICH, germany, AccessTechnology.LTE, FRANKFURT, germany
        )
        assert wireless > wired + 10.0


class TestAdjustments:
    def test_private_backbone_lowers_transit(self, model):
        nigeria = get_country("NG")
        gb = get_country("GB")
        lagos, london = LatLon(6.5, 3.4), LatLon(51.5, -0.1)
        public = model.transit_floor_ms(lagos, nigeria, london, gb)
        private = model.transit_floor_ms(
            lagos, nigeria, london, gb,
            EndpointAdjustment(path_factor=0.95, peering_factor=0.55),
        )
        assert private < public


class TestPingMechanics:
    def test_packet_count_respected(self, model):
        obs = _ping(model, packets=5)
        assert obs.sent == 5

    def test_zero_packets_rejected(self, model):
        with pytest.raises(NetworkModelError):
            _ping(model, packets=0)

    def test_caller_rng_is_deterministic(self, model):
        from repro.net.rng import stream

        a = _ping(model, rng=stream(9, "flow"))
        b = _ping(model, rng=stream(9, "flow"))
        assert a == b

    def test_rtts_rounded(self, model):
        obs = _ping(model)
        for rtt in obs.rtts_ms:
            assert round(rtt, 3) == rtt
