"""Property-based invariants of the routing and latency models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coordinates import LatLon, destination_point
from repro.geo.countries import all_countries
from repro.net.lastmile import AccessTechnology
from repro.net.pathmodel import LatencyModel
from repro.net.physics import wire_rtt_ms
from repro.net.topology import default_transit_model

_COUNTRIES = all_countries()

country_strategy = st.sampled_from(_COUNTRIES)
bearing_strategy = st.floats(0.0, 359.9)
offset_strategy = st.floats(0.0, 400.0)


def _point_near(country, bearing, offset) -> LatLon:
    point = destination_point(country.centroid, bearing, offset)
    lat = min(max(point.lat, -89.0), 89.0)
    return LatLon(lat, point.lon)


class TestRouteInvariants:
    @given(country_strategy, country_strategy, bearing_strategy, offset_strategy)
    @settings(max_examples=150, deadline=None)
    def test_path_never_beats_great_circle(self, a, b, bearing, offset):
        """Physical lower bound: no route is shorter than the geodesic."""
        model = default_transit_model()
        origin = _point_near(a, bearing, offset)
        target = b.centroid
        route = model.route(origin, a, target, b)
        crow = origin.distance_km(target)
        assert route.path_km >= crow * 0.999

    @given(country_strategy, country_strategy)
    @settings(max_examples=100, deadline=None)
    def test_floor_bounded_below_by_physics(self, a, b):
        model = default_transit_model()
        route = model.route(a.centroid, a, b.centroid, b)
        crow = a.centroid.distance_km(b.centroid)
        assert route.floor_rtt_ms >= wire_rtt_ms(crow) - 1e-9

    @given(country_strategy, country_strategy)
    @settings(max_examples=100, deadline=None)
    def test_floor_positive_and_finite(self, a, b):
        model = default_transit_model()
        route = model.route(a.centroid, a, b.centroid, b)
        assert 0.0 < route.floor_rtt_ms < 1_000.0

    @given(country_strategy)
    @settings(max_examples=60, deadline=None)
    def test_domestic_kind_for_same_country(self, country):
        model = default_transit_model()
        route = model.route(
            country.centroid, country, country.centroid, country
        )
        assert route.kind == "domestic"


class TestLatencyModelInvariants:
    @given(
        country_strategy,
        country_strategy,
        st.sampled_from(list(AccessTechnology)),
        st.integers(1_567_296_000, 1_590_000_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_ping_rtts_respect_floor(self, a, b, tech, timestamp):
        model = LatencyModel(seed=77)
        floor = model.floor_rtt_ms(a.centroid, a, tech, b.centroid, b)
        obs = model.ping(
            a.centroid, a, tech, b.centroid, b, timestamp,
            origin_id=1, target_id="prop", packets=3,
        )
        for rtt in obs.rtts_ms:
            assert rtt >= floor - 1e-6

    @given(country_strategy, st.integers(1_567_296_000, 1_570_000_000))
    @settings(max_examples=60, deadline=None)
    def test_wireless_floor_dominates_wired(self, country, timestamp):
        model = LatencyModel(seed=78)
        target = _COUNTRIES[0]
        wired = model.floor_rtt_ms(
            country.centroid, country, AccessTechnology.ETHERNET,
            target.centroid, target,
        )
        wireless = model.floor_rtt_ms(
            country.centroid, country, AccessTechnology.LTE,
            target.centroid, target,
        )
        assert wireless > wired
