"""Tests for repro.net.loss."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkModelError
from repro.net.lastmile import AccessTechnology
from repro.net.loss import packet_loss_probability, packets_received
from repro.net.rng import stream

tech_strategy = st.sampled_from(list(AccessTechnology))
tier_strategy = st.sampled_from([1, 2, 3, 4])


class TestLossProbability:
    @given(tech_strategy, tier_strategy, st.floats(0.0, 0.9))
    @settings(max_examples=100)
    def test_valid_probability(self, tech, tier, rho):
        p = packet_loss_probability(tech, tier, rho)
        assert 0.0 <= p <= 0.5

    def test_wireless_lossier_than_wired(self):
        wired = packet_loss_probability(AccessTechnology.ETHERNET, 1)
        wireless = packet_loss_probability(AccessTechnology.LTE, 1)
        assert wireless > wired

    def test_congestion_increases_loss(self):
        idle = packet_loss_probability(AccessTechnology.DSL, 2, 0.0)
        busy = packet_loss_probability(AccessTechnology.DSL, 2, 0.8)
        assert busy > idle

    def test_bad_utilization_rejected(self):
        with pytest.raises(NetworkModelError):
            packet_loss_probability(AccessTechnology.DSL, 1, 1.5)

    def test_bad_tier_rejected(self):
        with pytest.raises(NetworkModelError):
            packet_loss_probability(AccessTechnology.DSL, 0)


class TestGilbertElliott:
    def test_zero_loss(self):
        from repro.net.loss import gilbert_elliott_losses

        rng = stream(1, "ge0")
        assert gilbert_elliott_losses(3, 0.0, rng) == 0

    def test_average_matches_target(self):
        from repro.net.loss import gilbert_elliott_losses

        rng = stream(2, "ge-avg")
        target = 0.05
        sent = 10
        total_lost = sum(
            gilbert_elliott_losses(sent, target, rng) for _ in range(4000)
        )
        observed = total_lost / (4000 * sent)
        assert observed == pytest.approx(target, rel=0.25)

    def test_losses_are_bursty(self):
        """All-three-lost pings are far likelier than under independence."""
        from repro.net.loss import gilbert_elliott_losses

        rng = stream(3, "ge-burst")
        target = 0.05
        trials = 20_000
        all_lost = sum(
            1 for _ in range(trials)
            if gilbert_elliott_losses(3, target, rng) == 3
        )
        independent_rate = target**3
        assert all_lost / trials > 5 * independent_rate

    def test_invalid_sent(self):
        from repro.net.loss import gilbert_elliott_losses

        with pytest.raises(NetworkModelError):
            gilbert_elliott_losses(0, 0.1, stream(1, "x"))

    def test_extreme_target_clamped(self):
        from repro.net.loss import gilbert_elliott_losses

        rng = stream(4, "ge-hi")
        lost = gilbert_elliott_losses(3, 0.9, rng)
        assert 0 <= lost <= 3


class TestPacketsReceived:
    def test_bounds(self):
        rng = stream(1, "loss")
        for _ in range(100):
            received = packets_received(3, AccessTechnology.LTE, 4, 0.5, rng)
            assert 0 <= received <= 3

    def test_zero_sent_rejected(self):
        with pytest.raises(NetworkModelError):
            packets_received(0, AccessTechnology.DSL, 1, 0.0, stream(1, "x"))

    def test_ethernet_rarely_loses(self):
        rng = stream(2, "eth")
        total = sum(
            packets_received(3, AccessTechnology.ETHERNET, 1, 0.1, rng)
            for _ in range(500)
        )
        assert total >= 1480  # <~1.5% loss over 1500 packets
