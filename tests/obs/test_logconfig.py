"""Tests for repro.obs.logconfig — the shared CLI logging setup."""

import io
import json
import logging

import pytest

from repro.obs.logconfig import LOG_LEVELS, logging_config


@pytest.fixture(autouse=True)
def reset_repro_logger():
    yield
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True


class TestConfig:
    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            logging_config(level="chatty")

    def test_all_documented_levels_accepted(self):
        for level in LOG_LEVELS:
            logger = logging_config(level=level)
            assert logger.level == getattr(logging, level.upper())

    def test_reconfiguration_is_idempotent(self):
        logging_config(level="info")
        logger = logging_config(level="debug")
        assert len(logger.handlers) == 1
        assert logger.level == logging.DEBUG

    def test_level_filters_records(self):
        stream = io.StringIO()
        logging_config(level="warning", stream=stream)
        logging.getLogger("repro.campaign").info("quiet")
        logging.getLogger("repro.campaign").warning("loud")
        out = stream.getvalue()
        assert "quiet" not in out
        assert "loud" in out

    def test_does_not_touch_root_logger(self):
        before = list(logging.getLogger().handlers)
        logging_config(level="info")
        assert logging.getLogger().handlers == before


class TestJsonFormat:
    def test_one_parseable_object_per_line(self):
        stream = io.StringIO()
        logging_config(level="info", json_logs=True, stream=stream)
        logging.getLogger("repro.campaign").warning("collection interrupted")
        record = json.loads(stream.getvalue().strip())
        assert record == {
            "event": "collection interrupted",
            "level": "warning",
            "logger": "repro.campaign",
        }

    def test_extra_fields_dict_is_flattened(self):
        stream = io.StringIO()
        logging_config(level="info", json_logs=True, stream=stream)
        logging.getLogger("repro.campaign").warning(
            "interrupted", extra={"fields": {"msm_id": 9, "window": 3}}
        )
        record = json.loads(stream.getvalue().strip())
        assert record["msm_id"] == 9
        assert record["window"] == 3

    def test_human_format_is_not_json(self):
        stream = io.StringIO()
        logging_config(level="info", json_logs=False, stream=stream)
        logging.getLogger("repro.campaign").warning("plain line")
        out = stream.getvalue().strip()
        assert "plain line" in out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)
