"""Tests for repro.obs.metrics — the deterministic registry."""

import pytest

from repro.obs.metrics import (
    ATTEMPT_BUCKETS,
    MetricsRegistry,
    series_key,
)


class TestSeriesKeys:
    def test_no_labels_is_bare_name(self):
        assert series_key("calls_total", ()) == "calls_total"

    def test_labels_sorted_canonically(self):
        registry = MetricsRegistry()
        registry.counter("calls_total", zeta="1", alpha="2").inc()
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == [
            'calls_total{alpha="2",zeta="1"}'
        ]

    def test_label_order_at_call_site_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("c", a=1, b=2).inc()
        registry.counter("c", b=2, a=1).inc()
        assert registry.snapshot()["counters"] == {'c{a="1",b="2"}': 2}


class TestCounter:
    def test_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("events_total").inc()
        registry.counter("events_total").inc(41)
        assert registry.snapshot()["counters"]["events_total"] == 42

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("events_total").inc(-1)

    def test_float_amounts_round_stably(self):
        registry = MetricsRegistry()
        registry.counter("backoff_s_total").inc(0.1)
        registry.counter("backoff_s_total").inc(0.2)
        # 0.1 + 0.2 != 0.3 in binary; the snapshot rounds to 9 dp so the
        # serialized value is stable and comparable across runs.
        assert registry.snapshot()["counters"]["backoff_s_total"] == 0.3

    def test_whole_floats_snapshot_as_ints(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2.0)
        assert registry.snapshot()["counters"]["c"] == 2


class TestGauge:
    def test_last_set_wins(self):
        registry = MetricsRegistry()
        registry.gauge("open", endpoint="results").set(1)
        registry.gauge("open", endpoint="results").set(0)
        assert registry.snapshot()["gauges"] == {'open{endpoint="results"}': 0}


class TestHistogram:
    def test_observations_land_in_le_buckets(self):
        registry = MetricsRegistry()
        series = registry.histogram("attempts", buckets=ATTEMPT_BUCKETS)
        for value in (1, 2, 2, 9):
            series.observe(value)
        snap = registry.snapshot()["histograms"]["attempts"]
        assert snap["buckets"]["1"] == 1
        assert snap["buckets"]["2"] == 2
        assert snap["buckets"]["+Inf"] == 1
        assert snap["count"] == 4
        assert snap["sum"] == 14

    def test_layout_fixed_at_first_registration(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(5.0, 10.0))
        # Re-registering with the same layout (or none) is fine.
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        registry.histogram("h").observe(0.5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))


class TestMerge:
    def build(self, calls, backoff, gauge):
        registry = MetricsRegistry()
        registry.counter("calls_total", endpoint="results").inc(calls)
        registry.counter("backoff_s_total").inc(backoff)
        registry.gauge("breaker_open").set(gauge)
        registry.histogram("attempts", buckets=ATTEMPT_BUCKETS).observe(calls)
        return registry

    def test_counters_and_histograms_sum_gauges_take_last(self):
        parent = self.build(1, 0.5, 1)
        parent.merge(self.build(2, 1.5, 0).export())
        snap = parent.snapshot()
        assert snap["counters"]['calls_total{endpoint="results"}'] == 3
        assert snap["counters"]["backoff_s_total"] == 2
        assert snap["gauges"]["breaker_open"] == 0
        assert snap["histograms"]["attempts"]["count"] == 2

    def test_merge_creates_missing_series(self):
        parent = MetricsRegistry()
        parent.merge(self.build(4, 0.25, 1).export())
        assert parent.snapshot() == self.build(4, 0.25, 1).snapshot()

    def test_shard_order_merge_is_reproducible(self):
        workers = [self.build(n, n / 4, n % 2).export() for n in range(4)]
        first, second = MetricsRegistry(), MetricsRegistry()
        for exported in workers:
            first.merge(exported)
        for exported in workers:
            second.merge(exported)
        assert first.snapshot() == second.snapshot()

    def test_export_round_trips_through_pickle(self):
        import pickle

        exported = self.build(3, 1.25, 1).export()
        restored = pickle.loads(pickle.dumps(exported))
        target = MetricsRegistry()
        target.merge(restored)
        assert target.snapshot() == self.build(3, 1.25, 1).snapshot()


class TestPrometheus:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("calls_total", endpoint="results").inc(3)
        registry.gauge("open").set(1)
        registry.histogram("attempts", buckets=(1.0, 2.0)).observe(1)
        registry.histogram("attempts", buckets=(1.0, 2.0)).observe(5)
        text = registry.to_prometheus()
        assert "# TYPE calls_total counter" in text
        assert 'calls_total{endpoint="results"} 3' in text
        assert "# TYPE open gauge" in text
        assert "# TYPE attempts histogram" in text
        # Bucket counts are cumulative in the exposition format.
        assert 'attempts_bucket{le="1"} 1' in text
        assert 'attempts_bucket{le="2"} 1' in text
        assert 'attempts_bucket{le="+Inf"} 2' in text
        assert "attempts_sum 6" in text
        assert "attempts_count 2" in text
        assert text.endswith("\n")

    def test_empty_registry_is_empty_text(self):
        assert MetricsRegistry().to_prometheus() == ""
