"""Tests for repro.obs.trace — simulated-clock span tracing."""

import json

import pytest

from repro.obs.trace import Tracer


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t

    def advance(self, seconds):
        self.t += seconds


class TestSpans:
    def test_unbound_tracer_stamps_zero(self):
        tracer = Tracer()
        with tracer.span("outer"):
            pass
        (span,) = tracer.finished
        assert span["start_sim"] == 0.0
        assert span["end_sim"] == 0.0

    def test_sim_timestamps_come_from_bound_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock.now)
        clock.advance(5.0)
        with tracer.span("fetch"):
            clock.advance(2.5)
        (span,) = tracer.finished
        assert span["start_sim"] == 5.0
        assert span["end_sim"] == 7.5

    def test_bind_clock_after_construction(self):
        clock = FakeClock()
        tracer = Tracer()
        tracer.bind_clock(clock.now)
        clock.advance(1.0)
        with tracer.span("late"):
            pass
        assert tracer.finished[0]["start_sim"] == 1.0

    def test_nesting_links_parent_and_finishes_children_first(self):
        tracer = Tracer()
        with tracer.span("collect") as outer:
            with tracer.span("fetch", msm_id=7) as inner:
                pass
        assert [s["name"] for s in tracer.finished] == ["fetch", "collect"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert inner["attrs"] == {"msm_id": 7}

    def test_error_status_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("fetch"):
                raise RuntimeError("boom")
        (span,) = tracer.finished
        assert span["status"] == "error"
        assert span["end_sim"] is not None

    def test_wall_ms_is_annotation_only(self):
        tracer = Tracer()
        with tracer.span("fetch"):
            pass
        (span,) = tracer.finished
        assert isinstance(span["wall_ms"], float)
        # Everything except wall_ms is deterministic for a fixed clock.
        deterministic = {k: v for k, v in span.items() if k != "wall_ms"}
        assert deterministic["span_id"] == 1


class TestEvents:
    def test_event_attaches_to_current_span(self):
        tracer = Tracer(clock=lambda: 3.0)
        with tracer.span("collect"):
            tracer.event("checkpoint.mark", msm_id=9)
        (span,) = tracer.finished
        assert span["events"] == [{"name": "checkpoint.mark", "sim": 3.0, "msm_id": 9}]

    def test_event_outside_span_is_orphan(self):
        tracer = Tracer()
        tracer.event("campaign.resume_skip", measurements=4)
        assert tracer.orphan_events == [
            {"name": "campaign.resume_skip", "sim": 0.0, "measurements": 4}
        ]


class TestAdopt:
    def test_worker_spans_reid_into_parent_sequence(self):
        parent = Tracer()
        with parent.span("collect"):
            pass
        worker = Tracer()
        with worker.span("shard"):
            with worker.span("fetch"):
                pass
        parent.adopt(worker.export())
        ids = [s["span_id"] for s in parent.finished]
        assert ids == sorted(set(ids))  # unique, monotone sequence
        adopted = {s["name"]: s for s in parent.finished[1:]}
        # Intra-batch link preserved: fetch still points at shard.
        assert adopted["fetch"]["parent_id"] == adopted["shard"]["span_id"]
        assert adopted["shard"]["parent_id"] is None

    def test_parent_finishing_after_children_still_maps(self):
        # Worker export order is completion order: children precede
        # parents.  Adoption must still resolve the forward reference.
        worker = Tracer()
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        parent = Tracer()
        parent.adopt(worker.export())
        inner, outer = parent.finished
        assert inner["parent_id"] == outer["span_id"]

    def test_out_of_batch_parent_becomes_root(self):
        parent = Tracer()
        orphaned = {"span_id": 5, "parent_id": 99, "name": "stray"}
        parent.adopt([orphaned])
        assert parent.finished[0]["parent_id"] is None


class TestExport:
    def test_export_jsonl_round_trips(self, tmp_path):
        clock = FakeClock()
        tracer = Tracer(clock=clock.now)
        with tracer.span("collect", workers=1):
            clock.advance(12.0)
        out = tmp_path / "trace.jsonl"
        tracer.export_jsonl(out)
        lines = out.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "collect"
        assert record["duration_sim"] == 12.0
        assert record["attrs"] == {"workers": 1}

    def test_empty_trace_writes_empty_file(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        Tracer().export_jsonl(out)
        assert out.read_text() == ""
