"""Instrumentation wiring: obs threaded through transport, retry, faults,
dataset, and campaign — and the null context keeping all of it free."""

import pytest

from repro.atlas.api.retry import RetryEngine, RetryPolicy, SimulatedClock
from repro.atlas.faults import FaultInjector
from repro.atlas.platform import AtlasPlatform
from repro.core.campaign import Campaign, CampaignScale
from repro.core.dataset import CampaignDataset
from repro.errors import RateLimitedError, RetryExhaustedError
from repro.obs import NULL_OBS, Obs, ensure_obs

#: Matches tests/conftest.FIXTURE_SEED so session fixtures double as
#: cross-checks for the runs built here.
FIXTURE_SEED = 7

T0 = 1_567_296_000
DAY = 86_400


def build_platform(seed=13):
    """A platform with one running ping measurement (transport-test idiom)."""
    from repro.atlas.api.sources import AtlasSource
    from repro.atlas.platform import DEFAULT_KEY

    platform = AtlasPlatform(seed=seed)
    msm_id = platform.create_measurement(
        {
            "target": platform.hostname_for(platform.fleet[9]),
            "description": "obs instrumentation test",
            "type": "ping",
            "af": 4,
            "is_oneoff": False,
            "packets": 3,
            "size": 48,
            "interval": 3_600,
        },
        [AtlasSource(type="country", value="DE", requested=5)],
        T0,
        T0 + 4 * DAY,
        key=DEFAULT_KEY,
    )
    return platform, msm_id


class TestNullObs:
    def test_disabled_and_shared(self):
        assert NULL_OBS.enabled is False
        assert NULL_OBS.child() is NULL_OBS
        assert NULL_OBS.registry is None
        assert NULL_OBS.tracer is None

    def test_all_operations_are_noops(self):
        NULL_OBS.inc("anything", 5, label="x")
        NULL_OBS.set_gauge("g", 1)
        NULL_OBS.observe("h", 2.0, buckets=(1.0, 5.0))
        NULL_OBS.event("e", detail=1)
        NULL_OBS.bind_clock(lambda: 0.0)
        NULL_OBS.merge({"metrics": {}})
        with NULL_OBS.span("s", k=1) as span:
            assert span is None
        assert NULL_OBS.export() is None

    def test_ensure_obs_normalizes(self):
        assert ensure_obs(None) is NULL_OBS
        live = Obs()
        assert ensure_obs(live) is live


class TestObsContext:
    def test_child_is_fresh(self):
        parent = Obs()
        child = parent.child()
        assert child is not parent
        assert child.registry is not parent.registry
        assert child.tracer is not parent.tracer

    def test_export_merge_round_trip(self):
        worker = Obs()
        worker.inc("campaign_measurements_collected_total", 3)
        with worker.span("campaign.shard", shard=1):
            pass
        parent = Obs()
        parent.merge(worker.export())
        snap = parent.registry.snapshot()
        assert snap["counters"]["campaign_measurements_collected_total"] == 3
        assert [s["name"] for s in parent.tracer.finished] == ["campaign.shard"]

    def test_merge_of_null_export_is_noop(self):
        parent = Obs()
        parent.merge(NULL_OBS.export())
        assert parent.registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestRetryInstrumentation:
    def test_retries_and_attempt_histogram(self):
        obs = Obs()
        engine = RetryEngine(RetryPolicy(), SimulatedClock(), seed=3, obs=obs)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RateLimitedError(retry_after=1.0)
            return "ok"

        assert engine.call("results", flaky) == "ok"
        snap = obs.registry.snapshot()
        assert snap["counters"]['retries_total{endpoint="results"}'] == 2
        assert snap["counters"]['retry_backoff_s_total{endpoint="results"}'] >= 2.0
        hist = snap["histograms"]['retry_attempts{endpoint="results"}']
        assert hist["count"] == 1 and hist["sum"] == 3

    def test_breaker_open_counter_and_gauge(self):
        obs = Obs()
        policy = RetryPolicy(max_attempts=3, breaker_threshold=2)
        engine = RetryEngine(policy, SimulatedClock(), seed=3, obs=obs)

        def always_down():
            raise RateLimitedError(retry_after=0.5)

        with pytest.raises(RetryExhaustedError):
            engine.call("results", always_down)
        snap = obs.registry.snapshot()
        assert snap["counters"]['circuit_breaker_opens_total{endpoint="results"}'] == 1
        assert snap["gauges"]['circuit_breaker_open{endpoint="results"}'] == 1
        # Exhaustion still records the attempt count at the policy cap.
        hist = snap["histograms"]['retry_attempts{endpoint="results"}']
        assert hist["sum"] == policy.max_attempts


class TestFaultInstrumentation:
    def test_metrics_agree_with_injector_counts(self):
        obs = Obs()
        injector = FaultInjector(
            seed=5, profile="hostile", clock=SimulatedClock(), obs=obs
        )
        page = [{"type": "ping", "prb_id": 1, "timestamp": t} for t in range(20)]
        for _ in range(200):
            try:
                injector.before_call("results")
            except Exception:
                pass
            try:
                injector.mangle_page(page)
            except Exception:
                pass
        assert sum(injector.counts.values()) > 0
        counters = obs.registry.snapshot()["counters"]
        for kind, count in injector.stats().items():
            assert counters[f'faults_injected_total{{kind="{kind}"}}'] == count


class TestTransportInstrumentation:
    def test_passthrough_counts_calls_and_served_rows(self):
        from repro.atlas.api.transport import Transport

        platform, msm_id = build_platform()
        obs = Obs()
        transport = Transport(platform, obs=obs)
        results = transport.results(msm_id)
        counters = obs.registry.snapshot()["counters"]
        assert counters['transport_calls_total{endpoint="results"}'] == 1
        assert counters['platform_results_served_total{path="dict"}'] == len(results)

    def test_chaos_transport_records_faults_and_retries(self):
        from repro.atlas.api.transport import Transport

        platform, msm_id = build_platform()
        obs = Obs()
        transport = Transport(platform, faults="flaky", page_size=20, obs=obs)
        transport.results(msm_id)
        counters = obs.registry.snapshot()["counters"]
        faults = {
            key: value
            for key, value in counters.items()
            if key.startswith("faults_injected_total")
        }
        assert sum(faults.values()) == sum(transport.injector.counts.values()) > 0
        stats = transport.stats()
        retries = {
            key: value
            for key, value in counters.items()
            if key.startswith("retries_total")
        }
        assert sum(retries.values()) == stats["retries"] > 0

    def test_worker_clone_gets_fresh_child_context(self):
        from repro.atlas.api.transport import Transport

        platform, _ = build_platform()
        obs = Obs()
        transport = Transport(platform, faults="flaky", obs=obs)
        clone = transport.worker_clone()
        assert clone.obs is not transport.obs
        assert clone.obs.enabled
        assert clone.obs.registry is not transport.obs.registry
        # Null context clones stay null (and shared).
        bare = Transport(platform, faults="flaky")
        assert bare.worker_clone().obs is NULL_OBS

    def test_bind_obs_rewires_retry_and_injector(self):
        from repro.atlas.api.transport import Transport

        platform, _ = build_platform()
        transport = Transport(platform, faults="flaky")
        assert transport.obs is NULL_OBS
        obs = Obs()
        transport.bind_obs(obs)
        assert transport.obs is obs
        assert transport.retry.obs is obs
        assert transport.injector.obs is obs
        assert transport.obs.tracer._clock == transport.clock.now


class TestDatasetInstrumentation:
    def test_append_dedup_and_freeze_metrics(self, tiny_dataset):
        obs = Obs()
        dataset = CampaignDataset(
            tiny_dataset.probes, tiny_dataset.targets, dedup=True, obs=obs
        )
        target_key = tiny_dataset.targets[0].key
        probe_id = tiny_dataset.probes[0].probe_id
        dataset.append(probe_id, target_key, 100, 10.0, 11.0, 3, 3)
        dataset.append(probe_id, target_key, 100, 10.0, 11.0, 3, 3)  # duplicate
        dataset.append(probe_id, target_key, 200, 12.0, 13.0, 3, 3)
        dataset.freeze()
        snap = obs.registry.snapshot()
        assert snap["counters"]["dataset_samples_appended_total"] == 2
        assert snap["counters"]["dataset_duplicates_dropped_total"] == 1
        assert snap["gauges"]["dataset_frozen_rows"] == 2
        events = [e["name"] for e in obs.tracer.orphan_events]
        assert "dataset.freeze" in events


class TestCampaignInstrumentation:
    @pytest.fixture(scope="class")
    def instrumented(self):
        campaign = Campaign.from_paper(
            scale=CampaignScale.TINY, seed=FIXTURE_SEED, obs=Obs()
        )
        dataset = campaign.run()
        return campaign, dataset

    def test_campaign_and_transport_share_one_context(self, instrumented):
        campaign, _ = instrumented
        assert campaign.obs is campaign.transport.obs
        assert campaign.obs.enabled

    def test_collection_counters_match_dataset(self, instrumented):
        campaign, dataset = instrumented
        counters = campaign.obs.registry.snapshot()["counters"]
        assert counters["dataset_samples_appended_total"] == len(dataset)
        fetch_paths = {
            key: value
            for key, value in counters.items()
            if key.startswith("campaign_fetch_path_total")
        }
        assert sum(fetch_paths.values()) == counters[
            "campaign_measurements_collected_total"
        ]
        gauges = campaign.obs.registry.snapshot()["gauges"]
        assert gauges["dataset_frozen_rows"] == len(dataset)

    def test_collect_span_tree_recorded(self, instrumented):
        campaign, _ = instrumented
        finished = campaign.obs.tracer.finished
        names = {span["name"] for span in finished}
        assert {"campaign.collect", "campaign.fetch"} <= names
        collect = [s for s in finished if s["name"] == "campaign.collect"]
        assert len(collect) == 1
        fetches = [s for s in finished if s["name"] == "campaign.fetch"]
        assert all(f["parent_id"] == collect[0]["span_id"] for f in fetches)

    def test_uninstrumented_campaign_stays_null(self):
        campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=FIXTURE_SEED)
        assert campaign.obs is NULL_OBS
        assert campaign.transport.obs is NULL_OBS
