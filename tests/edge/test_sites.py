"""Tests for repro.edge.sites."""

import pytest

from repro.edge.sites import (
    DeploymentStrategy,
    basestation_deployment,
    deployment_cost_kusd,
    deployment_for,
    gateway_deployment,
    national_deployment,
)
from repro.errors import ReproError
from repro.geo.countries import countries_with_probes, get_country
from repro.net.cables import GATEWAYS


class TestGatewayDeployment:
    def test_one_site_per_gateway(self):
        sites = gateway_deployment()
        assert len(sites) == len(GATEWAYS)

    def test_sites_at_gateway_locations(self):
        sites = {site.site_id: site for site in gateway_deployment()}
        assert sites["gw:frankfurt"].location == GATEWAYS["frankfurt"].location

    def test_strategy_tagged(self):
        assert all(
            site.strategy is DeploymentStrategy.GATEWAY
            for site in gateway_deployment()
        )


class TestNationalDeployment:
    def test_one_site_per_probed_country(self):
        sites = national_deployment(1)
        assert len(sites) == len(countries_with_probes())

    def test_multiple_sites_per_country(self):
        sites = national_deployment(3)
        assert len(sites) == 3 * len(countries_with_probes())
        german = [s for s in sites if s.country_code == "DE"]
        assert len(german) == 3
        assert len({s.location for s in german}) == 3

    def test_invalid_count(self):
        with pytest.raises(ReproError):
            national_deployment(0)


class TestBasestationDeployment:
    def test_marker_per_country(self):
        sites = basestation_deployment()
        assert len(sites) == len(countries_with_probes())
        assert all(site.is_basestation for site in sites)


class TestDispatcher:
    @pytest.mark.parametrize("strategy", list(DeploymentStrategy))
    def test_deployment_for(self, strategy):
        sites = deployment_for(strategy)
        assert sites
        assert all(site.strategy is strategy for site in sites)


class TestCosts:
    def test_cost_positive_and_tier_sensitive(self):
        sites = national_deployment(1)
        cost = deployment_cost_kusd(sites)
        assert cost > 0
        # One tier-4 site costs more than one tier-1 site.
        tier1 = [s for s in sites if get_country(s.country_code).infra_tier == 1][:1]
        tier4 = [s for s in sites if get_country(s.country_code).infra_tier == 4][:1]
        assert deployment_cost_kusd(tuple(tier4)) > deployment_cost_kusd(tuple(tier1))

    def test_basestation_costs_dominate(self):
        national = deployment_cost_kusd(national_deployment(1))
        basestation = deployment_cost_kusd(basestation_deployment())
        assert basestation > 20 * national
