"""Tests for repro.edge.latency."""

import pytest

from repro.atlas.population import generate_population
from repro.edge.latency import (
    BASESTATION_PROCESSING_MS,
    edge_floor_rtt_ms,
    evaluate_deployment,
)
from repro.edge.sites import (
    basestation_deployment,
    gateway_deployment,
    national_deployment,
)
from repro.errors import ReproError
from repro.net.lastmile import floor_ms
from repro.net.pathmodel import LatencyModel


@pytest.fixture(scope="module")
def model():
    return LatencyModel(seed=0)


@pytest.fixture(scope="module")
def fleet():
    return generate_population(seed=3)


class TestEdgeFloor:
    def test_no_sites_rejected(self, fleet, model):
        with pytest.raises(ReproError):
            edge_floor_rtt_ms(fleet[0], (), model)

    def test_basestation_is_lastmile_plus_processing(self, fleet, model):
        probe = fleet[0]
        rtt, site = edge_floor_rtt_ms(probe, basestation_deployment(), model)
        expected = (
            floor_ms(probe.access, probe.country.infra_tier)
            + BASESTATION_PROCESSING_MS
        )
        assert rtt == pytest.approx(expected)
        assert site.country_code == probe.country_code

    def test_basestation_floors_everything(self, fleet, model):
        """No deployment beats compute at the access point by more than
        the basestation's own processing overhead (a probe sitting next
        to a national site can shave that overhead)."""
        basestation = basestation_deployment()
        national = national_deployment(1)
        for probe in fleet[:40]:
            bs_rtt, _ = edge_floor_rtt_ms(probe, basestation, model)
            nat_rtt, _ = edge_floor_rtt_ms(probe, national, model)
            assert bs_rtt <= nat_rtt + BASESTATION_PROCESSING_MS

    def test_national_beats_gateway_in_gatewayless_countries(self, fleet, model):
        """Probes in countries without a gateway metro gain from a
        national site."""
        gateway = gateway_deployment()
        national = national_deployment(1)
        gains = 0
        checked = 0
        for probe in fleet:
            if probe.country_code in ("FI", "RO", "NZ", "CL"):
                gw_rtt, _ = edge_floor_rtt_ms(probe, gateway, model)
                nat_rtt, _ = edge_floor_rtt_ms(probe, national, model)
                checked += 1
                if nat_rtt < gw_rtt:
                    gains += 1
        assert checked > 0
        assert gains / checked > 0.5


class TestEvaluateDeployment:
    def test_covers_all_probes(self, fleet, model):
        subset = fleet[:25]
        rtts = evaluate_deployment(subset, gateway_deployment(), model)
        assert set(rtts) == {probe.probe_id for probe in subset}
        assert all(rtt > 0 for rtt in rtts.values())
