"""Tests for repro.edge.gains — the §6 'plausible deployments' analysis."""

import pytest

from repro.edge.gains import (
    cost_per_improved_user_kusd,
    deployment_gains,
    gains_by_continent,
    gains_frame,
)
from repro.edge.sites import (
    basestation_deployment,
    gateway_deployment,
    national_deployment,
)


class TestGains:
    def test_gains_cover_measured_probes(self, tiny_dataset):
        gains = deployment_gains(tiny_dataset, national_deployment(1))
        from repro.core.proximity import per_probe_min

        assert set(gains) == set(per_probe_min(tiny_dataset))

    def test_underserved_gain_more(self, tiny_dataset):
        """Paper §6: gains are larger in developing regions."""
        summaries = gains_by_continent(tiny_dataset, national_deployment(1))
        assert summaries["AF"].median_gain_ms > summaries["EU"].median_gain_ms
        assert summaries["SA"].median_gain_ms > summaries["NA"].median_gain_ms

    def test_well_connected_gains_small(self, tiny_dataset):
        """Paper: 'General-purpose edge yields little benefit in
        well-connected areas'."""
        summaries = gains_by_continent(tiny_dataset, gateway_deployment())
        assert summaries["NA"].median_gain_ms < 15.0

    def test_basestation_maximizes_gain(self, tiny_dataset):
        national = gains_by_continent(tiny_dataset, national_deployment(1))
        basestation = gains_by_continent(tiny_dataset, basestation_deployment())
        for continent in national:
            assert (
                basestation[continent].median_gain_ms
                >= national[continent].median_gain_ms - 5.0
            )

    def test_frame_ordering(self, tiny_dataset):
        frame = gains_frame(tiny_dataset, gateway_deployment())
        assert list(frame["continent"])[:2] == ["NA", "EU"]
        for row in frame.iter_rows():
            assert 0.0 <= row["share_improved"] <= 1.0
            assert row["share_meaningful"] <= row["share_improved"]


class TestCostEffectiveness:
    def test_basestation_least_cost_effective(self, tiny_dataset):
        """The economies-of-scale argument: pervasive deployment costs
        orders of magnitude more per improved user."""
        national = cost_per_improved_user_kusd(tiny_dataset, national_deployment(1))
        basestation = cost_per_improved_user_kusd(
            tiny_dataset, basestation_deployment()
        )
        assert basestation > 10 * national

    def test_cost_finite_for_real_deployments(self, tiny_dataset):
        assert cost_per_improved_user_kusd(
            tiny_dataset, gateway_deployment()
        ) < float("inf")
