"""Package-level sanity: version, public surfaces, constants coherence."""

import repro
from repro import constants


class TestPackage:
    def test_version(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_subpackages_import(self):
        import repro.apps
        import repro.atlas
        import repro.cloud
        import repro.core
        import repro.edge
        import repro.frame
        import repro.geo
        import repro.net
        import repro.scholar
        import repro.viz  # noqa: F401

    def test_all_exports_resolve(self):
        """Every name in each subpackage's __all__ must exist."""
        import repro.apps
        import repro.atlas
        import repro.cloud
        import repro.core
        import repro.edge
        import repro.frame
        import repro.geo
        import repro.net
        import repro.scholar
        import repro.viz

        for module in (
            repro.apps, repro.atlas, repro.cloud, repro.core, repro.edge,
            repro.frame, repro.geo, repro.net, repro.scholar, repro.viz,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_all_lists_sorted(self):
        """Keep the public indexes tidy (review aid)."""
        import repro.frame
        import repro.geo

        for module in (repro.frame, repro.geo):
            assert list(module.__all__) == sorted(module.__all__)


class TestConstantsCoherence:
    def test_threshold_ordering(self):
        assert constants.MTP_MS < constants.PL_MS < constants.HRT_MS

    def test_mtp_budget_decomposition(self):
        assert constants.MTP_DISPLAY_MS + constants.MTP_COMPUTE_BUDGET_MS == (
            constants.MTP_MS
        )
        assert constants.MTP_HUD_MS < constants.MTP_COMPUTE_BUDGET_MS

    def test_fz_bounds(self):
        assert constants.FZ_LATENCY_LOW_MS < constants.FZ_LATENCY_HIGH_MS
        assert constants.FZ_LATENCY_HIGH_MS == constants.HRT_MS

    def test_campaign_parameters(self):
        assert constants.MEASUREMENT_INTERVAL_S == 3 * 3600
        assert constants.CAMPAIGN_MONTHS == 9
        assert constants.NUM_CLOUD_REGIONS == 101
        assert constants.NUM_PROVIDERS == 7
        assert constants.NUM_DATACENTER_COUNTRIES == 21
        assert constants.NUM_PROBE_COUNTRIES == 166

    def test_fig4_buckets_ascend(self):
        edges = constants.FIG4_BUCKETS_MS
        assert list(edges) == sorted(edges)
        assert edges[-1] == float("inf")

    def test_paper_country_counts_consistent(self):
        total_fast = (
            constants.PAPER_COUNTRIES_UNDER_10MS
            + constants.PAPER_COUNTRIES_10_TO_20MS
        )
        assert total_fast < constants.NUM_PROBE_COUNTRIES
        assert constants.PAPER_COUNTRIES_OVER_PL < constants.NUM_PROBE_COUNTRIES
