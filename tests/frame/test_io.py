"""Tests for repro.frame.io round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameError
from repro.frame import (
    Frame,
    from_csv_text,
    from_json_text,
    read_csv,
    read_json,
    to_csv_text,
    to_json_text,
    write_csv,
    write_json,
)


@pytest.fixture
def sample() -> Frame:
    return Frame(
        {
            "country": ["DE", "FR"],
            "rtt": [5.25, 9.5],
            "probes": [420, 290],
        }
    )


class TestCSV:
    def test_round_trip(self, sample):
        assert from_csv_text(to_csv_text(sample)) == sample

    def test_header_present(self, sample):
        text = to_csv_text(sample)
        assert text.splitlines()[0] == "country,rtt,probes"

    def test_empty_text_rejected(self):
        with pytest.raises(FrameError):
            from_csv_text("")

    def test_type_coercion(self):
        frame = from_csv_text("a,b,c\n1,2.5,x\n")
        assert frame.row(0) == {"a": 1, "b": 2.5, "c": "x"}

    def test_file_round_trip(self, sample, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(sample, path)
        assert read_csv(path) == sample

    @given(
        st.lists(
            st.tuples(
                st.integers(-1000, 1000),
                st.floats(-100, 100, allow_nan=False).map(lambda v: round(v, 4)),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50)
    def test_numeric_round_trip_property(self, rows):
        frame = Frame(
            {"i": [r[0] for r in rows], "f": [r[1] for r in rows]}
        )
        rebuilt = from_csv_text(to_csv_text(frame))
        assert list(rebuilt["i"]) == list(frame["i"])
        for a, b in zip(rebuilt["f"], frame["f"]):
            assert a == pytest.approx(b)


class TestJSON:
    def test_round_trip(self, sample):
        assert from_json_text(to_json_text(sample)) == sample

    def test_rejects_non_object(self):
        with pytest.raises(FrameError):
            from_json_text("[1, 2, 3]")

    def test_file_round_trip(self, sample, tmp_path):
        path = tmp_path / "data.json"
        write_json(sample, path, indent=2)
        assert read_json(path) == sample

    def test_numpy_scalars_serialized(self, sample):
        # Values come back as plain Python types.
        import json

        payload = json.loads(to_json_text(sample))
        assert isinstance(payload["probes"][0], int)
