"""Tests for repro.frame.io round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameError
from repro.frame import (
    Frame,
    from_csv_text,
    from_json_text,
    read_csv,
    read_json,
    to_csv_text,
    to_json_text,
    write_csv,
    write_json,
)


@pytest.fixture
def sample() -> Frame:
    return Frame(
        {
            "country": ["DE", "FR"],
            "rtt": [5.25, 9.5],
            "probes": [420, 290],
        }
    )


class TestCSV:
    def test_round_trip(self, sample):
        assert from_csv_text(to_csv_text(sample)) == sample

    def test_header_present(self, sample):
        text = to_csv_text(sample)
        assert text.splitlines()[0] == "country,rtt,probes"

    def test_empty_text_rejected(self):
        with pytest.raises(FrameError):
            from_csv_text("")

    def test_type_coercion(self):
        frame = from_csv_text("a,b,c\n1,2.5,x\n")
        assert frame.row(0) == {"a": 1, "b": 2.5, "c": "x"}

    def test_file_round_trip(self, sample, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(sample, path)
        assert read_csv(path) == sample

    @given(
        st.lists(
            st.tuples(
                st.integers(-1000, 1000),
                st.floats(-100, 100, allow_nan=False).map(lambda v: round(v, 4)),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50)
    def test_numeric_round_trip_property(self, rows):
        frame = Frame(
            {"i": [r[0] for r in rows], "f": [r[1] for r in rows]}
        )
        rebuilt = from_csv_text(to_csv_text(frame))
        assert list(rebuilt["i"]) == list(frame["i"])
        for a, b in zip(rebuilt["f"], frame["f"]):
            assert a == pytest.approx(b)


class TestDtypeAnnotatedCSV:
    """The ``#dtypes`` annotation row: exact dtype round-trips."""

    def _typed_frame(self) -> Frame:
        return Frame(
            {
                "probe_id": np.asarray([3, 1, 2], dtype=np.int32),
                "timestamp": np.asarray(
                    [1_500_000_000, 1_500_010_800, 1_500_021_600], dtype=np.int64
                ),
                "sent": np.asarray([3, 3, 3], dtype=np.int16),
                "rtt": np.asarray([12.5, float("nan"), 7.125], dtype=np.float64),
                "wireless": np.asarray([True, False, True]),
                "country": ["DE", "NA", "FR"],
            }
        )

    def test_round_trip_preserves_exact_dtypes(self):
        frame = self._typed_frame()
        rebuilt = from_csv_text(to_csv_text(frame, dtypes=True))
        assert rebuilt.columns == frame.columns
        for name in ("probe_id", "timestamp", "sent", "rtt", "wireless"):
            assert rebuilt[name].dtype == frame[name].dtype, name
        assert list(rebuilt["probe_id"]) == [3, 1, 2]
        assert rebuilt["rtt"][0] == 12.5 and np.isnan(rebuilt["rtt"][1])
        assert list(rebuilt["wireless"]) == [True, False, True]

    def test_numeric_looking_strings_stay_strings(self):
        # Without annotations "NA"-like and digit-like cells re-infer;
        # with them the column is rebuilt as strings verbatim.
        frame = Frame({"code": ["007", "42", "NA"]})
        rebuilt = from_csv_text(to_csv_text(frame, dtypes=True))
        assert list(rebuilt["code"]) == ["007", "42", "NA"]
        legacy = from_csv_text(to_csv_text(frame))
        assert list(legacy["code"]) != ["007", "42", "NA"]

    def test_integer_columns_do_not_widen_or_float(self):
        frame = Frame({"sent": np.asarray([1, 2], dtype=np.int16)})
        legacy = from_csv_text(to_csv_text(frame))
        annotated = from_csv_text(to_csv_text(frame, dtypes=True))
        assert legacy["sent"].dtype != np.int16  # the drift being fixed
        assert annotated["sent"].dtype == np.int16

    def test_unannotated_text_still_parses(self, sample):
        assert from_csv_text(to_csv_text(sample)) == sample

    def test_malformed_annotation_rejected(self):
        with pytest.raises(FrameError):
            from_csv_text("#dtypes,a\na\n1\n")

    def test_annotated_file_round_trip(self, tmp_path):
        frame = self._typed_frame()
        path = tmp_path / "typed.csv"
        write_csv(frame, path, dtypes=True)
        rebuilt = read_csv(path)
        assert rebuilt["probe_id"].dtype == np.int32
        assert rebuilt.num_rows == 3


class TestAtomicWrites:
    def test_no_temp_files_left_behind(self, sample, tmp_path):
        write_csv(sample, tmp_path / "data.csv")
        assert [p.name for p in tmp_path.iterdir()] == ["data.csv"]

    def test_overwrite_is_replace_not_truncate(self, sample, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("old contents")
        write_csv(sample, path)
        assert read_csv(path) == sample


class TestJSON:
    def test_round_trip(self, sample):
        assert from_json_text(to_json_text(sample)) == sample

    def test_rejects_non_object(self):
        with pytest.raises(FrameError):
            from_json_text("[1, 2, 3]")

    def test_file_round_trip(self, sample, tmp_path):
        path = tmp_path / "data.json"
        write_json(sample, path, indent=2)
        assert read_json(path) == sample

    def test_numpy_scalars_serialized(self, sample):
        # Values come back as plain Python types.
        import json

        payload = json.loads(to_json_text(sample))
        assert isinstance(payload["probes"][0], int)
