"""Tests for repro.frame.frame."""

import numpy as np
import pytest

from repro.errors import ColumnError, FrameError
from repro.frame import Frame


@pytest.fixture
def sample() -> Frame:
    return Frame(
        {
            "country": ["DE", "FR", "US", "DE"],
            "rtt": [5.0, 9.0, 12.0, 7.0],
            "probe": [1, 2, 3, 4],
        }
    )


class TestConstruction:
    def test_empty(self):
        frame = Frame()
        assert len(frame) == 0
        assert frame.is_empty()
        assert frame.columns == ()

    def test_column_lengths_must_match(self):
        with pytest.raises(ColumnError):
            Frame({"a": [1, 2], "b": [1]})

    def test_from_records(self):
        frame = Frame.from_records([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert frame.columns == ("a", "b")
        assert list(frame["a"]) == [1, 2]

    def test_from_records_missing_key(self):
        with pytest.raises(FrameError):
            Frame.from_records([{"a": 1}, {"b": 2}])

    def test_from_records_empty_with_columns(self):
        frame = Frame.from_records([], columns=["a", "b"])
        assert frame.columns == ("a", "b")
        assert len(frame) == 0

    def test_duplicate_column_rejected(self):
        frame = Frame({"a": [1]})
        with pytest.raises(ColumnError):
            frame._add_column(frame.col("a"))


class TestAccess:
    def test_col_and_getitem(self, sample):
        assert list(sample["country"]) == ["DE", "FR", "US", "DE"]
        assert sample.col("rtt").mean() == pytest.approx(8.25)

    def test_missing_column(self, sample):
        with pytest.raises(ColumnError):
            sample.col("nope")

    def test_row(self, sample):
        assert sample.row(1) == {"country": "FR", "rtt": 9.0, "probe": 2}

    def test_row_negative_index(self, sample):
        assert sample.row(-1)["probe"] == 4

    def test_row_out_of_range(self, sample):
        with pytest.raises(FrameError):
            sample.row(4)

    def test_contains(self, sample):
        assert "rtt" in sample
        assert "nope" not in sample

    def test_to_records_round_trip(self, sample):
        rebuilt = Frame.from_records(sample.to_records())
        assert rebuilt == sample


class TestTransforms:
    def test_select(self, sample):
        projected = sample.select(["rtt", "country"])
        assert projected.columns == ("rtt", "country")

    def test_with_column_adds(self, sample):
        extended = sample.with_column("double", sample["rtt"] * 2)
        assert list(extended["double"]) == [10.0, 18.0, 24.0, 14.0]
        assert "double" not in sample  # original untouched

    def test_with_column_replaces(self, sample):
        replaced = sample.with_column("rtt", [0.0, 0.0, 0.0, 0.0])
        assert replaced.col("rtt").sum() == 0.0

    def test_rename(self, sample):
        renamed = sample.rename({"rtt": "latency"})
        assert "latency" in renamed
        assert "rtt" not in renamed

    def test_filter_mask(self, sample):
        fast = sample.filter(sample["rtt"] < 8.0)
        assert len(fast) == 2
        assert list(fast["country"]) == ["DE", "DE"]

    def test_filter_callable(self, sample):
        picked = sample.filter(lambda row: row["country"] == "US")
        assert len(picked) == 1

    def test_filter_bad_mask_dtype(self, sample):
        with pytest.raises(FrameError):
            sample.filter(np.asarray([1, 0, 1, 0]))

    def test_filter_bad_mask_length(self, sample):
        with pytest.raises(FrameError):
            sample.filter(np.asarray([True]))

    def test_sort_by(self, sample):
        ordered = sample.sort_by("rtt")
        assert list(ordered["rtt"]) == [5.0, 7.0, 9.0, 12.0]

    def test_sort_descending(self, sample):
        ordered = sample.sort_by("rtt", descending=True)
        assert list(ordered["rtt"]) == [12.0, 9.0, 7.0, 5.0]

    def test_sort_is_stable(self):
        frame = Frame({"k": [1, 1, 1], "tag": ["a", "b", "c"]})
        assert list(frame.sort_by("k")["tag"]) == ["a", "b", "c"]

    def test_head(self, sample):
        assert len(sample.head(2)) == 2
        assert len(sample.head(100)) == 4

    def test_take(self, sample):
        taken = sample.take([3, 0])
        assert list(taken["probe"]) == [4, 1]

    def test_map_column(self, sample):
        mapped = sample.map_column("country", str.lower)
        assert list(mapped["country"]) == ["de", "fr", "us", "de"]

    def test_map_column_new_name(self, sample):
        mapped = sample.map_column("rtt", lambda v: v * 1000, out="rtt_us")
        assert "rtt_us" in mapped
        assert "rtt" in mapped


class TestConcat:
    def test_concat(self, sample):
        merged = sample.concat(sample)
        assert len(merged) == 8

    def test_concat_empty_left(self, sample):
        assert Frame().concat(sample) == sample

    def test_concat_column_mismatch(self, sample):
        with pytest.raises(FrameError):
            sample.concat(Frame({"other": [1]}))

    def test_concat_all(self, sample):
        merged = Frame.concat_all([sample, sample, sample])
        assert len(merged) == 12
