"""Tests for repro.frame.columns."""

import numpy as np
import pytest

from repro.errors import ColumnError
from repro.frame.columns import Column, as_column_array


class TestAsColumnArray:
    def test_numeric_list(self):
        array = as_column_array([1, 2, 3])
        assert array.dtype.kind == "i"

    def test_float_list(self):
        array = as_column_array([1.5, 2.5])
        assert array.dtype.kind == "f"

    def test_strings_become_objects(self):
        array = as_column_array(["a", "bb", "ccc"])
        assert array.dtype == object

    def test_numpy_unicode_becomes_object(self):
        array = as_column_array(np.asarray(["x", "y"]))
        assert array.dtype == object

    def test_rejects_2d(self):
        with pytest.raises(ColumnError):
            as_column_array(np.zeros((2, 2)))


class TestColumnBasics:
    def test_name_required(self):
        with pytest.raises(ColumnError):
            Column("", [1])

    def test_len_iter_getitem(self):
        column = Column("x", [10, 20, 30])
        assert len(column) == 3
        assert list(column) == [10, 20, 30]
        assert column[1] == 20

    def test_equality(self):
        assert Column("x", [1, 2]) == Column("x", [1, 2])
        assert Column("x", [1, 2]) != Column("y", [1, 2])
        assert Column("x", [1, 2]) != Column("x", [1, 3])

    def test_is_numeric(self):
        assert Column("x", [1.0]).is_numeric
        assert not Column("x", ["a"]).is_numeric

    def test_repr_mentions_name(self):
        assert "x" in repr(Column("x", [1]))


class TestTransforms:
    def test_take(self):
        column = Column("x", [10, 20, 30]).take(np.asarray([2, 0]))
        assert list(column) == [30, 10]

    def test_mask(self):
        column = Column("x", [1, 2, 3]).mask(np.asarray([True, False, True]))
        assert list(column) == [1, 3]

    def test_mask_requires_boolean(self):
        with pytest.raises(ColumnError):
            Column("x", [1, 2]).mask(np.asarray([1, 0]))

    def test_mask_length_checked(self):
        with pytest.raises(ColumnError):
            Column("x", [1, 2]).mask(np.asarray([True]))

    def test_rename(self):
        assert Column("x", [1]).rename("y").name == "y"

    def test_concat(self):
        merged = Column("x", [1, 2]).concat(Column("x", [3]))
        assert list(merged) == [1, 2, 3]

    def test_concat_name_mismatch(self):
        with pytest.raises(ColumnError):
            Column("x", [1]).concat(Column("y", [2]))

    def test_concat_mixed_object(self):
        merged = Column("x", ["a"]).concat(Column("x", ["b"]))
        assert merged.values.dtype == object


class TestReductions:
    def test_basic_stats(self):
        column = Column("x", [1.0, 2.0, 3.0, 4.0])
        assert column.min() == 1.0
        assert column.max() == 4.0
        assert column.mean() == 2.5
        assert column.median() == 2.5
        assert column.sum() == 10.0
        assert column.std() == pytest.approx(np.std([1, 2, 3, 4]))

    def test_percentile(self):
        column = Column("x", list(range(101)))
        assert column.percentile(95) == pytest.approx(95.0)

    def test_percentile_range_checked(self):
        with pytest.raises(ColumnError):
            Column("x", [1]).percentile(101)

    def test_non_numeric_rejected(self):
        with pytest.raises(ColumnError):
            Column("x", ["a"]).mean()

    def test_unique_preserves_order(self):
        assert Column("x", ["b", "a", "b", "c"]).unique() == ["b", "a", "c"]

    def test_value_counts(self):
        counts = Column("x", ["a", "b", "a"]).value_counts()
        assert counts == {"a": 2, "b": 1}
