"""Tests for repro.frame.groupby."""

import numpy as np
import pytest

from repro.errors import FrameError
from repro.frame import Frame, aggregate, count_by, group_by, group_indices


@pytest.fixture
def samples() -> Frame:
    return Frame(
        {
            "continent": ["EU", "EU", "NA", "NA", "EU"],
            "provider": ["aws", "gcp", "aws", "aws", "aws"],
            "rtt": [10.0, 20.0, 30.0, 40.0, 50.0],
        }
    )


class TestGroupIndices:
    def test_single_key(self, samples):
        groups = group_indices(samples, ["continent"])
        assert list(groups) == ["EU", "NA"]
        assert list(groups["EU"]) == [0, 1, 4]

    def test_multi_key_uses_tuples(self, samples):
        groups = group_indices(samples, ["continent", "provider"])
        assert ("EU", "aws") in groups
        assert list(groups[("EU", "aws")]) == [0, 4]

    def test_requires_keys(self, samples):
        with pytest.raises(FrameError):
            group_indices(samples, [])


class TestGroupBy:
    def test_subframes(self, samples):
        groups = dict(group_by(samples, ["continent"]))
        assert len(groups["NA"]) == 2
        assert groups["NA"].col("rtt").mean() == 35.0


class TestAggregate:
    def test_named_reducers(self, samples):
        result = aggregate(
            samples,
            ["continent"],
            {
                "rtt_min": ("rtt", "min"),
                "rtt_mean": ("rtt", "mean"),
                "n": ("rtt", "count"),
            },
        )
        eu = result.filter(result["continent"] == "EU")
        assert eu.row(0)["rtt_min"] == 10.0
        assert eu.row(0)["rtt_mean"] == pytest.approx(80 / 3)
        assert eu.row(0)["n"] == 3

    def test_callable_reducer(self, samples):
        result = aggregate(
            samples, ["continent"], {"spread": ("rtt", lambda v: float(np.ptp(v)))}
        )
        assert result.filter(result["continent"] == "NA").row(0)["spread"] == 10.0

    def test_percentile_reducers(self, samples):
        result = aggregate(samples, ["continent"], {"p75": ("rtt", "p75")})
        assert "p75" in result

    def test_unknown_reducer(self, samples):
        with pytest.raises(FrameError):
            aggregate(samples, ["continent"], {"x": ("rtt", "p50!!")})

    def test_output_collides_with_key(self, samples):
        with pytest.raises(FrameError):
            aggregate(samples, ["continent"], {"continent": ("rtt", "min")})

    def test_multi_key(self, samples):
        result = aggregate(
            samples, ["continent", "provider"], {"n": ("rtt", "count")}
        )
        assert len(result) == 3  # (EU, aws), (EU, gcp), (NA, aws)


class TestCountBy:
    def test_counts(self, samples):
        counts = count_by(samples, "provider")
        aws = counts.filter(counts["provider"] == "aws")
        assert aws.row(0)["count"] == 4
