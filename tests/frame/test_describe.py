"""Tests for Frame.describe and Frame.to_markdown."""

import pytest

from repro.errors import FrameError
from repro.frame import Frame


@pytest.fixture
def sample() -> Frame:
    return Frame(
        {
            "country": ["DE", "FR", "US"],
            "rtt": [5.0, 9.0, 13.0],
            "probes": [420, 290, 330],
        }
    )


class TestDescribe:
    def test_numeric_columns_only(self, sample):
        described = sample.describe()
        assert described.columns == ("stat", "rtt", "probes")

    def test_values(self, sample):
        described = sample.describe()
        by_stat = {row["stat"]: row for row in described.iter_rows()}
        assert by_stat["count"]["rtt"] == 3.0
        assert by_stat["mean"]["rtt"] == pytest.approx(9.0)
        assert by_stat["min"]["probes"] == 290.0
        assert by_stat["max"]["probes"] == 420.0
        assert by_stat["median"]["rtt"] == 9.0

    def test_no_numeric_rejected(self):
        with pytest.raises(FrameError):
            Frame({"a": ["x", "y"]}).describe()


class TestToMarkdown:
    def test_structure(self, sample):
        text = sample.to_markdown()
        lines = text.splitlines()
        assert lines[0] == "| country | rtt | probes |"
        assert lines[1] == "|---|---|---|"
        assert len(lines) == 5

    def test_float_formatting(self, sample):
        text = sample.to_markdown(float_fmt="{:.1f}")
        assert "| DE | 5.0 | 420 |" in text

    def test_truncation(self):
        frame = Frame({"x": list(range(100))})
        text = frame.to_markdown(max_rows=3)
        assert "..." in text
        assert len(text.splitlines()) == 6
