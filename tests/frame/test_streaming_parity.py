"""The streaming-reducer parity property suite.

Every reducer in :mod:`repro.frame.streaming` must equal its in-memory
counterpart on the concatenated rows — *invariant to chunk boundaries
and merge order* — under the parity class documented in the module:

* exact: count, min, max, ECDF grid counts, group keys/order/counts;
* float-associative: sum, mean, std (``np.isclose`` tolerance);
* rank-bounded: digest quantiles land between the exact quantiles at
  ``q - eps`` and ``q + eps`` with ``eps = digest_rank_eps(compression)``.

Hypothesis drives random row streams, random chunkings of the same
stream, and random merge trees.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameError
from repro.frame import Frame, aggregate, aggregate_chunks, ecdf, summarize
from repro.frame.streaming import (
    QuantileDigest,
    StreamingECDF,
    StreamingGroupBy,
    StreamingSummary,
    digest_rank_eps,
    reduce_chunks,
)

values_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64),
    min_size=1,
    max_size=400,
)


def chunked(values, boundaries):
    """Split ``values`` at the (sorted, deduplicated) boundary indices."""
    array = np.asarray(values, dtype=np.float64)
    cuts = sorted({min(b, len(array)) for b in boundaries})
    return [part for part in np.split(array, cuts)]


chunking_strategy = st.lists(
    st.integers(min_value=0, max_value=400), max_size=8
)


class TestStreamingSummaryParity:
    @given(values_strategy, chunking_strategy)
    @settings(max_examples=150, deadline=None)
    def test_matches_in_memory_regardless_of_chunking(self, values, cuts):
        array = np.asarray(values, dtype=np.float64)
        streaming = StreamingSummary()
        for chunk in chunked(array, cuts):
            streaming.update(chunk)
        expected = summarize(array)
        result = streaming.result()
        # Exact class.
        assert result.count == expected.count
        assert result.minimum == expected.minimum
        assert result.maximum == expected.maximum
        # Float-associative class.
        assert np.isclose(result.mean, expected.mean, rtol=1e-6, atol=1e-9)
        assert np.isclose(result.std, expected.std, rtol=1e-6, atol=1e-6)
        assert np.isclose(
            streaming.sum, float(np.sum(array)), rtol=1e-6, atol=1e-6
        )

    @given(values_strategy, chunking_strategy, st.integers(0, 6))
    @settings(max_examples=100, deadline=None)
    def test_merge_order_invariance(self, values, cuts, rotation):
        """A merge tree over rotated chunk order: exact fields agree
        with the linear fold bit for bit."""
        array = np.asarray(values, dtype=np.float64)
        chunks = chunked(array, cuts)
        chunks = chunks[rotation % len(chunks):] + chunks[: rotation % len(chunks)]
        partials = []
        for chunk in chunks:
            partial = StreamingSummary()
            partial.update(chunk)
            partials.append(partial)
        # Pairwise merge tree.
        while len(partials) > 1:
            merged = []
            for i in range(0, len(partials) - 1, 2):
                merged.append(partials[i].merge(partials[i + 1]))
            if len(partials) % 2:
                merged.append(partials[-1])
            partials = merged
        combined = partials[0]
        assert combined.count == len(array)
        assert combined.minimum == float(np.min(array))
        assert combined.maximum == float(np.max(array))
        assert np.isclose(
            combined.mean, float(np.mean(array)), rtol=1e-6, atol=1e-9
        )
        assert np.isclose(
            combined.std, float(np.std(array)), rtol=1e-6, atol=1e-6
        )

    def test_empty_stream_raises_like_summarize(self):
        streaming = StreamingSummary()
        with pytest.raises(FrameError):
            streaming.result()
        with pytest.raises(FrameError):
            streaming.mean

    def test_nan_poisons_min_max_mean_like_numpy(self):
        streaming = StreamingSummary()
        streaming.update([1.0, math.nan, 3.0])
        assert math.isnan(streaming.minimum)
        assert math.isnan(streaming.maximum)
        assert math.isnan(streaming.mean)
        expected = summarize([1.0, math.nan, 3.0])
        assert math.isnan(expected.minimum)  # same contract in-memory

    def test_state_round_trip(self):
        streaming = StreamingSummary()
        streaming.update([1.0, 2.0, math.inf])
        revived = StreamingSummary.from_state(streaming.state())
        assert revived.count == streaming.count
        assert revived.maximum == math.inf
        assert revived.minimum == 1.0


class TestQuantileDigestBounds:
    @given(
        values_strategy,
        chunking_strategy,
        st.floats(min_value=0.01, max_value=0.99),
        st.sampled_from([50, 100, 200]),
    )
    @settings(max_examples=150, deadline=None)
    def test_rank_error_within_documented_bound(
        self, values, cuts, q, compression
    ):
        array = np.asarray(values, dtype=np.float64)
        digest = QuantileDigest(compression=compression)
        for chunk in chunked(array, cuts):
            digest.update(chunk)
        estimate = digest.quantile(q)
        eps = digest.rank_eps()
        assert eps == digest_rank_eps(compression, len(array))
        exact = ecdf(array)
        lo = exact.quantile(max(0.0, q - eps))
        hi = exact.quantile(min(1.0, q + eps))
        assert lo <= estimate <= hi

    @given(values_strategy)
    @settings(max_examples=100, deadline=None)
    def test_extremes_are_exact(self, values):
        array = np.asarray(values, dtype=np.float64)
        digest = QuantileDigest(compression=50)
        digest.update(array)
        assert digest.quantile(0.0) == float(np.min(array))
        assert digest.quantile(1.0) == float(np.max(array))

    def test_single_sample_every_q(self):
        digest = QuantileDigest()
        digest.update([42.0])
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert digest.quantile(q) == 42.0

    def test_empty_raises(self):
        with pytest.raises(FrameError):
            QuantileDigest().quantile(0.5)

    @given(values_strategy, st.integers(2, 5))
    @settings(max_examples=60, deadline=None)
    def test_merge_stays_within_bound(self, values, parts):
        array = np.asarray(values, dtype=np.float64)
        digests = []
        for chunk in np.array_split(array, parts):
            digest = QuantileDigest(compression=100)
            digest.update(chunk)
            digests.append(digest)
        merged = digests[0]
        for other in digests[1:]:
            merged = merged.merge(other)
        assert merged.count == len(array)
        eps = merged.rank_eps()
        exact = ecdf(array)
        for q in (0.1, 0.5, 0.9):
            estimate = merged.quantile(q)
            assert exact.quantile(max(0.0, q - eps)) <= estimate
            assert estimate <= exact.quantile(min(1.0, q + eps))

    def test_subnormal_neighbours_do_not_cancel_to_zero(self):
        # Regression: with a centroid mean below one ULP of its neighbour,
        # the one-sided lerp a + (b - a) * frac collapsed to a + (-a) = 0.0
        # at frac == 1.0, overshooting the rank bound. The two-sided form
        # must return the centroid mean exactly.
        values = [0.0, -1.0, -1.0, -1.0, -5.65e-219, -5.65e-219, -8.7e-226]
        digests = []
        for chunk in np.array_split(np.asarray(values, dtype=np.float64), 2):
            digest = QuantileDigest(compression=100)
            digest.update(chunk)
            digests.append(digest)
        merged = digests[0].merge(digests[1])
        assert merged.quantile(0.5) == -5.65e-219

    def test_equal_endpoint_lerp_is_exact_to_the_ulp(self):
        # Regression: the two-sided lerp m*(1-f) + m*f rounds one ULP off
        # m; interpolating between equal centroid means must return the
        # mean bit-exactly or rank bounds fail on denormal-only data.
        m = -1.1163929638093614e-125
        digest = QuantileDigest(compression=50)
        digest.update(np.asarray([0.0, 0.0, m, m, m]))
        assert digest.quantile(0.03168444870336961) == m

    def test_state_round_trip_preserves_quantiles(self):
        digest = QuantileDigest(compression=100)
        digest.update(np.linspace(0, 100, 5000))
        revived = QuantileDigest.from_state(digest.state())
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert revived.quantile(q) == digest.quantile(q)


class TestStreamingECDFParity:
    @given(values_strategy, chunking_strategy, st.integers(1, 64))
    @settings(max_examples=150, deadline=None)
    def test_grid_fractions_exactly_match_in_memory(self, values, cuts, bins):
        array = np.asarray(values, dtype=np.float64)
        grid = StreamingECDF.from_range(
            float(np.min(array)), float(np.max(array)), bins=bins
        )
        for chunk in chunked(array, cuts):
            grid.update(chunk)
        exact = ecdf(array)
        for edge in grid.edges:
            assert grid.fraction_below(edge) == exact.fraction_below(edge)

    def test_sub_ulp_range_collapses_duplicate_edges(self):
        # Regression: a [lo, hi] range spanning fewer representable
        # floats than bins makes linspace repeat edges; from_range must
        # dedupe instead of rejecting its own grid.
        grid = StreamingECDF.from_range(0.0, 5e-324, bins=4)
        assert np.all(np.diff(grid.edges) > 0)
        grid.update(np.asarray([0.0, 5e-324]))
        exact = ecdf(np.asarray([0.0, 5e-324]))
        for edge in grid.edges:
            assert grid.fraction_below(edge) == exact.fraction_below(edge)

    @given(values_strategy, chunking_strategy, chunking_strategy)
    @settings(max_examples=100, deadline=None)
    def test_chunking_invariance_is_bitwise(self, values, cuts_a, cuts_b):
        array = np.asarray(values, dtype=np.float64)
        lo, hi = float(np.min(array)), float(np.max(array))
        grid_a = StreamingECDF.from_range(lo, hi, bins=32)
        grid_b = StreamingECDF.from_range(lo, hi, bins=32)
        for chunk in chunked(array, cuts_a):
            grid_a.update(chunk)
        for chunk in chunked(array, cuts_b):
            grid_b.update(chunk)
        assert np.array_equal(grid_a.counts, grid_b.counts)
        assert grid_a.total == grid_b.total

    @given(values_strategy, st.integers(2, 5))
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_single_pass(self, values, parts):
        array = np.asarray(values, dtype=np.float64)
        lo, hi = float(np.min(array)), float(np.max(array))
        whole = StreamingECDF.from_range(lo, hi, bins=32)
        whole.update(array)
        pieces = []
        for chunk in np.array_split(array, parts):
            piece = StreamingECDF.from_range(lo, hi, bins=32)
            piece.update(chunk)
            pieces.append(piece)
        merged = pieces[0]
        for piece in pieces[1:]:
            merged = merged.merge(piece)
        assert np.array_equal(merged.counts, whole.counts)

    def test_nan_counts_toward_denominator_like_in_memory(self):
        values = [1.0, 2.0, math.nan, 4.0]
        grid = StreamingECDF(np.asarray([1.0, 2.0, 4.0]))
        grid.update(values)
        exact = ecdf(values)
        for edge in (1.0, 2.0, 4.0):
            assert grid.fraction_below(edge) == exact.fraction_below(edge)

    def test_mismatched_grids_refuse_to_merge(self):
        a = StreamingECDF(np.asarray([1.0, 2.0]))
        b = StreamingECDF(np.asarray([1.0, 3.0]))
        with pytest.raises(FrameError):
            a.merge(b)

    def test_result_is_a_real_ecdf(self):
        grid = StreamingECDF.from_range(0.0, 10.0, bins=11)
        grid.update(np.linspace(0, 10, 100))
        curve = grid.result()
        assert curve.p[-1] == 1.0
        assert curve.quantile(0.5) <= 10.0

    def test_degenerate_range_single_edge(self):
        grid = StreamingECDF.from_range(5.0, 5.0, bins=32)
        grid.update([5.0, 5.0, 5.0])
        assert grid.fraction_below(5.0) == 1.0


keys_strategy = st.lists(
    st.sampled_from(["ams", "fra", "gru", "iad", "sin"]),
    min_size=1,
    max_size=300,
)


class TestStreamingGroupByParity:
    @given(keys_strategy, chunking_strategy)
    @settings(max_examples=100, deadline=None)
    def test_matches_aggregate_exact_fields(self, keys, cuts):
        rng = np.random.default_rng(len(keys))
        values = rng.normal(50.0, 10.0, len(keys))
        frame = Frame({"site": keys, "rtt": values})
        spec = {
            "n": ("rtt", "count"),
            "lo": ("rtt", "min"),
            "hi": ("rtt", "max"),
            "avg": ("rtt", "mean"),
        }
        expected = aggregate(frame, ["site"], spec)
        cut_points = sorted({min(c, len(keys)) for c in cuts})
        key_chunks = np.split(np.asarray(keys, dtype=object), cut_points)
        val_chunks = np.split(values, cut_points)
        result = aggregate_chunks(
            (
                {"site": k, "rtt": v}
                for k, v in zip(key_chunks, val_chunks)
            ),
            ["site"],
            spec,
        )
        # Exact: group set, insertion order, counts, min, max.
        assert list(result.col("site").values) == list(
            expected.col("site").values
        )
        assert list(result.col("n").values) == list(expected.col("n").values)
        assert list(result.col("lo").values) == list(
            expected.col("lo").values
        )
        assert list(result.col("hi").values) == list(
            expected.col("hi").values
        )
        # Float-associative: mean.
        assert np.allclose(
            np.asarray(result.col("avg").values, dtype=np.float64),
            np.asarray(expected.col("avg").values, dtype=np.float64),
            rtol=1e-6,
        )

    @given(keys_strategy)
    @settings(max_examples=60, deadline=None)
    def test_group_quantiles_within_digest_bound(self, keys):
        rng = np.random.default_rng(7)
        values = rng.normal(50.0, 10.0, len(keys))
        frame = Frame({"site": keys, "rtt": values})
        engine = StreamingGroupBy(
            ["site"], {"med": ("rtt", "median")}, compression=100
        )
        engine.update({"site": np.asarray(keys, dtype=object), "rtt": values})
        result = engine.result()
        for site, med in zip(
            result.col("site").values, result.col("med").values
        ):
            group = values[np.asarray(keys, dtype=object) == site]
            eps = digest_rank_eps(100, len(group))
            exact = ecdf(group)
            assert exact.quantile(max(0.0, 0.5 - eps)) <= med
            assert med <= exact.quantile(min(1.0, 0.5 + eps))

    def test_multi_key_tuples_match_aggregate(self):
        frame = Frame(
            {
                "a": ["x", "x", "y", "y", "x"],
                "b": [1, 2, 1, 1, 1],
                "v": [10.0, 20.0, 30.0, 40.0, 50.0],
            }
        )
        spec = {"total": ("v", "sum"), "n": ("v", "count")}
        expected = aggregate(frame, ["a", "b"], spec)
        engine = StreamingGroupBy(["a", "b"], spec)
        engine.update(
            {
                "a": np.asarray(frame.col("a").values),
                "b": np.asarray(frame.col("b").values),
                "v": np.asarray(frame.col("v").values),
            }
        )
        result = engine.result()
        assert list(result.col("a").values) == list(expected.col("a").values)
        assert list(result.col("b").values) == list(expected.col("b").values)
        assert list(result.col("n").values) == list(expected.col("n").values)
        assert np.allclose(
            np.asarray(result.col("total").values, dtype=np.float64),
            np.asarray(expected.col("total").values, dtype=np.float64),
        )

    def test_merge_preserves_row_order_of_parts(self):
        spec = {"n": ("v", "count")}
        left = StreamingGroupBy(["k"], spec)
        left.update({"k": np.asarray(["a", "b"]), "v": np.asarray([1.0, 2.0])})
        right = StreamingGroupBy(["k"], spec)
        right.update(
            {"k": np.asarray(["b", "c"]), "v": np.asarray([3.0, 4.0])}
        )
        merged = left.merge(right)
        result = merged.result()
        assert list(result.col("k").values) == ["a", "b", "c"]
        assert list(result.col("n").values) == [1, 2, 1]

    def test_max_groups_is_enforced(self):
        engine = StreamingGroupBy(["k"], {"n": ("v", "count")}, max_groups=3)
        engine.update(
            {"k": np.arange(3), "v": np.zeros(3)}
        )
        with pytest.raises(FrameError):
            engine.update({"k": np.asarray([99]), "v": np.asarray([0.0])})

    def test_unknown_reducer_rejected_up_front(self):
        with pytest.raises(FrameError):
            StreamingGroupBy(["k"], {"x": ("v", "not_a_reducer")})

    def test_callable_reducers_are_rejected(self):
        with pytest.raises(FrameError):
            aggregate_chunks([], ["k"], {"x": ("v", np.mean)})


class TestReduceChunks:
    def test_drives_any_reducer_over_mappings(self):
        chunks = [
            {"rtt": np.asarray([1.0, 2.0])},
            {"rtt": np.asarray([3.0])},
        ]
        summary = reduce_chunks(iter(chunks), StreamingSummary(), column="rtt")
        assert summary.count == 3
        assert summary.maximum == 3.0

    def test_accepts_bare_arrays(self):
        summary = reduce_chunks(
            [np.asarray([1.0]), np.asarray([5.0])], StreamingSummary()
        )
        assert summary.count == 2
