"""Tests for Frame.join and Frame.pivot."""

import pytest

from repro.errors import FrameError
from repro.frame import Frame


@pytest.fixture
def samples() -> Frame:
    return Frame(
        {
            "country": ["DE", "FR", "XX", "DE"],
            "rtt": [5.0, 9.0, 50.0, 7.0],
        }
    )


@pytest.fixture
def metadata() -> Frame:
    return Frame(
        {
            "country": ["DE", "FR", "US"],
            "continent": ["EU", "EU", "NA"],
            "tier": [1, 1, 1],
        }
    )


class TestJoin:
    def test_inner_drops_unmatched(self, samples, metadata):
        joined = samples.join(metadata, on="country")
        assert len(joined) == 3  # XX dropped
        assert set(joined.columns) == {"country", "rtt", "continent", "tier"}
        assert list(joined["continent"]) == ["EU", "EU", "EU"]

    def test_left_keeps_unmatched(self, samples, metadata):
        joined = samples.join(metadata, on="country", how="left")
        assert len(joined) == 4
        row = joined.filter(joined["country"] == "XX").row(0)
        assert row["continent"] is None

    def test_duplicate_right_keys_rejected(self, samples):
        dupes = Frame({"country": ["DE", "DE"], "x": [1, 2]})
        with pytest.raises(FrameError):
            samples.join(dupes, on="country")

    def test_column_collision_rejected(self, samples):
        other = Frame({"country": ["DE"], "rtt": [1.0]})
        with pytest.raises(FrameError):
            samples.join(other, on="country")

    def test_unsupported_how(self, samples, metadata):
        with pytest.raises(FrameError):
            samples.join(metadata, on="country", how="outer")

    def test_values_aligned(self, samples, metadata):
        joined = samples.join(metadata, on="country")
        for row in joined.iter_rows():
            if row["country"] == "DE":
                assert row["continent"] == "EU"


class TestPivot:
    def test_long_to_wide(self):
        long = Frame(
            {
                "continent": ["EU", "EU", "AF", "AF"],
                "metric": ["median", "p95", "median", "p95"],
                "value": [10.0, 40.0, 110.0, 400.0],
            }
        )
        wide = long.pivot(index="continent", columns="metric", values="value")
        assert wide.columns == ("continent", "median", "p95")
        assert wide.filter(wide["continent"] == "AF").row(0)["p95"] == 400.0

    def test_missing_cells_filled(self):
        long = Frame(
            {
                "k": ["a", "b"],
                "c": ["x", "y"],
                "v": [1, 2],
            }
        )
        wide = long.pivot(index="k", columns="c", values="v", fill=0)
        assert wide.filter(wide["k"] == "a").row(0)["y"] == 0

    def test_duplicate_cells_rejected(self):
        long = Frame(
            {
                "k": ["a", "a"],
                "c": ["x", "x"],
                "v": [1, 2],
            }
        )
        with pytest.raises(FrameError):
            long.pivot(index="k", columns="c", values="v")

    def test_row_order_preserved(self):
        long = Frame(
            {
                "k": ["z", "a", "z"],
                "c": ["x", "x", "y"],
                "v": [1, 2, 3],
            }
        )
        wide = long.pivot(index="k", columns="c", values="v")
        assert list(wide["k"]) == ["z", "a"]
