"""Tests for repro.frame.stats — ECDF invariants are property-tested."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameError
from repro.frame.stats import ECDF, bucketize, ecdf, fraction_below, summarize

samples_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False), min_size=1, max_size=300
)


class TestECDFBasics:
    def test_simple(self):
        curve = ecdf([3.0, 1.0, 2.0])
        assert list(curve.x) == [1.0, 2.0, 3.0]
        assert list(curve.p) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        curve = ecdf([])
        assert len(curve) == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(FrameError):
            ECDF(np.asarray([1.0]), np.asarray([0.5, 1.0]))

    def test_fraction_below(self):
        curve = ecdf([1.0, 2.0, 3.0, 4.0])
        assert curve.fraction_below(0.5) == 0.0
        assert curve.fraction_below(2.0) == 0.5
        assert curve.fraction_below(100.0) == 1.0

    def test_fraction_below_empty_raises(self):
        with pytest.raises(FrameError):
            ecdf([]).fraction_below(1.0)

    def test_quantile(self):
        curve = ecdf(list(range(1, 101)))
        assert curve.quantile(0.5) == 50.0
        assert curve.quantile(0.0) == 1.0
        assert curve.quantile(1.0) == 100.0

    def test_quantile_bounds_checked(self):
        with pytest.raises(FrameError):
            ecdf([1.0]).quantile(1.5)
        with pytest.raises(FrameError):
            ecdf([1.0]).quantile(-0.1)

    def test_quantile_empty_raises(self):
        with pytest.raises(FrameError):
            ecdf([]).quantile(0.5)

    def test_quantile_extremes_despite_float_shortfall(self):
        """p can stop short of 1.0 in floating point (e.g. 49 * (1/49)
        < 1); q=1 must still return the sample maximum, and q=0 the
        minimum, never fall off the array."""
        values = list(range(49))
        curve = ecdf(values)
        assert curve.quantile(0.0) == 0.0
        assert curve.quantile(1.0) == 48.0

    def test_quantile_single_sample(self):
        curve = ecdf([7.5])
        for q in (0.0, 0.25, 0.5, 1.0):
            assert curve.quantile(q) == 7.5

    def test_sample_points_downsamples(self):
        curve = ecdf(list(range(1000)))
        sampled = curve.sample_points(50)
        assert len(sampled) == 50
        assert sampled.x[0] == curve.x[0]
        assert sampled.x[-1] == curve.x[-1]

    def test_sample_points_noop_when_small(self):
        curve = ecdf([1.0, 2.0])
        assert curve.sample_points(100) is curve

    def test_sample_points_one_keeps_curve_closure(self):
        """num=1 keeps the final (p = 1) point so the curve still
        closes, rather than dropping to an arbitrary interior point."""
        curve = ecdf(list(range(100)))
        sampled = curve.sample_points(1)
        assert len(sampled) == 1
        assert sampled.x[0] == curve.x[-1]
        assert sampled.p[0] == 1.0

    def test_sample_points_always_ends_at_one(self):
        curve = ecdf(list(range(997)))  # prime length: awkward stride
        for num in (2, 3, 7, 50):
            sampled = curve.sample_points(num)
            assert sampled.x[-1] == curve.x[-1]
            assert sampled.p[-1] == 1.0

    def test_sample_points_zero_rejected(self):
        with pytest.raises(FrameError):
            ecdf([1.0]).sample_points(0)


class TestECDFProperties:
    @given(samples_strategy)
    @settings(max_examples=100)
    def test_monotone(self, values):
        curve = ecdf(values)
        assert np.all(np.diff(curve.x) >= 0)
        assert np.all(np.diff(curve.p) >= 0)

    @given(samples_strategy)
    @settings(max_examples=100)
    def test_ends_at_one(self, values):
        curve = ecdf(values)
        assert curve.p[-1] == pytest.approx(1.0)

    @given(samples_strategy, st.floats(0, 1e4))
    @settings(max_examples=100)
    def test_fraction_matches_direct_count(self, values, threshold):
        curve = ecdf(values)
        direct = sum(1 for v in values if v <= threshold) / len(values)
        assert curve.fraction_below(threshold) == pytest.approx(direct)

    @given(samples_strategy, st.floats(0.01, 0.99))
    @settings(max_examples=100)
    def test_quantile_fraction_round_trip(self, values, q):
        curve = ecdf(values)
        x = curve.quantile(q)
        assert curve.fraction_below(x) >= q - 1e-9

    @given(samples_strategy)
    @settings(max_examples=100)
    def test_quantile_extremes_are_min_and_max(self, values):
        curve = ecdf(values)
        assert curve.quantile(0.0) == min(values)
        assert curve.quantile(1.0) == max(values)

    @given(samples_strategy, st.integers(min_value=1, max_value=20))
    @settings(max_examples=100)
    def test_sample_points_is_a_sub_ecdf(self, values, num):
        curve = ecdf(values)
        sampled = curve.sample_points(num)
        assert len(sampled) <= max(num, len(curve))
        assert set(sampled.x).issubset(set(curve.x))
        assert sampled.p[-1] == curve.p[-1]


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 100.0])
        assert summary.count == 5
        assert summary.minimum == 1.0
        assert summary.maximum == 100.0
        assert summary.median == 3.0
        assert summary.mean == pytest.approx(22.0)

    def test_empty_raises(self):
        with pytest.raises(FrameError):
            summarize([])

    def test_as_dict_keys(self):
        keys = set(summarize([1.0]).as_dict())
        assert keys == {
            "count", "min", "p25", "median", "p75", "p95", "max", "mean", "std",
        }


class TestFractionBelow:
    def test_basic(self):
        assert fraction_below([1, 2, 3, 4], 2) == 0.5

    def test_empty_raises(self):
        with pytest.raises(FrameError):
            fraction_below([], 1.0)


class TestBucketize:
    def test_paper_buckets(self):
        counts = bucketize([5, 15, 30, 70, 200], [10, 20, 50, 100])
        assert counts == (1, 1, 1, 1, 1)

    def test_boundary_inclusive(self):
        assert bucketize([10.0], [10, 20]) == (1, 0, 0)

    def test_overflow_bucket(self):
        assert bucketize([999], [10]) == (0, 1)

    def test_unsorted_edges_rejected(self):
        with pytest.raises(FrameError):
            bucketize([1], [20, 10])

    @given(samples_strategy)
    @settings(max_examples=50)
    def test_counts_sum_to_n(self, values):
        counts = bucketize(values, [10, 100, 1000])
        assert sum(counts) == len(values)
