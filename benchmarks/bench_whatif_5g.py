"""Extension bench: the 5G what-if table (paper §5).

Recomputes the feasibility zone under hypothetical wireless floors.
Shape targets: early measured 5G rescues nothing; only the IMT-2020
marketing number (1 ms) pulls AR/VR and autonomous vehicles into the
zone — which is exactly why the paper calls those promises "waiting to
be delivered".
"""

from conftest import print_banner

from repro.apps.feasibility import Verdict
from repro.core.whatif import (
    SCENARIOS,
    rescued_market_busd,
    scenario_report,
    scenario_verdicts,
    verdict_changes,
)


def test_whatif_5g(benchmark):
    report = benchmark(scenario_report)

    print_banner("What-if: feasibility zone under future last-mile floors")
    print(f"{'scenario':16s} {'floor ms':>9s} {'apps in zone':>13s} "
          f"{'rescued market B$':>18s}")
    for name in SCENARIOS:
        row = report[name]
        print(f"{name:16s} {row['wireless_floor_ms']:>9.1f} "
              f"{row['apps_in_zone']:>13d} {row['rescued_market_busd']:>18.0f}")
    print("\nverdict changes under promised (1 ms) 5G:")
    for change in verdict_changes("5g-promised"):
        print(f"  {change.slug:24s} {change.baseline.name} -> {change.scenario.name}")

    # Shape targets.
    measured = scenario_verdicts("5g-measured")
    promised = scenario_verdicts("5g-promised")
    assert measured["ar-vr"] is not Verdict.IN_ZONE
    assert promised["ar-vr"] is Verdict.IN_ZONE
    assert promised["autonomous-vehicles"] is Verdict.IN_ZONE
    assert rescued_market_busd("5g-promised") > 500.0
    assert rescued_market_busd("5g-measured") == 0.0
    assert (
        report["lte-today"]["apps_in_zone"]
        <= report["wireless-2020"]["apps_in_zone"]
        <= report["5g-promised"]["apps_in_zone"]
    )
