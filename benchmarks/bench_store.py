"""Persistent store — collect-once/analyze-many speedup and parity.

A MEDIUM (paper-scale, ~3.2M-sample) campaign is collected once into a
catalog store, then reopened from disk.  The reopened dataset must
fingerprint byte-identically to the collected one, and the store open —
full checksum verification included — must beat re-collection by at
least a 20x floor: that ratio is the whole point of persisting, and it
is a property of "mmap beats re-synthesis", not of core count, so it is
asserted on every machine.  Measurements land in ``BENCH_store.json``
for the CI artifact.
"""

import json
import os
import time
from pathlib import Path

from conftest import print_banner

from repro.core.campaign import Campaign, CampaignScale
from repro.store import CampaignCatalog, StoreReader

BENCH_SEED = 7

#: All frozen sample columns, in schema order (matches the parity suite).
SAMPLE_COLUMNS = (
    "probe_id", "target_index", "timestamp",
    "rtt_min", "rtt_avg", "sent", "rcvd",
)

#: Acceptance floor: opening the committed store (with full checksum
#: verification) must beat re-collecting the campaign by this factor.
SPEEDUP_FLOOR = 20.0

ARTIFACT = Path(os.environ.get("REPRO_BENCH_ARTIFACT", "BENCH_store.json"))


def _fingerprint(dataset) -> bytes:
    return b"".join(dataset.column(name).tobytes() for name in SAMPLE_COLUMNS)


def _open_store(catalog_root, fingerprint, probes, targets, verify):
    """Open + verify one store entry and materialize every column.

    The probe/target tables are passed in (an analysis session builds
    its platform once, not per open), so the timing isolates what the
    store adds: manifest load, checksum verification, memmap, dataset
    reconstruction, and a full page-touch of every column.  Returns the
    dataset fingerprint — computed outside the timed window, so the
    parity check's extra copy of every column is not billed to the open
    — and the elapsed seconds; the dataset itself is released so one
    open's arrays never distort the next one's allocations.
    """
    catalog = CampaignCatalog(catalog_root, verify=verify)
    start = time.perf_counter()
    reader = catalog.open(fingerprint)
    dataset = reader.dataset(probes, targets)
    for name in SAMPLE_COLUMNS:
        dataset.column(name).sum()  # fault in every mapped page
    elapsed = time.perf_counter() - start
    return _fingerprint(dataset), elapsed


def test_store_open_speedup(benchmark, tmp_path):
    """Cold collection vs store reopen of the same MEDIUM campaign."""
    from repro.store.catalog import campaign_fingerprint, campaign_provenance

    # Untimed warm-up on a throwaway campaign: imports, route caches.
    Campaign.from_paper(scale=CampaignScale.TINY, seed=BENCH_SEED).run()

    catalog_root = tmp_path / "catalog"
    campaign = Campaign.from_paper(scale=CampaignScale.MEDIUM, seed=BENCH_SEED)
    probes, targets = campaign.platform.probes, campaign.platform.fleet
    start = time.perf_counter()
    collected = campaign.run(store=catalog_root)
    collect_s = time.perf_counter() - start
    collected_fp = _fingerprint(collected)
    entry = campaign_fingerprint(campaign_provenance(campaign))

    store_bytes = sum(
        p.stat().st_size for p in (catalog_root / entry).iterdir()
    )

    args = (catalog_root, entry, probes, targets)
    _open_store(*args, "full")  # warm the page cache
    full_fp, full_s = _open_store(*args, "full")
    full_s = benchmark.pedantic(
        lambda: _open_store(*args, "full")[1], rounds=1, iterations=1
    )
    sampled_fp, sampled_s = _open_store(*args, "sampled")

    identical = collected_fp == full_fp == sampled_fp
    speedup = collect_s / full_s

    print_banner(
        f"Persistent store: MEDIUM {len(collected):,} samples, "
        f"{store_bytes / 1e6:.1f} MB on disk"
    )
    print(f"{'path':>26s} {'wall':>9s} {'speedup':>8s}")
    print("-" * 46)
    print(f"{'collect (store miss)':>26s} {collect_s:>8.2f}s {1.0:>7.2f}x")
    print(f"{'open (verify=full)':>26s} {full_s:>8.2f}s {speedup:>7.2f}x")
    print(f"{'open (verify=sampled)':>26s} {sampled_s:>8.2f}s "
          f"{collect_s / sampled_s:>7.2f}x")
    print(f"byte-identical: {'yes' if identical else 'NO'}")

    ARTIFACT.write_text(json.dumps({
        "seed": BENCH_SEED,
        "cpus": os.cpu_count(),
        "medium_samples": len(collected),
        "store_bytes": store_bytes,
        "collect_s": round(collect_s, 3),
        "open_full_s": round(full_s, 3),
        "open_sampled_s": round(sampled_s, 3),
        "open_speedup": round(speedup, 2),
        "byte_identical": identical,
        "speedup_floor": SPEEDUP_FLOOR,
    }, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")

    assert identical, "store-reopened MEDIUM dataset diverged from collection"
    assert speedup >= SPEEDUP_FLOOR, (
        f"store open speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )
