"""Ablation: vantage-point density bias.

RIPE Atlas is Europe-heavy, and Figure 5's framing ("~50 % of our total
probes reach the cloud within MTP") inherits that bias.  This ablation
compares the proportional sample (platform-faithful) against a
one-probe-per-country sample (uniform country weighting): under uniform
weighting the global picture looks markedly worse, documenting why the
paper's claims must be read against the platform's footprint.
"""

from conftest import print_banner

from repro.constants import MTP_MS
from repro.core.proximity import min_rtt_cdf_by_continent


def _global_share_under(cdfs, threshold):
    total = sum(len(cdf) for cdf in cdfs.values())
    fast = sum(len(cdf) * cdf.fraction_below(threshold) for cdf in cdfs.values())
    return fast / total


def test_ablation_density_bias(small_dataset, tiny_dataset, benchmark):
    proportional = benchmark.pedantic(
        lambda: min_rtt_cdf_by_continent(small_dataset), rounds=2, iterations=1
    )
    uniform = min_rtt_cdf_by_continent(tiny_dataset)

    share_proportional = _global_share_under(proportional, MTP_MS)
    share_uniform = _global_share_under(uniform, MTP_MS)

    print_banner("Ablation: probe density bias (global share under MTP)")
    print(f"proportional (Atlas-faithful) : {share_proportional:.0%} of probes < MTP")
    print(f"uniform (1 probe/country)     : {share_uniform:.0%} of probes < MTP")
    print("\nper-continent probe counts:")
    for continent in ("NA", "EU", "OC", "AS", "SA", "AF"):
        print(f"  {continent}: proportional={len(proportional[continent]):4d}  "
              f"uniform={len(uniform[continent]):4d}")

    # The EU-heavy sample looks substantially better globally: vantage
    # bias inflates the 'half the world is near the cloud' reading.
    assert share_proportional > share_uniform + 0.08
    # Within-continent results stay consistent across weightings.
    assert proportional["EU"].fraction_below(MTP_MS) >= 0.6
    assert uniform["AF"].fraction_below(MTP_MS) <= 0.4
