"""Ablation: domestic path-inflation factors.

DESIGN.md calls out path inflation as a key modelling choice: the factor
by which national fiber routes exceed the great circle.  Collapsing it to
1.0 (perfectly straight fiber) makes eastern Europe and Latin America
unrealistically fast, shifting Figure 4's bucket counts; raising it
degrades everything.  This ablation quantifies the sensitivity.
"""

import pytest
from conftest import print_banner

from repro.core.campaign import Campaign, CampaignScale
from repro.core.proximity import bucket_counts, country_min_latency
from repro.net import topology


@pytest.fixture(scope="module")
def inflation_sweep():
    """Run TINY campaigns with scaled domestic inflation."""
    baseline = dict(topology.DOMESTIC_INFLATION)
    results = {}
    try:
        for factor in (0.55, 1.0, 1.4):
            for tier, value in baseline.items():
                # Scale the stretch component (value - 1), keep >= 1.0.
                topology.DOMESTIC_INFLATION[tier] = 1.0 + (value - 1.0) * factor
            dataset = Campaign.from_paper(scale=CampaignScale.TINY, seed=41).run()
            results[factor] = bucket_counts(country_min_latency(dataset))
    finally:
        topology.DOMESTIC_INFLATION.update(baseline)
    return results


def test_ablation_path_inflation(inflation_sweep, benchmark):
    benchmark.pedantic(lambda: dict(inflation_sweep), rounds=1, iterations=1)

    print_banner("Ablation: domestic path inflation (Figure 4 buckets)")
    print(f"{'inflation scale':>16s}  {'<10ms':>6s}  {'10-20':>6s}  "
          f"{'20-50':>6s}  {'50-100':>7s}  {'>100':>5s}")
    for factor, counts in sorted(inflation_sweep.items()):
        print(f"{factor:>16.2f}  {counts['<10 ms']:>6d}  "
              f"{counts['10-20 ms']:>6d}  {counts['20-50 ms']:>6d}  "
              f"{counts['50-100 ms']:>7d}  {counts['>100 ms']:>5d}")

    # Straighter fiber -> more fast countries; more stretch -> fewer.
    assert inflation_sweep[0.55]["<10 ms"] >= inflation_sweep[1.0]["<10 ms"]
    assert inflation_sweep[1.4]["<10 ms"] <= inflation_sweep[1.0]["<10 ms"]
    # And the >PL tail grows with inflation.
    assert inflation_sweep[1.4][">100 ms"] >= inflation_sweep[0.55][">100 ms"]
