"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's figures (or the
in-text headline table T1): it times the analysis step with
pytest-benchmark and prints the same rows/series the paper reports, so a
run of ``pytest benchmarks/ --benchmark-only`` doubles as a full
reproduction report.

The campaign datasets are generated once per session and shared; only the
analysis functions are timed.
"""

from __future__ import annotations

import pytest

from repro.core.campaign import Campaign, CampaignScale
from repro.core.dataset import CampaignDataset

BENCH_SEED = 7


@pytest.fixture(scope="session")
def tiny_dataset() -> CampaignDataset:
    return Campaign.from_paper(scale=CampaignScale.TINY, seed=BENCH_SEED).run()


@pytest.fixture(scope="session")
def small_dataset() -> CampaignDataset:
    """The reproduction-quality dataset (~275 k samples, ~20 s to build)."""
    return Campaign.from_paper(scale=CampaignScale.SMALL, seed=BENCH_SEED).run()


def print_banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)
