"""Parallel collection — speedup and byte-parity on one table.

A SMALL campaign is collected serially and with 2, 4, and 8 workers;
each parallel run's frozen dataset must fingerprint byte-identically to
the serial baseline, and the wall-clock table shows what the sharded
engine buys.  The >=2.5x-at-4-workers assertion only fires on machines
with at least 4 CPUs — on fewer cores the workers time-slice one another
and the table documents overhead instead of speedup.
"""

import os
import time

from conftest import print_banner

from repro.core.campaign import Campaign, CampaignScale

BENCH_SEED = 7

#: All frozen sample columns, in schema order (matches the parity suite).
SAMPLE_COLUMNS = (
    "probe_id", "target_index", "timestamp",
    "rtt_min", "rtt_avg", "sent", "rcvd",
)

WORKER_COUNTS = (2, 4, 8)

#: Acceptance floor for 4 workers — only meaningful with >= 4 real CPUs.
SPEEDUP_FLOOR = 2.5


def _fingerprint(dataset) -> bytes:
    return b"".join(dataset.column(name).tobytes() for name in SAMPLE_COLUMNS)


def _collect(workers=None):
    campaign = Campaign.from_paper(scale=CampaignScale.SMALL, seed=BENCH_SEED)
    campaign.create_measurements()
    start = time.perf_counter()
    dataset = campaign.collect(workers=workers)
    return dataset, time.perf_counter() - start


def test_parallel_speedup(benchmark):
    """Serial vs 2/4/8-worker collection of the same SMALL campaign."""
    cpus = os.cpu_count() or 1

    # Untimed warm-up run: fills OS caches and takes the one-time costs
    # (imports, fleet construction) out of the comparison.
    _collect()

    baseline, serial_s = _collect()
    serial_s = benchmark.pedantic(
        lambda: _collect()[1], rounds=1, iterations=1
    )

    rows = []
    for workers in WORKER_COUNTS:
        dataset, elapsed = _collect(workers=workers)
        identical = _fingerprint(dataset) == _fingerprint(baseline)
        rows.append((workers, elapsed, serial_s / elapsed, identical))

    print_banner(f"Parallel collection: SMALL campaign, {cpus} CPU(s)")
    print(f"{'workers':>8s} {'wall':>8s} {'speedup':>8s} {'byte-identical':>15s}")
    print("-" * 44)
    print(f"{'serial':>8s} {serial_s:>7.2f}s {1.0:>7.2f}x {'(baseline)':>15s}")
    for workers, elapsed, speedup, identical in rows:
        print(f"{workers:>8d} {elapsed:>7.2f}s {speedup:>7.2f}x "
              f"{'yes' if identical else 'NO':>15s}")

    # Parity holds at every worker count, on every machine.
    assert all(identical for *_, identical in rows)

    speedup_at_4 = next(s for w, _, s, _ in rows if w == 4)
    if cpus >= 4:
        assert speedup_at_4 >= SPEEDUP_FLOOR, (
            f"4-worker speedup {speedup_at_4:.2f}x below the "
            f"{SPEEDUP_FLOOR}x floor on a {cpus}-CPU machine"
        )
    else:
        print(f"\n{cpus} CPU(s): speedup floor not asserted "
              f"(needs >= 4; measured {speedup_at_4:.2f}x)")
