"""Ablation: private-backbone advantage.

Hyperscalers enter the ISP edge through private backbones; Digital Ocean,
Linode and Vultr ride the public Internet.  The model grants private
backbones a modest path/peering discount — this ablation verifies the
effect is visible in per-provider medians but small enough that the
paper's conclusions hold for every provider (as the paper reports).
"""

import numpy as np
from conftest import print_banner

from repro.cloud.providers import get_provider
from repro.constants import PL_MS
from repro.core.distributions import provider_comparison
from repro.core.filtering import unprivileged_mask
from repro.viz import table


def test_ablation_backbone(small_dataset, benchmark):
    frame = benchmark.pedantic(
        lambda: provider_comparison(small_dataset), rounds=2, iterations=1
    )

    print_banner("Ablation: private vs public backbone, per-provider medians")
    print(table(frame))

    medians = {
        str(row["provider"]): float(row["median"]) for row in frame.iter_rows()
    }
    private = [m for slug, m in medians.items()
               if get_provider(slug).has_private_backbone]
    public = [m for slug, m in medians.items()
              if not get_provider(slug).has_private_backbone]
    print(f"\nmean median RTT: private backbone {np.mean(private):.1f} ms, "
          f"public transit {np.mean(public):.1f} ms")

    # A raw comparison is confounded by geography (hyperscalers operate
    # remote regions the small providers do not), so compare medians
    # *city-matched*: only targets in cities hosting both backbone types,
    # pairing each probe's samples to co-located private/public regions.
    mask = unprivileged_mask(small_dataset)
    target_city = np.asarray(
        [f"{vm.region.city}|{vm.region.country_code}" for vm in small_dataset.targets]
    )
    target_private = np.asarray(
        [vm.region.provider.has_private_backbone for vm in small_dataset.targets]
    )
    cities_with_both = {
        city
        for city in np.unique(target_city)
        if len(np.unique(target_private[target_city == city])) == 2
    }
    sample_city = target_city[small_dataset.column("target_index")]
    sample_private = target_private[small_dataset.column("target_index")]
    rtts = small_dataset.column("rtt_min")
    matched = mask & np.isin(sample_city, list(cities_with_both))
    matched_private = float(np.median(rtts[matched & sample_private]))
    matched_public = float(np.median(rtts[matched & ~sample_private]))
    print(f"city-matched comparison over {len(cities_with_both)} cities: "
          f"private {matched_private:.1f} ms, public {matched_public:.1f} ms")

    # The discount is real but modest: visible, far under 2x.
    assert matched_private < matched_public
    assert matched_public < 1.5 * matched_private
    # And every provider still serves its footprint within PL in the
    # median — the paper's story is provider-independent.
    eu_mask = mask & (small_dataset.probe_continents() == "EU") & (
        small_dataset.target_continents() == "EU"
    )
    providers_eu = small_dataset.target_providers()[eu_mask]
    for slug in medians:
        assert float(np.median(rtts[eu_mask][providers_eu == slug])) <= PL_MS
