"""Extension bench: the multi-cloud comparison (CloudCmp, a decade on).

The paper notes the last multi-cloud latency comparison predates it by a
decade [40].  This bench prints the 2020 version from the campaign data:
per-provider medians by user continent, and rankings over the shared
footprint.  Shape targets: all seven providers serve EU within PL; the
private-backbone hyperscalers lead the rankings, but no provider is more
than ~2x off the leader — the paper's cloud-is-close-enough story is
provider-independent.
"""

from conftest import print_banner

from repro.constants import PL_MS
from repro.core.providers import (
    footprint_summary,
    provider_matrix,
    provider_rankings,
)
from repro.viz import table


def test_provider_matrix(small_dataset, benchmark):
    rankings = benchmark.pedantic(
        lambda: provider_rankings(small_dataset), rounds=2, iterations=1
    )

    print_banner("Multi-cloud comparison: median RTT by user continent (ms)")
    print(table(provider_matrix(small_dataset)))
    print("\nrankings over the shared footprint:")
    print(table(rankings))
    footprint = footprint_summary(small_dataset)
    print("\nfootprint vs rank: "
          + "  ".join(f"{p}({v['regions']}rg,#{v['rank']})"
                      for p, v in footprint.items()))

    medians = list(rankings["median_ms"])
    assert medians[-1] < 2.5 * medians[0]
    # All seven serve European probes within PL.
    matrix = provider_matrix(small_dataset)
    for row in matrix.iter_rows():
        assert float(row["EU"]) <= PL_MS
    # The ranking leaders run private backbones.
    leaders = [
        str(row["backbone"]) for row in rankings.iter_rows()
    ][:2]
    assert "private" in leaders
