"""Extension bench: wider cloud deployment as the alternative to edge.

Paper §5: "many applications in the edge FZ can be supported by a wider
deployment of cloud/network infrastructure, especially in Asia, Latin
America, and Africa."  This bench runs the greedy expansion study: add 8
new cloud regions and compare against the edge deployments of
`bench_edge_gains.py`.  Shape targets: the chosen regions land in
AS/SA/AF, beyond-PL country count drops substantially, and a handful of
regions recovers much of what a 166-site edge would deliver.
"""

from conftest import print_banner

from repro.cloud.expansion import ExpansionStudy, candidate_regions
from repro.edge.gains import gains_by_continent
from repro.edge.sites import national_deployment
from repro.geo.countries import get_country


def test_cloud_expansion(small_dataset, benchmark):
    study = ExpansionStudy(small_dataset, candidates=candidate_regions(limit=20))
    chosen = benchmark.pedantic(lambda: study.greedy(8), rounds=1, iterations=1)
    report = study.report(chosen)

    print_banner("Cloud expansion: 8 new regions vs the status quo")
    print("chosen regions: "
          + ", ".join(f"{c.country_code} ({get_country(c.country_code).name})"
                      for c in chosen))
    for key, value in report.items():
        print(f"  {key:30s} {value:10.2f}")

    # Shape targets.
    continents = {get_country(c.country_code).continent for c in chosen}
    assert continents <= {"AS", "SA", "AF"}
    assert report["countries_beyond_pl_after"] < report["countries_beyond_pl_before"]
    assert report["pw_latency_after"] < report["pw_latency_before"]

    # Reachability: eight regions must pull a solid share of the
    # beyond-PL countries inside the threshold.
    assert report["countries_beyond_pl_after"] <= max(
        0.7 * report["countries_beyond_pl_before"], 1
    )

    # Context against the national edge (166 sites): the edge wins the
    # *median* AF probe by construction — it has a server in every
    # country — but per site deployed, the cloud expansion is the far
    # more efficient way to buy reachability.
    edge = gains_by_continent(small_dataset, national_deployment(1))
    after = study.minima_with(chosen)
    before = study.baseline
    af_probe_ids = [
        pid for pid in before
        if small_dataset.probe(pid).continent == "AF"
    ]
    af_gains = sorted(before[pid] - after[pid] for pid in af_probe_ids)
    af_median_gain = af_gains[len(af_gains) // 2]
    improved_share = sum(1 for g in af_gains if g > 10.0) / len(af_gains)
    print(f"\nAF gains: expansion median {af_median_gain:.1f} ms "
          f"({improved_share:.0%} of AF probes improved >10 ms) vs "
          f"national edge median {edge['AF'].median_gain_ms:.1f} ms "
          f"(166 sites vs 8 regions)")
    assert af_median_gain >= 0.0
    assert improved_share >= 0.25
