"""F8 — Figure 8: the edge feasibility zone.

Paper claims: the FZ spans ~10 ms (wireless floor) to HRT on the latency
axis and >= ~1 GB/day on the data axis; the hyped Q2 drivers (AR/VR,
autonomous vehicles) fall OUTSIDE it; the in-zone apps (traffic camera
monitoring, cloud gaming) carry far less market value than the out-of-
zone ones.
"""

from conftest import print_banner

from repro.apps.catalog import all_applications, get_application
from repro.apps.feasibility import (
    FeasibilityZone,
    Verdict,
    assess_all,
    zone_market_share,
)
from repro.core.feasibility import feasibility_matrix
from repro.viz import table


def test_fig8_feasibility_zone(small_dataset, benchmark):
    verdicts = benchmark(assess_all)
    zone = FeasibilityZone()
    inside, outside = zone_market_share()

    print_banner("Figure 8: edge feasibility zone")
    print(f"FZ: latency [{zone.latency_low_ms:.0f}, {zone.latency_high_ms:.0f}] ms, "
          f"bandwidth >= {zone.bandwidth_min_gb_day:.0f} GB/day\n")
    for app in all_applications():
        print(f"  {app.name:28s} overlap {zone.overlap(app):5.0%}  "
              f"-> {verdicts[app.slug].value}")
    print(f"\nmarket inside FZ: {inside:.0f} B$   outside: {outside:.0f} B$")

    print("\nmeasurement-informed matrix:")
    print(table(feasibility_matrix(small_dataset)))

    # Shape targets: the paper's punchline.
    assert verdicts["traffic-monitoring"] is Verdict.IN_ZONE
    assert verdicts["cloud-gaming"] is Verdict.IN_ZONE
    assert verdicts["ar-vr"] is Verdict.ONBOARD_REQUIRED
    assert verdicts["autonomous-vehicles"] is Verdict.ONBOARD_REQUIRED
    assert verdicts["smart-home"] is Verdict.CLOUD_SUFFICIENT
    assert verdicts["wearables"] is Verdict.CLOUD_SUFFICIENT
    assert outside > 2 * inside
    # The hyped (largest-market) apps are not FZ residents.
    hyped_in_zone = [
        app for app in all_applications()
        if app.market_2025_busd >= 150 and verdicts[app.slug] is Verdict.IN_ZONE
    ]
    assert not hyped_in_zone
