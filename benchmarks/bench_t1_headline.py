"""T1 — the paper's in-text headline statistics.

The paper states its quantitative claims in prose (sections 1, 4, 5); T1
collects them as one table: country bucket counts, per-continent MTP/PL
shares, the ~2.5x wireless penalty, the Facebook 40 ms checkpoint, and
population coverage.
"""

from conftest import print_banner

from repro.core.report import headline_report


def test_t1_headline_statistics(small_dataset, benchmark):
    report = benchmark.pedantic(
        lambda: headline_report(small_dataset), rounds=2, iterations=1
    )

    print_banner("T1: headline statistics, paper vs measured")
    print(report.summary())
    print()
    print(f"{'claim':38s} {'paper':>10s} {'measured':>10s}")
    print("-" * 60)
    for claim, values in report.paper_comparison().items():
        print(f"{claim:38s} {values['paper']:>10.2f} {values['measured']:>10.2f}")

    comparison = report.paper_comparison()
    # Every claim within a generous factor-of-two band, orderings exact.
    assert 0.5 <= (
        comparison["countries < 10 ms"]["measured"]
        / comparison["countries < 10 ms"]["paper"]
    ) <= 1.5
    assert 0.5 <= (
        comparison["wireless penalty (x)"]["measured"]
        / comparison["wireless penalty (x)"]["paper"]
    ) <= 1.5
    assert comparison["samples < 40 ms, NA+EU (share)"]["measured"] >= 0.7
    assert report.population_share_under_pl > 0.75
    assert report.sample_share_under_pl["EU"] > report.sample_share_under_pl["AF"]
