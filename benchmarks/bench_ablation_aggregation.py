"""Ablation: minimum vs median aggregation for the Figure 4/5 'optimism'.

The paper itself flags that sections 4.2's results are "optimistic" —
they report the *minimum* latency over nine months of samples.  This
ablation recomputes the per-country map with median aggregation instead,
quantifying how much of the rosy picture is the min operator.
"""

import numpy as np
from conftest import print_banner

from repro.core.filtering import unprivileged_mask
from repro.core.proximity import bucket_counts, bucket_label, country_min_latency
from repro.frame import Frame


def _country_aggregate(dataset, reducer):
    """Best-probe aggregate per country under an arbitrary reducer."""
    mask = unprivileged_mask(dataset)
    probe_ids = dataset.column("probe_id")[mask]
    rtts = dataset.column("rtt_min")[mask]
    per_probe = {}
    order = np.argsort(probe_ids, kind="stable")
    probe_ids, rtts = probe_ids[order], rtts[order]
    boundaries = np.flatnonzero(np.diff(probe_ids)) + 1
    for pid, group in zip(
        probe_ids[np.concatenate(([0], boundaries))],
        np.split(rtts, boundaries),
    ):
        per_probe[int(pid)] = float(reducer(group))
    best = {}
    for pid, value in per_probe.items():
        country = dataset.probe(pid).country_code
        if country not in best or value < best[country]:
            best[country] = value
    return Frame.from_records(
        [
            {"country": c, "min_rtt": v, "bucket": bucket_label(v)}
            for c, v in sorted(best.items())
        ],
        columns=["country", "min_rtt", "bucket"],
    )


def test_ablation_aggregation(small_dataset, benchmark):
    min_frame = benchmark.pedantic(
        lambda: country_min_latency(small_dataset), rounds=2, iterations=1
    )
    median_frame = _country_aggregate(small_dataset, np.median)

    min_counts = bucket_counts(min_frame)
    median_counts = bucket_counts(median_frame)

    print_banner("Ablation: min vs median aggregation (Figure 4 buckets)")
    print(f"{'bucket':>10s} {'min':>6s} {'median':>8s}")
    for label in min_counts:
        print(f"{label:>10s} {min_counts[label]:>6d} {median_counts[label]:>8d}")

    # The min operator flatters the map: strictly more fast countries,
    # strictly fewer beyond-PL countries.
    assert min_counts["<10 ms"] > median_counts["<10 ms"]
    assert min_counts[">100 ms"] <= median_counts[">100 ms"]
