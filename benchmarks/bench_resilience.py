"""Resilience — the chaos-hardened collection pipeline.

Two questions, answered with numbers:

1. **Seam overhead** — the transport seam must be free when no faults are
   attached: fetching results through a pass-through :class:`Transport`
   is timed against calling the platform directly.
2. **Convergence under chaos** — a TINY campaign is collected under each
   fault profile; the flaky/outage datasets must be byte-identical to the
   fault-free baseline, hostile identical up to its quarantine count, and
   the per-profile fault/retry accounting is printed.
"""

import numpy as np
from conftest import print_banner

from repro.atlas.api.transport import Transport
from repro.core.campaign import Campaign, CampaignScale
from repro.core.completeness import collection_health

BENCH_SEED = 7


def _tiny_campaign(faults=None):
    campaign = Campaign.from_paper(
        scale=CampaignScale.TINY, seed=BENCH_SEED, faults=faults
    )
    campaign.create_measurements()
    return campaign


def test_seam_overhead(benchmark):
    """Pass-through Transport vs direct platform calls on one window."""
    campaign = _tiny_campaign()
    platform = campaign.platform
    transport = Transport(platform)
    msm_ids = campaign.measurement_ids[:10]

    def through_seam():
        return sum(len(transport.results(m)) for m in msm_ids)

    def direct():
        return sum(len(platform.results(m)) for m in msm_ids)

    baseline = direct()
    fetched = benchmark.pedantic(through_seam, rounds=3, iterations=1)

    print_banner("Resilience: transport seam overhead")
    print(f"results fetched through seam: {fetched} (direct: {baseline})")
    print("pass-through transport delegates directly; no injector, no retry")
    assert fetched == baseline
    assert transport.injector is None
    assert transport.retry.retries == 0


def test_convergence_under_chaos(benchmark):
    """Collect the same TINY campaign under every fault profile."""
    baseline = _tiny_campaign().collect()

    def collect_all():
        out = {}
        for profile in ("flaky", "outage", "hostile"):
            campaign = _tiny_campaign(faults=profile)
            out[profile] = (campaign.collect(), collection_health(campaign))
        return out

    runs = benchmark.pedantic(collect_all, rounds=1, iterations=1)

    print_banner("Resilience: convergence under chaos (TINY)")
    print(f"{'profile':9s} {'samples':>8s} {'faults':>7s} {'retries':>8s} "
          f"{'quarantined':>12s} {'sim sleep':>10s}")
    print("-" * 60)
    print(f"{'none':9s} {baseline.num_samples:>8d} {0:>7d} {0:>8d} "
          f"{0:>12d} {'0.0s':>10s}")
    for profile, (dataset, health) in runs.items():
        transport = health["transport"]
        print(f"{profile:9s} {dataset.num_samples:>8d} "
              f"{sum(transport['faults'].values()):>7d} "
              f"{transport['retries']:>8d} "
              f"{health['quarantined']:>12d} "
              f"{transport['simulated_sleep_s']:>9.0f}s")

    for profile in ("flaky", "outage"):
        dataset, health = runs[profile]
        assert dataset.num_samples == baseline.num_samples
        assert np.array_equal(
            dataset.column("rtt_min"), baseline.column("rtt_min"),
            equal_nan=True,
        )
        assert health["quarantined"] == 0

    hostile, health = runs["hostile"]
    deficit = baseline.num_samples - hostile.num_samples
    assert 0 <= deficit <= health["quarantined"]
    assert health["quarantined"] > 0
