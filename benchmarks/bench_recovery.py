"""Disaster recovery — surgical repair vs full re-collection.

A MEDIUM (paper-scale, ~3.2M-sample) campaign store loses one shard to
disk corruption.  The naive recovery is re-collecting the whole
campaign; the store's answer is ``repro store repair``: scrub, map the
damaged shard's rows to measurement windows through the manifest's
window index, re-synthesize only those windows from provenance, and
hash-verify the rebuilt chunks.  Repair must beat re-collection by at
least a 10x floor — the ratio is a property of "windows touched /
windows total", not of core count, so it is asserted on every machine.
Measurements land in ``BENCH_recovery.json`` for the CI artifact.
"""

import json
import os
import time
from pathlib import Path

from conftest import print_banner

from repro.core.campaign import Campaign, CampaignScale
from repro.store import StoreReader, write_dataset
from repro.store.catalog import campaign_provenance
from repro.store.scrub import repair, scrub

BENCH_SEED = 7

#: Smaller-than-default shards (~49 for MEDIUM) so "one damaged shard"
#: is a realistically small slice of the store.
ROWS_PER_SHARD = 1 << 16

#: Acceptance floor: repairing a single damaged shard must beat
#: re-collecting the campaign by this factor.
SPEEDUP_FLOOR = 10.0

ARTIFACT = Path(os.environ.get("REPRO_BENCH_ARTIFACT", "BENCH_recovery.json"))


def test_repair_speedup_over_recollection(benchmark, tmp_path):
    """One flipped byte in one chunk: repair vs collect-from-scratch."""
    # Untimed warm-up on a throwaway campaign: imports, route caches.
    Campaign.from_paper(scale=CampaignScale.TINY, seed=BENCH_SEED).run()

    campaign = Campaign.from_paper(scale=CampaignScale.MEDIUM, seed=BENCH_SEED)
    start = time.perf_counter()
    collected = campaign.run()
    collect_s = time.perf_counter() - start

    store = tmp_path / "store"
    write_dataset(
        collected,
        store,
        provenance=campaign_provenance(campaign),
        rows_per_shard=ROWS_PER_SHARD,
    )
    manifest = StoreReader(store, verify="off").manifest
    pristine = {
        p.name: p.stat().st_size for p in store.iterdir() if p.is_file()
    }

    # The disaster: one bit flips in the middle of one mid-store chunk.
    victim = store / manifest.shards[len(manifest.shards) // 2].chunks["rtt_min"].file

    def run_repair():
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        victim.write_bytes(bytes(raw))
        assert not scrub(store).intact
        start = time.perf_counter()
        result = repair(store)
        return result, time.perf_counter() - start

    result, repair_s = benchmark.pedantic(run_repair, rounds=1, iterations=1)

    speedup = collect_s / repair_s
    windows_total = len(manifest.windows)

    print_banner(
        f"Disaster recovery: MEDIUM {manifest.rows:,} rows, "
        f"{len(manifest.shards)} shards, 1 damaged"
    )
    print(f"{'path':>26s} {'wall':>9s} {'speedup':>8s}")
    print("-" * 46)
    print(f"{'re-collect (naive)':>26s} {collect_s:>8.2f}s {1.0:>7.2f}x")
    print(f"{'store repair':>26s} {repair_s:>8.2f}s {speedup:>7.2f}x")
    print(
        f"windows re-synthesized: {result.resynthesized_windows}/{windows_total}"
        f"  chunks rebuilt: {len(result.repaired_chunks)}"
        f"  quarantined: {len(result.quarantined)}"
    )

    # Repair converged to the exact pre-damage store.
    StoreReader(store, verify="full")
    healthy = {
        p.name: p.stat().st_size
        for p in store.iterdir()
        if p.is_file()
    }
    assert healthy == pristine

    ARTIFACT.write_text(json.dumps({
        "seed": BENCH_SEED,
        "cpus": os.cpu_count(),
        "medium_samples": int(manifest.rows),
        "shards": len(manifest.shards),
        "windows_total": windows_total,
        "windows_resynthesized": result.resynthesized_windows,
        "collect_s": round(collect_s, 3),
        "repair_s": round(repair_s, 3),
        "repair_speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
    }, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")

    assert result.verified
    assert speedup >= SPEEDUP_FLOOR, (
        f"repair speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )
