"""Extension bench: IPv4 vs IPv6 reachability.

The platform supports af=6 measurements end to end; this bench runs the
dual-stack comparison from European dual-stack probes towards Frankfurt
and reports the per-continent v6 penalty.  Shape target: a positive but
single-digit-millisecond penalty — v6 is usable, v4 still wins (the
circa-2019 state of deployment).
"""

from conftest import BENCH_SEED, print_banner

from repro.atlas.platform import AtlasPlatform
from repro.core.ipv6 import dual_stack_comparison, v6_penalty_by_continent
from repro.viz import table

T0 = 1_567_296_000


def test_dual_stack_penalty(benchmark):
    platform = AtlasPlatform(seed=BENCH_SEED)
    comparison = benchmark.pedantic(
        lambda: dual_stack_comparison(
            platform,
            "aws:eu-central-1",
            T0,
            probes_per_country=2,
            countries=("DE", "FR", "NL", "GB", "PL", "CZ", "AT", "CH", "IT", "ES"),
        ),
        rounds=1,
        iterations=1,
    )
    penalties = v6_penalty_by_continent(comparison)

    print_banner("Dual-stack: IPv6 penalty towards aws:eu-central-1")
    print(table(comparison, max_rows=20))
    print(f"\nmedian v6 penalty by continent: "
          + "  ".join(f"{c}={v:.2f} ms" for c, v in sorted(penalties.items())))

    assert len(comparison) >= 10
    assert 0.0 < penalties["EU"] < 10.0
    positive = sum(1 for row in comparison.iter_rows() if row["v6_penalty_ms"] > 0)
    assert positive / len(comparison) >= 0.7
