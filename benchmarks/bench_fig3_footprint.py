"""F3 — Figure 3: the measurement footprint.

Paper artifact: (a) 101 cloud regions of 7 providers in 21 countries;
(b) 3200+ RIPE Atlas probes in 166 countries as vantage points.
"""

from conftest import print_banner

from repro.atlas.population import generate_population, population_summary
from repro.cloud.regions import all_regions, datacenter_countries, regions_per_provider
from repro.geo.continents import CONTINENT_CODES
from repro.viz import bar_chart


def test_fig3a_cloud_regions(benchmark):
    regions = benchmark(all_regions)

    print_banner("Figure 3a: cloud regions of the seven providers")
    per_provider = regions_per_provider()
    print(bar_chart(per_provider, fmt="{:.0f} regions"))
    per_continent = {}
    for region in regions:
        per_continent[region.continent] = per_continent.get(region.continent, 0) + 1
    print("\nby continent:")
    print(bar_chart(per_continent, fmt="{:.0f}"))
    print(f"\ntotal regions: {len(regions)}   "
          f"countries: {len(datacenter_countries())}")

    assert len(regions) == 101
    assert len(datacenter_countries()) == 21
    assert len(per_provider) == 7


def test_fig3b_probe_population(benchmark):
    probes = benchmark.pedantic(
        lambda: generate_population(seed=1234), rounds=2, iterations=1
    )

    print_banner("Figure 3b: RIPE Atlas probe population")
    per_continent = {code: 0 for code in CONTINENT_CODES}
    for probe in probes:
        per_continent[probe.continent] += 1
    print(bar_chart(per_continent, fmt="{:.0f} probes"))
    summary = population_summary(seed=1234)
    print(f"\n{summary}")

    assert summary["probes"] >= 3200
    assert summary["countries"] == 166
    assert per_continent["EU"] == max(per_continent.values())
