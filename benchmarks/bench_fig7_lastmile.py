"""F7 — Figure 7: wired vs wireless last-mile RTT over the campaign.

Paper claims: probes tagged wireless take ~2.5x longer to reach the
nearest cloud region, consistently over the measurement period; prior
work's 10-40 ms added wireless latency.
"""

import math

from conftest import print_banner

from repro.core.lastmile import (
    added_wireless_latency_ms,
    cohort_timeseries,
    wireless_penalty,
)
from repro.core.filtering import cohort_sizes
from repro.viz import line_chart


def test_fig7_wired_vs_wireless(small_dataset, benchmark):
    penalty = benchmark.pedantic(
        lambda: wireless_penalty(small_dataset), rounds=2, iterations=1
    )
    frame = cohort_timeseries(small_dataset, bucket_s=2 * 86_400)
    wired_n, wireless_n = cohort_sizes(small_dataset)
    added = added_wireless_latency_ms(small_dataset)

    print_banner("Figure 7: wired vs wireless access RTT")
    series = {"wired": [], "lte/wifi/wlan": []}
    start = float(frame["bucket_start"][0])
    for row in frame.iter_rows():
        day = (float(row["bucket_start"]) - start) / 86_400
        if not math.isnan(row["wired_median"]):
            series["wired"].append((day, float(row["wired_median"])))
        if not math.isnan(row["wireless_median"]):
            series["lte/wifi/wlan"].append((day, float(row["wireless_median"])))
    print(line_chart(series))
    print(f"\ncohorts: {wired_n} wired, {wireless_n} wireless probes")
    print(f"penalty: {penalty:.2f}x (paper ~2.5x)    "
          f"added latency: {added:.1f} ms (prior work: 10-40 ms)")

    # Shape targets.
    assert 1.8 <= penalty <= 3.5
    assert 8.0 <= added <= 50.0
    # Wireless sits above wired in every populated bucket.
    for row in frame.iter_rows():
        if math.isnan(row["wired_median"]) or math.isnan(row["wireless_median"]):
            continue
        assert row["wireless_median"] > row["wired_median"]
