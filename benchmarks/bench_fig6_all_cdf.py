"""F6 — Figure 6: CDF of *all* ping measurements, by continent.

Paper claims: >75 % of NA/EU/OC samples below the PL threshold; the top
25 % of NA and EU can even support MTP; the EU tail (eastern Europe) is
largely missing from NA; Africa worst.
"""

import numpy as np
from conftest import print_banner

from repro.constants import MTP_MS, PL_MS
from repro.core.distributions import (
    all_samples_cdf_by_continent,
    eu_tail_analysis,
    threshold_table,
)
from repro.viz import cdf_plot, table


def test_fig6_all_samples_cdf(small_dataset, benchmark):
    cdfs = benchmark.pedantic(
        lambda: all_samples_cdf_by_continent(small_dataset), rounds=3, iterations=1
    )

    print_banner("Figure 6: CDF of all ping samples, by continent")
    print(cdf_plot(cdfs, x_max=300.0))
    print()
    print(table(threshold_table(small_dataset)))
    tail = eu_tail_analysis(small_dataset)
    print(f"\nEU tail analysis: {tail}")

    # Shape targets.
    for continent in ("NA", "EU"):
        assert cdfs[continent].fraction_below(PL_MS) >= 0.75, continent
    assert cdfs["OC"].fraction_below(PL_MS) >= 0.72
    for continent in ("AS", "SA"):
        assert cdfs[continent].fraction_below(PL_MS) <= 0.90, continent
    assert cdfs["AF"].fraction_below(PL_MS) <= 0.60
    # Under-served continents clearly trail the well-connected ones.
    floor = min(cdfs["NA"].fraction_below(PL_MS), cdfs["EU"].fraction_below(PL_MS))
    for continent in ("AS", "SA", "AF"):
        assert cdfs[continent].fraction_below(PL_MS) < floor - 0.05, continent
    # Top quartile of NA/EU supports MTP.
    for continent in ("NA", "EU"):
        assert cdfs[continent].quantile(0.25) <= MTP_MS, continent
    # The EU tail comes from eastern Europe and is absent in NA.
    assert tail["eu_eastern_median"] > tail["eu_western_median"]
    assert tail["na_p95"] < tail["eu_p95"]
    # Africa is the worst-served continent.
    medians = {c: cdf.quantile(0.5) for c, cdf in cdfs.items()}
    assert max(medians, key=medians.get) == "AF"
