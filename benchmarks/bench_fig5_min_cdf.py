"""F5 — Figure 5: CDF of every probe's minimum RTT, by continent.

Paper claims: ~80 % of EU and NA probes (~50 % of all probes) reach a
datacenter within MTP; Oceania almost entirely within 50 ms; ~75 % of
Africa and Latin America probes within PL.
"""

from conftest import print_banner

from repro.constants import MTP_MS, PL_MS
from repro.core.proximity import min_rtt_cdf_by_continent
from repro.viz import cdf_plot


def test_fig5_min_rtt_cdf(small_dataset, benchmark):
    cdfs = benchmark.pedantic(
        lambda: min_rtt_cdf_by_continent(small_dataset), rounds=3, iterations=1
    )

    print_banner("Figure 5: CDF of minimum RTT per probe, by continent")
    print(cdf_plot(cdfs, x_max=200.0))
    print("\ncontinent  n      <MTP    <50ms   <PL")
    for continent in ("NA", "EU", "OC", "AS", "SA", "AF"):
        cdf = cdfs[continent]
        print(f"  {continent}      {len(cdf):5d}  "
              f"{cdf.fraction_below(MTP_MS):6.0%}  "
              f"{cdf.fraction_below(50.0):6.0%}  "
              f"{cdf.fraction_below(PL_MS):6.0%}")

    # Shape targets.
    assert cdfs["EU"].fraction_below(MTP_MS) >= 0.65   # paper ~80 %
    assert cdfs["NA"].fraction_below(MTP_MS) >= 0.65
    assert cdfs["OC"].fraction_below(50.0) >= 0.6      # "almost all"
    assert cdfs["AF"].fraction_below(PL_MS) >= 0.6     # paper ~75 %
    assert cdfs["SA"].fraction_below(PL_MS) >= 0.6
    # Ordering: well-connected continents dominate.
    assert cdfs["EU"].quantile(0.5) < cdfs["AS"].quantile(0.5)
    assert cdfs["AS"].quantile(0.5) < cdfs["AF"].quantile(0.5)
