"""F4 — Figure 4: minimum latency to the nearest datacenter, per country.

Paper artifact: world choropleth.  Headline claims: 32 countries under
10 ms, another 21 within 10-20 ms, and all but 16 countries (mostly in
Africa) within the PL threshold.
"""

from conftest import print_banner

from repro.core.proximity import (
    bucket_counts,
    countries_beyond_pl,
    country_min_latency,
)
from repro.geo.countries import get_country
from repro.viz import bucket_listing, world_map


def test_fig4_choropleth(small_dataset, benchmark):
    frame = benchmark.pedantic(
        lambda: country_min_latency(small_dataset), rounds=3, iterations=1
    )
    counts = bucket_counts(frame)
    losers = countries_beyond_pl(frame)

    print_banner("Figure 4: minimum RTT to nearest datacenter, per country")
    print(world_map(frame))
    print()
    print(bucket_listing(frame))
    print(f"\npaper: 32 / 21 / - / - / 16      "
          f"measured: {counts['<10 ms']} / {counts['10-20 ms']} / "
          f"{counts['20-50 ms']} / {counts['50-100 ms']} / {counts['>100 ms']}")

    # Shape targets (generous bands; orderings exact).
    assert 22 <= counts["<10 ms"] <= 42
    assert 13 <= counts["10-20 ms"] <= 30
    assert 8 <= len(losers) <= 26
    african = sum(1 for c in losers if get_country(c).continent == "AF")
    assert african >= len(losers) / 2  # "mostly in Africa"
