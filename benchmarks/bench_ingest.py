"""Vectorized ingest — speedup, byte-parity, and paper-scale budget.

The SMALL campaign is collected twice — through the scalar per-sample
pipeline (``fast_path="off"``) and through the columnar batch-synthesis
path (``fast_path="on"``) — and the two frozen datasets must fingerprint
byte-identically while the fast path clears a >=5x speedup floor.  The
floor is a property of vectorization, not of core count, so it is
asserted on every machine.  A MEDIUM (paper-scale, ~3.2M-sample) run
then has to land inside a ten-minute budget.  The measured table is also
written to ``BENCH_ingest.json`` for the CI artifact.
"""

import json
import os
import time
from pathlib import Path

from conftest import print_banner

from repro.core.campaign import Campaign, CampaignScale

BENCH_SEED = 7

#: All frozen sample columns, in schema order (matches the parity suite).
SAMPLE_COLUMNS = (
    "probe_id", "target_index", "timestamp",
    "rtt_min", "rtt_avg", "sent", "rcvd",
)

#: Acceptance floor: the columnar path must beat the scalar parse by at
#: least this factor on SMALL.
SPEEDUP_FLOOR = 5.0

#: Wall-clock budget for the paper-scale MEDIUM collection (seconds).
MEDIUM_BUDGET_S = 600.0

ARTIFACT = Path(os.environ.get("REPRO_BENCH_ARTIFACT", "BENCH_ingest.json"))


def _fingerprint(dataset) -> bytes:
    return b"".join(dataset.column(name).tobytes() for name in SAMPLE_COLUMNS)


def _collect(scale: CampaignScale, fast_path: str):
    campaign = Campaign.from_paper(
        scale=scale, seed=BENCH_SEED, fast_path=fast_path
    )
    campaign.create_measurements()
    start = time.perf_counter()
    dataset = campaign.collect()
    return dataset, time.perf_counter() - start


def test_ingest_speedup(benchmark):
    """Scalar vs vectorized collection of the same SMALL campaign."""
    # Untimed warm-up: imports, fleet construction, route caches.
    _collect(CampaignScale.SMALL, "on")

    fast, fast_s = _collect(CampaignScale.SMALL, "on")
    fast_s = benchmark.pedantic(
        lambda: _collect(CampaignScale.SMALL, "on")[1], rounds=1, iterations=1
    )
    scalar, scalar_s = _collect(CampaignScale.SMALL, "off")
    identical = _fingerprint(fast) == _fingerprint(scalar)
    speedup = scalar_s / fast_s

    medium, medium_s = _collect(CampaignScale.MEDIUM, "on")

    print_banner(
        f"Vectorized ingest: SMALL {len(fast):,} samples, "
        f"MEDIUM {len(medium):,} samples"
    )
    print(f"{'path':>22s} {'wall':>9s} {'speedup':>8s}")
    print("-" * 42)
    print(f"{'SMALL scalar':>22s} {scalar_s:>8.2f}s {1.0:>7.2f}x")
    print(f"{'SMALL vectorized':>22s} {fast_s:>8.2f}s {speedup:>7.2f}x")
    print(f"{'MEDIUM vectorized':>22s} {medium_s:>8.2f}s {'':>8s}")
    print(f"byte-identical: {'yes' if identical else 'NO'}")

    ARTIFACT.write_text(json.dumps({
        "seed": BENCH_SEED,
        "cpus": os.cpu_count(),
        "small_samples": len(fast),
        "small_scalar_s": round(scalar_s, 3),
        "small_fast_s": round(fast_s, 3),
        "small_speedup": round(speedup, 2),
        "byte_identical": identical,
        "medium_samples": len(medium),
        "medium_fast_s": round(medium_s, 3),
        "medium_budget_s": MEDIUM_BUDGET_S,
    }, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")

    assert identical, "vectorized SMALL dataset diverged from scalar bytes"
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )
    assert medium_s <= MEDIUM_BUDGET_S, (
        f"MEDIUM collection took {medium_s:.0f}s, over the "
        f"{MEDIUM_BUDGET_S:.0f}s budget"
    )
