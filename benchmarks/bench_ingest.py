"""Vectorized ingest — speedup, byte-parity, and paper-scale budget.

The SMALL campaign is collected twice — through the scalar per-sample
pipeline (``fast_path="off"``) and through the columnar batch-synthesis
path (``fast_path="on"``) — and the two frozen datasets must fingerprint
byte-identically while the fast path clears a >=5x speedup floor.  The
floor is a property of vectorization, not of core count, so it is
asserted on every machine.  A MEDIUM (paper-scale, ~3.2M-sample) run
then has to land inside a ten-minute budget.

A second stage benchmarks the shared-nothing **direct-to-store** ingest:
a MEDIUM campaign collected by forked workers streaming store shards
straight to disk (committed, scrub-clean), plus the isolated write plane
— pre-synthesized columns through :class:`ShardRangeWriter` ranges and
the boundary-stitch commit.  The write-plane floor is >=1M samples/s;
the end-to-end floor only applies with enough cores to feed it (window
synthesis is CPU-bound and the container may have a single core).  The
measured table is written to ``BENCH_ingest.json`` for the CI artifact.
"""

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
from conftest import print_banner

from repro.core.campaign import Campaign, CampaignScale

BENCH_SEED = 7

#: All frozen sample columns, in schema order (matches the parity suite).
SAMPLE_COLUMNS = (
    "probe_id", "target_index", "timestamp",
    "rtt_min", "rtt_avg", "sent", "rcvd",
)

#: Acceptance floor: the columnar path must beat the scalar parse by at
#: least this factor on SMALL.
SPEEDUP_FLOOR = 5.0

#: Wall-clock budget for the paper-scale MEDIUM collection (seconds).
MEDIUM_BUDGET_S = 600.0

ARTIFACT = Path(os.environ.get("REPRO_BENCH_ARTIFACT", "BENCH_ingest.json"))


def _fingerprint(dataset) -> bytes:
    return b"".join(dataset.column(name).tobytes() for name in SAMPLE_COLUMNS)


def _collect(scale: CampaignScale, fast_path: str):
    campaign = Campaign.from_paper(
        scale=scale, seed=BENCH_SEED, fast_path=fast_path
    )
    campaign.create_measurements()
    start = time.perf_counter()
    dataset = campaign.collect()
    return dataset, time.perf_counter() - start


def test_ingest_speedup(benchmark):
    """Scalar vs vectorized collection of the same SMALL campaign."""
    # Untimed warm-up: imports, fleet construction, route caches.
    _collect(CampaignScale.SMALL, "on")

    fast, fast_s = _collect(CampaignScale.SMALL, "on")
    fast_s = benchmark.pedantic(
        lambda: _collect(CampaignScale.SMALL, "on")[1], rounds=1, iterations=1
    )
    scalar, scalar_s = _collect(CampaignScale.SMALL, "off")
    identical = _fingerprint(fast) == _fingerprint(scalar)
    speedup = scalar_s / fast_s

    medium, medium_s = _collect(CampaignScale.MEDIUM, "on")

    print_banner(
        f"Vectorized ingest: SMALL {len(fast):,} samples, "
        f"MEDIUM {len(medium):,} samples"
    )
    print(f"{'path':>22s} {'wall':>9s} {'speedup':>8s}")
    print("-" * 42)
    print(f"{'SMALL scalar':>22s} {scalar_s:>8.2f}s {1.0:>7.2f}x")
    print(f"{'SMALL vectorized':>22s} {fast_s:>8.2f}s {speedup:>7.2f}x")
    print(f"{'MEDIUM vectorized':>22s} {medium_s:>8.2f}s {'':>8s}")
    print(f"byte-identical: {'yes' if identical else 'NO'}")

    ARTIFACT.write_text(json.dumps({
        "seed": BENCH_SEED,
        "cpus": os.cpu_count(),
        "small_samples": len(fast),
        "small_scalar_s": round(scalar_s, 3),
        "small_fast_s": round(fast_s, 3),
        "small_speedup": round(speedup, 2),
        "byte_identical": identical,
        "medium_samples": len(medium),
        "medium_fast_s": round(medium_s, 3),
        "medium_budget_s": MEDIUM_BUDGET_S,
    }, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")

    assert identical, "vectorized SMALL dataset diverged from scalar bytes"
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )
    assert medium_s <= MEDIUM_BUDGET_S, (
        f"MEDIUM collection took {medium_s:.0f}s, over the "
        f"{MEDIUM_BUDGET_S:.0f}s budget"
    )


#: Worker count for the direct-to-store stage.
DIRECT_WORKERS = 4

#: Write-plane floor: rows/s through the shard-range writers plus the
#: boundary-stitch commit, synthesis excluded.  Pure numpy-and-IO, so it
#: holds on a single core — halved there as a margin for tiny machines.
WRITE_PLANE_FLOOR = 1_000_000
WRITE_PLANE_FLOOR_1CPU = 500_000

#: End-to-end floor: the full campaign (window synthesis included) can
#: only sustain >=1M samples/s when enough cores feed the workers —
#: synthesis is CPU-bound at roughly 200k rows/s/core.
E2E_FLOOR = 1_000_000
E2E_FLOOR_MIN_CPUS = 8

WRITE_PLANE_ROWS = 2_000_000


def _write_plane_columns(rows):
    """Canonical-order sample columns: long target runs, like a campaign."""
    rng = np.random.default_rng(BENCH_SEED)
    rtt = np.round(rng.uniform(1.0, 300.0, rows), 3)
    return {
        "probe_id": rng.integers(1, 5000, rows).astype("<i4"),
        "target_index": np.repeat(
            np.arange(101, dtype="<i4"), -(-rows // 101)
        )[:rows],
        "timestamp": 1_500_000_000 + np.arange(rows, dtype="<i8") * 60,
        "rtt_min": rtt.astype("<f8"),
        "rtt_avg": (rtt * 1.1).astype("<f8"),
        "sent": np.full(rows, 3, dtype="<i2"),
        "rcvd": rng.integers(0, 4, rows).astype("<i2"),
    }


def _write_plane_pass(path, columns, workers):
    """One worker-split direct write: range writers + stitch commit."""
    from repro.store.writer import ShardRangeWriter, assemble_direct_store

    rows = len(columns["probe_id"])
    cuts = [rows * k // workers for k in range(workers + 1)]
    fragments = []
    for lo, hi in zip(cuts[:-1], cuts[1:]):
        writer = ShardRangeWriter(path, row_start=lo, durable=True)
        writer.append_columns(
            {name: array[lo:hi] for name, array in columns.items()}
        )
        fragments.append(writer.finish())
    return assemble_direct_store(path, fragments)


def test_direct_store_ingest(benchmark):
    """Shared-nothing multiprocess ingest into a committed, verified store."""
    from repro.store import CampaignCatalog, StoreReader
    from repro.store.scrub import scrub

    cpus = os.cpu_count() or 1
    can_fork = hasattr(os, "fork")
    workers = DIRECT_WORKERS if can_fork else 1
    scratch = Path(tempfile.mkdtemp(prefix="bench-direct-"))
    try:
        # -- end to end: MEDIUM campaign, forked workers, committed store ------
        campaign = Campaign.from_paper(scale=CampaignScale.MEDIUM, seed=BENCH_SEED)
        campaign.create_measurements()
        catalog_root = scratch / "catalog"
        start = time.perf_counter()
        dataset = campaign.collect(
            store=catalog_root,
            workers=workers,
            direct="on" if can_fork else "auto",
        )
        e2e_s = time.perf_counter() - start
        e2e_rate = len(dataset) / e2e_s
        (fingerprint,) = CampaignCatalog(catalog_root).entries()
        store_path = catalog_root / fingerprint
        assert scrub(store_path).intact
        StoreReader(store_path, verify="full")
        worker_stats = campaign.worker_process_stats

        # -- write plane: synthesis excluded, shard streaming + stitch ---------
        columns = _write_plane_columns(WRITE_PLANE_ROWS)
        _write_plane_pass(scratch / "warmup", columns, max(workers, 2))

        def timed_pass(run=[0]):
            run[0] += 1
            path = scratch / f"plane-{run[0]}"
            begin = time.perf_counter()
            manifest = _write_plane_pass(path, columns, max(workers, 2))
            elapsed = time.perf_counter() - begin
            assert manifest.rows == WRITE_PLANE_ROWS
            shutil.rmtree(path)
            return elapsed

        plane_s = benchmark.pedantic(timed_pass, rounds=1, iterations=1)
        plane_rate = WRITE_PLANE_ROWS / plane_s

        print_banner(
            f"Direct-to-store ingest: MEDIUM {len(dataset):,} samples, "
            f"{workers} workers, {cpus} cpu(s)"
        )
        print(f"{'stage':>28s} {'wall':>9s} {'samples/s':>12s}")
        print("-" * 52)
        print(f"{'MEDIUM end-to-end':>28s} {e2e_s:>8.2f}s {e2e_rate:>12,.0f}")
        print(f"{'write plane (2M rows)':>28s} {plane_s:>8.2f}s {plane_rate:>12,.0f}")
        for entry in worker_stats:
            print(
                f"{'worker %d' % entry['worker']:>28s} "
                f"{entry['wall_s']:>8.2f}s {entry['rows_per_s']:>12,.0f}"
            )

        artifact = {}
        if ARTIFACT.exists():
            artifact = json.loads(ARTIFACT.read_text())
        artifact.update({
            "direct_workers": workers,
            "direct_executor": "process" if can_fork else "thread",
            "direct_cpus": cpus,
            "direct_medium_samples": len(dataset),
            "direct_medium_s": round(e2e_s, 3),
            "direct_medium_samples_per_s": round(e2e_rate),
            "direct_store_intact": True,
            "write_plane_rows": WRITE_PLANE_ROWS,
            "write_plane_s": round(plane_s, 3),
            "write_plane_samples_per_s": round(plane_rate),
            "write_plane_floor": (
                WRITE_PLANE_FLOOR if cpus >= 2 else WRITE_PLANE_FLOOR_1CPU
            ),
            "e2e_floor_applies": cpus >= E2E_FLOOR_MIN_CPUS,
            "worker_process_stats": [
                {k: v for k, v in entry.items()} for entry in worker_stats
            ],
        })
        ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"wrote {ARTIFACT}")

        floor = WRITE_PLANE_FLOOR if cpus >= 2 else WRITE_PLANE_FLOOR_1CPU
        assert plane_rate >= floor, (
            f"write plane {plane_rate:,.0f} samples/s below the "
            f"{floor:,} floor"
        )
        assert e2e_s <= MEDIUM_BUDGET_S, (
            f"direct MEDIUM collection took {e2e_s:.0f}s, over the "
            f"{MEDIUM_BUDGET_S:.0f}s budget"
        )
        if cpus >= E2E_FLOOR_MIN_CPUS:
            assert e2e_rate >= E2E_FLOOR, (
                f"end-to-end {e2e_rate:,.0f} samples/s below the "
                f"{E2E_FLOOR:,} floor on a {cpus}-core machine"
            )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
