"""Extension bench: data locality (paper §6, privacy direction).

Quantifies "processing local data locally": for each probe, is the
nearest cloud region domestic?  Shape targets: locality is a privilege of
the 21 datacenter countries; most measured countries cannot keep cloud
traffic at home, and Africa has almost no domestic reach — which is the
substrate of the paper's privacy argument for edge.
"""

from conftest import print_banner

from repro.core.locality import (
    cloud_locality_summary,
    domestic_share_by_continent,
    locality_with_national_edge,
)
from repro.viz import bar_chart


def test_data_locality(small_dataset, benchmark):
    summary = benchmark.pedantic(
        lambda: cloud_locality_summary(small_dataset), rounds=2, iterations=1
    )
    shares = domestic_share_by_continent(small_dataset)
    edge_delta = locality_with_national_edge(small_dataset)

    print_banner("Data locality: probes whose nearest region is domestic")
    print(bar_chart(
        {c: shares[c] for c in ("NA", "EU", "OC", "AS", "SA", "AF") if c in shares},
        fmt="{:.0%}",
    ))
    print(f"\noverall: {summary['probe_share_domestic']:.0%} of probes, "
          f"{summary['population_share_domestic']:.0%} of covered population")
    print(f"countries with zero domestic reach: "
          f"{summary['countries_fully_foreign']}")
    print(f"a national edge would give locality to "
          f"{edge_delta['countries_gaining_locality']} more countries")

    # Shape targets.
    assert shares["NA"] > 0.8
    assert shares["AF"] < 0.25
    assert summary["countries_fully_foreign"] > 100
    assert edge_delta["probe_share_domestic_after"] == 1.0
