"""Observability overhead — instrumentation must stay under 5% on ingest.

The SMALL campaign is collected through the default fast path twice over:
min-of-3 uninstrumented (``obs=None`` → the shared ``NULL_OBS`` no-op
context) against min-of-3 fully instrumented (live metrics registry +
span tracer).  Window-granularity instrumentation — one span and a
handful of counter bumps per measurement window, never per sample — is
what keeps the delta inside the 5% acceptance bar.  The two frozen
datasets must also fingerprint byte-identically: telemetry observes the
collection, it never participates in it.  The measured table is written
to ``BENCH_obs.json`` for the CI artifact.
"""

import json
import os
import time
from pathlib import Path

from conftest import print_banner

from repro.core.campaign import Campaign, CampaignScale
from repro.obs import Obs

BENCH_SEED = 7

#: All frozen sample columns, in schema order (matches the parity suite).
SAMPLE_COLUMNS = (
    "probe_id", "target_index", "timestamp",
    "rtt_min", "rtt_avg", "sent", "rcvd",
)

#: Acceptance ceiling: instrumented ingest may cost at most this much
#: extra wall-clock relative to the uninstrumented run.
OVERHEAD_CEILING = 0.05

ROUNDS = 3

ARTIFACT = Path(os.environ.get("REPRO_BENCH_ARTIFACT", "BENCH_obs.json"))


def _fingerprint(dataset) -> bytes:
    return b"".join(dataset.column(name).tobytes() for name in SAMPLE_COLUMNS)


def _collect(instrumented: bool):
    campaign = Campaign.from_paper(
        scale=CampaignScale.SMALL,
        seed=BENCH_SEED,
        obs=Obs() if instrumented else None,
    )
    campaign.create_measurements()
    start = time.perf_counter()
    dataset = campaign.collect()
    return campaign, dataset, time.perf_counter() - start


def test_obs_overhead(benchmark):
    """Uninstrumented vs instrumented collection of the same campaign."""
    # Untimed warm-up: imports, fleet construction, route caches.
    _collect(False)

    bare_runs = [_collect(False) for _ in range(ROUNDS)]
    live_runs = [_collect(True) for _ in range(ROUNDS)]
    bare_s = min(wall for _, _, wall in bare_runs)
    live_s = benchmark.pedantic(
        lambda: _collect(True)[2], rounds=1, iterations=1
    )
    live_s = min([live_s] + [wall for _, _, wall in live_runs])
    overhead = live_s / bare_s - 1.0

    bare_dataset = bare_runs[0][1]
    live_campaign, live_dataset, _ = live_runs[0]
    identical = _fingerprint(live_dataset) == _fingerprint(bare_dataset)
    snapshot = live_campaign.obs.registry.snapshot()
    collected = snapshot["counters"]["campaign_measurements_collected_total"]
    spans = len(live_campaign.obs.tracer.finished)

    print_banner(
        f"Observability overhead: SMALL {len(live_dataset):,} samples, "
        f"{collected} measurement windows, {spans} spans"
    )
    print(f"{'mode':>22s} {'wall':>9s} {'overhead':>9s}")
    print("-" * 43)
    print(f"{'uninstrumented':>22s} {bare_s:>8.2f}s {'':>9s}")
    print(f"{'instrumented':>22s} {live_s:>8.2f}s {overhead:>8.1%}")
    print(f"byte-identical: {'yes' if identical else 'NO'}")

    ARTIFACT.write_text(json.dumps({
        "seed": BENCH_SEED,
        "cpus": os.cpu_count(),
        "samples": len(live_dataset),
        "measurement_windows": collected,
        "spans": spans,
        "uninstrumented_s": round(bare_s, 3),
        "instrumented_s": round(live_s, 3),
        "overhead": round(overhead, 4),
        "overhead_ceiling": OVERHEAD_CEILING,
        "byte_identical": identical,
    }, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")

    assert identical, "instrumented SMALL dataset diverged from uninstrumented bytes"
    assert overhead < OVERHEAD_CEILING, (
        f"instrumentation overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_CEILING:.0%} ceiling"
    )
