"""Extension bench: edge-deployment latency gains (paper §6).

Quantifies "plausible deployments": how much latency would gateway,
national, and basestation-colocated edge deployments actually save over
the measured cloud, per continent — and at what cost per improved user.
Shape targets: gains small in NA/EU, large in AF/SA; basestation
colocation is wildly cost-ineffective.
"""

from conftest import print_banner

from repro.edge.gains import cost_per_improved_user_kusd, gains_by_continent, gains_frame
from repro.edge.sites import (
    basestation_deployment,
    gateway_deployment,
    national_deployment,
)
from repro.viz import table


def test_edge_deployment_gains(small_dataset, benchmark):
    national = national_deployment(1)
    summaries = benchmark.pedantic(
        lambda: gains_by_continent(small_dataset, national), rounds=2, iterations=1
    )

    print_banner("Edge-deployment gains over the measured cloud (section 6)")
    for name, sites in (
        ("gateway", gateway_deployment()),
        ("national", national),
        ("basestation", basestation_deployment()),
    ):
        cost = cost_per_improved_user_kusd(small_dataset, sites)
        print(f"\n--- {name} deployment ({len(sites)} sites, "
              f"{cost:,.0f} kUSD per meaningfully-improved probe) ---")
        print(table(gains_frame(small_dataset, sites)))

    # Shape targets: the paper's conclusions.
    assert summaries["AF"].median_gain_ms > summaries["EU"].median_gain_ms + 10
    assert summaries["SA"].median_gain_ms > summaries["NA"].median_gain_ms
    assert summaries["NA"].median_gain_ms < 15.0  # little benefit when connected
    assert summaries["AF"].share_meaningful > 0.5
    # Basestation colocation costs at least an order of magnitude more
    # per improved user than a national footprint.
    assert cost_per_improved_user_kusd(
        small_dataset, basestation_deployment()
    ) > 10 * cost_per_improved_user_kusd(small_dataset, national)
