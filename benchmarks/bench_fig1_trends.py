"""F1 — Figure 1: edge vs cloud searches and publications, 2004-2019.

Paper artifact: two-axis time series showing the CDN -> Cloud -> Edge eras.
Shape targets: cloud search interest peaks ~2012 then declines; edge
publications explode after ~2015 while remaining below cloud's peak.
"""

from conftest import print_banner

from repro.core.trends import collect_figure1, detect_eras, growth_summary
from repro.scholar.crawler import ScholarCrawler
from repro.viz import line_chart


def test_fig1_trends(benchmark):
    figure1 = benchmark.pedantic(
        lambda: collect_figure1(ScholarCrawler(seed=7), seed=7),
        rounds=3,
        iterations=1,
    )
    eras = detect_eras(figure1)
    growth = growth_summary(figure1)

    print_banner("Figure 1: zeitgeist of edge vs cloud computing")
    series = {}
    for keyword in ("cloud computing", "edge computing"):
        sub = figure1.filter(figure1["keyword"] == keyword)
        series[f"{keyword.split()[0]}-interest"] = [
            (int(y), float(v)) for y, v in zip(sub["year"], sub["search_interest"])
        ]
    print(line_chart(series))
    print(f"\neras: CDN until {eras.cdn_until}, Cloud from {eras.cloud_from}, "
          f"Edge from {eras.edge_from}")
    print(f"growth: {growth}")

    # Shape assertions (the figure's story).
    assert 2011 <= growth["cloud_interest_peak_year"] <= 2013
    assert eras.cloud_from < eras.edge_from
    cloud = figure1.filter(figure1["keyword"] == "cloud computing")
    edge = figure1.filter(figure1["keyword"] == "edge computing")
    assert max(edge["publications"]) > 5_000
    assert max(cloud["publications"]) > max(edge["publications"])
