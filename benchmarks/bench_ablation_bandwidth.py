"""Ablation: the 1 GB/day bandwidth threshold of the feasibility zone.

DESIGN.md flags the FZ's bandwidth boundary as an estimate ("we estimate
1GB/entity data generation to be a fitting threshold").  This ablation
(a) derives the threshold from the last-mile capacity model for each
access technology, and (b) sweeps the FZ boundary an order of magnitude
in both directions to see which verdicts are actually sensitive to it.
"""

from conftest import print_banner

from repro.apps.catalog import all_applications
from repro.apps.feasibility import FeasibilityZone, Verdict, assess
from repro.net.bandwidth import aggregation_threshold_gb_day
from repro.net.lastmile import AccessTechnology


def _in_zone_slugs(threshold_gb_day: float):
    zone = FeasibilityZone(bandwidth_min_gb_day=threshold_gb_day)
    return {
        app.slug
        for app in all_applications()
        if assess(app, zone) is Verdict.IN_ZONE
    }


def test_ablation_bandwidth_threshold(benchmark):
    sweep = benchmark.pedantic(
        lambda: {t: _in_zone_slugs(t) for t in (0.1, 1.0, 10.0)},
        rounds=3,
        iterations=1,
    )

    print_banner("Ablation: FZ bandwidth threshold")
    print("derived last-mile congestion thresholds (GB/day/entity):")
    for tech in (
        AccessTechnology.LTE,
        AccessTechnology.DSL,
        AccessTechnology.CABLE,
        AccessTechnology.FIBRE,
    ):
        value = aggregation_threshold_gb_day(tech, 2)
        print(f"  {tech.value:10s} {value:8.2f}")
    print("\napps in zone per FZ threshold:")
    for threshold, slugs in sorted(sweep.items()):
        print(f"  {threshold:5.1f} GB/day: {len(slugs):2d} apps  "
              f"({', '.join(sorted(slugs))})")

    # Monotonicity: a stricter bandwidth bar shrinks the zone.
    assert sweep[0.1] >= sweep[1.0] >= sweep[10.0]
    # The headline residents are robust across the sweep.
    assert "traffic-monitoring" in sweep[10.0]
    assert "cloud-gaming" in sweep[1.0]
    # The derived LTE/DSL thresholds bracket the paper's 1 GB/day.
    lte = aggregation_threshold_gb_day(AccessTechnology.LTE, 2)
    dsl = aggregation_threshold_gb_day(AccessTechnology.DSL, 2)
    assert min(lte, dsl) <= 1.0 <= max(lte, dsl) * 2.0
