"""F2 — Figure 2: driving applications on the latency/bandwidth plane.

Paper artifact: application ellipses grouped into quadrants Q1-Q4 with
market-share coloring.  Shape targets: Q2 holds the hyped, big-market
apps; Q4 holds the uncompelling ones.
"""

from conftest import print_banner

from repro.apps.catalog import all_applications
from repro.apps.quadrants import Quadrant, market_share_by_quadrant, quadrant_table
from repro.viz import bar_chart


def test_fig2_quadrants(benchmark):
    table = benchmark(quadrant_table)
    shares = market_share_by_quadrant()

    print_banner("Figure 2: application quadrants")
    for quadrant, apps in table.items():
        print(f"\n{quadrant.name} ({quadrant.value}): "
              f"{shares[quadrant]:.0f} B$ expected by 2025")
        for app in apps:
            print(f"   {app.name:28s} lat {app.latency_low_ms:>8.0f}-"
                  f"{app.latency_high_ms:<9.0f} ms   "
                  f"data {app.bandwidth_low_gb_day:>5.2f}-"
                  f"{app.bandwidth_high_gb_day:<6.1f} GB/day   "
                  f"{app.market_2025_busd:.0f} B$")
    print("\nmarket by quadrant:")
    print(bar_chart({q.name: s for q, s in shares.items()}, fmt="{:.0f} B$"))

    # Shape assertions.
    assert sum(len(apps) for apps in table.values()) == len(all_applications())
    assert shares[Quadrant.Q2] == max(shares.values())
    assert {a.slug for a in table[Quadrant.Q2]} >= {"ar-vr", "autonomous-vehicles"}
