"""Out-of-core scan engine — pruning speedup and bounded memory.

A synthetic store 10x the paper-scale MEDIUM campaign (32M rows,
monotone timestamps — the natural layout of an append-only collection)
is written once, then queried three ways:

* **pruned** — a <=10%-selective timestamp window with zone maps: the
  scan engine skips every shard the predicate cannot match.
* **unpruned** — the identical query against the same bytes with the
  zone maps stripped from the manifest (a version-1 store): every
  shard is read and masked.
* **full** — an unpredicated streaming summary of a whole column.

Pruned vs unpruned isolates exactly what zone maps buy.  The floor
(5x) is asserted on the windowed row count, where scanning *is* the
query; the windowed summary is timed too, for the record — its t-digest
runs on the same selected rows either way, so pruning helps it less.
The full streaming pass runs in a subprocess whose peak RSS must stay
under 100 MB — the store is ~1.8 GB, so staying bounded *is* the
out-of-core property.  Measurements land in ``BENCH_scan.json`` for
the CI artifact.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from conftest import print_banner

from repro.store import MANIFEST_NAME, StoreWriter, scan_store

BENCH_SEED = 7

#: 10x the MEDIUM campaign's ~3.2M samples (override to iterate locally).
ROWS = int(os.environ.get("REPRO_BENCH_SCAN_ROWS", 32_000_000))

#: Rows written per batch — bounds the writer's memory, not the store's.
BATCH = 1 << 20

#: Acceptance floors.
SPEEDUP_FLOOR = 5.0
RSS_CEILING_MB = 100.0

#: Fraction of the timestamp range the selective predicate admits.
SELECTIVITY = 0.10

ARTIFACT = Path(os.environ.get("REPRO_BENCH_ARTIFACT", "BENCH_scan.json"))

#: Subprocess body: one full streaming pass, reporting its own peak RSS.
#: Runs in a fresh interpreter so the measurement starts from a clean
#: baseline instead of inheriting the parent's allocations.
_RSS_PROBE = """
import json, sys

def peak_rss_mb():
    # VmHWM, not ru_maxrss: getrusage's high-water mark survives the
    # fork from a large parent, VmHWM restarts with this interpreter.
    for line in open("/proc/self/status"):
        if line.startswith("VmHWM"):
            return int(line.split()[1]) / 1024.0
    raise SystemExit("no VmHWM in /proc/self/status")

from repro.store import scan_store
scan = scan_store(sys.argv[1])
summary = scan.summarize("rtt_min")
grid = scan.streaming_ecdf("rtt_min", bins=512)
print(json.dumps({
    "rows": summary.count,
    "p95_below": grid.fraction_below(grid.edges[-1]),
    "peak_rss_mb": peak_rss_mb(),
}))
"""


def _build_store(path):
    """Write the synthetic store in bounded batches.

    Timestamps are globally monotone (one sample per simulated tick),
    so shard zone maps partition the time axis — the layout every
    append-only collection produces for free.
    """
    rng = np.random.default_rng(BENCH_SEED)
    writer = StoreWriter(path, provenance={"seed": BENCH_SEED})
    written = 0
    while written < ROWS:
        n = min(BATCH, ROWS - written)
        rtt = np.round(rng.uniform(1.0, 300.0, n), 3)
        writer.append_columns({
            "probe_id": rng.integers(1, 12000, n).astype("<i4"),
            # Target-clustered, like real collection: the manifest's
            # (target, rows) windows stay run-length compact.
            "target_index": np.sort(
                rng.integers(0, 101, n).astype("<i4")
            ),
            "timestamp": 1_500_000_000 + np.arange(
                written, written + n, dtype="<i8"
            ),
            "rtt_min": rtt.astype("<f8"),
            "rtt_avg": (rtt * 1.1).astype("<f8"),
            "sent": np.full(n, 3, dtype="<i2"),
            "rcvd": rng.integers(0, 4, n).astype("<i2"),
        })
        written += n
    return writer.finalize()


def _strip_zones(src, dst):
    """Clone ``src`` as a version-1 store (hard links; same data bytes)."""
    dst.mkdir()
    for entry in src.iterdir():
        if entry.name != MANIFEST_NAME:
            os.link(entry, dst / entry.name)
    payload = json.loads((src / MANIFEST_NAME).read_text())
    payload["version"] = 1
    for shard in payload["shards"]:
        for chunk in shard["chunks"].values():
            chunk.pop("zone", None)
    (dst / MANIFEST_NAME).write_text(
        json.dumps(payload, indent=1, sort_keys=True)
    )


def _window_count(path, cutoff):
    start = time.perf_counter()
    count = scan_store(path).filter("timestamp", "<", cutoff).count()
    return count, time.perf_counter() - start


def _window_summary(path, cutoff):
    start = time.perf_counter()
    summary = (
        scan_store(path)
        .filter("timestamp", "<", cutoff)
        .summarize("rtt_min")
    )
    return summary, time.perf_counter() - start


def test_scan_pruning_speedup_and_bounded_rss(benchmark, tmp_path):
    zoned = tmp_path / "zoned"
    manifest = _build_store(zoned)
    store_bytes = sum(p.stat().st_size for p in zoned.iterdir())
    unzoned = tmp_path / "unzoned"
    _strip_zones(zoned, unzoned)

    cutoff = 1_500_000_000 + int(ROWS * SELECTIVITY)
    expected_rows = int(ROWS * SELECTIVITY)

    # Warm the page cache on both sides so the comparison is pure CPU +
    # chunk-skipping, not first-touch IO order.
    _window_count(zoned, cutoff)
    _window_count(unzoned, cutoff)

    pruned_count, _ = _window_count(zoned, cutoff)
    pruned_s = benchmark.pedantic(
        lambda: _window_count(zoned, cutoff)[1], rounds=1, iterations=1
    )
    unpruned_count, unpruned_s = _window_count(unzoned, cutoff)
    speedup = unpruned_s / pruned_s

    pruned_summary, pruned_sum_s = _window_summary(zoned, cutoff)
    unpruned_summary, unpruned_sum_s = _window_summary(unzoned, cutoff)
    identical = (
        pruned_count == unpruned_count
        and pruned_summary.as_dict() == unpruned_summary.as_dict()
    )

    # The full streaming pass, in its own interpreter, for a clean RSS.
    probe = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE, str(zoned)],
        capture_output=True, text=True, check=True,
    )
    full = json.loads(probe.stdout)

    print_banner(
        f"Out-of-core scan: {ROWS:,} rows, {store_bytes / 1e6:.0f} MB on "
        f"disk, {len(manifest.shards)} shards"
    )
    print(f"{'query':>38s} {'wall':>9s}")
    print("-" * 50)
    print(f"{'10% window count, zone maps':>38s} {pruned_s:>8.2f}s")
    print(f"{'10% window count, no zone maps (v1)':>38s} {unpruned_s:>8.2f}s")
    print(f"{'10% window summary, zone maps':>38s} {pruned_sum_s:>8.2f}s")
    print(f"{'10% window summary, no zone maps':>38s} {unpruned_sum_s:>8.2f}s")
    print(f"pruning speedup: {speedup:.1f}x  (floor {SPEEDUP_FLOOR:.0f}x)")
    print(f"full-pass subprocess peak RSS: {full['peak_rss_mb']:.1f} MB "
          f"(ceiling {RSS_CEILING_MB:.0f} MB)")
    print(f"answers identical: {'yes' if identical else 'NO'}")

    ARTIFACT.write_text(json.dumps({
        "seed": BENCH_SEED,
        "cpus": os.cpu_count(),
        "rows": ROWS,
        "store_bytes": store_bytes,
        "shards": len(manifest.shards),
        "selectivity": SELECTIVITY,
        "pruned_count_s": round(pruned_s, 3),
        "unpruned_count_s": round(unpruned_s, 3),
        "pruned_summary_s": round(pruned_sum_s, 3),
        "unpruned_summary_s": round(unpruned_sum_s, 3),
        "pruning_speedup": round(speedup, 2),
        "full_pass_rows": full["rows"],
        "peak_rss_mb": round(full["peak_rss_mb"], 1),
        "answers_identical": identical,
        "speedup_floor": SPEEDUP_FLOOR,
        "rss_ceiling_mb": RSS_CEILING_MB,
    }, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")

    assert identical, "pruned and unpruned scans disagreed"
    assert pruned_count == expected_rows
    assert pruned_summary.count == expected_rows
    assert full["rows"] == ROWS
    assert speedup >= SPEEDUP_FLOOR, (
        f"pruning speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )
    assert full["peak_rss_mb"] < RSS_CEILING_MB, (
        f"full streaming pass peaked at {full['peak_rss_mb']:.1f} MB"
    )
