"""RIPE Atlas probe tags.

Atlas probes carry *system tags* (set automatically by the platform, e.g.
``system-ipv4-works``) and *user tags* (set by the probe host, e.g.
``home``, ``lte``, ``datacentre``).  The paper leans on user tags twice:

* §4.1 — probes "clearly installed in privileged locations (e.g.,
  datacenters, cloud network)" are excluded via tags;
* §4.3 — the wired/wireless cohorts of Figure 7 are selected by access-
  technology tags (``ethernet``/``broadband`` vs ``lte``/``wifi``/``wlan``).

This module defines the vocabulary and the cohort predicates.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

# --- system tags ------------------------------------------------------------

SYSTEM_IPV4_WORKS = "system-ipv4-works"
SYSTEM_IPV6_WORKS = "system-ipv6-works"
SYSTEM_ANCHOR = "system-anchor"
SYSTEM_V3 = "system-v3"

# --- environment user tags ---------------------------------------------------

TAG_HOME = "home"
TAG_OFFICE = "office"
TAG_CORE = "core"
TAG_DATACENTRE = "datacentre"
TAG_CLOUD = "cloud"
TAG_ACADEMIC = "academic"

#: Environments the paper excludes as "privileged locations" (§4.1).
PRIVILEGED_TAGS: FrozenSet[str] = frozenset({TAG_DATACENTRE, TAG_CLOUD})

# --- access-technology user tags ---------------------------------------------

TAG_ETHERNET = "ethernet"
TAG_BROADBAND = "broadband"
TAG_FIBRE = "fibre"
TAG_DSL = "dsl"
TAG_CABLE = "cable"
TAG_WIFI = "wifi"
TAG_WLAN = "wlan"
TAG_LTE = "lte"
TAG_4G = "4g"
TAG_SATELLITE = "satellite"

#: Tags the paper treats as indicating a wired last mile (§4.3).
WIRED_TAGS: FrozenSet[str] = frozenset(
    {TAG_ETHERNET, TAG_BROADBAND, TAG_FIBRE, TAG_DSL, TAG_CABLE}
)

#: Tags the paper treats as indicating a wireless last mile (§4.3).
WIRELESS_TAGS: FrozenSet[str] = frozenset(
    {TAG_WIFI, TAG_WLAN, TAG_LTE, TAG_4G, TAG_SATELLITE}
)

ALL_KNOWN_TAGS: FrozenSet[str] = (
    frozenset({SYSTEM_IPV4_WORKS, SYSTEM_IPV6_WORKS, SYSTEM_ANCHOR, SYSTEM_V3})
    | PRIVILEGED_TAGS
    | WIRED_TAGS
    | WIRELESS_TAGS
    | frozenset({TAG_HOME, TAG_OFFICE, TAG_CORE, TAG_ACADEMIC})
)


def is_privileged(tags: Iterable[str]) -> bool:
    """True when the tag set marks a datacenter/cloud-hosted probe."""
    return bool(PRIVILEGED_TAGS.intersection(tags))


def is_wired(tags: Iterable[str]) -> bool:
    """True when the tag set declares a wired last mile."""
    return bool(WIRED_TAGS.intersection(tags))


def is_wireless(tags: Iterable[str]) -> bool:
    """True when the tag set declares a wireless last mile."""
    return bool(WIRELESS_TAGS.intersection(tags))


def classify_lastmile(tags: Iterable[str]) -> str:
    """Cohort of a probe: ``wired``, ``wireless``, ``ambiguous`` or ``untagged``.

    Probes tagged with both kinds (it happens on the real platform) are
    ``ambiguous`` and excluded from Figure 7's cohorts, mirroring the
    paper's filtering.
    """
    tags = set(tags)
    wired = is_wired(tags)
    wireless = is_wireless(tags)
    if wired and wireless:
        return "ambiguous"
    if wired:
        return "wired"
    if wireless:
        return "wireless"
    return "untagged"


def normalize(tags: Iterable[str]) -> Tuple[str, ...]:
    """Lower-case, deduplicate and sort a tag collection."""
    return tuple(sorted({tag.strip().lower() for tag in tags if tag.strip()}))
