"""Credit accounting for the simulated Atlas platform.

RIPE Atlas meters measurements in *credits*: each ping result costs a few
credits (one per packet), traceroutes cost more.  Accounts have a balance
and a daily spending limit.  The paper's acknowledgements thank the Atlas
team "for supporting our measurements with increased quota limits" — a
nine-month, 3200-probe campaign is far beyond the default quota, and the
simulator reproduces that constraint faithfully: the default account will
refuse the paper-scale campaign unless granted a quota raise.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import AtlasError, QuotaExceededError

#: Credits charged per ping packet (so a 3-packet ping result costs 3).
PING_COST_PER_PACKET = 1

#: Credits charged per traceroute result.
TRACEROUTE_COST = 10

#: Default daily spending limit of a regular account.
DEFAULT_DAILY_LIMIT = 1_000_000

#: Default starting balance of a regular account.
DEFAULT_BALANCE = 5_000_000

_DAY_S = 86_400


def ping_result_cost(packets: int) -> int:
    """Credit cost of one ping result with ``packets`` echo requests."""
    if packets <= 0:
        raise AtlasError(f"packets must be positive: {packets}")
    return PING_COST_PER_PACKET * packets


@dataclass
class CreditAccount:
    """A metered Atlas account.

    Mutation is serialized by an internal lock: the check-then-apply in
    :meth:`charge` must be atomic, or concurrent chargers (parallel
    collection workers, a multi-threaded client) could both pass the
    balance check and overdraw the account — or lose an update to the
    per-day spend map.
    """

    key: str
    balance: int = DEFAULT_BALANCE
    daily_limit: int = DEFAULT_DAILY_LIMIT
    spent_total: int = 0
    _spent_by_day: Dict[int, int] = field(default_factory=dict)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def charge(self, amount: int, timestamp: int) -> None:
        """Charge ``amount`` credits at ``timestamp``.

        Raises :class:`QuotaExceededError` when the balance or the daily
        limit would be exceeded; the charge is then not applied.
        """
        if amount < 0:
            raise AtlasError(f"cannot charge a negative amount: {amount}")
        with self._lock:
            if amount > self.balance:
                raise QuotaExceededError(
                    f"account {self.key!r} balance {self.balance} "
                    f"cannot cover {amount}"
                )
            day = timestamp // _DAY_S
            day_spent = self._spent_by_day.get(day, 0)
            if day_spent + amount > self.daily_limit:
                raise QuotaExceededError(
                    f"account {self.key!r} daily limit {self.daily_limit} exceeded"
                )
            self.balance -= amount
            self.spent_total += amount
            self._spent_by_day[day] = day_spent + amount

    def grant(self, amount: int) -> None:
        """Top up the account (earning credits by hosting probes)."""
        if amount < 0:
            raise AtlasError(f"cannot grant a negative amount: {amount}")
        with self._lock:
            self.balance += amount

    def raise_quota(self, daily_limit: int, balance: int = None) -> None:
        """The 'increased quota limits' from the paper's acknowledgements."""
        if daily_limit <= 0:
            raise AtlasError("daily limit must be positive")
        with self._lock:
            self.daily_limit = daily_limit
            if balance is not None:
                self.balance = max(self.balance, balance)

    def spent_on_day(self, timestamp: int) -> int:
        with self._lock:
            return self._spent_by_day.get(timestamp // _DAY_S, 0)
