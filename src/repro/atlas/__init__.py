"""RIPE Atlas platform simulator: probes, API, results, credits."""

from repro.atlas.anchors import (
    anchors_in,
    anchors_of,
    country_pair_median,
    mesh_ping,
    mesh_sample,
)
from repro.atlas.credits import (
    DEFAULT_BALANCE,
    DEFAULT_DAILY_LIMIT,
    PING_COST_PER_PACKET,
    TRACEROUTE_COST,
    CreditAccount,
    ping_result_cost,
)
from repro.atlas.platform import DEFAULT_KEY, AtlasPlatform, StoredMeasurement
from repro.atlas.population import (
    FIRST_PROBE_ID,
    generate_population,
    population_summary,
    probes_by_country,
)
from repro.atlas.probes import Probe, ProbeEnvironment, ProbeStatus

__all__ = [
    "AtlasPlatform",
    "CreditAccount",
    "DEFAULT_BALANCE",
    "DEFAULT_DAILY_LIMIT",
    "DEFAULT_KEY",
    "FIRST_PROBE_ID",
    "PING_COST_PER_PACKET",
    "Probe",
    "ProbeEnvironment",
    "ProbeStatus",
    "StoredMeasurement",
    "TRACEROUTE_COST",
    "anchors_in",
    "anchors_of",
    "country_pair_median",
    "generate_population",
    "mesh_ping",
    "mesh_sample",
    "ping_result_cost",
    "population_summary",
    "probes_by_country",
]
