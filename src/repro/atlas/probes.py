"""Probe model.

A :class:`Probe` mirrors the metadata the RIPE Atlas API exposes per probe
(id, ASN, country, coordinates, status, tags) plus the hidden ground truth
the simulator needs (actual access technology, environment, stability).
Analysis code must only rely on the *observable* fields — the paper could
not see the ground truth either, which is exactly why its tag-based
filtering matters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.atlas import tags as tag_vocab
from repro.errors import AtlasError
from repro.geo.coordinates import LatLon
from repro.geo.countries import Country, get_country
from repro.net.lastmile import AccessTechnology


class ProbeEnvironment(enum.Enum):
    """Where a probe is physically installed."""

    HOME = "home"
    OFFICE = "office"
    CORE = "core"
    DATACENTRE = "datacentre"
    CLOUD = "cloud"

    @property
    def is_privileged(self) -> bool:
        """Privileged locations the paper filters out (§4.1)."""
        return self in (ProbeEnvironment.DATACENTRE, ProbeEnvironment.CLOUD)


class ProbeStatus(enum.Enum):
    """Connection status as reported by the Atlas API."""

    CONNECTED = "Connected"
    DISCONNECTED = "Disconnected"
    ABANDONED = "Abandoned"


@dataclass(frozen=True)
class Probe:
    """One RIPE Atlas probe."""

    probe_id: int
    country_code: str
    location: LatLon
    asn: int
    access: AccessTechnology
    environment: ProbeEnvironment
    status: ProbeStatus = ProbeStatus.CONNECTED
    is_anchor: bool = False
    #: Whether the probe's network delivers working IPv6.
    has_ipv6: bool = False
    #: Fraction of scheduled ticks the probe is online for.
    stability: float = 0.97
    #: User tags as the host declared them (may be empty or partial —
    #: hosts under-tag on the real platform too).
    user_tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.probe_id <= 0:
            raise AtlasError(f"probe id must be positive: {self.probe_id}")
        if not 0.0 < self.stability <= 1.0:
            raise AtlasError(f"stability must be in (0, 1]: {self.stability}")
        get_country(self.country_code)  # validate

    @property
    def country(self) -> Country:
        return get_country(self.country_code)

    @property
    def continent(self) -> str:
        return self.country.continent

    @property
    def system_tags(self) -> Tuple[str, ...]:
        tags = [tag_vocab.SYSTEM_IPV4_WORKS, tag_vocab.SYSTEM_V3]
        if self.has_ipv6:
            tags.append(tag_vocab.SYSTEM_IPV6_WORKS)
        if self.is_anchor:
            tags.append(tag_vocab.SYSTEM_ANCHOR)
        return tuple(tags)

    @property
    def tags(self) -> Tuple[str, ...]:
        """All tags, system and user, as the API would report them."""
        return tag_vocab.normalize(self.system_tags + self.user_tags)

    @property
    def address(self) -> str:
        """Synthetic source address, stable per probe id."""
        high, mid = divmod(self.probe_id, 65536)
        mid, low = divmod(mid, 256)
        return f"172.{16 + high % 16}.{mid}.{low}"

    @property
    def address_v6(self) -> str:
        """Synthetic IPv6 source address (empty when v6 is unavailable)."""
        if not self.has_ipv6:
            return ""
        return f"2001:db8:{self.probe_id >> 16:x}:{self.probe_id & 0xFFFF:x}::1"

    def is_online(self, tick_index: int) -> bool:
        """Deterministic churn: online for ``stability`` of ticks.

        Uses a low-discrepancy rotation so outages spread over the campaign
        rather than clustering at its start.
        """
        if self.status is not ProbeStatus.ABANDONED:
            phase = (tick_index * 0.618033988749895 + self.probe_id * 0.382) % 1.0
            return phase < self.stability
        return False

    def as_api_dict(self) -> dict:
        """Probe metadata in (abbreviated) Atlas REST API shape."""
        return {
            "id": self.probe_id,
            "address_v4": self.address,
            "address_v6": self.address_v6 or None,
            "asn_v4": self.asn,
            "country_code": self.country_code,
            "geometry": {
                "type": "Point",
                "coordinates": [self.location.lon, self.location.lat],
            },
            "is_anchor": self.is_anchor,
            "status": {"name": self.status.value},
            "tags": list(self.tags),
        }
