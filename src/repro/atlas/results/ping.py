"""Ping result parsing (sagan ``PingResult`` equivalent)."""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.atlas.results.base import Result, register
from repro.errors import ResultParseError


@dataclass(frozen=True)
class Packet:
    """One echo reply (or timeout) within a ping burst."""

    rtt: Optional[float]

    @property
    def timed_out(self) -> bool:
        return self.rtt is None


@register("ping")
class PingResult(Result):
    """Typed view over a raw ping result.

    Exposes the fields the paper's analysis consumes: minimum/average/
    median/maximum RTT, packet counts, and loss.  Failed measurements
    (no replies) have ``rtt_min is None`` and ``packet_loss == 1.0``.
    """

    def __init__(self, raw):
        super().__init__(raw)
        if raw.get("type") != "ping":
            raise ResultParseError(f"not a ping result: type={raw.get('type')!r}")
        self.destination_address = raw.get("dst_addr")
        self.destination_name = raw.get("dst_name")
        self.packets_sent = self._require(raw, "sent", int)
        self.packets_received = self._require(raw, "rcvd", int)
        self.packet_size = int(raw.get("size", 0))
        self.protocol = raw.get("proto", "ICMP")
        self.step = raw.get("step")
        self.packets = self._parse_packets(raw.get("result", []))
        rtts = [packet.rtt for packet in self.packets if packet.rtt is not None]
        if len(rtts) != self.packets_received:
            raise ResultParseError(
                f"rcvd={self.packets_received} but {len(rtts)} RTTs present"
            )
        self.rtt_min = min(rtts) if rtts else None
        self.rtt_max = max(rtts) if rtts else None
        self.rtt_average = sum(rtts) / len(rtts) if rtts else None
        self.rtt_median = median(rtts) if rtts else None

    @staticmethod
    def _parse_packets(entries) -> List[Packet]:
        packets: List[Packet] = []
        for entry in entries:
            if not isinstance(entry, dict):
                raise ResultParseError(f"malformed packet entry: {entry!r}")
            if "rtt" in entry:
                rtt = float(entry["rtt"])
                if rtt < 0:
                    raise ResultParseError(f"negative RTT: {rtt}")
                packets.append(Packet(rtt=rtt))
            else:
                packets.append(Packet(rtt=None))
        return packets

    @property
    def packet_loss(self) -> float:
        """Fraction of echo requests that went unanswered."""
        if self.packets_sent == 0:
            return 0.0
        return 1.0 - self.packets_received / self.packets_sent

    @property
    def succeeded(self) -> bool:
        return self.packets_received > 0


@dataclass(frozen=True)
class PingColumns:
    """A window of ping results as parallel columns — no per-sample dicts.

    The columnar counterpart of a list of :class:`PingResult`: exactly
    the fields the campaign dataset ingests, one numpy array per column.
    ``rtt_min`` / ``rtt_avg`` are NaN where the burst lost every packet
    (where a parsed result would have ``rtt_min is None``).
    """

    probe_ids: np.ndarray   # int64
    timestamps: np.ndarray  # int64
    rtt_min: np.ndarray     # float64, NaN on failure
    rtt_avg: np.ndarray     # float64, NaN on failure
    sent: np.ndarray        # int64
    rcvd: np.ndarray        # int64

    def __post_init__(self) -> None:
        lengths = {
            len(self.probe_ids), len(self.timestamps), len(self.rtt_min),
            len(self.rtt_avg), len(self.sent), len(self.rcvd),
        }
        if len(lengths) != 1:
            raise ResultParseError(f"ragged ping columns: lengths {sorted(lengths)}")

    def __len__(self) -> int:
        return len(self.probe_ids)

    @classmethod
    def empty(cls) -> "PingColumns":
        return cls(
            probe_ids=np.empty(0, dtype=np.int64),
            timestamps=np.empty(0, dtype=np.int64),
            rtt_min=np.empty(0, dtype=np.float64),
            rtt_avg=np.empty(0, dtype=np.float64),
            sent=np.empty(0, dtype=np.int64),
            rcvd=np.empty(0, dtype=np.int64),
        )

    @classmethod
    def concat(cls, chunks: Iterable["PingColumns"]) -> "PingColumns":
        chunks = list(chunks)
        if not chunks:
            return cls.empty()
        return cls(
            probe_ids=np.concatenate([c.probe_ids for c in chunks]),
            timestamps=np.concatenate([c.timestamps for c in chunks]),
            rtt_min=np.concatenate([c.rtt_min for c in chunks]),
            rtt_avg=np.concatenate([c.rtt_avg for c in chunks]),
            sent=np.concatenate([c.sent for c in chunks]),
            rcvd=np.concatenate([c.rcvd for c in chunks]),
        )

    @classmethod
    def from_results(cls, results: Sequence[PingResult]) -> "PingColumns":
        """Columnar-ize parsed scalar results (the parity reference)."""
        return cls(
            probe_ids=np.asarray([r.probe_id for r in results], dtype=np.int64),
            timestamps=np.asarray(
                [r.created_timestamp for r in results], dtype=np.int64
            ),
            rtt_min=np.asarray(
                [r.rtt_min if r.succeeded else np.nan for r in results],
                dtype=np.float64,
            ),
            rtt_avg=np.asarray(
                [r.rtt_average if r.succeeded else np.nan for r in results],
                dtype=np.float64,
            ),
            sent=np.asarray([r.packets_sent for r in results], dtype=np.int64),
            rcvd=np.asarray([r.packets_received for r in results], dtype=np.int64),
        )
