"""Ping result parsing (sagan ``PingResult`` equivalent)."""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import List, Optional

from repro.atlas.results.base import Result, register
from repro.errors import ResultParseError


@dataclass(frozen=True)
class Packet:
    """One echo reply (or timeout) within a ping burst."""

    rtt: Optional[float]

    @property
    def timed_out(self) -> bool:
        return self.rtt is None


@register("ping")
class PingResult(Result):
    """Typed view over a raw ping result.

    Exposes the fields the paper's analysis consumes: minimum/average/
    median/maximum RTT, packet counts, and loss.  Failed measurements
    (no replies) have ``rtt_min is None`` and ``packet_loss == 1.0``.
    """

    def __init__(self, raw):
        super().__init__(raw)
        if raw.get("type") != "ping":
            raise ResultParseError(f"not a ping result: type={raw.get('type')!r}")
        self.destination_address = raw.get("dst_addr")
        self.destination_name = raw.get("dst_name")
        self.packets_sent = self._require(raw, "sent", int)
        self.packets_received = self._require(raw, "rcvd", int)
        self.packet_size = int(raw.get("size", 0))
        self.protocol = raw.get("proto", "ICMP")
        self.step = raw.get("step")
        self.packets = self._parse_packets(raw.get("result", []))
        rtts = [packet.rtt for packet in self.packets if packet.rtt is not None]
        if len(rtts) != self.packets_received:
            raise ResultParseError(
                f"rcvd={self.packets_received} but {len(rtts)} RTTs present"
            )
        self.rtt_min = min(rtts) if rtts else None
        self.rtt_max = max(rtts) if rtts else None
        self.rtt_average = sum(rtts) / len(rtts) if rtts else None
        self.rtt_median = median(rtts) if rtts else None

    @staticmethod
    def _parse_packets(entries) -> List[Packet]:
        packets: List[Packet] = []
        for entry in entries:
            if not isinstance(entry, dict):
                raise ResultParseError(f"malformed packet entry: {entry!r}")
            if "rtt" in entry:
                rtt = float(entry["rtt"])
                if rtt < 0:
                    raise ResultParseError(f"negative RTT: {rtt}")
                packets.append(Packet(rtt=rtt))
            else:
                packets.append(Packet(rtt=None))
        return packets

    @property
    def packet_loss(self) -> float:
        """Fraction of echo requests that went unanswered."""
        if self.packets_sent == 0:
            return 0.0
        return 1.0 - self.packets_received / self.packets_sent

    @property
    def succeeded(self) -> bool:
        return self.packets_received > 0
