"""Traceroute result parsing (sagan ``TracerouteResult`` equivalent)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.atlas.results.base import Result, register
from repro.errors import ResultParseError


@dataclass(frozen=True)
class HopReply:
    """One reply within a traceroute hop."""

    origin: Optional[str]
    rtt: Optional[float]

    @property
    def timed_out(self) -> bool:
        return self.rtt is None


@dataclass(frozen=True)
class Hop:
    """One TTL step of a traceroute."""

    index: int
    replies: Tuple[HopReply, ...]

    @property
    def responded(self) -> bool:
        return any(not reply.timed_out for reply in self.replies)

    @property
    def best_rtt(self) -> Optional[float]:
        rtts = [reply.rtt for reply in self.replies if reply.rtt is not None]
        return min(rtts) if rtts else None

    @property
    def origin(self) -> Optional[str]:
        for reply in self.replies:
            if reply.origin is not None:
                return reply.origin
        return None


@register("traceroute")
class TracerouteResult(Result):
    """Typed view over a raw traceroute result."""

    def __init__(self, raw):
        super().__init__(raw)
        if raw.get("type") != "traceroute":
            raise ResultParseError(
                f"not a traceroute result: type={raw.get('type')!r}"
            )
        self.destination_address = raw.get("dst_addr")
        self.destination_name = raw.get("dst_name")
        self.protocol = raw.get("proto", "ICMP")
        self.paris_id = raw.get("paris_id")
        self.hops = self._parse_hops(raw.get("result", []))

    @staticmethod
    def _parse_hops(entries) -> List[Hop]:
        hops: List[Hop] = []
        for entry in entries:
            if not isinstance(entry, dict) or "hop" not in entry:
                raise ResultParseError(f"malformed hop entry: {entry!r}")
            replies = []
            for reply in entry.get("result", []):
                if "rtt" in reply:
                    replies.append(
                        HopReply(origin=reply.get("from"), rtt=float(reply["rtt"]))
                    )
                else:
                    replies.append(HopReply(origin=None, rtt=None))
            hops.append(Hop(index=int(entry["hop"]), replies=tuple(replies)))
        hops.sort(key=lambda hop: hop.index)
        return hops

    @property
    def total_hops(self) -> int:
        return len(self.hops)

    @property
    def destination_ip_responded(self) -> bool:
        """Did the final hop answer from the measurement target?"""
        if not self.hops:
            return False
        last = self.hops[-1]
        return last.responded and last.origin == self.destination_address

    @property
    def last_rtt(self) -> Optional[float]:
        """Best RTT at the final responding hop (end-to-end latency)."""
        for hop in reversed(self.hops):
            if hop.responded:
                return hop.best_rtt
        return None

    @property
    def ip_path(self) -> Tuple[Optional[str], ...]:
        """Responding address per hop (None for silent hops)."""
        return tuple(hop.origin for hop in self.hops)
