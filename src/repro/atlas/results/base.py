"""Sagan-style result parsing: the :class:`Result` base class.

``ripe.atlas.sagan`` exposes ``Result.get(raw)`` which dispatches on the
raw blob's ``type`` field and returns a typed parser object.  We reproduce
that contract for the two measurement types the study uses (ping and
traceroute) so analysis code written against sagan ports unchanged.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from typing import Any, Dict, Type

from repro.errors import ResultParseError


class Result:
    """Base parser for one raw Atlas result blob."""

    #: Populated by :func:`register`; maps ``type`` values to subclasses.
    _REGISTRY: Dict[str, Type["Result"]] = {}

    def __init__(self, raw: Dict[str, Any]):
        if not isinstance(raw, dict):
            raise ResultParseError(f"raw result must be a dict, got {type(raw)}")
        self.raw_data = raw
        self.firmware = int(raw.get("fw", 0))
        self.measurement_id = self._require(raw, "msm_id", int)
        self.probe_id = self._require(raw, "prb_id", int)
        self.origin = raw.get("from", "")
        self.af = int(raw.get("af", 4))
        timestamp = self._require(raw, "timestamp", int)
        self.created_timestamp = timestamp
        self.created = datetime.fromtimestamp(timestamp, tz=timezone.utc)
        self.is_error = False
        self.error_message = None
        if "error" in raw:
            self.is_error = True
            self.error_message = str(raw["error"])

    # -- factory -------------------------------------------------------------

    @classmethod
    def get(cls, raw) -> "Result":
        """Parse a raw blob (dict or JSON string) into a typed result."""
        if isinstance(raw, (str, bytes)):
            try:
                raw = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ResultParseError(f"invalid result JSON: {exc}") from exc
        result_type = raw.get("type") if isinstance(raw, dict) else None
        if result_type not in cls._REGISTRY:
            raise ResultParseError(f"unknown result type {result_type!r}")
        return cls._REGISTRY[result_type](raw)

    @staticmethod
    def _require(raw: Dict[str, Any], field: str, caster):
        try:
            return caster(raw[field])
        except KeyError:
            raise ResultParseError(f"result is missing field {field!r}") from None
        except (TypeError, ValueError) as exc:
            raise ResultParseError(f"field {field!r} is malformed: {exc}") from exc

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(msm={self.measurement_id}, "
            f"probe={self.probe_id}, t={self.created_timestamp})"
        )


def register(result_type: str):
    """Class decorator: register a parser for a ``type`` value."""

    def decorator(cls: Type[Result]) -> Type[Result]:
        Result._REGISTRY[result_type] = cls
        return cls

    return decorator
