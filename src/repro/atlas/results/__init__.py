"""Sagan-style result parsers."""

from repro.atlas.results.base import Result, register
from repro.atlas.results.ping import Packet, PingResult
from repro.atlas.results.traceroute import Hop, HopReply, TracerouteResult

__all__ = [
    "Hop",
    "HopReply",
    "Packet",
    "PingResult",
    "Result",
    "TracerouteResult",
    "register",
]
