"""Synthetic probe population generator.

Recreates the measurement study's vantage-point footprint (§4.1, Figure
3b): 3200+ probes across 166 countries, with the real platform's biases —
heavy European density, mostly wired probes hosted by network-savvy
volunteers, a minority of wireless probes, and a small population of
probes sitting in datacenters or clouds whose tags the paper uses to
exclude them.

Determinism: the population is a pure function of the seed.  Probe
attributes are drawn from per-probe label-derived streams, so inserting a
country or changing one probe's draw never reshuffles the rest.
"""

from __future__ import annotations

import zlib
from functools import lru_cache
from typing import Dict, List, Tuple

import numpy as np

from repro.atlas import tags as tag_vocab
from repro.atlas.probes import Probe, ProbeEnvironment
from repro.geo.coordinates import LatLon, destination_point
from repro.geo.countries import Country, countries_with_probes
from repro.net.lastmile import AccessTechnology, choose_technology
from repro.net.rng import stream

#: First probe id handed out (real Atlas ids are four to seven digits).
FIRST_PROBE_ID = 6001

#: Environment mix of the probe fleet.
_ENVIRONMENTS: Tuple[Tuple[ProbeEnvironment, float], ...] = (
    (ProbeEnvironment.HOME, 0.68),
    (ProbeEnvironment.OFFICE, 0.15),
    (ProbeEnvironment.CORE, 0.07),
    (ProbeEnvironment.DATACENTRE, 0.07),
    (ProbeEnvironment.CLOUD, 0.03),
)

#: Probability a host declares an access-technology user tag.
_P_ACCESS_TAG = 0.55

#: Probability a host declares an environment user tag.
_P_ENVIRONMENT_TAG = 0.50

#: Probability a privileged probe is *recognizably* tagged as such
#: ("clearly installed in privileged locations", §4.1).
_P_PRIVILEGED_TAG = 0.80

#: Fraction of probes that are anchors (always wired, well-connected).
_P_ANCHOR = 0.05

#: Share of probes with working IPv6, by infrastructure tier (circa-2019
#: deployment: strong in well-connected countries, sparse elsewhere).
_P_IPV6: Dict[int, float] = {1: 0.70, 2: 0.50, 3: 0.35, 4: 0.20}

#: Probe-scatter centers for countries whose *population* (and hence probe
#: hosts) concentrates far from the geographic centroid: Australians live
#: on the southeast coast, Canadians along the US border, Russians west of
#: the Urals, and so on.  Scatter radii are also tightened for these.
PROBE_CENTER_OVERRIDES: Dict[str, Tuple[float, float, float]] = {
    # iso2: (lat, lon, scatter_radius_km)
    "AU": (-34.5, 148.5, 500.0),
    "CA": (45.6, -77.0, 700.0),
    "RU": (55.7, 42.0, 900.0),
    "BR": (-22.5, -46.5, 800.0),
    "CL": (-33.4, -70.9, 400.0),
    "AR": (-34.6, -60.5, 500.0),
    "EG": (30.0, 31.2, 250.0),
    "CN": (31.5, 114.0, 900.0),
    "US": (39.0, -89.0, 900.0),
    "KZ": (49.8, 73.1, 600.0),
    "SA": (24.7, 46.7, 500.0),
    "DZ": (36.0, 3.0, 300.0),
    "LY": (32.5, 15.0, 300.0),
    "PE": (-11.0, -76.5, 400.0),
    "CO": (4.7, -74.5, 300.0),
    "MX": (20.5, -100.0, 500.0),
    "ID": (-6.5, 108.0, 600.0),
    "FI": (61.0, 25.3, 250.0),
    "SE": (59.0, 16.5, 300.0),
    "NO": (59.9, 10.0, 300.0),
    "NZ": (-38.5, 175.5, 400.0),
}

_ENV_TAG: Dict[ProbeEnvironment, str] = {
    ProbeEnvironment.HOME: tag_vocab.TAG_HOME,
    ProbeEnvironment.OFFICE: tag_vocab.TAG_OFFICE,
    ProbeEnvironment.CORE: tag_vocab.TAG_CORE,
    ProbeEnvironment.DATACENTRE: tag_vocab.TAG_DATACENTRE,
    ProbeEnvironment.CLOUD: tag_vocab.TAG_CLOUD,
}


def _draw_environment(rng: np.random.Generator) -> ProbeEnvironment:
    weights = np.asarray([weight for _, weight in _ENVIRONMENTS])
    index = rng.choice(len(_ENVIRONMENTS), p=weights / weights.sum())
    return _ENVIRONMENTS[index][0]


def _draw_location(country: Country, rng: np.random.Generator):
    """Scatter a probe around the country's population center (Rayleigh)."""
    override = PROBE_CENTER_OVERRIDES.get(country.iso2)
    if override:
        lat, lon, radius = override
        center = LatLon(lat, lon)
    else:
        center = country.centroid
        radius = country.scatter_radius_km
    distance = min(float(rng.rayleigh(radius / 1.6)), radius * 1.25)
    bearing = float(rng.uniform(0.0, 360.0))
    point = destination_point(center, bearing, distance)
    # Keep probes at plausible inhabited latitudes.
    lat = min(max(point.lat, -55.0), 70.0)
    return type(point)(lat, point.lon)


def _draw_access(
    country: Country, environment: ProbeEnvironment, rng: np.random.Generator
) -> AccessTechnology:
    if environment in (
        ProbeEnvironment.CORE,
        ProbeEnvironment.DATACENTRE,
        ProbeEnvironment.CLOUD,
    ):
        return AccessTechnology.ETHERNET
    return choose_technology(country.infra_tier, rng)


def _draw_tags(
    environment: ProbeEnvironment,
    access: AccessTechnology,
    rng: np.random.Generator,
) -> Tuple[str, ...]:
    tags: List[str] = []
    if environment.is_privileged:
        if rng.random() < _P_PRIVILEGED_TAG:
            tags.append(_ENV_TAG[environment])
    elif rng.random() < _P_ENVIRONMENT_TAG:
        tags.append(_ENV_TAG[environment])
    if rng.random() < _P_ACCESS_TAG:
        tags.append(access.atlas_tag)
        # Hosts often add a second, broader tag.
        if access is AccessTechnology.ETHERNET and rng.random() < 0.3:
            tags.append(tag_vocab.TAG_BROADBAND)
        if access is AccessTechnology.LTE and rng.random() < 0.3:
            tags.append(tag_vocab.TAG_4G)
        if access is AccessTechnology.WIFI and rng.random() < 0.3:
            tags.append(tag_vocab.TAG_WLAN)
    return tuple(tags)


def _draw_stability(access: AccessTechnology, rng: np.random.Generator) -> float:
    if access.is_wireless:
        base = 0.90
    else:
        base = 0.965
    jitter = float(rng.beta(8.0, 2.0)) * 0.04
    return min(1.0, base + jitter - 0.02)


def _build_probe(
    probe_id: int, country: Country, index_in_country: int, seed: int
) -> Probe:
    rng = stream(seed, "probe", country.iso2, index_in_country)
    environment = _draw_environment(rng)
    access = _draw_access(country, environment, rng)
    location = _draw_location(country, rng)
    is_anchor = bool(rng.random() < _P_ANCHOR) and not access.is_wireless
    if is_anchor:
        environment = ProbeEnvironment.CORE
        access = AccessTechnology.ETHERNET
    # zlib.crc32 is stable across processes (str hash() is randomized).
    country_slot = zlib.crc32(country.iso2.encode("ascii")) % 400
    asn = 64512 + country_slot * 16 + int(rng.integers(0, 12))
    has_ipv6 = bool(rng.random() < _P_IPV6[country.infra_tier]) or is_anchor
    return Probe(
        probe_id=probe_id,
        country_code=country.iso2,
        location=location,
        asn=asn,
        access=access,
        environment=environment,
        is_anchor=is_anchor,
        has_ipv6=has_ipv6,
        stability=_draw_stability(access, rng),
        user_tags=_draw_tags(environment, access, rng),
    )


@lru_cache(maxsize=4)
def generate_population(seed: int = 0) -> Tuple[Probe, ...]:
    """The full synthetic probe fleet for a seed (3200+ probes)."""
    probes: List[Probe] = []
    probe_id = FIRST_PROBE_ID
    for country in countries_with_probes():
        for index in range(country.atlas_probes):
            probes.append(_build_probe(probe_id, country, index, seed))
            probe_id += 1
    return tuple(probes)


def probes_by_country(seed: int = 0) -> Dict[str, Tuple[Probe, ...]]:
    """Probes grouped by ISO country code."""
    grouped: Dict[str, List[Probe]] = {}
    for probe in generate_population(seed):
        grouped.setdefault(probe.country_code, []).append(probe)
    return {code: tuple(probes) for code, probes in grouped.items()}


def population_summary(seed: int = 0) -> Dict[str, float]:
    """Headline statistics of the generated fleet."""
    probes = generate_population(seed)
    wireless = sum(1 for probe in probes if probe.access.is_wireless)
    privileged = sum(1 for probe in probes if probe.environment.is_privileged)
    anchors = sum(1 for probe in probes if probe.is_anchor)
    return {
        "probes": len(probes),
        "countries": len({probe.country_code for probe in probes}),
        "wireless_share": wireless / len(probes),
        "privileged_share": privileged / len(probes),
        "anchor_share": anchors / len(probes),
    }
