"""The simulated RIPE Atlas backend.

:class:`AtlasPlatform` plays the role of the REST service behind
``atlas.ripe.net``: it owns the probe fleet, accepts measurement
specifications (the JSON structs the cousteau-style client builds),
resolves probe sources, meters credits, and *materializes results on
demand* by driving the latency simulator.

Results are a pure function of ``(platform seed, measurement, probe,
tick)``: fetching the same window twice returns byte-identical data, and
extending a window only appends.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.atlas.credits import (
    PING_COST_PER_PACKET,
    TRACEROUTE_COST,
    CreditAccount,
)
from repro.atlas.population import generate_population
from repro.atlas.probes import Probe, ProbeStatus
from repro.atlas.results.ping import PingColumns
from repro.cloud.vm import TargetVM, deploy_fleet
from repro.errors import AtlasAPIError, MeasurementNotFoundError
from repro.net.pathmodel import (
    EndpointAdjustment,
    LatencyModel,
    PingDrawStreams,
    PingObservation,
)
from repro.net.physics import estimate_hop_count
from repro.net.rng import stream

#: Default API key registered on a fresh platform.
DEFAULT_KEY = "REPRO-0000-DEFAULT-KEY"

#: Firmware version stamped on generated results (a real Atlas value).
_FIRMWARE = 5020

#: First measurement id handed out.
_FIRST_MSM_ID = 100_001

#: IPv6 paths run a hair longer than IPv4 (sparser peering, occasional
#: tunnels) — the familiar small v6 penalty of the late 2010s.
_V6_PATH_FACTOR = 1.03
_V6_PEERING_FACTOR = 1.20
_V6_EXTRA_MS = 1.5


@dataclass
class StoredMeasurement:
    """A measurement registered on the platform."""

    msm_id: int
    definition: dict
    probes: Tuple[Probe, ...]
    start_time: int
    stop_time: int
    key: str
    status: str = "Ongoing"
    #: Moment a stop request took effect (None while running).  Result
    #: generation truncates here; results scheduled later never existed.
    stopped_at: Optional[int] = None

    @property
    def effective_stop_time(self) -> int:
        """Scheduled stop, or the stop request's moment if that came first."""
        if self.stopped_at is None:
            return self.stop_time
        return min(self.stop_time, self.stopped_at)

    @property
    def measurement_type(self) -> str:
        return self.definition["type"]

    @property
    def interval(self) -> int:
        return self.definition.get("interval", 0)

    @property
    def is_oneoff(self) -> bool:
        return bool(self.definition.get("is_oneoff"))

    def as_api_dict(self) -> dict:
        return {
            "id": self.msm_id,
            "type": self.measurement_type,
            "target": self.definition["target"],
            "description": self.definition.get("description", ""),
            "af": self.definition.get("af", 4),
            "interval": self.interval or None,
            "is_oneoff": self.is_oneoff,
            "start_time": self.start_time,
            "stop_time": self.stop_time,
            "status": {"name": self.status},
            "participant_count": len(self.probes),
        }


class AtlasPlatform:
    """The measurement platform backend."""

    def __init__(
        self,
        seed: int = 0,
        probes: Sequence[Probe] = None,
        fleet: Sequence[TargetVM] = None,
        model: LatencyModel = None,
    ):
        self.seed = int(seed)
        self.probes: Tuple[Probe, ...] = (
            tuple(probes) if probes is not None else generate_population(seed)
        )
        self.fleet: Tuple[TargetVM, ...] = (
            tuple(fleet) if fleet is not None else deploy_fleet()
        )
        self.model = model if model is not None else LatencyModel(seed=seed)
        self.accounts: Dict[str, CreditAccount] = {
            DEFAULT_KEY: CreditAccount(key=DEFAULT_KEY)
        }
        self._measurements: Dict[int, StoredMeasurement] = {}
        self._next_msm_id = itertools.count(_FIRST_MSM_ID)
        self._probe_by_id = {probe.probe_id: probe for probe in self.probes}
        self._vm_by_address = {vm.address: vm for vm in self.fleet}
        self._vm_by_hostname = {self.hostname_for(vm): vm for vm in self.fleet}

    # -- naming ----------------------------------------------------------------

    @staticmethod
    def hostname_for(vm: TargetVM) -> str:
        """Synthetic DNS name of a target VM."""
        return f"{vm.region.code}.{vm.region.provider_slug}.repro.cloud"

    def resolve_target(self, target: str) -> TargetVM:
        """Resolve a measurement target (address or hostname) to a VM."""
        vm = self._vm_by_address.get(target) or self._vm_by_hostname.get(target)
        if vm is None:
            raise AtlasAPIError(400, f"unresolvable measurement target {target!r}")
        return vm

    # -- accounts ------------------------------------------------------------

    def register_account(self, account: CreditAccount) -> None:
        self.accounts[account.key] = account

    def account_for(self, key: str) -> CreditAccount:
        try:
            return self.accounts[key]
        except KeyError:
            raise AtlasAPIError(403, "invalid API key") from None

    # -- probes ------------------------------------------------------------------

    def probe(self, probe_id: int) -> Probe:
        try:
            return self._probe_by_id[probe_id]
        except KeyError:
            raise AtlasAPIError(404, f"probe {probe_id} not found") from None

    def filter_probes(
        self,
        country_code: str = None,
        tags: Iterable[str] = None,
        is_anchor: bool = None,
    ) -> List[Probe]:
        """Probe directory query (backs the cousteau ``ProbeRequest``)."""
        wanted_tags = {tag.lower() for tag in tags} if tags else set()
        out = []
        for probe in self.probes:
            if country_code is not None and probe.country_code != country_code.upper():
                continue
            if wanted_tags and not wanted_tags.issubset(probe.tags):
                continue
            if is_anchor is not None and probe.is_anchor != is_anchor:
                continue
            out.append(probe)
        return out

    # -- measurement lifecycle -----------------------------------------------------

    def create_measurement(
        self,
        definition: dict,
        sources,
        start_time: int,
        stop_time: int,
        key: str = DEFAULT_KEY,
    ) -> int:
        """Register a measurement; charges the account up front.

        Returns the new measurement id.  Raises
        :class:`~repro.errors.QuotaExceededError` when the account cannot
        cover the scheduled results (partial charges are not rolled back,
        mirroring the real platform's day-by-day metering).
        """
        if stop_time <= start_time:
            raise AtlasAPIError(400, "stop_time must be after start_time")
        # Imported here: the api package imports this module at load time.
        from repro.atlas.api.sources import select_all

        account = self.account_for(key)
        self.resolve_target(definition["target"])  # validate early
        probes = select_all(sources, self.probes)
        if definition.get("af") == 6:
            probes = [probe for probe in probes if probe.has_ipv6]
            if not probes:
                raise AtlasAPIError(
                    400, "no selected probe has working IPv6 for an af=6 measurement"
                )
        msm = StoredMeasurement(
            msm_id=next(self._next_msm_id),
            definition=dict(definition),
            probes=tuple(probes),
            start_time=int(start_time),
            stop_time=int(stop_time),
            key=key,
        )
        self._charge_for(msm, account)
        self._measurements[msm.msm_id] = msm
        return msm.msm_id

    def _charge_for(self, msm: StoredMeasurement, account: CreditAccount) -> None:
        if msm.measurement_type == "ping":
            per_result = PING_COST_PER_PACKET * msm.definition.get("packets", 3)
        elif msm.measurement_type == "traceroute":
            per_result = TRACEROUTE_COST
        else:
            raise AtlasAPIError(
                400, f"unsupported measurement type {msm.measurement_type!r}"
            )
        if msm.is_oneoff:
            account.charge(per_result * len(msm.probes), msm.start_time)
            return
        # Periodic: charge day by day so daily limits bite realistically.
        day_s = 86_400
        results_per_day_per_probe = max(1, day_s // msm.interval)
        daily_cost = per_result * results_per_day_per_probe * len(msm.probes)
        for day_start in range(msm.start_time, msm.stop_time, day_s):
            remaining = min(day_s, msm.stop_time - day_start)
            fraction = remaining / day_s
            account.charge(int(daily_cost * fraction), day_start)

    def measurement(self, msm_id: int) -> StoredMeasurement:
        try:
            return self._measurements[msm_id]
        except KeyError:
            raise MeasurementNotFoundError(msm_id) from None

    def list_measurements(
        self, key: str = None, measurement_type: str = None, status: str = None
    ) -> List[StoredMeasurement]:
        """Directory of registered measurements, optionally filtered."""
        out = []
        for msm in self._measurements.values():
            if key is not None and msm.key != key:
                continue
            if measurement_type is not None and msm.measurement_type != measurement_type:
                continue
            if status is not None and msm.status != status:
                continue
            out.append(msm)
        return out

    def expected_result_count(self, msm_id: int, probe_id: int) -> int:
        """Results a probe *should* deliver for a measurement (online ticks).

        The gap between this and the delivered count is probe churn —
        the completeness analysis consumes the pair.
        """
        msm = self.measurement(msm_id)
        probe = self.probe(probe_id)
        if all(p.probe_id != probe_id for p in msm.probes):
            raise AtlasAPIError(404, f"probe {probe_id} not on measurement {msm_id}")
        return sum(
            1 for tick, _ts in self._tick_times(msm, probe) if probe.is_online(tick)
        )

    def scheduled_tick_count(self, msm_id: int, probe_id: int) -> int:
        """All scheduled ticks for a probe, online or not."""
        msm = self.measurement(msm_id)
        probe = self.probe(probe_id)
        return sum(1 for _ in self._tick_times(msm, probe))

    def stop_measurement(
        self, msm_id: int, key: str = DEFAULT_KEY, at: int = None
    ) -> None:
        """Stop a measurement, truncating result generation.

        ``at`` is the Unix timestamp the stop takes effect: results with
        ``timestamp >= at`` are never generated (the real platform keeps
        results collected before the stop and nothing after).  The
        simulator has no wall clock, so an untimed stop (``at=None``)
        cancels generation outright.  Repeated stops only ever move the
        effective stop earlier.
        """
        msm = self.measurement(msm_id)
        if msm.key != key:
            raise AtlasAPIError(403, "measurement belongs to a different key")
        effective = msm.start_time if at is None else max(int(at), msm.start_time)
        if msm.stopped_at is None or effective < msm.stopped_at:
            msm.stopped_at = effective
        msm.status = "Stopped"

    # -- result materialization ------------------------------------------------------

    def _tick_times(self, msm: StoredMeasurement, probe: Probe) -> Iterator[Tuple[int, int]]:
        """(tick_index, timestamp) pairs for a probe on a measurement.

        The platform spreads probes across the interval (as real Atlas
        does) with a stable per-probe offset.
        """
        if msm.is_oneoff:
            if msm.start_time < msm.effective_stop_time:
                yield 0, msm.start_time
            return
        spread = (probe.probe_id * 2_654_435_761) % msm.interval
        tick = 0
        timestamp = msm.start_time + spread
        while timestamp < msm.effective_stop_time:
            yield tick, timestamp
            tick += 1
            timestamp += msm.interval

    def iter_results(
        self,
        msm_id: int,
        start: int = None,
        stop: int = None,
        probe_ids: Sequence[int] = None,
    ) -> Iterator[dict]:
        """Lazily generate raw results for a window, probe-major order."""
        msm = self.measurement(msm_id)
        vm = self.resolve_target(msm.definition["target"])
        window_start = msm.start_time if start is None else max(start, msm.start_time)
        window_stop = (
            msm.effective_stop_time
            if stop is None
            else min(stop, msm.effective_stop_time)
        )
        if probe_ids is None:
            probes = msm.probes
        else:
            wanted = set(probe_ids)
            probes = tuple(p for p in msm.probes if p.probe_id in wanted)
        for probe in probes:
            rng = self._flow_draws(msm, probe)
            for tick, timestamp in self._tick_times(msm, probe):
                if not probe.is_online(tick):
                    # Offline ticks draw nothing: whether a probe is
                    # online depends only on (probe, tick), never on the
                    # query window, so skipping without consuming RNG
                    # keeps later ticks aligned across any windowing.
                    continue
                if timestamp < window_start or timestamp >= window_stop:
                    if timestamp >= window_stop:
                        break
                    # Before the window: still consume this tick's RNG so
                    # in-window results are window-independent.
                    self._generate(msm, probe, vm, timestamp, rng)
                    continue
                yield self._generate(msm, probe, vm, timestamp, rng)

    def results(
        self,
        msm_id: int,
        start: int = None,
        stop: int = None,
        probe_ids: Sequence[int] = None,
        obs=None,
    ) -> List[dict]:
        out = list(self.iter_results(msm_id, start, stop, probe_ids))
        if obs is not None and out:
            obs.inc("platform_results_served_total", len(out), path="dict")
        return out

    # -- batch result materialization ---------------------------------------------------

    def _flow_draws(self, msm: StoredMeasurement, probe: Probe):
        """The per-flow randomness source for result synthesis.

        Ping flows use the three fixed-layout family streams so the
        scalar and batch paths consume identical draws; traceroute keeps
        a single interleaved Generator (hop synthesis is data-dependent
        and has no batch path).
        """
        if msm.measurement_type == "ping":
            return PingDrawStreams(self.seed, "results", msm.msm_id, probe.probe_id)
        return stream(self.seed, "results", msm.msm_id, probe.probe_id)

    def _online_timestamps(
        self, msm: StoredMeasurement, probe: Probe, upper: int
    ) -> np.ndarray:
        """Timestamps of this flow's *online* ticks below ``upper``.

        The vectorized mirror of walking :meth:`_tick_times` +
        :meth:`~repro.atlas.probes.Probe.is_online`: same spread offset,
        same low-discrepancy churn formula evaluated elementwise, so the
        kept set matches the scalar loop's exactly.
        """
        if msm.is_oneoff:
            if msm.start_time < upper:
                ticks = np.zeros(1, dtype=np.int64)
                timestamps = np.asarray([msm.start_time], dtype=np.int64)
            else:
                return np.empty(0, dtype=np.int64)
        else:
            spread = (probe.probe_id * 2_654_435_761) % msm.interval
            first = msm.start_time + spread
            count = max(0, -((first - upper) // msm.interval))
            ticks = np.arange(count, dtype=np.int64)
            timestamps = first + ticks * msm.interval
        if probe.status is ProbeStatus.ABANDONED:
            return np.empty(0, dtype=np.int64)
        phase = (ticks * 0.618033988749895 + probe.probe_id * 0.382) % 1.0
        return timestamps[phase < probe.stability]

    def iter_results_batch(
        self,
        msm_id: int,
        start: int = None,
        stop: int = None,
        probe_ids: Sequence[int] = None,
    ) -> Iterator[PingColumns]:
        """Per-probe columnar results for a ping measurement's window.

        The vectorized counterpart of :meth:`iter_results` + parsing:
        yields one :class:`~repro.atlas.results.ping.PingColumns` chunk
        per probe (probe-major, the canonical order), synthesized in one
        :meth:`~repro.net.pathmodel.LatencyModel.ping_batch` call per flow
        and **bit-identical** to parsing the scalar dict stream.  Raises
        :class:`~repro.errors.AtlasAPIError` for non-ping measurements —
        callers probe :meth:`supports_batch` first.
        """
        msm = self.measurement(msm_id)
        if msm.measurement_type != "ping":
            raise AtlasAPIError(
                400, f"no batch path for {msm.measurement_type!r} measurements"
            )
        vm = self.resolve_target(msm.definition["target"])
        window_start = msm.start_time if start is None else max(start, msm.start_time)
        window_stop = (
            msm.effective_stop_time
            if stop is None
            else min(stop, msm.effective_stop_time)
        )
        if probe_ids is None:
            probes = msm.probes
        else:
            wanted = set(probe_ids)
            probes = tuple(p for p in msm.probes if p.probe_id in wanted)
        packets = msm.definition.get("packets", 3)
        af = msm.definition.get("af", 4)
        adjustment = self._af_adjustment(vm, af)
        target_id = vm.key if af == 4 else f"{vm.key}#v6"
        for probe in probes:
            timestamps = self._online_timestamps(msm, probe, window_stop)
            if not len(timestamps):
                continue
            batch = self.model.ping_batch(
                probe.location,
                probe.country,
                probe.access,
                vm.region.location,
                vm.region.country,
                timestamps,
                origin_id=probe.probe_id,
                target_id=target_id,
                packets=packets,
                adjustment=adjustment,
                draws=self._flow_draws(msm, probe),
            )
            keep = timestamps >= window_start
            if not keep.any():
                continue
            yield PingColumns(
                probe_ids=np.full(int(keep.sum()), probe.probe_id, dtype=np.int64),
                timestamps=timestamps[keep],
                rtt_min=batch.rtt_min[keep],
                rtt_avg=batch.rtt_avg[keep],
                sent=np.full(int(keep.sum()), batch.sent, dtype=np.int64),
                rcvd=batch.received[keep],
            )

    def supports_batch(self, msm_id: int) -> bool:
        """Whether :meth:`results_columns` can serve this measurement."""
        return self.measurement(msm_id).measurement_type == "ping"

    def results_columns(
        self,
        msm_id: int,
        start: int = None,
        stop: int = None,
        probe_ids: Sequence[int] = None,
        obs=None,
    ) -> Optional[PingColumns]:
        """One concatenated column set for a window (None for non-ping)."""
        if not self.supports_batch(msm_id):
            return None
        columns = PingColumns.concat(
            self.iter_results_batch(msm_id, start, stop, probe_ids)
        )
        if obs is not None and len(columns):
            obs.inc("platform_results_served_total", len(columns), path="columnar")
        return columns

    def results_count(
        self,
        msm_id: int,
        start: int = None,
        stop: int = None,
        probe_ids: Sequence[int] = None,
    ) -> Optional[int]:
        """Exact row count :meth:`results_columns` would return — no synthesis.

        Counting online ticks is pure schedule arithmetic
        (:meth:`_online_timestamps`), so the count costs microseconds
        where synthesis costs milliseconds.  This is what lets a
        multiprocess collection plan global store-row offsets *before*
        any worker synthesizes a sample.  ``None`` for measurements with
        no batch path, mirroring :meth:`results_columns`.
        """
        if not self.supports_batch(msm_id):
            return None
        msm = self.measurement(msm_id)
        window_start = msm.start_time if start is None else max(start, msm.start_time)
        window_stop = (
            msm.effective_stop_time
            if stop is None
            else min(stop, msm.effective_stop_time)
        )
        if probe_ids is None:
            probes = msm.probes
        else:
            wanted = set(probe_ids)
            probes = tuple(p for p in msm.probes if p.probe_id in wanted)
        total = 0
        for probe in probes:
            timestamps = self._online_timestamps(msm, probe, window_stop)
            if len(timestamps):
                total += int((timestamps >= window_start).sum())
        return total

    # -- result synthesis ---------------------------------------------------------------

    def _generate(
        self,
        msm: StoredMeasurement,
        probe: Probe,
        vm: TargetVM,
        timestamp: int,
        rng,
    ) -> dict:
        if msm.measurement_type == "ping":
            return self._ping_result(msm, probe, vm, timestamp, rng)
        return self._traceroute_result(msm, probe, vm, timestamp, rng)

    @staticmethod
    def _af_adjustment(vm: TargetVM, af: int) -> EndpointAdjustment:
        """The target's endpoint adjustment for an address family."""
        adjustment = vm.adjustment
        if af == 6:
            adjustment = EndpointAdjustment(
                path_factor=adjustment.path_factor * _V6_PATH_FACTOR,
                peering_factor=adjustment.peering_factor * _V6_PEERING_FACTOR,
                extra_ms=adjustment.extra_ms + _V6_EXTRA_MS,
            )
        return adjustment

    def _observe(
        self,
        probe: Probe,
        vm: TargetVM,
        timestamp: int,
        packets: int,
        rng=None,
        af: int = 4,
        draws=None,
    ) -> PingObservation:
        return self.model.ping(
            probe.location,
            probe.country,
            probe.access,
            vm.region.location,
            vm.region.country,
            timestamp,
            origin_id=probe.probe_id,
            target_id=vm.key if af == 4 else f"{vm.key}#v6",
            packets=packets,
            adjustment=self._af_adjustment(vm, af),
            rng=rng,
            draws=draws,
        )

    def _ping_result(
        self, msm: StoredMeasurement, probe: Probe, vm: TargetVM, timestamp: int, draws
    ) -> dict:
        packets = msm.definition.get("packets", 3)
        af = msm.definition.get("af", 4)
        obs = self._observe(probe, vm, timestamp, packets, af=af, draws=draws)
        entries: List[dict] = [{"rtt": rtt} for rtt in obs.rtts_ms]
        entries += [{"x": "*"}] * (obs.sent - obs.received)
        return {
            "af": af,
            "avg": round(obs.rtt_avg, 3) if obs.succeeded else -1,
            "dst_addr": vm.address,
            "dst_name": msm.definition["target"],
            "dup": 0,
            "from": probe.address_v6 if af == 6 else probe.address,
            "fw": _FIRMWARE,
            "group_id": msm.msm_id,
            "lts": 20,
            "max": round(obs.rtt_max, 3) if obs.succeeded else -1,
            "min": round(obs.rtt_min, 3) if obs.succeeded else -1,
            "msm_id": msm.msm_id,
            "msm_name": "Ping",
            "prb_id": probe.probe_id,
            "proto": "ICMP",
            "rcvd": obs.received,
            "result": entries,
            "sent": obs.sent,
            "size": msm.definition.get("size", 48),
            "step": msm.interval or None,
            "timestamp": timestamp,
            "ttl": 54,
            "type": "ping",
        }

    def _traceroute_result(
        self, msm: StoredMeasurement, probe: Probe, vm: TargetVM, timestamp: int, rng
    ) -> dict:
        obs = self._observe(probe, vm, timestamp, 1, rng)
        route = self.model.route(
            probe.location, probe.country, vm.region.location, vm.region.country
        )
        total_rtt = obs.rtts_ms[0] if obs.succeeded else None
        hop_count = estimate_hop_count(route.path_km)
        access_ms = None
        if total_rtt is not None:
            # Hop 2 is the ISP access concentrator: it carries the whole
            # last-mile contribution, so path decomposition can attribute
            # delay to access vs core exactly as tcptraceroute users do.
            transit = self.model.transit_floor_ms(
                probe.location,
                probe.country,
                vm.region.location,
                vm.region.country,
                vm.adjustment,
            )
            access_ms = max(total_rtt - transit, 0.2)
        hops: List[dict] = []
        for hop_index in range(1, hop_count + 1):
            hops.append(
                self._traceroute_hop(
                    probe, vm, hop_index, hop_count, total_rtt, access_ms, rng
                )
            )
        return {
            "af": msm.definition.get("af", 4),
            "dst_addr": vm.address,
            "dst_name": msm.definition["target"],
            "from": probe.address,
            "fw": _FIRMWARE,
            "msm_id": msm.msm_id,
            "msm_name": "Traceroute",
            "paris_id": msm.definition.get("paris", 16),
            "prb_id": probe.probe_id,
            "proto": msm.definition.get("protocol", "ICMP"),
            "result": hops,
            "size": 40,
            "timestamp": timestamp,
            "type": "traceroute",
        }

    def _traceroute_hop(
        self,
        probe: Probe,
        vm: TargetVM,
        hop_index: int,
        hop_count: int,
        total_rtt: Optional[float],
        access_ms: Optional[float],
        rng,
    ) -> dict:
        if total_rtt is None or rng.random() < 0.04:
            # Silent hop (filtered ICMP) or failed path.
            return {"hop": hop_index, "result": [{"x": "*"}] * 3}
        # Cumulative RTT profile: the home gateway answers in ~1 ms, the
        # access concentrator (hop 2) already carries the last mile, and
        # the remaining hops spread the wide-area transit evenly.
        if hop_index == 1:
            base = min(1.0, total_rtt * 0.5)
        elif hop_index == 2 or hop_count <= 2:
            base = min(access_ms + 1.0, total_rtt)
        else:
            core = max(total_rtt - access_ms - 1.0, 0.0)
            progress = (hop_index - 2) / max(1, hop_count - 2)
            base = access_ms + 1.0 + core * progress
        if hop_index == hop_count:
            hop_addr = vm.address
        elif hop_index == 1:
            hop_addr = "192.168.0.1"
        else:
            hop_addr = f"10.{hop_index}.{probe.probe_id % 250}.{(hop_index * 7) % 250}"
        replies = []
        for _ in range(3):
            rtt = base + float(rng.exponential(0.4)) + float(rng.uniform(0.0, 0.3))
            replies.append(
                {"from": hop_addr, "rtt": round(rtt, 3), "size": 28, "ttl": 64 - hop_index}
            )
        return {"hop": hop_index, "result": replies}
