"""Anchor mesh measurements.

RIPE Atlas *anchors* are well-connected, datacenter-grade probes that
continuously ping each other (the "anchoring mesh").  Because both ends
sit behind wired, core-network connections, mesh RTTs expose the state of
the **core** network with no last-mile contribution — the counterpart to
the probe-to-cloud measurements that include it.

The paper's historical argument needs exactly this lens: circa 2009 the
core was the bottleneck (Krishnan et al. [39]), while today the last mile
is.  :mod:`repro.core.corevsaccess` quantifies that with mesh data from
this module.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.atlas.platform import AtlasPlatform
from repro.atlas.probes import Probe
from repro.errors import AtlasError
from repro.net.pathmodel import PingObservation
from repro.net.rng import stream


def anchors_of(platform: AtlasPlatform) -> Tuple[Probe, ...]:
    """All anchors on the platform."""
    return tuple(probe for probe in platform.probes if probe.is_anchor)


def anchors_in(platform: AtlasPlatform, country_code: str) -> Tuple[Probe, ...]:
    return tuple(
        probe for probe in anchors_of(platform)
        if probe.country_code == country_code.upper()
    )


def mesh_ping(
    platform: AtlasPlatform,
    source_id: int,
    target_id: int,
    timestamp: int,
    packets: int = 3,
) -> PingObservation:
    """One anchor-to-anchor ping.

    Both endpoints must be anchors (the platform schedules the mesh only
    between anchors, as the real service does).
    """
    source = platform.probe(source_id)
    target = platform.probe(target_id)
    if not source.is_anchor or not target.is_anchor:
        raise AtlasError("mesh measurements run only between anchors")
    if source_id == target_id:
        raise AtlasError("an anchor does not mesh-ping itself")
    rng = stream(platform.seed, "mesh", source_id, target_id, timestamp)
    return platform.model.ping(
        source.location,
        source.country,
        source.access,
        target.location,
        target.country,
        timestamp,
        origin_id=source_id,
        target_id=f"anchor:{target_id}",
        packets=packets,
        rng=rng,
    )


def mesh_sample(
    platform: AtlasPlatform,
    sources: Sequence[Probe],
    targets: Sequence[Probe],
    timestamps: Sequence[int],
) -> List[dict]:
    """A batch of mesh observations as flat records.

    Returns dicts with source/target ids, countries, timestamp, and the
    ping minimum — the shape the core-vs-access analysis consumes.
    """
    records: List[dict] = []
    for source in sources:
        for target in targets:
            if source.probe_id == target.probe_id:
                continue
            for timestamp in timestamps:
                obs = mesh_ping(
                    platform, source.probe_id, target.probe_id, timestamp
                )
                if not obs.succeeded:
                    continue
                records.append(
                    {
                        "src": source.probe_id,
                        "dst": target.probe_id,
                        "src_country": source.country_code,
                        "dst_country": target.country_code,
                        "timestamp": timestamp,
                        "rtt_min": obs.rtt_min,
                    }
                )
    return records


def country_pair_median(
    platform: AtlasPlatform,
    source_country: str,
    target_country: str,
    timestamps: Sequence[int],
    max_anchors: int = 4,
) -> float:
    """Median mesh RTT between two countries' anchors."""
    sources = anchors_in(platform, source_country)[:max_anchors]
    targets = anchors_in(platform, target_country)[:max_anchors]
    if not sources or not targets:
        raise AtlasError(
            f"no anchors for pair ({source_country}, {target_country})"
        )
    records = mesh_sample(platform, sources, targets, timestamps)
    if not records:
        raise AtlasError("mesh sample produced no successful pings")
    values = sorted(record["rtt_min"] for record in records)
    return values[len(values) // 2]
