"""Measurement definitions, in the style of ``ripe.atlas.cousteau``.

``Ping`` and ``Traceroute`` objects describe *what* to measure; they are
attached to an :class:`~repro.atlas.api.client.AtlasCreateRequest` together
with probe sources describing *from where*.  ``build_api_struct()`` returns
the JSON body the real REST API would receive, which the simulated platform
consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import AtlasError

#: Minimum allowed measurement interval, seconds (Atlas enforces 60).
MIN_INTERVAL_S = 60

#: Default ping packet count.
DEFAULT_PING_PACKETS = 3


@dataclass
class MeasurementDefinition:
    """Common fields of all measurement types."""

    target: str
    description: str = ""
    af: int = 4
    interval: Optional[int] = None
    is_oneoff: bool = False
    resolve_on_probe: bool = False

    #: Set by subclasses.
    measurement_type: str = field(default="", init=False)

    def validate(self) -> None:
        if not self.target:
            raise AtlasError("measurement target must be non-empty")
        if self.af not in (4, 6):
            raise AtlasError(f"af must be 4 or 6, got {self.af}")
        if self.is_oneoff and self.interval is not None:
            raise AtlasError("one-off measurements cannot have an interval")
        if not self.is_oneoff:
            interval = self.effective_interval
            if interval < MIN_INTERVAL_S:
                raise AtlasError(
                    f"interval {interval}s below platform minimum {MIN_INTERVAL_S}s"
                )

    @property
    def effective_interval(self) -> int:
        """The scheduling interval, applying the platform default."""
        return self.interval if self.interval is not None else 900

    def build_api_struct(self) -> Dict[str, Any]:
        self.validate()
        struct: Dict[str, Any] = {
            "target": self.target,
            "description": self.description,
            "type": self.measurement_type,
            "af": self.af,
            "is_oneoff": self.is_oneoff,
            "resolve_on_probe": self.resolve_on_probe,
        }
        if not self.is_oneoff:
            struct["interval"] = self.effective_interval
        return struct


@dataclass
class Ping(MeasurementDefinition):
    """An ICMP ping measurement (the study's §4.1 workhorse)."""

    packets: int = DEFAULT_PING_PACKETS
    size: int = 48

    def __post_init__(self) -> None:
        self.measurement_type = "ping"

    def validate(self) -> None:
        super().validate()
        if not 1 <= self.packets <= 16:
            raise AtlasError(f"ping packets must be in [1, 16]: {self.packets}")
        if not 1 <= self.size <= 2048:
            raise AtlasError(f"ping size must be in [1, 2048]: {self.size}")

    def build_api_struct(self) -> Dict[str, Any]:
        struct = super().build_api_struct()
        struct["packets"] = self.packets
        struct["size"] = self.size
        return struct


@dataclass
class Traceroute(MeasurementDefinition):
    """A traceroute measurement.

    The paper plans TCP-based probing as future work (§5, "Network vs.
    application latency"); ``protocol="TCP"`` with ``port=443`` models the
    ``tcptraceroute`` extension it cites.
    """

    protocol: str = "ICMP"
    port: int = 80
    max_hops: int = 32
    paris: int = 16

    def __post_init__(self) -> None:
        self.measurement_type = "traceroute"

    def validate(self) -> None:
        super().validate()
        if self.protocol not in ("ICMP", "UDP", "TCP"):
            raise AtlasError(f"unsupported traceroute protocol {self.protocol!r}")
        if not 1 <= self.max_hops <= 255:
            raise AtlasError(f"max_hops must be in [1, 255]: {self.max_hops}")
        if not 0 < self.port < 65536:
            raise AtlasError(f"port must be in (0, 65536): {self.port}")

    def build_api_struct(self) -> Dict[str, Any]:
        struct = super().build_api_struct()
        struct["protocol"] = self.protocol
        struct["port"] = self.port
        struct["max_hops"] = self.max_hops
        struct["paris"] = self.paris
        return struct
