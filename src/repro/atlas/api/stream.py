"""Result streaming, in the style of cousteau's ``AtlasStream``.

The real streaming API pushes results over a socket as probes deliver
them.  The simulated stream replays a measurement's results in global
timestamp order, invoking registered callbacks — enough to port
streaming-based consumer code unchanged.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterator, List, Sequence

from repro.atlas.api.transport import Transport
from repro.atlas.platform import AtlasPlatform
from repro.errors import AtlasError

ResultCallback = Callable[[dict], None]


class AtlasStream:
    """Replay measurement results in timestamp order.

    Results are fetched through the :class:`Transport` seam, so a stream
    attached to a chaos-profile transport exercises the same retry paths
    as the campaign collector.

    Example::

        stream = AtlasStream(platform=platform)
        stream.bind_channel("atlas_result", on_result)
        stream.start_stream(stream_type="result", msm=msm_id)
        stream.timeout(seconds=None)   # drain everything
    """

    def __init__(self, platform: AtlasPlatform = None, transport: Transport = None):
        self.transport = transport if transport is not None else Transport(platform)
        self._callbacks: Dict[str, List[ResultCallback]] = {}
        self._subscriptions: List[dict] = []

    @property
    def platform(self) -> AtlasPlatform:
        return self.transport.platform

    # -- cousteau-compatible surface ----------------------------------------

    def connect(self) -> None:
        """No-op: the in-process stream needs no socket."""

    def disconnect(self) -> None:
        self._subscriptions.clear()

    def bind_channel(self, channel: str, callback: ResultCallback) -> None:
        if channel not in ("atlas_result",):
            raise AtlasError(f"unknown stream channel {channel!r}")
        self._callbacks.setdefault(channel, []).append(callback)

    def start_stream(self, stream_type: str = "result", **parameters) -> None:
        if stream_type != "result":
            raise AtlasError(f"unsupported stream type {stream_type!r}")
        if "msm" not in parameters:
            raise AtlasError("start_stream requires msm=<measurement id>")
        self._subscriptions.append(dict(parameters))

    def timeout(self, seconds: float = None) -> int:
        """Drain subscribed measurements through the callbacks.

        Returns the number of results delivered.  ``seconds`` is accepted
        for interface compatibility and ignored (replay is instantaneous).
        """
        delivered = 0
        for result in self.iter_merged():
            for callback in self._callbacks.get("atlas_result", []):
                callback(result)
            delivered += 1
        return delivered

    # -- iteration ------------------------------------------------------------

    def iter_merged(self) -> Iterator[dict]:
        """All subscribed measurements' results, merged by timestamp."""
        iterators = []
        for subscription in self._subscriptions:
            msm_id = int(subscription["msm"])
            start = subscription.get("start")
            stop = subscription.get("stop")
            probe_ids: Sequence[int] = subscription.get("probe_ids")
            iterators.append(
                iter(self.transport.results(msm_id, start, stop, probe_ids))
            )
        merged = heapq.merge(
            *[sorted(it, key=lambda r: r["timestamp"]) for it in iterators],
            key=lambda r: r["timestamp"],
        )
        return iter(merged)
