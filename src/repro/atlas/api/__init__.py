"""Cousteau-style client API for the simulated Atlas platform."""

from repro.atlas.api.client import (
    AtlasCreateRequest,
    AtlasResultsRequest,
    AtlasStopRequest,
    MeasurementRequest,
    ProbeRequest,
    default_platform,
    reset_default_platform,
)
from repro.atlas.api.retry import (
    CircuitBreaker,
    RetryEngine,
    RetryPolicy,
    SimulatedClock,
)
from repro.atlas.api.transport import Transport
from repro.atlas.api.measurements import (
    DEFAULT_PING_PACKETS,
    MIN_INTERVAL_S,
    MeasurementDefinition,
    Ping,
    Traceroute,
)
from repro.atlas.api.sources import AtlasSource, select_all
from repro.atlas.api.stream import AtlasStream

__all__ = [
    "AtlasCreateRequest",
    "AtlasResultsRequest",
    "AtlasSource",
    "AtlasStopRequest",
    "AtlasStream",
    "CircuitBreaker",
    "DEFAULT_PING_PACKETS",
    "MIN_INTERVAL_S",
    "MeasurementDefinition",
    "MeasurementRequest",
    "Ping",
    "ProbeRequest",
    "RetryEngine",
    "RetryPolicy",
    "SimulatedClock",
    "Traceroute",
    "Transport",
    "default_platform",
    "reset_default_platform",
    "select_all",
]
