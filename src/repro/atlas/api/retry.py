"""Retry engine for the Atlas transport seam.

Implements the production-collector loop the paper's tooling needed
against the live REST API:

* exponential backoff with **decorrelated jitter** (the AWS architecture
  blog recipe: ``sleep = min(cap, uniform(base, prev * 3))``), seeded
  from :func:`repro.net.rng.stream` so two runs sleep identically;
* ``Retry-After`` honoring — a 429/503 with a server-suggested wait
  always sleeps at least that long;
* a per-endpoint **circuit breaker** — after a run of consecutive
  failures the endpoint is refused for a cooldown, then probed again
  half-open;
* a collection-wide **retry budget** bounding total retries.

All waiting happens on a :class:`SimulatedClock`, so tests covering
multi-hour outage schedules run in milliseconds while still exercising
the exact timing logic.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, TypeVar

from repro.errors import (
    CircuitOpenError,
    RetryBudgetExhaustedError,
    RetryExhaustedError,
    TransientTransportError,
)
from repro.net.rng import stream
from repro.obs import ATTEMPT_BUCKETS, ensure_obs

T = TypeVar("T")


class SimulatedClock:
    """A monotonic clock that only moves when someone sleeps on it."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self.slept_total = 0.0

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        self._now += seconds
        self.slept_total += seconds

    def __repr__(self) -> str:
        return f"SimulatedClock(now={self._now:.1f})"


@dataclass(frozen=True)
class RetryPolicy:
    """Tunables for :class:`RetryEngine`."""

    max_attempts: int = 8
    base_delay_s: float = 0.5
    max_delay_s: float = 60.0
    #: Total retries allowed across the engine's lifetime (the budget a
    #: long campaign collector spreads over its whole run).
    retry_budget: int = 100_000
    #: Consecutive failures that open an endpoint's circuit breaker.
    breaker_threshold: int = 5
    #: Seconds an open breaker refuses calls before going half-open.
    breaker_cooldown_s: float = 120.0
    #: When True the engine sleeps out an open breaker's cooldown instead
    #: of failing fast — what an unattended campaign collector wants.
    wait_out_open_circuit: bool = True


class CircuitBreaker:
    """Consecutive-failure breaker for one endpoint."""

    def __init__(self, endpoint: str, threshold: int, cooldown_s: float):
        self.endpoint = endpoint
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.consecutive_failures = 0
        self.opened_at: float = None
        self.times_opened = 0

    @property
    def is_open(self) -> bool:
        return self.opened_at is not None

    def remaining_cooldown(self, now: float) -> float:
        if self.opened_at is None:
            return 0.0
        return max(0.0, self.opened_at + self.cooldown_s - now)

    def allow(self, now: float) -> bool:
        """Closed, or open with the cooldown elapsed (half-open probe)."""
        return not self.is_open or self.remaining_cooldown(now) <= 0.0

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.threshold:
            if not self.is_open:
                self.times_opened += 1
            self.opened_at = now


class RetryEngine:
    """Run transport calls under the retry policy.

    One engine serves one transport; its jitter stream derives from the
    platform seed so the sleep schedule replays exactly.
    """

    def __init__(self, policy: RetryPolicy = None, clock: SimulatedClock = None,
                 seed: int = 0, obs=None):
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock if clock is not None else SimulatedClock()
        self.obs = ensure_obs(obs)
        self.seed = int(seed)
        self._rng = stream(seed, "retry", "jitter")
        self.budget_left = self.policy.retry_budget
        self.retries = 0
        self.breakers: Dict[str, CircuitBreaker] = {}
        self._breakers_opened_past = 0

    @contextmanager
    def scope(self, *labels):
        """Run a block under a label-derived retry scope.

        The jitter stream is re-derived from ``(seed, labels)`` and the
        circuit breakers start fresh, so the backoff schedule inside the
        block is a pure function of the labels and the fault sequence —
        independent of what the engine retried before.  The transport
        scopes each result-window fetch this way, which (together with
        :meth:`repro.atlas.faults.FaultInjector.scope`) makes a window's
        fetch outcome identical whether it runs serially or on any
        parallel worker.  The retry *budget* stays engine-global: parity
        between serial and sharded runs assumes the budget does not run
        dry (the default budget is far beyond any profile's needs).
        Cumulative counters (``retries``, ``breakers_opened``) keep
        accumulating across scopes.
        """
        saved_rng, saved_breakers = self._rng, self.breakers
        self._rng = stream(self.seed, "retry", "jitter", *labels)
        self.breakers = {}
        try:
            yield self
        finally:
            self._breakers_opened_past += sum(
                b.times_opened for b in self.breakers.values()
            )
            self._rng, self.breakers = saved_rng, saved_breakers

    def breaker_for(self, endpoint: str) -> CircuitBreaker:
        breaker = self.breakers.get(endpoint)
        if breaker is None:
            breaker = CircuitBreaker(
                endpoint, self.policy.breaker_threshold, self.policy.breaker_cooldown_s
            )
            self.breakers[endpoint] = breaker
        return breaker

    def call(self, endpoint: str, fn: Callable[[], T]) -> T:
        """Invoke ``fn`` with retries; raise a terminal TransportError
        once attempts, budget, or (fail-fast mode) the breaker give out."""
        policy = self.policy
        obs = self.obs
        breaker = self.breaker_for(endpoint)
        delay = policy.base_delay_s
        last_fault = None
        for attempt in range(1, policy.max_attempts + 1):
            if not breaker.allow(self.clock.now()):
                remaining = breaker.remaining_cooldown(self.clock.now())
                if not policy.wait_out_open_circuit:
                    raise CircuitOpenError(endpoint, remaining)
                obs.inc("retry_breaker_wait_s_total", remaining, endpoint=endpoint)
                self.clock.sleep(remaining)
            try:
                result = fn()
            except TransientTransportError as fault:
                last_fault = fault
                was_open = breaker.is_open
                breaker.record_failure(self.clock.now())
                if breaker.is_open and not was_open:
                    obs.inc("circuit_breaker_opens_total", endpoint=endpoint)
                    obs.set_gauge("circuit_breaker_open", 1, endpoint=endpoint)
                if attempt >= policy.max_attempts:
                    break
                if self.budget_left <= 0:
                    raise RetryBudgetExhaustedError(
                        endpoint, policy.retry_budget
                    ) from fault
                self.budget_left -= 1
                self.retries += 1
                delay = min(
                    policy.max_delay_s,
                    float(self._rng.uniform(policy.base_delay_s, delay * 3.0)),
                )
                backoff = max(delay, fault.retry_after)
                obs.inc("retries_total", endpoint=endpoint)
                obs.inc("retry_backoff_s_total", backoff, endpoint=endpoint)
                self.clock.sleep(backoff)
                continue
            if breaker.is_open:
                obs.set_gauge("circuit_breaker_open", 0, endpoint=endpoint)
            breaker.record_success()
            obs.observe(
                "retry_attempts", attempt, buckets=ATTEMPT_BUCKETS,
                endpoint=endpoint,
            )
            return result
        obs.observe(
            "retry_attempts", policy.max_attempts, buckets=ATTEMPT_BUCKETS,
            endpoint=endpoint,
        )
        raise RetryExhaustedError(endpoint, policy.max_attempts, last_fault)

    def stats(self) -> Dict[str, float]:
        """Engine-level accounting for benchmarks and reports."""
        return {
            "retries": self.retries,
            "budget_left": self.budget_left,
            "simulated_sleep_s": round(self.clock.slept_total, 3),
            "breakers_opened": self._breakers_opened_past
            + sum(b.times_opened for b in self.breakers.values()),
        }
