"""Cousteau-style request objects.

Mirrors the ``ripe.atlas.cousteau`` API surface the paper's tooling used:

* :class:`AtlasCreateRequest` — register measurements;
* :class:`AtlasResultsRequest` — download results for a window;
* :class:`AtlasStopRequest` — stop an ongoing measurement;
* :class:`MeasurementRequest` — measurement metadata;
* :class:`ProbeRequest` — iterate the probe directory.

Each ``create()`` returns ``(is_success, response)`` exactly like
cousteau, so analysis code ports across with only the import changed.
The transport is an in-process :class:`~repro.atlas.platform.AtlasPlatform`
instead of HTTPS; pass one explicitly or rely on the process-wide default.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Sequence, Tuple

from repro.atlas.api.measurements import MeasurementDefinition
from repro.atlas.api.sources import AtlasSource
from repro.atlas.platform import DEFAULT_KEY, AtlasPlatform
from repro.errors import AtlasAPIError, AtlasError


@lru_cache(maxsize=1)
def default_platform() -> AtlasPlatform:
    """Process-wide default platform (seed 0), built on first use."""
    return AtlasPlatform(seed=0)


class _BaseRequest:
    """Shared plumbing: resolve the platform to talk to."""

    def __init__(self, platform: AtlasPlatform = None):
        self._platform = platform if platform is not None else default_platform()

    @property
    def platform(self) -> AtlasPlatform:
        return self._platform


class AtlasCreateRequest(_BaseRequest):
    """Register one or more measurements (cousteau-compatible shape)."""

    def __init__(
        self,
        *,
        measurements: Sequence[MeasurementDefinition],
        sources: Sequence[AtlasSource],
        start_time: int,
        stop_time: int,
        key: str = DEFAULT_KEY,
        is_oneoff: bool = False,
        platform: AtlasPlatform = None,
    ):
        super().__init__(platform)
        if not measurements:
            raise AtlasError("at least one measurement is required")
        if not sources:
            raise AtlasError("at least one source is required")
        self.measurements = list(measurements)
        self.sources = list(sources)
        self.start_time = int(start_time)
        self.stop_time = int(stop_time)
        self.key = key
        self.is_oneoff = is_oneoff

    def create(self) -> Tuple[bool, dict]:
        """Returns ``(True, {"measurements": [ids...]})`` or ``(False, error)``."""
        created: List[int] = []
        try:
            for definition in self.measurements:
                if self.is_oneoff:
                    definition.is_oneoff = True
                    definition.interval = None
                struct = definition.build_api_struct()
                msm_id = self.platform.create_measurement(
                    struct,
                    self.sources,
                    self.start_time,
                    self.stop_time,
                    key=self.key,
                )
                created.append(msm_id)
        except (AtlasAPIError, AtlasError) as exc:
            return False, {"error": {"detail": str(exc)}, "measurements": created}
        return True, {"measurements": created}


class AtlasResultsRequest(_BaseRequest):
    """Fetch results of a measurement, optionally windowed."""

    def __init__(
        self,
        *,
        msm_id: int,
        start: int = None,
        stop: int = None,
        probe_ids: Sequence[int] = None,
        platform: AtlasPlatform = None,
    ):
        super().__init__(platform)
        self.msm_id = int(msm_id)
        self.start = start
        self.stop = stop
        self.probe_ids = list(probe_ids) if probe_ids is not None else None

    def create(self) -> Tuple[bool, List[dict]]:
        try:
            results = self.platform.results(
                self.msm_id, self.start, self.stop, self.probe_ids
            )
        except AtlasAPIError as exc:
            return False, [{"error": {"detail": str(exc)}}]
        return True, results


class AtlasStopRequest(_BaseRequest):
    """Stop an ongoing measurement."""

    def __init__(
        self, *, msm_id: int, key: str = DEFAULT_KEY, platform: AtlasPlatform = None
    ):
        super().__init__(platform)
        self.msm_id = int(msm_id)
        self.key = key

    def create(self) -> Tuple[bool, dict]:
        try:
            self.platform.stop_measurement(self.msm_id, key=self.key)
        except AtlasAPIError as exc:
            return False, {"error": {"detail": str(exc)}}
        return True, {}


class MeasurementRequest(_BaseRequest):
    """Measurement metadata lookup."""

    def __init__(self, *, msm_id: int, platform: AtlasPlatform = None):
        super().__init__(platform)
        self.msm_id = int(msm_id)

    def get(self) -> dict:
        return self.platform.measurement(self.msm_id).as_api_dict()


class ProbeRequest(_BaseRequest):
    """Iterate probe metadata, cousteau-generator style.

    Example::

        for probe in ProbeRequest(country_code="DE", tags=["lte"]):
            print(probe["id"], probe["tags"])
    """

    def __init__(
        self,
        country_code: str = None,
        tags: Sequence[str] = None,
        is_anchor: bool = None,
        platform: AtlasPlatform = None,
    ):
        super().__init__(platform)
        self.country_code = country_code
        self.tags = list(tags) if tags else None
        self.is_anchor = is_anchor

    def __iter__(self) -> Iterator[dict]:
        probes = self.platform.filter_probes(
            country_code=self.country_code,
            tags=self.tags,
            is_anchor=self.is_anchor,
        )
        for probe in probes:
            yield probe.as_api_dict()

    def total_count(self) -> int:
        return sum(1 for _ in self)
