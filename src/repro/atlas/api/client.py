"""Cousteau-style request objects.

Mirrors the ``ripe.atlas.cousteau`` API surface the paper's tooling used:

* :class:`AtlasCreateRequest` — register measurements;
* :class:`AtlasResultsRequest` — download results for a window;
* :class:`AtlasStopRequest` — stop an ongoing measurement;
* :class:`MeasurementRequest` — measurement metadata;
* :class:`ProbeRequest` — iterate the probe directory.

Each ``create()`` returns ``(is_success, response)`` exactly like
cousteau, so analysis code ports across with only the import changed.
Requests reach the in-process :class:`~repro.atlas.platform.AtlasPlatform`
through a :class:`~repro.atlas.api.transport.Transport` seam (where a
live deployment would put HTTPS, and where chaos testing injects
faults); pass a platform or transport explicitly or rely on the
process-wide default.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.atlas.api.measurements import MeasurementDefinition
from repro.atlas.api.sources import AtlasSource
from repro.atlas.api.transport import (
    Transport,
    default_platform,
    reset_default_platform,
)
from repro.atlas.platform import DEFAULT_KEY, AtlasPlatform
from repro.errors import AtlasAPIError, AtlasError, TransportError


class _BaseRequest:
    """Shared plumbing: resolve the transport to talk through."""

    def __init__(self, platform: AtlasPlatform = None, transport: Transport = None):
        if transport is not None:
            self._transport = transport
        else:
            self._transport = Transport(platform)

    @property
    def transport(self) -> Transport:
        return self._transport

    @property
    def platform(self) -> AtlasPlatform:
        return self._transport.platform


class AtlasCreateRequest(_BaseRequest):
    """Register one or more measurements (cousteau-compatible shape)."""

    def __init__(
        self,
        *,
        measurements: Sequence[MeasurementDefinition],
        sources: Sequence[AtlasSource],
        start_time: int,
        stop_time: int,
        key: str = DEFAULT_KEY,
        is_oneoff: bool = False,
        platform: AtlasPlatform = None,
        transport: Transport = None,
    ):
        super().__init__(platform, transport)
        if not measurements:
            raise AtlasError("at least one measurement is required")
        if not sources:
            raise AtlasError("at least one source is required")
        self.measurements = list(measurements)
        self.sources = list(sources)
        self.start_time = int(start_time)
        self.stop_time = int(stop_time)
        self.key = key
        self.is_oneoff = is_oneoff

    def create(self) -> Tuple[bool, dict]:
        """Returns ``(True, {"measurements": [ids...]})`` or ``(False, error)``."""
        created: List[int] = []
        try:
            for definition in self.measurements:
                if self.is_oneoff:
                    definition.is_oneoff = True
                    definition.interval = None
                struct = definition.build_api_struct()
                msm_id = self.transport.create_measurement(
                    struct,
                    self.sources,
                    self.start_time,
                    self.stop_time,
                    key=self.key,
                )
                created.append(msm_id)
        except (AtlasAPIError, AtlasError) as exc:
            return False, {"error": {"detail": str(exc)}, "measurements": created}
        return True, {"measurements": created}


class AtlasResultsRequest(_BaseRequest):
    """Fetch results of a measurement, optionally windowed."""

    def __init__(
        self,
        *,
        msm_id: int,
        start: int = None,
        stop: int = None,
        probe_ids: Sequence[int] = None,
        platform: AtlasPlatform = None,
        transport: Transport = None,
    ):
        super().__init__(platform, transport)
        self.msm_id = int(msm_id)
        self.start = start
        self.stop = stop
        self.probe_ids = list(probe_ids) if probe_ids is not None else None

    def create(self) -> Tuple[bool, List[dict]]:
        try:
            results = self.transport.results(
                self.msm_id, self.start, self.stop, self.probe_ids
            )
        except (AtlasAPIError, TransportError) as exc:
            return False, [{"error": {"detail": str(exc)}}]
        return True, results

    def columns(self):
        """Columnar fetch: ``(True, PingColumns)`` when the fast path can
        serve this window, ``(False, reason)`` when the caller must fall
        back to :meth:`create` — chaos transport, non-ping measurement,
        or an API error.  Cousteau has no such verb; it exists so bulk
        consumers can skip the per-sample dict round-trip."""
        try:
            columns = self.transport.results_columns(
                self.msm_id, self.start, self.stop, self.probe_ids
            )
        except (AtlasAPIError, TransportError) as exc:
            return False, {"error": {"detail": str(exc)}}
        if columns is None:
            return False, {"error": {"detail": "no columnar path for this fetch"}}
        return True, columns


class AtlasStopRequest(_BaseRequest):
    """Stop an ongoing measurement.

    ``at`` is the Unix timestamp at which the stop takes effect (results
    scheduled after it are never generated); omit it to cancel outright.
    """

    def __init__(
        self,
        *,
        msm_id: int,
        key: str = DEFAULT_KEY,
        at: int = None,
        platform: AtlasPlatform = None,
        transport: Transport = None,
    ):
        super().__init__(platform, transport)
        self.msm_id = int(msm_id)
        self.key = key
        self.at = at

    def create(self) -> Tuple[bool, dict]:
        try:
            self.transport.stop_measurement(self.msm_id, key=self.key, at=self.at)
        except (AtlasAPIError, TransportError) as exc:
            return False, {"error": {"detail": str(exc)}}
        return True, {}


class MeasurementRequest(_BaseRequest):
    """Measurement metadata lookup."""

    def __init__(
        self,
        *,
        msm_id: int,
        platform: AtlasPlatform = None,
        transport: Transport = None,
    ):
        super().__init__(platform, transport)
        self.msm_id = int(msm_id)

    def get(self) -> dict:
        return self.transport.measurement(self.msm_id).as_api_dict()


class ProbeRequest(_BaseRequest):
    """Iterate probe metadata, cousteau-generator style.

    Example::

        for probe in ProbeRequest(country_code="DE", tags=["lte"]):
            print(probe["id"], probe["tags"])
    """

    def __init__(
        self,
        country_code: str = None,
        tags: Sequence[str] = None,
        is_anchor: bool = None,
        platform: AtlasPlatform = None,
        transport: Transport = None,
    ):
        super().__init__(platform, transport)
        self.country_code = country_code
        self.tags = list(tags) if tags else None
        self.is_anchor = is_anchor

    def _matches(self) -> List:
        return self.transport.filter_probes(
            country_code=self.country_code,
            tags=self.tags,
            is_anchor=self.is_anchor,
        )

    def __iter__(self) -> Iterator[dict]:
        for probe in self._matches():
            yield probe.as_api_dict()

    def total_count(self) -> int:
        """Matching-probe count in one directory pass (no dict building)."""
        return len(self._matches())
