"""The transport seam between the client API and the platform.

Every cousteau-style request (:mod:`repro.atlas.api.client`,
:mod:`repro.atlas.api.stream`) and the campaign collector route their
platform calls through a :class:`Transport` instead of invoking
:class:`~repro.atlas.platform.AtlasPlatform` methods directly.  The seam
is where a live deployment would put HTTPS; here it is where chaos lives:

* with no fault injector attached (the default), every method is a
  direct delegation — the seam adds no measurable overhead and behavior
  is byte-identical to calling the platform;
* with a :class:`~repro.atlas.faults.FaultInjector` attached, every call
  can fail the way the real REST API failed (429/5xx/timeout/reset/
  maintenance), result fetches are paginated and pages can arrive
  truncated, duplicated, or malformed, and a
  :class:`~repro.atlas.api.retry.RetryEngine` drives recovery on a
  simulated clock.

Faults and retry jitter both derive from the platform seed, so a chaos
run replays byte-identically under the same seed.  Each result-window
fetch additionally runs under a ``(msm_id, start, stop)`` fault/retry
*scope* (:meth:`~repro.atlas.faults.FaultInjector.scope`), which makes
the fetch outcome a pure function of ``(seed, profile, policy, msm_id,
window)`` — independent of fetch order or thread interleaving.  A
sharded parallel collector exploits this: every worker gets its own
:meth:`Transport.worker_clone` (fresh clock, injector, and retry
state) and still reproduces exactly the faults a serial run would have
injected for the same windows.
"""

from __future__ import annotations

from contextlib import ExitStack
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro.atlas.api.retry import RetryEngine, RetryPolicy, SimulatedClock
from repro.atlas.faults import FaultInjector, FaultProfile, get_profile
from repro.atlas.platform import AtlasPlatform
from repro.obs import ensure_obs

#: Result-page size the transport fetches under fault injection, mirroring
#: the real API's paginated ``/results`` endpoint.
DEFAULT_PAGE_SIZE = 500


@lru_cache(maxsize=1)
def default_platform() -> AtlasPlatform:
    """Process-wide default platform (seed 0), built on first use."""
    return AtlasPlatform(seed=0)


def reset_default_platform() -> None:
    """Drop the cached default platform (test isolation helper)."""
    default_platform.cache_clear()


class Transport:
    """Routes client requests to a platform, optionally through chaos.

    ``faults`` accepts a profile name (``"none"``/``"flaky"``/
    ``"outage"``/``"hostile"``), a :class:`FaultProfile`, a ready-made
    :class:`FaultInjector`, or ``None`` for the zero-overhead pass-through.
    """

    def __init__(
        self,
        platform: AtlasPlatform = None,
        faults=None,
        retry: RetryPolicy = None,
        clock: SimulatedClock = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        obs=None,
    ):
        self.platform = platform if platform is not None else default_platform()
        self.page_size = int(page_size)
        self.clock = clock if clock is not None else SimulatedClock()
        self.obs = ensure_obs(obs)
        if isinstance(faults, FaultInjector):
            injector = faults
            injector.clock = self.clock
        elif faults is None:
            injector = None
        else:
            profile = get_profile(faults)
            injector = (
                None
                if profile.is_noop
                else FaultInjector(self.platform.seed, profile, clock=self.clock)
            )
        self.injector = injector
        self.retry = RetryEngine(retry, self.clock, seed=self.platform.seed)
        self.bind_obs(self.obs)

    def bind_obs(self, obs) -> None:
        """Attach an observability context to the whole seam.

        One context serves the transport, its retry engine, and its fault
        injector, and span timestamps follow this transport's simulated
        clock.  Called at construction; a campaign that owns its own
        context rebinds the transport it was handed.
        """
        self.obs = ensure_obs(obs)
        self.retry.obs = self.obs
        if self.injector is not None:
            self.injector.obs = self.obs
        self.obs.bind_clock(self.clock.now)

    @property
    def fault_profile(self) -> FaultProfile:
        return self.injector.profile if self.injector else get_profile("none")

    def worker_clone(self) -> "Transport":
        """A transport for one parallel-collection worker.

        Same platform, fault profile, retry policy, and page size — but a
        fresh simulated clock, fault injector, and retry engine, so
        workers never share mutable chaos state.  Because fault and
        jitter schedules are scoped per result window, a clone injects
        exactly the faults the original would have for the same window.
        """
        profile = self.fault_profile
        return Transport(
            self.platform,
            faults=None if profile.is_noop else profile,
            retry=self.retry.policy,
            clock=SimulatedClock(),
            page_size=self.page_size,
            obs=self.obs.child(),
        )

    # -- plumbing -----------------------------------------------------------

    def _call(self, endpoint: str, fn):
        self.obs.inc("transport_calls_total", endpoint=endpoint)
        if self.injector is None:
            return fn()

        def attempt():
            self.injector.before_call(endpoint)
            return fn()

        return self.retry.call(endpoint, attempt)

    # -- the API surface ----------------------------------------------------

    def create_measurement(
        self, definition: dict, sources, start_time: int, stop_time: int, key: str
    ) -> int:
        return self._call(
            "create",
            lambda: self.platform.create_measurement(
                definition, sources, start_time, stop_time, key=key
            ),
        )

    def stop_measurement(self, msm_id: int, key: str, at: int = None) -> None:
        return self._call(
            "stop", lambda: self.platform.stop_measurement(msm_id, key=key, at=at)
        )

    def measurement(self, msm_id: int):
        return self._call("measurement", lambda: self.platform.measurement(msm_id))

    def filter_probes(self, **query) -> List:
        return self._call("probes", lambda: self.platform.filter_probes(**query))

    def results(
        self,
        msm_id: int,
        start: int = None,
        stop: int = None,
        probe_ids: Sequence[int] = None,
    ) -> List[dict]:
        """Fetch a measurement's results for a window.

        Pass-through mode delegates straight to the platform.  Under
        fault injection the fetch is paginated; each page call can fail
        or arrive mangled, and the retry engine re-fetches pages whose
        truncation was detected.  Duplicated entries and malformed blobs
        are *returned* — cleaning them up is the collector's job, exactly
        as with the real API.
        """
        self.obs.inc("transport_calls_total", endpoint="results")
        if self.injector is None:
            return self.platform.results(msm_id, start, stop, probe_ids, obs=self.obs)
        # Scope the whole fetch by (measurement, window): the fault and
        # jitter schedules below depend only on these labels, never on
        # what was fetched before — see the module docstring.
        labels = (
            "msm",
            msm_id,
            "-" if start is None else int(start),
            "-" if stop is None else int(stop),
        )
        with ExitStack() as stack:
            stack.enter_context(self.injector.scope(*labels))
            stack.enter_context(self.retry.scope(*labels))
            # Validate the measurement id through the chaos path first so
            # a 404 surfaces as an API error, not a per-page fault.
            self.measurement(msm_id)
            full = self.platform.results(msm_id, start, stop, probe_ids, obs=self.obs)
            out: List[dict] = []
            offsets = range(0, len(full), self.page_size) if full else (0,)
            for offset in offsets:
                page_slice = full[offset : offset + self.page_size]

                def fetch_page(page=page_slice):
                    self.injector.before_call("results")
                    return self.injector.mangle_page(page)

                out.extend(self.retry.call("results", fetch_page))
            return out

    def results_columns(
        self,
        msm_id: int,
        start: int = None,
        stop: int = None,
        probe_ids: Sequence[int] = None,
    ):
        """Columnar window fetch, or ``None`` when it cannot apply.

        The transport only vouches for the fast path when the wire is
        clean: with a fault injector attached, pages can be truncated,
        duplicated, or mangled, and reproducing those byte-level faults
        requires the raw dict stream — so chaos runs return ``None`` and
        the caller falls back to :meth:`results` + per-sample parsing.
        Non-ping measurements also return ``None`` (no batch synthesis).
        """
        if self.injector is not None:
            return None
        self.obs.inc("transport_calls_total", endpoint="results_columns")
        return self.platform.results_columns(
            msm_id, start, stop, probe_ids, obs=self.obs
        )

    def results_count(
        self,
        msm_id: int,
        start: int = None,
        stop: int = None,
        probe_ids: Sequence[int] = None,
    ) -> Optional[int]:
        """Exact row count a columnar window fetch would yield, or ``None``.

        Gated exactly like :meth:`results_columns`: with a fault injector
        attached the row stream is not precomputable (retries and mangled
        pages shape it), so chaos runs return ``None`` and direct-to-store
        planning is off the table — the caller takes the stitched record
        path instead.
        """
        if self.injector is not None:
            return None
        count = self.platform.results_count(msm_id, start, stop, probe_ids)
        if count is not None:
            self.obs.inc("transport_calls_total", endpoint="results_count")
        return count

    # -- reporting ----------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Fault and retry accounting for benchmarks / health reports."""
        return {
            "profile": self.fault_profile.name,
            "faults": self.injector.stats() if self.injector else {},
            **self.retry.stats(),
        }
