"""Probe selection, in the style of cousteau's ``AtlasSource``.

A source expression selects which probes run a measurement: by country, by
area (continent or worldwide), by explicit probe id list, or by ASN —
optionally constrained by include/exclude tags, exactly like the real API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.atlas.probes import Probe, ProbeStatus
from repro.errors import AtlasError, ProbeSelectionError
from repro.geo.continents import CONTINENT_CODES

_VALID_TYPES = ("country", "area", "probes", "asn")

#: Area values accepted by the real API, plus our continent codes.
_AREAS = ("WW",) + CONTINENT_CODES


@dataclass
class AtlasSource:
    """One probe-selection clause."""

    type: str
    value: str
    requested: int
    tags_include: Tuple[str, ...] = ()
    tags_exclude: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.type not in _VALID_TYPES:
            raise AtlasError(
                f"source type must be one of {_VALID_TYPES}, got {self.type!r}"
            )
        if self.requested <= 0:
            raise AtlasError(f"requested probe count must be positive: {self.requested}")
        if self.type == "area" and self.value not in _AREAS:
            raise AtlasError(f"unknown area {self.value!r}; valid: {_AREAS}")
        self.tags_include = tuple(tag.lower() for tag in self.tags_include)
        self.tags_exclude = tuple(tag.lower() for tag in self.tags_exclude)

    def build_api_struct(self) -> dict:
        struct = {
            "type": self.type,
            "value": self.value,
            "requested": self.requested,
        }
        if self.tags_include or self.tags_exclude:
            struct["tags"] = {
                "include": list(self.tags_include),
                "exclude": list(self.tags_exclude),
            }
        return struct

    # -- selection -----------------------------------------------------------

    def _wanted_probe_ids(self) -> frozenset:
        try:
            return frozenset(int(part) for part in self.value.split(","))
        except ValueError:
            raise AtlasError(
                f"probes source value must be comma-separated ids: {self.value!r}"
            ) from None

    def _matches_locality(self, probe: Probe, wanted_ids: frozenset = None) -> bool:
        if self.type == "country":
            return probe.country_code == self.value.upper()
        if self.type == "area":
            return self.value == "WW" or probe.continent == self.value
        if self.type == "probes":
            if wanted_ids is None:
                wanted_ids = self._wanted_probe_ids()
            return probe.probe_id in wanted_ids
        if self.type == "asn":
            return probe.asn == int(self.value)
        raise AtlasError(f"unhandled source type {self.type!r}")  # pragma: no cover

    def _matches_tags(self, probe: Probe) -> bool:
        tags = set(probe.tags)
        if self.tags_include and not set(self.tags_include).issubset(tags):
            return False
        if self.tags_exclude and set(self.tags_exclude).intersection(tags):
            return False
        return True

    def select(self, probes: Iterable[Probe]) -> List[Probe]:
        """Resolve this source against a probe pool.

        Returns up to ``requested`` connected probes, in stable probe-id
        order (the simulator's stand-in for the platform's allocator).
        Raises :class:`ProbeSelectionError` when nothing matches.
        """
        wanted_ids = self._wanted_probe_ids() if self.type == "probes" else None
        matching = [
            probe
            for probe in probes
            if probe.status is ProbeStatus.CONNECTED
            and self._matches_locality(probe, wanted_ids)
            and self._matches_tags(probe)
        ]
        if not matching:
            raise ProbeSelectionError(
                f"source {self.type}={self.value!r} matched no connected probes"
            )
        matching.sort(key=lambda probe: probe.probe_id)
        return matching[: self.requested]


def select_all(sources: Sequence[AtlasSource], probes: Sequence[Probe]) -> List[Probe]:
    """Union of all source selections, deduplicated, probe-id ordered."""
    if not sources:
        raise AtlasError("at least one source is required")
    chosen = {}
    for source in sources:
        for probe in source.select(probes):
            chosen[probe.probe_id] = probe
    return [chosen[pid] for pid in sorted(chosen)]
