"""Deterministic fault injection for the Atlas transport seam.

The paper's nine-month campaign ran against the *live* RIPE Atlas REST
API, where rate limits, 5xx storms, timeouts, truncated pages, and
malformed blobs were the operating reality.  The simulated platform is
perfectly reliable, so this module re-introduces those failures — on
purpose, and deterministically.

A :class:`FaultInjector` sits inside the transport
(:mod:`repro.atlas.api.transport`) and intercepts every outbound call.
Each intercept draws from :func:`repro.net.rng.stream` keyed by
``(seed, "faults", *scope, endpoint, call_index)``, so a run with the
same seed replays the identical fault schedule byte for byte; chaos
tests can assert exact-dataset identity across runs.

**Order independence (the parallel-collection contract).**  The call
counter and the maintenance window are *scoped*: entering
:meth:`FaultInjector.scope` with a label path (the transport uses
``("msm", msm_id, start, stop)`` around each result-window fetch) resets
both and mixes the labels into the RNG key.  Inside a scope the fault
schedule is therefore a pure function of ``(seed, profile, scope
labels, call sequence within the scope)`` — independent of which
worker, thread, or position in the campaign performs the fetch.  Two
transports with the same seed and profile inject byte-identical faults
for the same measurement window regardless of interleaving, which is
what lets a sharded parallel collector converge to the exact dataset a
serial run produces.

Two fault classes exist:

* **transport faults** (:meth:`FaultInjector.before_call`) — raised as
  :class:`~repro.errors.TransientTransportError` subclasses before the
  platform is reached: HTTP 429 with ``Retry-After``, transient 5xx,
  timeouts, connection resets, and clock-driven maintenance windows;
* **data faults** (:meth:`FaultInjector.mangle_page`) — applied to the
  result page the platform returned: truncation (detected client-side
  and retried), duplicated entries (caught by the collector's dedup
  guard), and malformed blobs (quarantined by the collector).
"""

from __future__ import annotations

import itertools
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    AtlasError,
    ConnectionDroppedError,
    MaintenanceError,
    RateLimitedError,
    RequestTimeoutError,
    ServerWobbleError,
    TruncatedPageError,
)
from repro.net.rng import stream
from repro.obs import NULL_OBS


@dataclass(frozen=True)
class FaultProfile:
    """Per-call fault probabilities for one chaos level.

    All probabilities are per intercepted call; data-fault probabilities
    are per fetched result page.  ``maintenance`` is the chance a
    maintenance window *opens* at a call; while one is open every call
    fails with 503 until the (simulated) clock passes its end.
    """

    name: str = "none"
    rate_limit: float = 0.0
    server_error: float = 0.0
    timeout: float = 0.0
    connection_reset: float = 0.0
    maintenance: float = 0.0
    maintenance_duration_s: float = 0.0
    truncate_page: float = 0.0
    duplicate_page: float = 0.0
    malformed: float = 0.0
    #: Range the injected ``Retry-After`` header is drawn from (seconds).
    retry_after_min_s: float = 5.0
    retry_after_max_s: float = 45.0

    @property
    def is_noop(self) -> bool:
        return (
            self.rate_limit == self.server_error == self.timeout
            == self.connection_reset == self.maintenance
            == self.truncate_page == self.duplicate_page == self.malformed
            == 0.0
        )


#: Named chaos levels.  ``flaky`` injects only *recoverable* faults, so a
#: retrying + deduplicating collector must converge to the exact
#: fault-free dataset.  ``outage`` adds maintenance windows; ``hostile``
#: adds malformed blobs (unrecoverable: those samples are quarantined).
PROFILES: Dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "flaky": FaultProfile(
        name="flaky",
        rate_limit=0.06,
        server_error=0.06,
        timeout=0.03,
        connection_reset=0.02,
        truncate_page=0.04,
        duplicate_page=0.04,
    ),
    "outage": FaultProfile(
        name="outage",
        rate_limit=0.02,
        server_error=0.03,
        maintenance=0.01,
        maintenance_duration_s=900.0,
        truncate_page=0.02,
        duplicate_page=0.02,
    ),
    "hostile": FaultProfile(
        name="hostile",
        rate_limit=0.08,
        server_error=0.08,
        timeout=0.04,
        connection_reset=0.03,
        maintenance=0.005,
        maintenance_duration_s=600.0,
        truncate_page=0.05,
        duplicate_page=0.05,
        malformed=0.04,
    ),
}


def get_profile(profile) -> FaultProfile:
    """Resolve a profile name (or pass a :class:`FaultProfile` through)."""
    if isinstance(profile, FaultProfile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        raise AtlasError(
            f"unknown fault profile {profile!r}; choose from {sorted(PROFILES)}"
        ) from None


@dataclass(frozen=True)
class WorkerFaultProfile:
    """Per-window worker-process fault probabilities for one chaos level.

    Where :class:`FaultProfile` fails the *transport*, this fails the
    *collector itself*: ``crash`` is the chance a worker dies outright
    mid-window, ``hang`` the chance it wedges for ``hang_duration_s``
    simulated seconds (reaped by the supervisor's watchdog when that
    exceeds the shard deadline).  Decisions are drawn per measurement
    window *and respawn attempt* — window-keyed so outcomes are
    worker-count-invariant, attempt-keyed so a respawned worker re-rolls
    instead of dying at the same spot forever.
    """

    name: str = "steady"
    crash: float = 0.0
    hang: float = 0.0
    hang_duration_s: float = 0.0

    @property
    def is_noop(self) -> bool:
        return self.crash == self.hang == 0.0


#: Named worker-chaos levels, the supervisor-side analogue of
#: :data:`PROFILES`.  All profiles are fully recoverable given enough
#: respawn attempts; ``pathological`` exists to exercise the quarantine
#: path in a bounded number of rounds.
WORKER_PROFILES: Dict[str, WorkerFaultProfile] = {
    "steady": WorkerFaultProfile(name="steady"),
    "crashy": WorkerFaultProfile(name="crashy", crash=0.05),
    "wedged": WorkerFaultProfile(name="wedged", hang=0.03, hang_duration_s=600.0),
    "pathological": WorkerFaultProfile(
        name="pathological", crash=0.08, hang=0.05, hang_duration_s=900.0
    ),
}


def get_worker_profile(profile) -> WorkerFaultProfile:
    """Resolve a worker profile name (or pass one through)."""
    if isinstance(profile, WorkerFaultProfile):
        return profile
    try:
        return WORKER_PROFILES[profile]
    except KeyError:
        raise AtlasError(
            f"unknown worker fault profile {profile!r}; "
            f"choose from {sorted(WORKER_PROFILES)}"
        ) from None


class FaultInjector:
    """Seeded fault source for one transport instance.

    Every intercepted call consumes one slot of a global call counter;
    the decision for call *n* is drawn from
    ``stream(seed, "faults", endpoint, n)``, which makes the schedule a
    pure function of ``(seed, call sequence)`` — and the call sequence of
    a deterministic collector is itself reproducible.
    """

    def __init__(self, seed: int, profile="flaky", clock=None, obs=None):
        self.seed = int(seed)
        self.profile = get_profile(profile)
        self.clock = clock
        self.obs = obs if obs is not None else NULL_OBS
        self.counts: Counter = Counter()
        self._scope_labels: Tuple = ()
        self._calls = itertools.count()
        self._maintenance_until: Optional[float] = None

    def _record(self, kind: str) -> None:
        """Account one injected fault (local counts + metrics registry)."""
        self.counts[kind] += 1
        self.obs.inc("faults_injected_total", kind=kind)

    @contextmanager
    def scope(self, *labels):
        """Run a block under a label-derived fault scope.

        Resets the call counter and any open maintenance window for the
        duration of the block and keys every RNG draw inside it by
        ``labels`` — the schedule becomes a pure function of
        ``(seed, profile, labels, call sequence)``, independent of what
        was injected before or concurrently elsewhere.  Fault *counts*
        keep accumulating across scopes.  Scopes restore the previous
        state on exit, so unscoped callers are unaffected.
        """
        saved = (self._scope_labels, self._calls, self._maintenance_until)
        self._scope_labels = tuple(labels)
        self._calls = itertools.count()
        self._maintenance_until = None
        try:
            yield self
        finally:
            self._scope_labels, self._calls, self._maintenance_until = saved

    # -- transport faults ---------------------------------------------------

    def before_call(self, endpoint: str) -> None:
        """Raise a transient transport fault, or return to let the call pass."""
        profile = self.profile
        rng = stream(
            self.seed, "faults", *self._scope_labels, endpoint, next(self._calls)
        )
        now = self.clock.now() if self.clock is not None else 0.0
        if self._maintenance_until is not None:
            if now < self._maintenance_until:
                self._record("maintenance_hit")
                raise MaintenanceError(retry_after=self._maintenance_until - now)
            self._maintenance_until = None
        draw = float(rng.random())
        edge = profile.rate_limit
        if draw < edge:
            self._record("rate_limit")
            raise RateLimitedError(
                retry_after=float(
                    rng.uniform(profile.retry_after_min_s, profile.retry_after_max_s)
                )
            )
        edge += profile.server_error
        if draw < edge:
            self._record("server_error")
            raise ServerWobbleError(status=int(rng.choice([500, 502, 503])))
        edge += profile.timeout
        if draw < edge:
            self._record("timeout")
            raise RequestTimeoutError()
        edge += profile.connection_reset
        if draw < edge:
            self._record("connection_reset")
            raise ConnectionDroppedError()
        edge += profile.maintenance
        if draw < edge:
            self._record("maintenance_open")
            self._maintenance_until = now + profile.maintenance_duration_s
            raise MaintenanceError(retry_after=profile.maintenance_duration_s)

    # -- data faults --------------------------------------------------------

    def mangle_page(self, page: List[dict], endpoint: str = "results") -> List[dict]:
        """Apply data faults to one fetched result page.

        Truncation raises (the client detects the short page and
        retries); duplication and malformed blobs return a mangled copy —
        the platform's canonical dicts are never mutated.
        """
        profile = self.profile
        rng = stream(
            self.seed, "faults", *self._scope_labels, endpoint, "page",
            next(self._calls),
        )
        if page and float(rng.random()) < profile.truncate_page:
            self._record("truncate_page")
            got = int(rng.integers(0, len(page)))
            raise TruncatedPageError(got=got, declared=len(page))
        mangled = list(page)
        if page and float(rng.random()) < profile.duplicate_page:
            self._record("duplicate_page")
            lo = int(rng.integers(0, len(page)))
            hi = min(len(page), lo + 1 + int(rng.integers(0, 4)))
            mangled = mangled + [dict(entry) for entry in page[lo:hi]]
        if page and float(rng.random()) < profile.malformed:
            self._record("malformed")
            index = int(rng.integers(0, len(mangled)))
            mangled[index] = self._corrupt(mangled[index], rng)
        return mangled

    @staticmethod
    def _corrupt(entry: dict, rng) -> object:
        """One malformed result blob, in a shape real campaigns saw."""
        kind = int(rng.integers(0, 3))
        if kind == 0:
            blob = dict(entry)
            blob.pop("type", None)  # undispatchable
            return blob
        if kind == 1:
            blob = dict(entry)
            blob["timestamp"] = "not-a-timestamp"
            return blob
        return '{"truncated": '  # invalid JSON string blob

    # -- reporting ----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Injected-fault counts by kind (stable key order)."""
        return {kind: self.counts[kind] for kind in sorted(self.counts)}
