"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GeoError(ReproError):
    """Invalid geographic input (unknown country, bad coordinates, ...)."""


class UnknownCountryError(GeoError):
    """A country lookup failed."""

    def __init__(self, code: str):
        super().__init__(f"unknown country: {code!r}")
        self.code = code


class FrameError(ReproError):
    """Invalid dataframe operation."""


class ColumnError(FrameError):
    """A column lookup or column-shape constraint failed."""


class NetworkModelError(ReproError):
    """The latency model was asked for an impossible path or parameter."""


class AtlasError(ReproError):
    """Base class for RIPE-Atlas-simulator errors."""


class AtlasAPIError(AtlasError):
    """The simulated Atlas API rejected a request.

    Mirrors the error envelope of the real REST API: a status code plus a
    human-readable detail string.
    """

    def __init__(self, status: int, detail: str):
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.detail = detail


class QuotaExceededError(AtlasAPIError):
    """The requesting account ran out of credits or hit a rate limit."""

    def __init__(self, detail: str = "credit quota exceeded"):
        super().__init__(402, detail)


class MeasurementNotFoundError(AtlasAPIError):
    """A measurement id does not exist on the platform."""

    def __init__(self, msm_id: int):
        super().__init__(404, f"measurement {msm_id} not found")
        self.msm_id = msm_id


class TransportError(AtlasError):
    """The transport layer between client and platform failed.

    These model the HTTP-level failures a live REST API exhibits (rate
    limits, 5xx storms, timeouts, resets) rather than semantic API
    rejections, which stay :class:`AtlasAPIError`.
    """


class TransientTransportError(TransportError):
    """A transport failure that a retry may resolve."""

    #: Server-suggested wait before retrying (``Retry-After``), seconds.
    retry_after: float = 0.0


class RateLimitedError(TransientTransportError):
    """HTTP 429: the endpoint's rate limit tripped."""

    def __init__(self, retry_after: float):
        super().__init__(f"HTTP 429: rate limited, retry after {retry_after:.0f}s")
        self.retry_after = float(retry_after)


class ServerWobbleError(TransientTransportError):
    """A transient 5xx from the platform."""

    def __init__(self, status: int = 502):
        super().__init__(f"HTTP {status}: transient server error")
        self.status = status


class RequestTimeoutError(TransientTransportError):
    """The request exceeded the client's read timeout."""

    def __init__(self, timeout_s: float = 30.0):
        super().__init__(f"request timed out after {timeout_s:.0f}s")
        self.timeout_s = timeout_s


class ConnectionDroppedError(TransientTransportError):
    """The connection reset mid-request."""

    def __init__(self):
        super().__init__("connection reset by peer")


class MaintenanceError(TransientTransportError):
    """HTTP 503: the platform is inside a maintenance window."""

    def __init__(self, retry_after: float):
        super().__init__(
            f"HTTP 503: maintenance window, retry after {retry_after:.0f}s"
        )
        self.retry_after = float(retry_after)


class TruncatedPageError(TransientTransportError):
    """A result page arrived shorter than its declared length.

    Models a content-length mismatch: the client detects the truncation
    and must re-fetch the whole page.
    """

    def __init__(self, got: int, declared: int):
        super().__init__(f"result page truncated: got {got} of {declared} entries")
        self.got = got
        self.declared = declared


class CircuitOpenError(TransportError):
    """The per-endpoint circuit breaker is open; calls are refused."""

    def __init__(self, endpoint: str, remaining_s: float):
        super().__init__(
            f"circuit open for endpoint {endpoint!r}; {remaining_s:.0f}s of cooldown left"
        )
        self.endpoint = endpoint
        self.remaining_s = remaining_s


class RetryExhaustedError(TransportError):
    """A single call failed every allowed attempt."""

    def __init__(self, endpoint: str, attempts: int, last: Exception):
        super().__init__(
            f"endpoint {endpoint!r} failed after {attempts} attempts: {last}"
        )
        self.endpoint = endpoint
        self.attempts = attempts
        self.last = last


class RetryBudgetExhaustedError(TransportError):
    """The collection-wide retry budget ran dry."""

    def __init__(self, endpoint: str, budget: int):
        super().__init__(
            f"retry budget of {budget} exhausted (last failing endpoint {endpoint!r})"
        )
        self.endpoint = endpoint
        self.budget = budget


class ProbeSelectionError(AtlasError):
    """A probe source expression matched no usable probes."""


class ResultParseError(AtlasError):
    """A raw result blob could not be parsed (sagan-style)."""


class CampaignError(ReproError):
    """Campaign configuration or execution failed."""


class CollectionInterruptedError(CampaignError):
    """Collection died mid-campaign but left a resumable checkpoint.

    Carries the checkpoint and the partial (unfrozen) dataset so the
    caller can resume with ``campaign.collect(checkpoint=..., dataset=...)``,
    plus the id of the measurement whose fetch failed terminally —
    without it the re-raise would lose which measurement's partial fetch
    was abandoned (its samples are *not* in the dataset; the checkpoint
    never advanced past it).
    """

    def __init__(self, detail: str, checkpoint=None, dataset=None, msm_id=None):
        super().__init__(f"collection interrupted: {detail}")
        self.checkpoint = checkpoint
        self.dataset = dataset
        self.msm_id = msm_id


class WorkerCrashError(CampaignError):
    """A supervised collection worker died mid-shard (injected or real)."""

    def __init__(self, shard: int, msm_id: int):
        super().__init__(f"worker for shard {shard} crashed at measurement {msm_id}")
        self.shard = shard
        self.msm_id = msm_id


class WorkerHungError(CampaignError):
    """A supervised worker exceeded its watchdog deadline and was reaped."""

    def __init__(self, shard: int, msm_id: int, elapsed_s: float, deadline_s: float):
        super().__init__(
            f"worker for shard {shard} hung at measurement {msm_id} "
            f"({elapsed_s:.0f}s simulated, deadline {deadline_s:.0f}s)"
        )
        self.shard = shard
        self.msm_id = msm_id
        self.elapsed_s = elapsed_s
        self.deadline_s = deadline_s


class StoreError(ReproError):
    """Persistent campaign store misuse or unsupported layout.

    Covers API misuse (writing to a finalized writer, opening a path
    that is not a store) and format-version mismatches; data damage is
    the stricter :class:`StoreIntegrityError`.
    """


class StoreIntegrityError(StoreError):
    """A store's on-disk bytes do not match its manifest.

    Raised whenever a chunk is missing, truncated, or fails its SHA-256
    check, or the manifest itself is truncated or unparseable — the
    contract is that damaged data is *reported*, never silently
    analyzed.
    """


class StoreRepairError(StoreError):
    """A damaged store cannot be (or failed to be) surgically repaired.

    Raised when the manifest itself is damaged, the store carries no
    provenance or window index to re-synthesize from, or a re-synthesized
    chunk does not hash back to the manifest's recorded checksum.
    """


class SimulatedCrashError(ReproError):
    """The filesystem fault injector killed the simulated process.

    Raised by :mod:`repro.store.fsim` at an injected crash point, after
    applying its power-loss model (unsynced data dropped, un-dirsynced
    renames rolled back).  Code under test must treat it like a real
    crash: no cleanup handlers get to run against the modeled disk.
    """

    def __init__(self, op: str, point: str, step: int, kind: str):
        super().__init__(
            f"simulated crash [{kind}] at step {step}: {op} ({point})"
        )
        self.op = op
        self.point = point
        self.step = step
        self.kind = kind


class CrawlerError(ReproError):
    """The scholar crawler hit a terminal condition (e.g. blocked)."""
