"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GeoError(ReproError):
    """Invalid geographic input (unknown country, bad coordinates, ...)."""


class UnknownCountryError(GeoError):
    """A country lookup failed."""

    def __init__(self, code: str):
        super().__init__(f"unknown country: {code!r}")
        self.code = code


class FrameError(ReproError):
    """Invalid dataframe operation."""


class ColumnError(FrameError):
    """A column lookup or column-shape constraint failed."""


class NetworkModelError(ReproError):
    """The latency model was asked for an impossible path or parameter."""


class AtlasError(ReproError):
    """Base class for RIPE-Atlas-simulator errors."""


class AtlasAPIError(AtlasError):
    """The simulated Atlas API rejected a request.

    Mirrors the error envelope of the real REST API: a status code plus a
    human-readable detail string.
    """

    def __init__(self, status: int, detail: str):
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.detail = detail


class QuotaExceededError(AtlasAPIError):
    """The requesting account ran out of credits or hit a rate limit."""

    def __init__(self, detail: str = "credit quota exceeded"):
        super().__init__(402, detail)


class MeasurementNotFoundError(AtlasAPIError):
    """A measurement id does not exist on the platform."""

    def __init__(self, msm_id: int):
        super().__init__(404, f"measurement {msm_id} not found")
        self.msm_id = msm_id


class ProbeSelectionError(AtlasError):
    """A probe source expression matched no usable probes."""


class ResultParseError(AtlasError):
    """A raw result blob could not be parsed (sagan-style)."""


class CampaignError(ReproError):
    """Campaign configuration or execution failed."""


class CrawlerError(ReproError):
    """The scholar crawler hit a terminal condition (e.g. blocked)."""
