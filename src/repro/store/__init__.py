"""``repro.store`` — the persistent columnar campaign store.

The paper's pipeline is collect-once (9 months, 3.2 M datapoints),
analyze-many (every figure and table re-reads the same archive).  This
subsystem gives the reproduction the same economics: a campaign's frozen
:class:`~repro.core.dataset.CampaignDataset` persists as a directory of
checksummed little-endian column chunks plus one JSON manifest
(:mod:`repro.store.format`), written atomically and deterministically
(:mod:`repro.store.writer`), re-opened as read-only ``np.memmap`` views
with integrity verification (:mod:`repro.store.reader`), and addressed
content-wise by campaign fingerprint so identical campaigns become cache
hits (:mod:`repro.store.catalog`).

Entry points::

    dataset.save(path)                       # persist a frozen dataset
    CampaignDataset.open(path)               # zero-copy reload
    campaign.collect(store="stores/")        # collect-once / analyze-many
    scan_store(path).filter("rtt_min", "<=", 30).summarize("rtt_min")
    repro store {write,info,verify,scrub,repair,gc,stats}   # CLI maintenance

Analysis never has to materialize a column: :mod:`repro.store.scan`
walks the manifest's per-chunk zone maps (format v2), skips shards a
predicate provably cannot match, and folds the survivors through the
mergeable streaming reducers of :mod:`repro.frame.streaming`, caching
per-shard partials content-addressed by chunk checksum.

Durability is part of the contract: every write point is decomposed
through the :mod:`repro.store.fsim` seam (so crash consistency is
*tested*, at every fault point, not assumed), commits fsync file and
directory, and a damaged store is surgically repairable
(:mod:`repro.store.scrub`) from its provenance record.
"""

from repro.store.catalog import (
    CampaignCatalog,
    campaign_fingerprint,
    campaign_provenance,
)
from repro.store.format import (
    DEFAULT_ROWS_PER_SHARD,
    FORMAT_VERSION,
    MANIFEST_NAME,
    SAMPLE_COLUMNS,
    SAMPLE_SCHEMA,
    Manifest,
    ZoneMap,
    is_store_dir,
)
from repro.store.fsim import (
    FSIM_PROFILES,
    CountingFS,
    CrashPoint,
    FaultyFS,
    FsFaultProfile,
    RealFS,
    crash_points,
    get_fs_profile,
)
from repro.store.reader import StoreReader, open_dataset
from repro.store.scan import (
    AggregateCache,
    Predicate,
    Scan,
    backfill_zone_maps,
    scan_store,
)
from repro.store.scrub import (
    Damage,
    RepairReport,
    ScrubReport,
    repair,
    scrub,
    scrub_catalog,
)
from repro.store.writer import StoreWriter, compact, gc_store, write_dataset

__all__ = [
    "AggregateCache",
    "CampaignCatalog",
    "CountingFS",
    "CrashPoint",
    "DEFAULT_ROWS_PER_SHARD",
    "Damage",
    "FORMAT_VERSION",
    "FSIM_PROFILES",
    "FaultyFS",
    "FsFaultProfile",
    "MANIFEST_NAME",
    "Manifest",
    "Predicate",
    "RealFS",
    "RepairReport",
    "SAMPLE_COLUMNS",
    "SAMPLE_SCHEMA",
    "Scan",
    "ScrubReport",
    "StoreReader",
    "StoreWriter",
    "ZoneMap",
    "backfill_zone_maps",
    "campaign_fingerprint",
    "campaign_provenance",
    "compact",
    "crash_points",
    "gc_store",
    "get_fs_profile",
    "is_store_dir",
    "open_dataset",
    "repair",
    "scan_store",
    "scrub",
    "scrub_catalog",
    "write_dataset",
]
