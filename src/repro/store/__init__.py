"""``repro.store`` — the persistent columnar campaign store.

The paper's pipeline is collect-once (9 months, 3.2 M datapoints),
analyze-many (every figure and table re-reads the same archive).  This
subsystem gives the reproduction the same economics: a campaign's frozen
:class:`~repro.core.dataset.CampaignDataset` persists as a directory of
checksummed little-endian column chunks plus one JSON manifest
(:mod:`repro.store.format`), written atomically and deterministically
(:mod:`repro.store.writer`), re-opened as read-only ``np.memmap`` views
with integrity verification (:mod:`repro.store.reader`), and addressed
content-wise by campaign fingerprint so identical campaigns become cache
hits (:mod:`repro.store.catalog`).

Entry points::

    dataset.save(path)                       # persist a frozen dataset
    CampaignDataset.open(path)               # zero-copy reload
    campaign.collect(store="stores/")        # collect-once / analyze-many
    repro store {write,info,verify,gc}       # CLI maintenance
"""

from repro.store.catalog import (
    CampaignCatalog,
    campaign_fingerprint,
    campaign_provenance,
)
from repro.store.format import (
    DEFAULT_ROWS_PER_SHARD,
    FORMAT_VERSION,
    MANIFEST_NAME,
    SAMPLE_COLUMNS,
    SAMPLE_SCHEMA,
    Manifest,
    is_store_dir,
)
from repro.store.reader import StoreReader, open_dataset
from repro.store.writer import StoreWriter, compact, gc_store, write_dataset

__all__ = [
    "CampaignCatalog",
    "DEFAULT_ROWS_PER_SHARD",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "Manifest",
    "SAMPLE_COLUMNS",
    "SAMPLE_SCHEMA",
    "StoreReader",
    "StoreWriter",
    "campaign_fingerprint",
    "campaign_provenance",
    "compact",
    "gc_store",
    "is_store_dir",
    "open_dataset",
    "write_dataset",
]
