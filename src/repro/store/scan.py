"""Out-of-core scans over committed stores: predicate pushdown,
zone-map chunk skipping, streaming aggregation, and cached partials.

A :class:`Scan` is a lazy, immutable description of a pass over one
store: which columns to produce and which row predicates to apply.
Execution (:meth:`Scan.chunks`) walks the manifest shard by shard,
first testing every predicate against the chunk's :class:`ZoneMap`
(min/max/null-count recorded at write time) — a shard whose zones prove
no row can match is *skipped without touching disk* — then memmaps only
the surviving chunks and applies the residual mask exactly.  Pruning is
purely an optimization: a pruned scan yields the same rows as a full
scan, row for row (property-tested in ``tests/store/test_scan.py``).

The streaming aggregate methods (:meth:`Scan.summarize`,
:meth:`Scan.ecdf`, :meth:`Scan.group_by`, :meth:`Scan.quantile`) fold
:mod:`repro.frame.streaming` reducers over the chunk stream, so peak
memory is one shard's surviving columns regardless of store size.
Per-shard reducer states are content-addressed in an
:class:`AggregateCache`: the cache key hashes the chunk checksums the
partial depends on, so appending new windows to a campaign re-derives
only the new shards' partials while every committed shard hits cache —
the manifest's checksums double as incremental-recompute fingerprints.

NaN semantics follow numpy: a NaN row satisfies no comparison except
``!=``, which it always satisfies — so an all-NaN chunk *can* match a
``!=`` predicate and is never pruned under one.

``backfill_zone_maps`` upgrades a version-1 store in place: it reads
each chunk once (verifying its checksum on the way), computes the zone
maps the writer would have, and commits them in a single atomic,
durable manifest write — a crash mid-backfill leaves the old manifest
or the new one, never a torn or half-zoned store.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StoreError, StoreIntegrityError
from repro.frame.stats import ECDF, Summary
from repro.frame.streaming import (
    DEFAULT_COMPRESSION,
    StreamingECDF,
    StreamingGroupBy,
    StreamingSummary,
)
from repro.obs import ensure_obs
from repro.store.format import (
    FORMAT_VERSION,
    ChunkMeta,
    Manifest,
    ShardMeta,
    ZoneMap,
    atomic_write_bytes,
    sha256_hex,
)

#: Predicate operator aliases -> canonical names.
_OPS = {
    "==": "eq", "eq": "eq",
    "!=": "ne", "ne": "ne",
    "<": "lt", "lt": "lt",
    "<=": "le", "le": "le",
    ">": "gt", "gt": "gt",
    ">=": "ge", "ge": "ge",
}

#: Final-pass materialization ceiling for the exact quantile fallback:
#: once the candidate value range holds at most this many rows, they are
#: collected and sorted exactly.
_EXACT_QUANTILE_MATERIALIZE = 1 << 20


@dataclass(frozen=True)
class Predicate:
    """One pushed-down row filter: ``column <op> value``."""

    column: str
    op: str
    value: float

    def __post_init__(self) -> None:
        canonical = _OPS.get(self.op)
        if canonical is None:
            raise StoreError(
                f"unknown predicate op {self.op!r}; known: "
                f"{sorted(set(_OPS))}"
            )
        object.__setattr__(self, "op", canonical)

    def mask(self, array: np.ndarray) -> np.ndarray:
        """Exact boolean mask of matching rows."""
        value = self.value
        if self.op == "eq":
            return array == value
        if self.op == "ne":
            return array != value
        if self.op == "lt":
            return array < value
        if self.op == "le":
            return array <= value
        if self.op == "gt":
            return array > value
        return array >= value

    def admits(self, zone: Optional[ZoneMap]) -> bool:
        """Could *any* row of a chunk with this zone match?

        Conservative: ``True`` on any doubt (including a missing zone —
        version-1 manifests prune nothing).  The asymmetric cases are
        NaN's: a NaN row fails every comparison except ``!=``, which it
        always passes, so all-NaN chunks admit ``ne`` and nothing else,
        and a chunk with any nulls can never be pruned under ``ne``.
        """
        if zone is None:
            return True
        value = self.value
        if isinstance(value, float) and math.isnan(value):
            # x <op> NaN is False for every op except !=, which is True
            # for every x.  So a NaN-valued != matches all rows.
            return self.op == "ne"
        if zone.minimum is None:
            # Empty or all-NaN chunk: only != can match (via NaN rows).
            return self.op == "ne" and zone.nulls > 0
        lo, hi = zone.minimum, zone.maximum
        if self.op == "eq":
            return lo <= value <= hi
        if self.op == "ne":
            # Prunable only when every row provably equals the value.
            return not (lo == value == hi and zone.nulls == 0)
        if self.op == "lt":
            return lo < value
        if self.op == "le":
            return lo <= value
        if self.op == "gt":
            return hi > value
        return hi >= value

    def describe(self) -> str:
        return f"{self.column} {self.op} {self.value!r}"


class AggregateCache:
    """Content-addressed per-shard aggregate partials.

    A flat directory of ``<sha256>.json`` payloads.  Keys hash the chunk
    checksums a partial was computed from plus the full aggregate spec,
    so a stale hit is impossible: change a byte of data, a predicate, or
    the reducer parameters and the key changes.  Writes are atomic but
    not durable — the cache is disposable derived state, rebuilt on miss.
    """

    def __init__(self, root):
        self.root = Path(root)

    @staticmethod
    def key(payload: Mapping[str, object]) -> str:
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def get(self, key: str) -> Optional[Dict[str, object]]:
        path = self.root / f"{key}.json"
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, key: str, payload: Mapping[str, object]) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(
                self.root / f"{key}.json",
                (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
                point="aggcache",
            )
        except OSError:
            pass  # a cold cache is always correct

    def __len__(self) -> int:
        try:
            return sum(1 for p in self.root.iterdir() if p.suffix == ".json")
        except OSError:
            return 0


class Scan:
    """A lazy, predicate-pushed pass over one committed store."""

    def __init__(
        self,
        reader,
        columns: Optional[Sequence[str]] = None,
        predicates: Tuple[Predicate, ...] = (),
        obs=None,
        cache: Optional[AggregateCache] = None,
    ):
        self.reader = reader
        manifest = reader.manifest
        if columns is None:
            self.columns = tuple(manifest.columns)
        else:
            for name in columns:
                if name not in manifest.columns:
                    raise StoreError(f"no column {name!r} in store schema")
            self.columns = tuple(columns)
        for predicate in predicates:
            if predicate.column not in manifest.columns:
                raise StoreError(
                    f"predicate on unknown column {predicate.column!r}"
                )
        self.predicates = tuple(predicates)
        self.obs = ensure_obs(obs if obs is not None else reader.obs)
        self.cache = cache

    # -- builders --------------------------------------------------------------

    def filter(self, column: str, op: str, value) -> "Scan":
        """A new scan with ``column <op> value`` pushed down."""
        predicate = Predicate(column=column, op=op, value=value)
        if predicate.column not in self.reader.manifest.columns:
            raise StoreError(f"predicate on unknown column {column!r}")
        return Scan(
            self.reader,
            columns=self.columns,
            predicates=self.predicates + (predicate,),
            obs=self.obs,
            cache=self.cache,
        )

    def select(self, *columns: str) -> "Scan":
        """A new scan producing only ``columns``."""
        return Scan(
            self.reader,
            columns=columns,
            predicates=self.predicates,
            obs=self.obs,
            cache=self.cache,
        )

    # -- execution -------------------------------------------------------------

    def _needed(self) -> Tuple[str, ...]:
        needed = list(self.columns)
        for predicate in self.predicates:
            if predicate.column not in needed:
                needed.append(predicate.column)
        return tuple(needed)

    def _admitted(self, shard) -> bool:
        for predicate in self.predicates:
            zone = shard.chunks[predicate.column].zone
            if not predicate.admits(zone):
                return False
        return True

    def shards(self) -> Iterator[Tuple[int, object]]:
        """``(index, shard)`` pairs surviving zone-map pruning."""
        needed = self._needed()
        for index, shard in enumerate(self.reader.manifest.shards):
            if self._admitted(shard):
                yield index, shard
            else:
                self.obs.inc("scan_chunks_skipped_total", len(needed))
                self.obs.inc("scan_rows_pruned_total", shard.rows)

    def chunks(self) -> Iterator[Dict[str, np.ndarray]]:
        """Stream the selected columns of matching rows, one shard at a
        time.  Shards pruned by zone maps are never read; surviving
        shards are memmapped and the residual predicate mask applied
        exactly, so the concatenation of all chunks equals the full
        (pruning-free) scan row for row."""
        needed = self._needed()
        for _, shard in self.shards():
            views = {
                name: self.reader._chunk_view(shard, name) for name in needed
            }
            self.obs.inc("scan_chunks_scanned_total", len(needed))
            self.obs.inc("scan_rows_scanned_total", shard.rows)
            if not self.predicates:
                yield {name: views[name] for name in self.columns}
                self.obs.inc("scan_rows_selected_total", shard.rows)
                continue
            mask = self.predicates[0].mask(views[self.predicates[0].column])
            for predicate in self.predicates[1:]:
                mask &= predicate.mask(views[predicate.column])
            selected = int(np.count_nonzero(mask))
            self.obs.inc("scan_rows_selected_total", selected)
            if selected == 0:
                continue
            if selected == len(mask):
                yield {name: views[name] for name in self.columns}
            else:
                yield {
                    name: np.asarray(views[name][mask])
                    for name in self.columns
                }

    def count(self) -> int:
        """Matching rows.  Free for an unfiltered scan (manifest math)."""
        if not self.predicates:
            return self.reader.manifest.rows
        total = 0
        scan = self.select(self.predicates[0].column)
        for chunk in scan.chunks():
            total += len(chunk[self.predicates[0].column])
        return total

    # -- cached per-shard partials ---------------------------------------------

    def _shard_fingerprint(self, shard, columns: Sequence[str]) -> Dict[str, str]:
        return {name: shard.chunks[name].sha256 for name in sorted(columns)}

    def _partial_key(self, shard, column: str, spec: Mapping[str, object]) -> str:
        involved = {column, *(p.column for p in self.predicates)}
        payload = {
            "format": FORMAT_VERSION,
            "column": column,
            "dtype": self.reader.manifest.dtype_of(column),
            "predicates": [p.describe() for p in self.predicates],
            "chunks": self._shard_fingerprint(shard, involved),
            "spec": dict(spec),
        }
        return AggregateCache.key(payload)

    def _column_chunks(self, column: str) -> Iterator[Tuple[object, np.ndarray]]:
        """(shard, matching values) pairs for one column."""
        scan = self.select(column)
        needed = scan._needed()
        for _, shard in scan.shards():
            views = {
                name: self.reader._chunk_view(shard, name) for name in needed
            }
            self.obs.inc("scan_chunks_scanned_total", len(needed))
            self.obs.inc("scan_rows_scanned_total", shard.rows)
            values = views[column]
            if self.predicates:
                mask = self.predicates[0].mask(
                    views[self.predicates[0].column]
                )
                for predicate in self.predicates[1:]:
                    mask &= predicate.mask(views[predicate.column])
                values = values[mask]
            self.obs.inc("scan_rows_selected_total", len(values))
            yield shard, np.asarray(values, dtype=np.float64)

    def _fold_cached(self, column, spec, make, from_state):
        """Fold per-shard partials of one reducer, through the cache."""
        merged = None
        for shard, values in self._column_chunks(column):
            key = state = None
            if self.cache is not None:
                key = self._partial_key(shard, column, spec)
                state = self.cache.get(key)
            if state is not None:
                partial = from_state(state)
                self.obs.inc("scan_aggcache_hits_total")
            else:
                partial = make()
                partial.update(values)
                if self.cache is not None:
                    self.cache.put(key, partial.state())
                    self.obs.inc("scan_aggcache_misses_total")
            merged = partial if merged is None else merged.merge(partial)
        return merged

    # -- streaming aggregates --------------------------------------------------

    def summarize(
        self, column: str, compression: int = DEFAULT_COMPRESSION
    ) -> Summary:
        """Streaming :class:`~repro.frame.stats.Summary` of one column.

        count/min/max exact; mean/std float-associative; quantile fields
        rank-bounded by the digest (see :mod:`repro.frame.streaming`).
        """
        merged = self._fold_cached(
            column,
            {"kind": "summary", "compression": compression},
            lambda: StreamingSummary(compression=compression),
            StreamingSummary.from_state,
        )
        if merged is None:
            merged = StreamingSummary(compression=compression)
        return merged.result()

    def streaming_ecdf(
        self,
        column: str,
        edges: Optional[Sequence[float]] = None,
        bins: int = 512,
    ) -> StreamingECDF:
        """Fixed-grid ECDF of one column, grid defaulted from zone maps.

        With no explicit ``edges`` the grid spans the column's global
        zone-map min/max — free metadata when the store has zones, one
        extra streaming pass when it does not.
        """
        if edges is None:
            lo, hi = self._value_range(column)
            grid = StreamingECDF.from_range(lo, hi, bins=bins)
            edges_list = [float(e) for e in grid.edges]
        else:
            grid = StreamingECDF(edges)
            edges_list = [float(e) for e in grid.edges]
        merged = self._fold_cached(
            column,
            {"kind": "ecdf", "edges": edges_list},
            lambda: StreamingECDF(np.asarray(edges_list)),
            StreamingECDF.from_state,
        )
        return merged if merged is not None else grid

    def ecdf(
        self,
        column: str,
        edges: Optional[Sequence[float]] = None,
        bins: int = 512,
    ) -> ECDF:
        """Grid-evaluated :class:`~repro.frame.stats.ECDF` of a column."""
        return self.streaming_ecdf(column, edges=edges, bins=bins).result()

    def _value_range(self, column: str) -> Tuple[float, float]:
        """Global [min, max] of matching rows: zones when whole-store
        bounds suffice, else one streaming pass."""
        manifest = self.reader.manifest
        if not self.predicates:
            lo, hi = math.inf, -math.inf
            zoned = True
            for shard in manifest.shards:
                zone = shard.chunks[column].zone
                if zone is None:
                    zoned = False
                    break
                if zone.minimum is not None:
                    lo = min(lo, zone.minimum)
                    hi = max(hi, zone.maximum)
            if zoned and lo <= hi:
                return float(lo), float(hi)
        summary = StreamingSummary()
        for _, values in self._column_chunks(column):
            finite = values[~np.isnan(values)]
            if len(finite):
                summary.update(finite)
        if summary.count == 0:
            return 0.0, 1.0
        return summary.minimum, summary.maximum

    def quantile(
        self,
        column: str,
        q: float,
        exact: bool = False,
        compression: int = DEFAULT_COMPRESSION,
    ) -> float:
        """The ``q``-quantile of one column.

        Default: t-digest estimate (rank error bounded by
        :func:`repro.frame.streaming.digest_rank_eps`).  ``exact=True``
        switches to the multi-pass fallback, which returns exactly
        ``ecdf(values).quantile(q)`` — the smallest sample value whose
        cumulative fraction reaches ``q`` — in bounded memory by
        iteratively narrowing the candidate value range with histogram
        passes and sorting only the final sliver.
        """
        if exact:
            return self._exact_quantile(column, q)
        merged = self._fold_cached(
            column,
            {"kind": "summary", "compression": compression},
            lambda: StreamingSummary(compression=compression),
            StreamingSummary.from_state,
        )
        if merged is None or merged.count == 0:
            raise StoreError(f"quantile over empty scan of {column!r}")
        return merged.quantile(q)

    def _exact_quantile(self, column: str, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise StoreError(f"quantile q must be in [0, 1], got {q}")
        # Pass 1: count rows, NaNs, and the finite value range.
        total = nans = 0
        lo, hi = math.inf, -math.inf
        for _, values in self._column_chunks(column):
            total += len(values)
            nan_mask = np.isnan(values)
            nans += int(nan_mask.sum())
            finite = values[~nan_mask]
            if len(finite):
                lo = min(lo, float(finite.min()))
                hi = max(hi, float(finite.max()))
        if total == 0:
            raise StoreError(f"quantile over empty scan of {column!r}")
        # Rank semantics of ecdf().quantile: p[i] = (i+1)/n over the
        # NaN-last sorted sample, smallest x with p >= q — i.e. the
        # smallest rank k with k/n >= q under the same IEEE division the
        # in-memory path performs.
        if q <= 0.0:
            rank = 1
        else:
            rank = min(total, max(1, int(math.ceil(q * total))))
            while rank > 1 and (rank - 1) / total >= q:
                rank -= 1
            while rank < total and rank / total < q:
                rank += 1
        finite_total = total - nans
        if rank > finite_total:
            return math.nan  # the rank lands in the NaN tail, as sort would
        if finite_total == 0:
            return math.nan
        if lo == hi:
            return lo
        # Iteratively narrow [lo, hi] until the candidate slice is small
        # enough to sort exactly.  `rank` stays the target's 1-based rank
        # among values >= lo.
        while True:
            in_range = self._count_range(column, lo, hi)
            if in_range <= _EXACT_QUANTILE_MATERIALIZE:
                break
            edges = np.linspace(lo, hi, 1024)
            counts = np.zeros(len(edges) + 1, dtype=np.int64)
            below = 0
            for _, values in self._column_chunks(column):
                values = values[~np.isnan(values)]
                below += int(np.count_nonzero(values < lo))
                window = values[(values >= lo) & (values <= hi)]
                slots = np.searchsorted(edges, window, side="left")
                np.add.at(counts, slots, 1)
            cumulative = np.cumsum(counts)
            slot = int(np.searchsorted(cumulative, rank, side="left"))
            # Slot j holds values in (edges[j-1], edges[j]], so the new
            # lower bound is *exclusive* of edges[j-1]: step one ulp up
            # so the inclusive [lo, hi] window matches the ranks already
            # subtracted.
            new_lo = (
                lo
                if slot == 0
                else float(np.nextafter(edges[slot - 1], math.inf))
            )
            new_hi = hi if slot >= len(edges) else float(edges[slot])
            if (new_lo, new_hi) == (lo, hi):
                break  # duplicates denser than float resolution
            if slot > 0:
                rank -= int(cumulative[slot - 1])
            lo, hi = new_lo, new_hi
        collected: List[np.ndarray] = []
        for _, values in self._column_chunks(column):
            values = values[~np.isnan(values)]
            collected.append(values[(values >= lo) & (values <= hi)])
        window = np.sort(np.concatenate(collected)) if collected else np.empty(0)
        if len(window) == 0:
            return lo
        return float(window[min(max(rank, 1), len(window)) - 1])

    def _count_range(self, column: str, lo: float, hi: float) -> int:
        count = 0
        for _, values in self._column_chunks(column):
            values = values[~np.isnan(values)]
            count += int(np.count_nonzero((values >= lo) & (values <= hi)))
        return count

    def group_by(
        self,
        keys: Sequence[str],
        spec: Mapping[str, Tuple[str, str]],
        max_groups: int = 100_000,
    ):
        """Spill-free streaming group-by over the scan (low-cardinality
        keys); result Frame matches ``frame.groupby.aggregate`` on the
        same rows."""
        engine = StreamingGroupBy(keys, spec, max_groups=max_groups)
        needed = set(keys) | {col for col, _ in spec.values()}
        scan = self.select(*sorted(needed))
        for chunk in scan.chunks():
            engine.update(chunk)
        return engine.result()


def scan_store(
    path,
    verify: str = "off",
    columns: Optional[Sequence[str]] = None,
    obs=None,
    cache: Optional[AggregateCache] = None,
) -> Scan:
    """Open ``path`` and return a :class:`Scan` over it.

    Verification defaults to ``off`` here — a scan's whole point is to
    avoid touching every byte; run ``repro store verify`` (or pass
    ``verify="full"``) when integrity is in question.
    """
    from repro.store.reader import StoreReader

    reader = StoreReader(path, verify=verify, obs=obs)
    return Scan(reader, columns=columns, obs=obs, cache=cache)


def backfill_zone_maps(
    path,
    refresh: bool = False,
    fs=None,
    obs=None,
) -> Tuple[Manifest, int]:
    """Compute missing zone maps and commit them to the manifest.

    Reads each un-zoned chunk once, verifying its checksum before
    trusting its bytes (a zone map of corrupt data would poison pruning
    forever).  ``refresh=True`` recomputes every zone, fixing any that
    drifted.  The new manifest lands in one durable atomic write — the
    same commit discipline as the writer — so a crash leaves either the
    old manifest or the new one, both valid.  Idempotent: a fully-zoned
    current-version store is returned unwritten.

    Returns ``(manifest, chunks_backfilled)``.
    """
    obs = ensure_obs(obs)
    path = Path(path)
    manifest = Manifest.load(path)
    updated = 0
    new_shards = []
    with obs.span("store.backfill_zones", path=str(path)):
        for shard in manifest.shards:
            chunks = dict(shard.chunks)
            changed = False
            for column, meta in shard.chunks.items():
                if meta.zone is not None and not refresh:
                    continue
                data = (path / meta.file).read_bytes()
                digest = sha256_hex(data)
                if digest != meta.sha256:
                    raise StoreIntegrityError(
                        f"refusing to backfill zone maps from corrupt chunk "
                        f"{meta.file}: manifest {meta.sha256[:12]}…, disk "
                        f"{digest[:12]}…"
                    )
                array = np.frombuffer(
                    data, dtype=np.dtype(manifest.dtype_of(column))
                )
                zone = ZoneMap.from_array(array)
                if zone != meta.zone:
                    chunks[column] = ChunkMeta(
                        file=meta.file,
                        bytes=meta.bytes,
                        sha256=meta.sha256,
                        zone=zone,
                    )
                    changed = True
                updated += 1
                obs.inc("store_zone_maps_backfilled_total")
            new_shards.append(
                ShardMeta(name=shard.name, rows=shard.rows, chunks=chunks)
                if changed
                else shard
            )
        rewritten = Manifest(
            schema=manifest.schema,
            rows=manifest.rows,
            generation=manifest.generation,
            rows_per_shard=manifest.rows_per_shard,
            provenance=manifest.provenance,
            shards=new_shards,
            windows=manifest.windows,
        )
        if rewritten.to_json() == manifest.to_json():
            return manifest, 0
        rewritten.save(path, fs=fs)
        obs.event("store.zones_backfilled", path=str(path), chunks=updated)
    return rewritten, updated
