"""Store scrubbing and surgical repair.

``scrub`` is the read side: walk a store's manifest and every chunk it
references, classify *all* damage (a verifying reader stops at the first
problem; a scrub keeps going and returns the complete casualty list),
and notice debris a crash left behind — orphaned temp files, chunks from
a swept generation.

``repair`` is the write side, and the reason the store records
provenance and a window index at all.  The manifest's provenance names
the exact campaign whose collection produced the store, and its
``windows`` run-length encoding maps any damaged shard's row range back
to whole measurement windows.  Because a window fetch is a pure function
of ``(seed, fault profile, measurement, window)``, repair re-synthesizes
*only the affected windows* through the normal collection path, rebuilds
the damaged chunks, and proves the result byte-identical by hashing
against the manifest's recorded SHA-256s — no full re-collection, no
trust in the damaged bytes.  Damaged originals are moved to a
``quarantine/`` subdirectory, never destroyed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StoreError, StoreRepairError
from repro.obs import ensure_obs
from repro.store.format import (
    MANIFEST_NAME,
    Manifest,
    ZoneMap,
    atomic_write_bytes,
    sha256_hex,
)
from repro.store.fsim import ensure_fs

#: Damaged originals are moved here (inside the store), never deleted.
QUARANTINE_DIR = "quarantine"

#: Damage kinds that break the store's integrity contract.  The
#: remaining kinds (orphan debris) are cosmetic: the store still reads.
#: ``zone_map_mismatch`` is integrity damage even though the chunk bytes
#: are fine: a wrong zone map silently prunes rows out of every scan.
INTEGRITY_KINDS = (
    "manifest_missing",
    "manifest_unreadable",
    "missing_chunk",
    "truncated_chunk",
    "checksum_mismatch",
    "zone_map_mismatch",
)


@dataclass(frozen=True)
class Damage:
    """One classified problem found by a scrub."""

    kind: str
    file: str
    shard: Optional[int] = None
    column: Optional[str] = None
    detail: str = ""
    #: Whether ``repair`` can fix this kind surgically (chunk-level
    #: damage: yes, given provenance + window index; manifest damage: no).
    repairable: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "file": self.file,
            "shard": self.shard,
            "column": self.column,
            "detail": self.detail,
            "repairable": self.repairable,
        }


@dataclass
class ScrubReport:
    """Everything one scrub pass found."""

    path: str
    rows: int = 0
    shards: int = 0
    chunks_checked: int = 0
    damage: List[Damage] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No damage of any kind, debris included."""
        return not self.damage

    @property
    def intact(self) -> bool:
        """No *integrity* damage (orphan debris allowed)."""
        return not any(d.kind in INTEGRITY_KINDS for d in self.damage)

    @property
    def damaged_shards(self) -> Tuple[int, ...]:
        return tuple(
            sorted({d.shard for d in self.damage if d.shard is not None})
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "rows": self.rows,
            "shards": self.shards,
            "chunks_checked": self.chunks_checked,
            "ok": self.ok,
            "intact": self.intact,
            "damage": [d.as_dict() for d in self.damage],
        }


def scrub(path, obs=None) -> ScrubReport:
    """Walk one store and classify every problem without stopping.

    Unlike :meth:`~repro.store.reader.StoreReader.verify` this never
    raises on damage — the point is the complete list.
    """
    obs = ensure_obs(obs)
    path = Path(path)
    report = ScrubReport(path=str(path))
    with obs.span("store.scrub", path=str(path)):
        manifest = _load_manifest(path, report)
        if manifest is None:
            _account(report, obs)
            return report
        report.rows = manifest.rows
        report.shards = len(manifest.shards)
        referenced = {MANIFEST_NAME}
        for shard_index, shard in enumerate(manifest.shards):
            for column, meta in shard.chunks.items():
                referenced.add(meta.file)
                report.chunks_checked += 1
                chunk = path / meta.file
                if not chunk.is_file():
                    report.damage.append(
                        Damage(
                            kind="missing_chunk",
                            file=meta.file,
                            shard=shard_index,
                            column=column,
                            detail=f"expected {meta.bytes} bytes",
                            repairable=True,
                        )
                    )
                    continue
                size = chunk.stat().st_size
                if size != meta.bytes:
                    report.damage.append(
                        Damage(
                            kind="truncated_chunk",
                            file=meta.file,
                            shard=shard_index,
                            column=column,
                            detail=f"{size} bytes on disk, manifest says "
                            f"{meta.bytes}",
                            repairable=True,
                        )
                    )
                    continue
                # One read serves both checks: checksum, then (bytes now
                # proven authentic) the zone map recomputation.
                data = chunk.read_bytes()
                digest = sha256_hex(data)
                if digest != meta.sha256:
                    report.damage.append(
                        Damage(
                            kind="checksum_mismatch",
                            file=meta.file,
                            shard=shard_index,
                            column=column,
                            detail=f"sha256 {digest[:12]}… != manifest "
                            f"{meta.sha256[:12]}…",
                            repairable=True,
                        )
                    )
                    continue
                if meta.zone is not None:
                    array = np.frombuffer(
                        data, dtype=np.dtype(manifest.dtype_of(column))
                    )
                    expected_zone = ZoneMap.from_array(array)
                    if expected_zone != meta.zone:
                        report.damage.append(
                            Damage(
                                kind="zone_map_mismatch",
                                file=meta.file,
                                shard=shard_index,
                                column=column,
                                detail=f"manifest zone {meta.zone.as_dict()} "
                                f"but chunk bytes give "
                                f"{expected_zone.as_dict()}",
                                repairable=True,
                            )
                        )
        for entry in sorted(path.iterdir()):
            if entry.is_dir() or entry.name in referenced:
                continue
            kind = "orphan_tmp" if entry.name.endswith(".tmp") else "orphan_chunk"
            report.damage.append(
                Damage(
                    kind=kind,
                    file=entry.name,
                    detail=f"{entry.stat().st_size} bytes unreferenced",
                )
            )
        _account(report, obs)
    return report


def _load_manifest(path: Path, report: ScrubReport) -> Optional[Manifest]:
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        report.damage.append(
            Damage(
                kind="manifest_missing",
                file=MANIFEST_NAME,
                detail=f"{path} has no committed manifest",
            )
        )
        return None
    try:
        return Manifest.from_json(manifest_path.read_text(encoding="utf-8"))
    except StoreError as exc:
        report.damage.append(
            Damage(
                kind="manifest_unreadable",
                file=MANIFEST_NAME,
                detail=str(exc),
            )
        )
        return None


def _account(report: ScrubReport, obs) -> None:
    for damage in report.damage:
        obs.inc("store_scrub_damage_total", kind=damage.kind)


def scrub_catalog(root, obs=None) -> Tuple[List[ScrubReport], List[Damage]]:
    """Scrub every entry of a catalog directory.

    Returns per-store reports plus catalog-level damage: uncommitted
    entries (an interrupted write's debris) and dangling entries whose
    directory name does not match their provenance fingerprint.
    """
    from repro.store.catalog import _looks_like_fingerprint, campaign_fingerprint

    root = Path(root)
    reports: List[ScrubReport] = []
    catalog_damage: List[Damage] = []
    if not root.is_dir():
        return reports, catalog_damage
    for child in sorted(root.iterdir()):
        if child.name.startswith("."):
            continue  # catalog-private state (e.g. .aggregates cache)
        if not child.is_dir():
            if child.name.endswith(".tmp"):
                catalog_damage.append(
                    Damage(kind="orphan_tmp", file=child.name)
                )
            continue
        if not (child / MANIFEST_NAME).is_file():
            catalog_damage.append(
                Damage(
                    kind="uncommitted_entry",
                    file=child.name,
                    detail="no manifest: interrupted write (gc sweeps it)",
                )
            )
            continue
        report = scrub(child, obs=obs)
        reports.append(report)
        if _looks_like_fingerprint(child.name):
            try:
                manifest = Manifest.load(child)
            except StoreError:
                continue  # already reported by the scrub
            if manifest.provenance:
                expected = campaign_fingerprint(manifest.provenance)
                if expected != child.name:
                    catalog_damage.append(
                        Damage(
                            kind="dangling_entry",
                            file=child.name,
                            detail=f"provenance hashes to {expected[:12]}…",
                        )
                    )
    return reports, catalog_damage


@dataclass
class RepairReport:
    """What a repair pass did."""

    path: str
    quarantined: List[str] = field(default_factory=list)
    repaired_chunks: List[str] = field(default_factory=list)
    resynthesized_windows: int = 0
    zone_maps_rebuilt: int = 0
    swept: List[str] = field(default_factory=list)
    verified: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "quarantined": list(self.quarantined),
            "repaired_chunks": list(self.repaired_chunks),
            "resynthesized_windows": self.resynthesized_windows,
            "zone_maps_rebuilt": self.zone_maps_rebuilt,
            "swept": list(self.swept),
            "verified": self.verified,
        }


def repair(path, obs=None, fs=None) -> RepairReport:
    """Surgically restore a damaged store to its manifest's exact bytes.

    Scrubs, quarantines every damaged chunk, re-synthesizes only the
    measurement windows overlapping the damaged shards through the
    campaign the manifest's provenance describes, verifies each rebuilt
    chunk against the manifest's SHA-256, and finishes with a full
    reader verification.  Raises :class:`~repro.errors.StoreRepairError`
    when the store cannot be repaired (manifest damage, no provenance or
    window index, or a rebuilt chunk that does not hash back — which
    means the manifest and provenance disagree).
    """
    obs = ensure_obs(obs)
    fs = ensure_fs(fs)
    path = Path(path)
    report = scrub(path, obs=obs)
    result = RepairReport(path=str(path))
    with obs.span("store.repair", path=str(path)):
        if not report.intact:
            manifest_damage = [
                d for d in report.damage if d.kind.startswith("manifest_")
            ]
            if manifest_damage:
                raise StoreRepairError(
                    f"cannot repair {path}: {manifest_damage[0].detail} — the "
                    f"manifest is the source of truth for repair; re-collect "
                    f"the campaign instead"
                )
            manifest = Manifest.load(path)
            chunk_damage = [
                d
                for d in report.damage
                if d.repairable and d.kind != "zone_map_mismatch"
            ]
            if chunk_damage:
                _repair_chunks(path, manifest, chunk_damage, result, obs, fs)
            if any(d.kind == "zone_map_mismatch" for d in report.damage):
                # The chunk bytes are authentic (their checksums held);
                # only the manifest's pruning metadata lies.  Recompute
                # every zone from the verified bytes and recommit.
                from repro.store.scan import backfill_zone_maps

                _, rebuilt = backfill_zone_maps(
                    path, refresh=True, fs=fs, obs=obs
                )
                result.zone_maps_rebuilt = rebuilt
        # Debris sweep (also runs on intact-but-littered stores).
        for damage in report.damage:
            if damage.kind == "orphan_tmp":
                fs.unlink(path / damage.file, point=f"scrub-sweep:{damage.file}")
                result.swept.append(damage.file)
        # The final word: a repaired store must read clean end to end.
        from repro.store.reader import StoreReader

        try:
            StoreReader(path, verify="full", obs=obs)
        except StoreError as exc:
            raise StoreRepairError(
                f"repair of {path} did not converge: {exc}"
            ) from exc
        result.verified = True
        obs.event(
            "store.repaired",
            path=str(path),
            chunks=len(result.repaired_chunks),
            windows=result.resynthesized_windows,
        )
    return result


def _repair_chunks(
    path: Path,
    manifest: Manifest,
    damaged: Sequence[Damage],
    result: RepairReport,
    obs,
    fs,
) -> None:
    """Rebuild every damaged chunk from re-synthesized windows."""
    if not manifest.provenance:
        raise StoreRepairError(
            f"cannot repair {path}: store carries no provenance record"
        )
    if manifest.windows is None:
        raise StoreRepairError(
            f"cannot repair {path}: store predates the window index "
            f"(re-write it with this build to enable surgical repair)"
        )
    shard_ranges = _shard_ranges(manifest)
    window_ranges = _window_ranges(manifest)
    # Which windows overlap any damaged shard's rows.
    needed: List[int] = []
    for shard_index in sorted({d.shard for d in damaged}):
        lo, hi = shard_ranges[shard_index]
        for position, (_, w_lo, w_hi) in enumerate(window_ranges):
            if w_lo < hi and w_hi > lo and position not in needed:
                needed.append(position)
    columns_by_window = _resynthesize(path, manifest, window_ranges, needed, obs)
    result.resynthesized_windows = len(needed)
    quarantine = path / QUARANTINE_DIR
    for damage in damaged:
        meta = manifest.shards[damage.shard].chunks[damage.column]
        lo, hi = shard_ranges[damage.shard]
        parts: List[np.ndarray] = []
        for position in needed:
            _, w_lo, w_hi = window_ranges[position]
            cut_lo, cut_hi = max(lo, w_lo), min(hi, w_hi)
            if cut_lo >= cut_hi:
                continue
            window_column = columns_by_window[position][damage.column]
            parts.append(window_column[cut_lo - w_lo : cut_hi - w_lo])
        data = (
            np.concatenate(parts).tobytes()
            if parts
            else b""
        )
        if len(data) != meta.bytes or sha256_hex(data) != meta.sha256:
            raise StoreRepairError(
                f"re-synthesized chunk {meta.file} does not match the "
                f"manifest ({len(data)} bytes, sha256 "
                f"{sha256_hex(data)[:12]}… vs recorded {meta.sha256[:12]}…) — "
                f"the provenance does not reproduce this store"
            )
        original = path / meta.file
        if original.is_file():
            quarantine.mkdir(exist_ok=True)
            fs.replace(
                original,
                quarantine / meta.file,
                point=f"quarantine:{meta.file}",
            )
            result.quarantined.append(meta.file)
        atomic_write_bytes(
            original, data, fs=fs, point=f"repair:{meta.file}", fsync=True
        )
        result.repaired_chunks.append(meta.file)
        obs.inc("store_repair_chunks_total")


def _shard_ranges(manifest: Manifest) -> List[Tuple[int, int]]:
    """Absolute row range ``[lo, hi)`` of each shard, in shard order."""
    ranges: List[Tuple[int, int]] = []
    cursor = 0
    for shard in manifest.shards:
        ranges.append((cursor, cursor + shard.rows))
        cursor += shard.rows
    return ranges


def _window_ranges(manifest: Manifest) -> List[Tuple[int, int, int]]:
    """``(target_index, lo, hi)`` absolute row range of each window."""
    ranges: List[Tuple[int, int, int]] = []
    cursor = 0
    for target, rows in manifest.windows:
        ranges.append((int(target), cursor, cursor + rows))
        cursor += rows
    return ranges


def _resynthesize(
    path: Path,
    manifest: Manifest,
    window_ranges: Sequence[Tuple[int, int, int]],
    needed: Sequence[int],
    obs,
) -> Dict[int, Dict[str, np.ndarray]]:
    """Re-fetch the needed windows through the provenance's campaign.

    Returns per-window column arrays already cast to the manifest's
    schema dtypes — the exact bytes the original writer buffered.
    """
    from repro.core.campaign import Campaign

    campaign = Campaign.from_provenance(manifest.provenance, obs=obs)
    campaign.create_measurements()
    dtypes = dict(manifest.schema)
    columns_by_window: Dict[int, Dict[str, np.ndarray]] = {}
    for position in needed:
        target_index, w_lo, w_hi = window_ranges[position]
        vm = campaign.platform.fleet[target_index]
        msm_id = campaign._msm_id_by_target[vm.key]
        record = campaign._fetch_measurement(
            campaign.transport,
            target_index,
            msm_id,
            vm,
            campaign.start_time,
            campaign.stop_time,
        )
        if record.sample_count != w_hi - w_lo:
            raise StoreRepairError(
                f"window for target {vm.key} re-synthesized {record.sample_count} "
                f"rows but the manifest's window index says {w_hi - w_lo} — "
                f"the provenance does not reproduce this store"
            )
        columns_by_window[position] = {
            "probe_id": np.asarray(record.probe_ids, dtype=dtypes["probe_id"]),
            "target_index": np.full(
                record.sample_count, target_index, dtype=dtypes["target_index"]
            ),
            "timestamp": np.asarray(record.timestamps, dtype=dtypes["timestamp"]),
            "rtt_min": np.asarray(record.rtt_min, dtype=dtypes["rtt_min"]),
            "rtt_avg": np.asarray(record.rtt_avg, dtype=dtypes["rtt_avg"]),
            "sent": np.asarray(record.sent, dtype=dtypes["sent"]),
            "rcvd": np.asarray(record.rcvd, dtype=dtypes["rcvd"]),
        }
        obs.inc("store_repair_windows_total")
    return columns_by_window
