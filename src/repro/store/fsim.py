"""Deterministic filesystem fault injection for the store's write path.

The durability counterpart of :mod:`repro.atlas.faults`: where that
module re-introduces the failures of a live REST API, this one
re-introduces the failures of a live disk.  Every atomic write in the
store and checkpoint layer decomposes into *named operations* routed
through a filesystem seam —

    ``write``    the private temp file's payload
    ``fsync``    flushing one file's data to the device
    ``rename``   ``os.replace`` of temp over target
    ``dirsync``  fsyncing the parent directory (persists the rename)
    ``unlink``   removing a file (gc, compaction sweep)

— and the seam can fail any of them: torn writes, short writes, ENOSPC,
a crash before or after the rename, a silently lost fsync.

**The power-loss model.**  :class:`FaultyFS` tracks which of the bytes
it wrote ever reached the simulated device: data written through the
seam sits "in the page cache" until its file is fsynced, and a rename
sits "in the directory cache" until the parent directory is fsynced.
When a crash fires (or :meth:`FaultyFS.power_loss` is called), unsynced
files are dropped and un-dirsynced renames are rolled back to the prior
directory entry — exactly the states a real power cut can leave behind,
which is what makes the missing ``fsync(parent)`` after ``os.replace``
an observable bug rather than a stylistic nit.  A ``torn_write`` is the
one exception: it models a device-level partial flush, so its prefix
*is* on disk.

Two driving modes, mirroring the network-fault module:

* **crash-point replay** — run the code once against a
  :class:`CountingFS` to enumerate every operation site, expand the
  sites with :func:`crash_points`, then replay with
  ``FaultyFS.at(point)`` to crash at exactly one site per run.  This is
  the exhaustive crash matrix CI runs.
* **seeded profiles** — ``FaultyFS(seed=..., profile="gremlin")`` draws
  per-operation faults from :func:`repro.net.rng.stream` keyed by
  ``(seed, "fsim", op, point, counter)``, so a soak run replays its
  fault schedule byte for byte, like a chaos transport does.
"""

from __future__ import annotations

import errno
import os
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError, SimulatedCrashError
from repro.net.rng import stream

#: Operation names the seam intercepts, in the order an atomic write
#: performs them.
FS_OPS = ("write", "fsync", "rename", "dirsync", "unlink")


class RealFS:
    """The pass-through seam: real filesystem operations, durably.

    ``point`` labels are accepted (and ignored) on every method so call
    sites read identically against the real and the faulty seam.
    """

    name = "real"

    def write_bytes(self, path, data: bytes, point: str = "") -> None:
        Path(path).write_bytes(data)

    def fsync_path(self, path, point: str = "") -> None:
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def replace(self, src, dst, point: str = "") -> None:
        os.replace(src, dst)

    def fsync_dir(self, path, point: str = "") -> None:
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return  # platforms without directory fds: best effort
        try:
            os.fsync(fd)
        except OSError:
            pass  # some filesystems refuse directory fsync; rename still landed
        finally:
            os.close(fd)

    def unlink(self, path, point: str = "") -> None:
        os.unlink(path)


REAL_FS = RealFS()


def ensure_fs(fs) -> RealFS:
    """Normalize an optional seam argument (``None`` → the real seam)."""
    return fs if fs is not None else REAL_FS


@dataclass(frozen=True)
class FsSite:
    """One intercepted operation site from a counting run."""

    step: int
    op: str
    point: str


class CountingFS(RealFS):
    """A recording seam: performs every operation, remembers the sites.

    Run the code under test once against this to learn its ordered
    operation sequence, then expand with :func:`crash_points` and replay
    each with :meth:`FaultyFS.at`.
    """

    name = "counting"

    def __init__(self):
        self.sites: List[FsSite] = []

    def _note(self, op: str, point: str) -> None:
        self.sites.append(FsSite(step=len(self.sites), op=op, point=point))

    def write_bytes(self, path, data, point=""):
        self._note("write", point)
        super().write_bytes(path, data, point)

    def fsync_path(self, path, point=""):
        self._note("fsync", point)
        super().fsync_path(path, point)

    def replace(self, src, dst, point=""):
        self._note("rename", point)
        super().replace(src, dst, point)

    def fsync_dir(self, path, point=""):
        self._note("dirsync", point)
        super().fsync_dir(path, point)

    def unlink(self, path, point=""):
        self._note("unlink", point)
        super().unlink(path, point)


@dataclass(frozen=True)
class CrashPoint:
    """One (site, kind) cell of the crash matrix."""

    step: int
    op: str
    point: str
    kind: str


#: Crash kinds applicable at each operation.  ``torn_write`` leaves a
#: durable prefix; every ``crash_before_*`` kind crashes with the
#: operation undone; ``crash_after_*`` performs it first.  (Error-path
#: kinds — ``short_write``, ``enospc``, ``lost_fsync`` — are not crash
#: kinds; they are injected via profiles or targeted tests.)
CRASH_KINDS_BY_OP: Dict[str, Tuple[str, ...]] = {
    "write": ("crash_before_write", "torn_write"),
    "fsync": ("crash_before_fsync",),
    "rename": ("crash_before_rename", "crash_after_rename"),
    "dirsync": ("crash_before_dirsync", "crash_after_dirsync"),
    "unlink": ("crash_before_unlink", "crash_after_unlink"),
}


def crash_points(sites: List[FsSite]) -> List[CrashPoint]:
    """Expand a counting run's sites into every crash-matrix cell."""
    return [
        CrashPoint(step=site.step, op=site.op, point=site.point, kind=kind)
        for site in sites
        for kind in CRASH_KINDS_BY_OP[site.op]
    ]


@dataclass(frozen=True)
class FsFaultProfile:
    """Per-operation fault probabilities for one disk-chaos level.

    ``torn_write`` / ``short_write`` / ``enospc`` apply to ``write``
    operations, ``lost_fsync`` to ``fsync`` and ``dirsync``, and the
    rename-crash pair to ``rename``.  All draws are per intercepted
    operation, keyed by the operation's point label and counter.
    """

    name: str = "none"
    torn_write: float = 0.0
    short_write: float = 0.0
    enospc: float = 0.0
    lost_fsync: float = 0.0
    crash_before_rename: float = 0.0
    crash_after_rename: float = 0.0

    @property
    def is_noop(self) -> bool:
        return (
            self.torn_write == self.short_write == self.enospc
            == self.lost_fsync == self.crash_before_rename
            == self.crash_after_rename == 0.0
        )


#: Named disk-chaos levels, analogous to ``atlas.faults.PROFILES``.
#: ``full-disk`` injects only error-path faults (the caller survives to
#: handle them); ``power-loss`` injects only crash/durability faults;
#: ``gremlin`` injects everything.
FSIM_PROFILES: Dict[str, FsFaultProfile] = {
    "none": FsFaultProfile(name="none"),
    "full-disk": FsFaultProfile(name="full-disk", short_write=0.03, enospc=0.08),
    "power-loss": FsFaultProfile(
        name="power-loss",
        torn_write=0.02,
        lost_fsync=0.10,
        crash_before_rename=0.02,
        crash_after_rename=0.02,
    ),
    "gremlin": FsFaultProfile(
        name="gremlin",
        torn_write=0.02,
        short_write=0.02,
        enospc=0.03,
        lost_fsync=0.08,
        crash_before_rename=0.01,
        crash_after_rename=0.01,
    ),
}


def get_fs_profile(profile) -> FsFaultProfile:
    """Resolve a profile name (or pass an :class:`FsFaultProfile` through)."""
    if isinstance(profile, FsFaultProfile):
        return profile
    try:
        return FSIM_PROFILES[profile]
    except KeyError:
        raise ReproError(
            f"unknown fsim profile {profile!r}; choose from {sorted(FSIM_PROFILES)}"
        ) from None


#: Sentinel for "the prior directory entry did not exist" in the
#: pending-rename rollback map.
_ABSENT = object()


class FaultyFS(RealFS):
    """The fault-injecting seam (see module docstring for the model).

    Construct either with a seeded profile for soak runs, or via
    :meth:`at` with one :class:`CrashPoint` for matrix replay.  The
    instance is single-use once it has crashed.
    """

    name = "faulty"

    def __init__(self, seed: int = 0, profile="none", crash_point: CrashPoint = None):
        self.seed = int(seed)
        self.profile = get_fs_profile(profile)
        self.crash_point = crash_point
        self.counts: Counter = Counter()
        self.crashed = False
        self._step = 0
        self._draws = Counter()  # per-(op, point) draw counters
        #: Files whose seam-written data was never fsynced ("page cache").
        self._unsynced: Dict[str, bool] = {}
        #: Renames whose directory entry was never dirsynced: target path
        #: → prior content bytes (or _ABSENT).
        self._pending: Dict[str, object] = {}

    @classmethod
    def at(cls, crash_point: CrashPoint) -> "FaultyFS":
        """A seam that crashes at exactly one enumerated site."""
        return cls(crash_point=crash_point)

    # -- decisions -----------------------------------------------------------

    def _decide(self, op: str, point: str) -> Optional[str]:
        step = self._step
        self._step += 1
        if self.crash_point is not None:
            if step == self.crash_point.step:
                if op != self.crash_point.op:
                    raise ReproError(
                        f"crash-point replay diverged: step {step} is {op} "
                        f"({point}), expected {self.crash_point.op} "
                        f"({self.crash_point.point})"
                    )
                return self.crash_point.kind
            return None
        if self.profile.is_noop:
            return None
        draw_index = self._draws[(op, point)]
        self._draws[(op, point)] += 1
        rng = stream(self.seed, "fsim", op, point, draw_index)
        draw = float(rng.random())
        profile = self.profile
        if op == "write":
            edge = profile.torn_write
            if draw < edge:
                return "torn_write"
            edge += profile.short_write
            if draw < edge:
                return "short_write"
            edge += profile.enospc
            if draw < edge:
                return "enospc"
        elif op in ("fsync", "dirsync"):
            if draw < profile.lost_fsync:
                return "lost_fsync"
        elif op == "rename":
            edge = profile.crash_before_rename
            if draw < edge:
                return "crash_before_rename"
            edge += profile.crash_after_rename
            if draw < edge:
                return "crash_after_rename"
        return None

    # -- the power-loss model ------------------------------------------------

    def power_loss(self) -> None:
        """Apply the model without raising: what a power cut leaves behind.

        Un-dirsynced renames roll back to the prior directory entry;
        files with unsynced data are dropped.  Idempotent.
        """
        for target, prior in self._pending.items():
            path = Path(target)
            if prior is _ABSENT:
                try:
                    path.unlink()
                except OSError:
                    pass
            else:
                path.write_bytes(prior)
            self._unsynced.pop(target, None)
        self._pending.clear()
        for target in list(self._unsynced):
            try:
                Path(target).unlink()
            except OSError:
                pass
        self._unsynced.clear()

    def _crash(self, op: str, point: str, kind: str) -> None:
        self.counts[kind] += 1
        self.power_loss()
        self.crashed = True
        raise SimulatedCrashError(op=op, point=point, step=self._step - 1, kind=kind)

    # -- intercepted operations ----------------------------------------------

    def write_bytes(self, path, data, point=""):
        kind = self._decide("write", point)
        path = Path(path)
        if kind == "crash_before_write":
            self._crash("write", point, kind)
        if kind == "torn_write":
            # A device-level partial flush: the prefix IS durable.
            path.write_bytes(data[: max(1, len(data) // 2)] if data else b"")
            self._unsynced.pop(str(path), None)
            self._crash("write", point, kind)
        if kind == "short_write":
            self.counts[kind] += 1
            path.write_bytes(data[: len(data) // 2])
            self._unsynced[str(path)] = True
            raise OSError(errno.EIO, f"short write injected at {point}")
        if kind == "enospc":
            self.counts[kind] += 1
            raise OSError(errno.ENOSPC, "No space left on device")
        path.write_bytes(data)
        self._unsynced[str(path)] = True

    def fsync_path(self, path, point=""):
        kind = self._decide("fsync", point)
        if kind == "crash_before_fsync":
            self._crash("fsync", point, kind)
        if kind == "lost_fsync":
            self.counts[kind] += 1
            return  # silently dropped: the data stays in the page cache
        super().fsync_path(path, point)
        self._unsynced.pop(str(Path(path)), None)

    def replace(self, src, dst, point=""):
        kind = self._decide("rename", point)
        if kind == "crash_before_rename":
            self._crash("rename", point, kind)
        src, dst = Path(src), Path(dst)
        prior = dst.read_bytes() if dst.exists() else _ABSENT
        os.replace(src, dst)
        # Data durability travels with the inode; name durability waits
        # for the parent dirsync.
        if self._unsynced.pop(str(src), None):
            self._unsynced[str(dst)] = True
        self._pending[str(dst)] = prior
        if kind == "crash_after_rename":
            self._crash("rename", point, kind)

    def fsync_dir(self, path, point=""):
        kind = self._decide("dirsync", point)
        if kind == "crash_before_dirsync":
            self._crash("dirsync", point, kind)
        if kind == "lost_fsync":
            self.counts[kind] += 1
            return  # renames under this directory stay rollback-able
        super().fsync_dir(path, point)
        parent = str(Path(path))
        for target in [
            t for t in self._pending if str(Path(t).parent) == parent
        ]:
            del self._pending[target]
        if kind == "crash_after_dirsync":
            self._crash("dirsync", point, kind)

    def unlink(self, path, point=""):
        kind = self._decide("unlink", point)
        if kind == "crash_before_unlink":
            self._crash("unlink", point, kind)
        super().unlink(path, point)
        target = str(Path(path))
        self._unsynced.pop(target, None)
        self._pending.pop(target, None)
        if kind == "crash_after_unlink":
            self._crash("unlink", point, kind)

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Injected-fault counts by kind (stable key order)."""
        return {kind: self.counts[kind] for kind in sorted(self.counts)}
