"""Content-addressed catalog of campaign stores.

A catalog is a directory whose children are stores, each named by its
**campaign fingerprint**: the SHA-256 of the canonical provenance tuple
``(seed, fault profile, scale, schedule, packets)`` plus the store
format version.  Everything in the tuple fully determines the frozen
dataset bytes — worker count and fast-path mode are deliberately
excluded, because the collection pipeline guarantees byte-identical
output across both — so an identical campaign resolves to an identical
path and ``Campaign.collect(store=...)`` becomes a cache hit: collect
once, analyze many.

A store is only visible to the catalog once its manifest is committed;
interrupted writes leave an uncommitted directory that
:meth:`CampaignCatalog.gc` sweeps.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import StoreError
from repro.obs import ensure_obs
from repro.store.format import (
    DEFAULT_ROWS_PER_SHARD,
    FORMAT_VERSION,
    Manifest,
    is_store_dir,
)
from repro.store.reader import StoreReader
from repro.store.writer import StoreWriter, gc_store


def campaign_provenance(campaign) -> Dict[str, object]:
    """The canonical provenance tuple of a campaign, as a JSON-safe dict.

    Pure function of the campaign's configuration — everything that
    shapes the frozen dataset bytes, nothing that does not (worker
    count, fast-path mode, observability are all byte-transparent).
    """
    return {
        "seed": int(campaign.platform.seed),
        "fault_profile": campaign.transport.fault_profile.name,
        "scale": campaign.scale.label,
        "interval_s": int(campaign.scale.interval_s),
        "start_time": int(campaign.start_time),
        "stop_time": int(campaign.stop_time),
        "packets": int(campaign.plan.packets),
    }


def campaign_fingerprint(provenance: Dict[str, object]) -> str:
    """SHA-256 hex fingerprint of a canonical provenance dict."""
    canonical = json.dumps(
        {"format_version": FORMAT_VERSION, "provenance": provenance},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _looks_like_fingerprint(name: str) -> bool:
    return len(name) == 64 and all(c in "0123456789abcdef" for c in name)


#: Catalog-private directory holding content-addressed per-shard
#: aggregate partials (see :class:`repro.store.scan.AggregateCache`).
#: Hidden (dot-prefixed) children are catalog state, not store entries:
#: gc and scrub skip them.
AGGREGATE_CACHE_DIR = ".aggregates"


class CampaignCatalog:
    """A directory of campaign stores keyed by fingerprint."""

    def __init__(
        self,
        root,
        rows_per_shard: int = DEFAULT_ROWS_PER_SHARD,
        verify: str = "full",
        fs=None,
    ):
        self.root = Path(root)
        self.rows_per_shard = int(rows_per_shard)
        self.verify = verify
        #: Filesystem seam (:mod:`repro.store.fsim`) its writers and gc
        #: sweeps run through; ``None`` → real disk.
        self.fs = fs

    @classmethod
    def ensure(cls, catalog) -> "CampaignCatalog":
        """Normalize a path-or-catalog argument."""
        if isinstance(catalog, cls):
            return catalog
        return cls(catalog)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint

    # -- lookup ----------------------------------------------------------------

    def open(self, fingerprint: str, obs=None) -> Optional[StoreReader]:
        """The committed store for a fingerprint, verified, or ``None``.

        A directory without a committed manifest is a miss (interrupted
        write); a *damaged* committed store raises
        :class:`~repro.errors.StoreIntegrityError` — corruption is
        reported, never silently treated as a miss and re-collected
        over.
        """
        path = self.path_for(fingerprint)
        if not is_store_dir(path):
            return None
        return StoreReader(path, verify=self.verify, obs=obs)

    def lookup(self, campaign, obs=None) -> Optional[StoreReader]:
        """The store matching a campaign's fingerprint, if committed."""
        return self.open(
            campaign_fingerprint(campaign_provenance(campaign)), obs=obs
        )

    def writer(self, campaign, obs=None) -> StoreWriter:
        """A shard writer addressed by the campaign's fingerprint."""
        provenance = campaign_provenance(campaign)
        self.root.mkdir(parents=True, exist_ok=True)
        return StoreWriter(
            self.path_for(campaign_fingerprint(provenance)),
            provenance=provenance,
            rows_per_shard=self.rows_per_shard,
            obs=ensure_obs(obs),
            fs=self.fs,
            durable=True,
        )

    def aggregate_cache(self):
        """The catalog's shared :class:`~repro.store.scan.AggregateCache`.

        Partials are content-addressed by chunk checksum, so one cache
        directory safely serves every store in the catalog.
        """
        from repro.store.scan import AggregateCache

        return AggregateCache(self.root / AGGREGATE_CACHE_DIR)

    def scan(self, campaign, obs=None):
        """A :class:`~repro.store.scan.Scan` over a campaign's committed
        store, wired to the catalog's aggregate cache, or ``None`` on a
        cache miss.  Opens with verification off — scans exist to avoid
        reading every byte; verify explicitly when integrity is in
        question."""
        from repro.store.scan import Scan

        fingerprint = campaign_fingerprint(campaign_provenance(campaign))
        path = self.path_for(fingerprint)
        if not is_store_dir(path):
            return None
        reader = StoreReader(path, verify="off", obs=obs)
        return Scan(reader, obs=obs, cache=self.aggregate_cache())

    # -- maintenance -----------------------------------------------------------

    def entries(self) -> List[str]:
        """Committed fingerprints in the catalog, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            child.name
            for child in self.root.iterdir()
            if _looks_like_fingerprint(child.name) and is_store_dir(child)
        )

    def gc(self) -> List[str]:
        """Sweep the catalog; returns the removed paths (relative).

        Removes uncommitted store directories (no manifest — an
        interrupted or aborted write), entries whose directory name does
        not match the fingerprint their manifest's provenance hashes to
        (a moved or tampered entry), and orphaned files inside healthy
        stores (stale generations, temp files).
        """
        removed: List[str] = []
        if not self.root.is_dir():
            return removed
        for child in sorted(self.root.iterdir()):
            if child.name.startswith("."):
                continue  # catalog-private state (e.g. .aggregates)
            if not child.is_dir():
                if child.name.endswith(".tmp"):
                    child.unlink()
                    removed.append(child.name)
                continue
            if not is_store_dir(child):
                shutil.rmtree(child)
                removed.append(child.name)
                continue
            try:
                manifest = Manifest.load(child)
            except StoreError:
                shutil.rmtree(child)
                removed.append(child.name)
                continue
            if _looks_like_fingerprint(child.name):
                expected = (
                    campaign_fingerprint(manifest.provenance)
                    if manifest.provenance
                    else None
                )
                if expected is not None and expected != child.name:
                    shutil.rmtree(child)
                    removed.append(child.name)
                    continue
            removed.extend(
                f"{child.name}/{name}" for name in gc_store(child, fs=self.fs)
            )
        return removed
