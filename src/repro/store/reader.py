"""Zero-copy store reads: verification, lazy columns, dataset rebuild.

:class:`StoreReader` opens a committed store, verifies its chunks
against the manifest checksums (fully by default; ``sampled`` size-checks
everything and hashes a deterministic subset; ``off`` trusts the disk),
and serves columns as read-only ``np.memmap`` views.  A single-shard
store — the canonical post-:func:`~repro.store.writer.compact` layout —
materializes without copying a byte: pages fault in as the analysis
touches them.  Multi-shard stores concatenate their shard views once per
column, lazily and memoized.

:meth:`StoreReader.dataset` rebuilds a fully functional frozen
:class:`~repro.core.dataset.CampaignDataset` (memoized derived vectors
and all) — either against caller-supplied probe/target tables or by
regenerating them from the provenance seed recorded at write time.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import StoreError, StoreIntegrityError
from repro.obs import ensure_obs
from repro.store.format import Manifest, sha256_file

VERIFY_MODES = ("full", "sampled", "off")

#: Ceiling on fully-hashed shards in ``sampled`` mode (first and last
#: shards always included; the rest strided deterministically).
_SAMPLED_SHARDS = 8


def _sampled_shard_indices(count: int) -> List[int]:
    """Deterministic shard subset for sampled verification."""
    if count <= _SAMPLED_SHARDS:
        return list(range(count))
    stride = max(1, count // _SAMPLED_SHARDS)
    chosen = set(range(0, count, stride))
    chosen.update((0, count - 1))
    return sorted(chosen)


class StoreReader:
    """Open, verify, and lazily materialize one store directory."""

    def __init__(self, path, verify: str = "full", obs=None):
        if verify not in VERIFY_MODES:
            raise StoreError(f"verify must be one of {VERIFY_MODES}: {verify!r}")
        self.path = Path(path)
        self.obs = ensure_obs(obs)
        self.manifest = Manifest.load(self.path)
        self._columns: Dict[str, np.ndarray] = {}
        with self.obs.span(
            "store.open",
            path=str(self.path),
            rows=self.manifest.rows,
            shards=len(self.manifest.shards),
            verify=verify,
        ):
            self._check_shape()
            if verify != "off":
                self.verify(mode=verify)

    # -- integrity -------------------------------------------------------------

    def _check_shape(self) -> None:
        """Manifest self-consistency: rows add up, chunks cover the schema,
        declared byte lengths match each chunk's dtype and row count."""
        manifest = self.manifest
        columns = set(manifest.columns)
        total = 0
        for shard in manifest.shards:
            total += shard.rows
            if set(shard.chunks) != columns:
                raise StoreIntegrityError(
                    f"shard {shard.name} chunks {sorted(shard.chunks)} do not "
                    f"cover the schema {sorted(columns)}"
                )
            for column, meta in shard.chunks.items():
                itemsize = np.dtype(manifest.dtype_of(column)).itemsize
                if meta.bytes != shard.rows * itemsize:
                    raise StoreIntegrityError(
                        f"chunk {meta.file} declares {meta.bytes} bytes for "
                        f"{shard.rows} rows of {manifest.dtype_of(column)}"
                    )
        if total != manifest.rows:
            raise StoreIntegrityError(
                f"manifest declares {manifest.rows} rows but shards hold {total}"
            )

    def verify(self, mode: str = "full") -> int:
        """Check chunk files against the manifest; returns chunks hashed.

        Every chunk's existence and byte length is checked in any mode —
        truncation never passes.  ``full`` re-hashes every chunk;
        ``sampled`` re-hashes a deterministic subset of shards.
        """
        if mode not in ("full", "sampled"):
            raise StoreError(f"verify mode must be 'full' or 'sampled': {mode!r}")
        manifest = self.manifest
        for shard in manifest.shards:
            for meta in shard.chunks.values():
                chunk = self.path / meta.file
                if not chunk.is_file():
                    raise StoreIntegrityError(f"chunk {meta.file} is missing")
                size = chunk.stat().st_size
                if size != meta.bytes:
                    raise StoreIntegrityError(
                        f"chunk {meta.file} is {size} bytes on disk but the "
                        f"manifest declares {meta.bytes} (truncated or padded)"
                    )
        hashed = 0
        if mode == "full":
            selected: Iterable[int] = range(len(manifest.shards))
        else:
            selected = _sampled_shard_indices(len(manifest.shards))
        for index in selected:
            shard = manifest.shards[index]
            for meta in shard.chunks.values():
                digest = sha256_file(self.path / meta.file)
                if digest != meta.sha256:
                    raise StoreIntegrityError(
                        f"chunk {meta.file} fails its checksum: manifest "
                        f"{meta.sha256[:12]}…, disk {digest[:12]}…"
                    )
                hashed += 1
                self.obs.inc("store_chunks_verified_total")
                self.obs.inc("store_bytes_verified_total", meta.bytes)
        return hashed

    # -- columns ---------------------------------------------------------------

    @property
    def rows(self) -> int:
        return self.manifest.rows

    @property
    def provenance(self) -> Optional[Dict[str, object]]:
        return self.manifest.provenance

    def __len__(self) -> int:
        return self.manifest.rows

    def _chunk_view(self, shard, column: str) -> np.ndarray:
        """Read-only memmap over one chunk (no bytes read until touched)."""
        meta = shard.chunks[column]
        dtype = np.dtype(self.manifest.dtype_of(column))
        if shard.rows == 0:
            return np.empty(0, dtype=dtype)
        view = np.memmap(
            self.path / meta.file, dtype=dtype, mode="r", shape=(shard.rows,)
        )
        self.obs.inc("store_bytes_mapped_total", meta.bytes)
        return view

    def column(self, name: str) -> np.ndarray:
        """One full column, memoized; zero-copy for single-shard stores."""
        cached = self._columns.get(name)
        if cached is not None:
            return cached
        if name not in self.manifest.columns:
            raise StoreError(f"no column {name!r} in store schema")
        shards = self.manifest.shards
        if not shards:
            loaded = np.empty(0, dtype=np.dtype(self.manifest.dtype_of(name)))
        elif len(shards) == 1:
            loaded = self._chunk_view(shards[0], name)
        else:
            loaded = np.concatenate(
                [self._chunk_view(shard, name) for shard in shards]
            )
            loaded.setflags(write=False)
        self._columns[name] = loaded
        return loaded

    def columns(self) -> Dict[str, np.ndarray]:
        return {name: self.column(name) for name in self.manifest.columns}

    def scan(self, columns=None, cache=None):
        """A :class:`~repro.store.scan.Scan` over this store.

        The scan streams chunk by chunk through the *unmemoized* view
        path — it never populates this reader's whole-column cache, so
        scanning a huge store through a reader keeps the reader cheap.
        """
        from repro.store.scan import Scan

        return Scan(self, columns=columns, obs=self.obs, cache=cache)

    # -- dataset rebuild -------------------------------------------------------

    def dataset(self, probes=None, targets=None, obs=None):
        """Rebuild the frozen :class:`~repro.core.dataset.CampaignDataset`.

        Probe/target metadata tables are taken from the caller when
        given; otherwise they are regenerated from the provenance seed —
        the platform is deterministic, so the rebuilt tables are exactly
        the ones the store was collected against.
        """
        from repro.core.dataset import CampaignDataset

        if probes is None or targets is None:
            provenance = self.manifest.provenance or {}
            if "seed" not in provenance:
                raise StoreError(
                    "store carries no provenance seed; pass probes= and "
                    "targets= explicitly"
                )
            from repro.atlas.platform import AtlasPlatform

            platform = AtlasPlatform(seed=int(provenance["seed"]))
            probes = platform.probes if probes is None else probes
            targets = platform.fleet if targets is None else targets
        return CampaignDataset.from_columns(
            probes,
            targets,
            self.columns(),
            obs=obs if obs is not None else self.obs,
        )


def open_dataset(
    path,
    probes=None,
    targets=None,
    verify: str = "full",
    obs=None,
):
    """One-call load: open + verify a store, rebuild its dataset."""
    reader = StoreReader(path, verify=verify, obs=obs)
    return reader.dataset(probes=probes, targets=targets)
