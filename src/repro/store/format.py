"""The on-disk layout of a persistent campaign store.

A store is one directory holding

* ``manifest.json`` — the commit record: format version, column schema
  (explicit little-endian dtypes), row counts, campaign provenance
  (seed / fault profile / scale / schedule), and one SHA-256 checksum
  per column chunk;
* raw column chunks — ``<shard>.<column>.bin`` files, each the exact
  little-endian bytes of one column over one shard's rows.

Every file lands atomically (private temp file + ``os.replace``, the
same discipline as :class:`~repro.core.campaign.CollectionCheckpoint`),
and the manifest is written *last*: a directory without a parseable,
current-version manifest is not a store, so a crash mid-write can never
produce something a reader would silently analyze.  Nothing in the
manifest depends on wall-clock time — two writes of the same frozen
dataset are byte-identical, which is what lets the catalog treat a store
as content-addressed by campaign fingerprint.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import StoreError, StoreIntegrityError

#: Manifest ``format`` marker and the layout version this build writes.
#: Version 2 added per-chunk zone maps (min/max/null-count) for scan
#: pruning; the chunk byte layout is unchanged, so version-1 manifests
#: (no zone maps) remain readable — scans over them simply cannot skip.
FORMAT_NAME = "repro.store"
FORMAT_VERSION = 2

#: Manifest versions :meth:`Manifest.from_json` accepts.
SUPPORTED_VERSIONS = (1, 2)

MANIFEST_NAME = "manifest.json"

#: Canonical shard size: shards are cut at exactly this many rows (the
#: last shard carries the remainder), making the shard layout a pure
#: function of the row stream — independent of worker count, batch
#: boundaries, or whether the store was streamed or saved post-freeze.
DEFAULT_ROWS_PER_SHARD = 1 << 19

#: The sample schema, as explicit little-endian dtype strings.  Kept in
#: lockstep with :data:`repro.core.dataset.SAMPLE_DTYPES` (a unit test
#: pins the correspondence) but defined independently so the store layer
#: never imports the dataset layer at module scope.
SAMPLE_SCHEMA: Tuple[Tuple[str, str], ...] = (
    ("probe_id", "<i4"),
    ("target_index", "<i4"),
    ("timestamp", "<i8"),
    ("rtt_min", "<f8"),
    ("rtt_avg", "<f8"),
    ("sent", "<i2"),
    ("rcvd", "<i2"),
)

SAMPLE_COLUMNS: Tuple[str, ...] = tuple(name for name, _ in SAMPLE_SCHEMA)


def atomic_write_bytes(
    path: Path,
    data: bytes,
    fs=None,
    point: Optional[str] = None,
    fsync: bool = False,
) -> None:
    """Write ``data`` to ``path`` via a private temp file + rename.

    ``fsync=True`` makes the write *durable*, not just atomic: the temp
    file's data is flushed before the rename and the parent directory is
    flushed after it, so the committed entry survives power loss.  Plain
    atomicity (the default) is enough for chunk files, whose durability
    the writer settles in bulk at finalize time.

    ``fs`` is the :mod:`repro.store.fsim` seam (``None`` → real disk);
    ``point`` labels this write's operations for fault targeting.
    """
    from repro.store.fsim import ensure_fs

    fs = ensure_fs(fs)
    path = Path(path)
    label = point if point is not None else path.name
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
    fs.write_bytes(tmp, data, point=label)
    if fsync:
        fs.fsync_path(tmp, point=label)
    fs.replace(tmp, path, point=label)
    if fsync:
        fs.fsync_dir(path.parent, point=label)


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: Path, chunk_bytes: int = 1 << 20) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk_bytes)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def shard_name(generation: int, index: int) -> str:
    """Canonical shard name; the generation tag keeps compaction's new
    chunk files from colliding with the ones they replace."""
    return f"shard-{generation:04d}-{index:06d}"


def shard_index_of(name: str) -> int:
    """The global shard index a canonical shard name encodes."""
    try:
        prefix, generation, index = name.split("-")
        if prefix != "shard":
            raise ValueError(name)
        return int(index)
    except ValueError as exc:
        raise StoreError(f"not a canonical shard name: {name!r}") from exc


def merge_window_runs(fragments) -> Tuple[Tuple[int, int], ...]:
    """Concatenate per-fragment ``windows`` RLEs into one stream RLE.

    Each fragment is ``((target_index, rows), ...)`` over a contiguous
    row range; fragments must arrive in row order.  Runs that continue
    across a fragment join merge, so the result depends only on the
    concatenated row stream — the same invariance the shard layout has,
    which is what makes a manifest assembled from per-worker fragments
    byte-identical to one written in a single pass.
    """
    merged: List[List[int]] = []
    for runs in fragments:
        for target, rows in runs:
            if not rows:
                continue
            if merged and merged[-1][0] == int(target):
                merged[-1][1] += int(rows)
            else:
                merged.append([int(target), int(rows)])
    return tuple((target, rows) for target, rows in merged)


def chunk_filename(shard: str, column: str) -> str:
    return f"{shard}.{column}.bin"


@dataclass(frozen=True)
class ZoneMap:
    """Per-chunk value bounds: the pruning metadata of one column chunk.

    ``minimum``/``maximum`` are over the chunk's non-NaN values and are
    ``None`` when the chunk is empty or all-NaN; ``nulls`` counts NaNs.
    Computed by one function (:meth:`from_array`) wherever zones are
    produced — writer, backfill, scrub recheck — so recomputation from
    chunk bytes is deterministic and scrub can treat a mismatch as
    damage.
    """

    minimum: Optional[float]
    maximum: Optional[float]
    nulls: int = 0

    @classmethod
    def from_array(cls, array: "np.ndarray") -> "ZoneMap":
        array = np.asarray(array).ravel()
        if array.size == 0:
            return cls(minimum=None, maximum=None, nulls=0)
        if np.issubdtype(array.dtype, np.floating):
            nulls = int(np.count_nonzero(np.isnan(array)))
            if nulls == array.size:
                return cls(minimum=None, maximum=None, nulls=nulls)
            return cls(
                minimum=float(np.nanmin(array)),
                maximum=float(np.nanmax(array)),
                nulls=nulls,
            )
        return cls(
            minimum=int(np.min(array)), maximum=int(np.max(array)), nulls=0
        )

    def as_dict(self) -> Dict[str, object]:
        return {"min": self.minimum, "max": self.maximum, "nulls": self.nulls}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ZoneMap":
        minimum = payload.get("min")
        maximum = payload.get("max")
        return cls(
            minimum=minimum if minimum is None else _json_number(minimum),
            maximum=maximum if maximum is None else _json_number(maximum),
            nulls=int(payload.get("nulls", 0)),
        )


def _json_number(value: object):
    """Round-trip a zone bound: ints stay int, floats stay float."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"zone map bound is not a number: {value!r}")
    return value


@dataclass(frozen=True)
class ChunkMeta:
    """One column over one shard: its file, byte length, and checksum.

    ``zone`` is the chunk's :class:`ZoneMap` (version-2 manifests);
    ``None`` on manifests written before zone maps existed, in which
    case scans read the chunk unconditionally.
    """

    file: str
    bytes: int
    sha256: str
    zone: Optional[ZoneMap] = None

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "file": self.file,
            "bytes": self.bytes,
            "sha256": self.sha256,
        }
        if self.zone is not None:
            payload["zone"] = self.zone.as_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ChunkMeta":
        zone = payload.get("zone")
        return cls(
            file=str(payload["file"]),
            bytes=int(payload["bytes"]),
            sha256=str(payload["sha256"]),
            zone=ZoneMap.from_dict(dict(zone)) if zone is not None else None,
        )


@dataclass(frozen=True)
class ShardMeta:
    """One shard: a contiguous row range stored as one chunk per column."""

    name: str
    rows: int
    chunks: Dict[str, ChunkMeta]

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "rows": self.rows,
            "chunks": {col: meta.as_dict() for col, meta in self.chunks.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ShardMeta":
        return cls(
            name=str(payload["name"]),
            rows=int(payload["rows"]),
            chunks={
                str(col): ChunkMeta.from_dict(meta)
                for col, meta in dict(payload["chunks"]).items()
            },
        )


@dataclass
class Manifest:
    """The store's commit record (see module docstring)."""

    schema: Tuple[Tuple[str, str], ...] = SAMPLE_SCHEMA
    rows: int = 0
    generation: int = 0
    rows_per_shard: int = DEFAULT_ROWS_PER_SHARD
    provenance: Optional[Dict[str, object]] = None
    shards: List[ShardMeta] = field(default_factory=list)
    #: Run-length encoding of the ``target_index`` column over the full
    #: row stream: ``((target_index, rows), ...)``.  A pure function of
    #: the rows, maintained by the writer; it maps any damaged shard's
    #: row range back to whole measurement windows, which is what lets
    #: ``repair`` re-synthesize only the affected windows.  Optional so
    #: hand-built or pre-windows manifests stay valid.
    windows: Optional[Tuple[Tuple[int, int], ...]] = None

    @property
    def columns(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.schema)

    def dtype_of(self, column: str) -> str:
        for name, dtype in self.schema:
            if name == column:
                return dtype
        raise StoreError(f"no column {column!r} in store schema")

    def chunk_files(self) -> List[str]:
        """Every chunk filename the manifest references, in shard order."""
        return [
            meta.file
            for shard in self.shards
            for meta in shard.chunks.values()
        ]

    def total_chunk_bytes(self) -> int:
        return sum(
            meta.bytes for shard in self.shards for meta in shard.chunks.values()
        )

    def zone_map_coverage(self) -> Tuple[int, int]:
        """``(chunks with zone maps, total chunks)``."""
        total = zoned = 0
        for shard in self.shards:
            for meta in shard.chunks.values():
                total += 1
                if meta.zone is not None:
                    zoned += 1
        return zoned, total

    def to_json(self) -> str:
        payload = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "generation": self.generation,
            "rows": self.rows,
            "rows_per_shard": self.rows_per_shard,
            "schema": [[name, dtype] for name, dtype in self.schema],
            "provenance": self.provenance,
            "shards": [shard.as_dict() for shard in self.shards],
        }
        if self.windows is not None:
            payload["windows"] = [[target, rows] for target, rows in self.windows]
        return json.dumps(payload, indent=1, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreIntegrityError(
                f"store manifest is truncated or unparseable: {exc}"
            ) from exc
        if not isinstance(payload, dict) or payload.get("format") != FORMAT_NAME:
            raise StoreIntegrityError("store manifest is not a repro.store manifest")
        version = payload.get("version")
        if version not in SUPPORTED_VERSIONS:
            raise StoreError(
                f"unsupported store format version {version!r} "
                f"(this build reads versions {SUPPORTED_VERSIONS})"
            )
        try:
            return cls(
                schema=tuple(
                    (str(name), str(dtype)) for name, dtype in payload["schema"]
                ),
                rows=int(payload["rows"]),
                generation=int(payload.get("generation", 0)),
                rows_per_shard=int(
                    payload.get("rows_per_shard", DEFAULT_ROWS_PER_SHARD)
                ),
                provenance=payload.get("provenance"),
                shards=[ShardMeta.from_dict(s) for s in payload["shards"]],
                windows=(
                    tuple(
                        (int(target), int(rows))
                        for target, rows in payload["windows"]
                    )
                    if payload.get("windows") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreIntegrityError(
                f"store manifest is missing or mangling required fields: {exc}"
            ) from exc

    # -- disk ------------------------------------------------------------------

    def save(self, store_dir: Path, fs=None) -> None:
        """Durably write the manifest — the store's commit point.

        Always fsyncs (file and parent directory): a store whose chunks
        survived a power cut but whose manifest rename did not would
        read as "not a store", silently discarding a committed write.
        """
        atomic_write_bytes(
            Path(store_dir) / MANIFEST_NAME,
            self.to_json().encode("utf-8"),
            fs=fs,
            point="manifest",
            fsync=True,
        )

    @classmethod
    def load(cls, store_dir: Path) -> "Manifest":
        path = Path(store_dir) / MANIFEST_NAME
        if not path.is_file():
            raise StoreError(f"{store_dir} is not a store (no {MANIFEST_NAME})")
        return cls.from_json(path.read_text(encoding="utf-8"))


def is_store_dir(path: Path) -> bool:
    """True when ``path`` holds a committed (manifest-bearing) store."""
    return (Path(path) / MANIFEST_NAME).is_file()
