"""Append-oriented store writer and the deterministic compaction pass.

:class:`StoreWriter` accepts per-measurement column batches — straight
off the campaign's columnar fast path — buffers them, and cuts shards at
*exact* ``rows_per_shard`` boundaries.  Because shard boundaries depend
only on the cumulative row stream (never on batch sizes, flush timing,
or worker count), streaming a collection through the writer produces the
same bytes as saving the frozen dataset afterwards, and a parallel
collection merged in canonical order produces the same bytes as a serial
one.

Chunks land atomically as they are cut; the manifest is written last by
:meth:`StoreWriter.finalize` and is the commit point — an aborted or
crashed write leaves chunk files but no manifest, which readers refuse
and ``repro store gc`` removes.

:func:`compact` merges a store's shards back into canonical
``rows_per_shard`` slices in shard order.  It is deterministic (the
output depends only on the row stream and the target shard size) and
idempotent (an already-canonical store is returned untouched).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StoreError
from repro.obs import ensure_obs
from repro.store.fsim import ensure_fs
from repro.store.format import (
    DEFAULT_ROWS_PER_SHARD,
    MANIFEST_NAME,
    SAMPLE_SCHEMA,
    ChunkMeta,
    Manifest,
    ShardMeta,
    ZoneMap,
    atomic_write_bytes,
    chunk_filename,
    is_store_dir,
    merge_window_runs,
    sha256_hex,
    shard_index_of,
    shard_name,
)


def write_shard_chunks(
    path: Path,
    name: str,
    arrays: Dict[str, np.ndarray],
    schema: Tuple[Tuple[str, str], ...],
    fs,
    obs,
) -> ShardMeta:
    """Write one shard's column chunks atomically; return its metadata.

    The single chunk-emission path shared by every writer — one-pass
    :class:`StoreWriter`, per-worker :class:`ShardRangeWriter`, and the
    parent's boundary stitching — so chunk bytes, checksums, and zone
    maps are computed identically no matter which process cut the shard.
    """
    rows = len(arrays[schema[0][0]])
    chunks: Dict[str, ChunkMeta] = {}
    with obs.span("store.shard", shard=name, rows=rows):
        for column, dtype in schema:
            array = np.ascontiguousarray(arrays[column], dtype=np.dtype(dtype))
            data = array.tobytes()
            zone = ZoneMap.from_array(array)
            filename = chunk_filename(name, column)
            try:
                atomic_write_bytes(
                    path / filename,
                    data,
                    fs=fs,
                    point=f"chunk:{filename}",
                )
            except OSError as exc:
                raise StoreError(
                    f"chunk write failed ({exc.strerror or exc}): partial "
                    f"store left at {path} — sweep with `repro store gc`"
                ) from exc
            chunks[column] = ChunkMeta(
                file=filename,
                bytes=len(data),
                sha256=sha256_hex(data),
                zone=zone,
            )
            obs.inc("store_chunks_written_total")
            obs.inc("store_bytes_written_total", len(data))
    return ShardMeta(name=name, rows=rows, chunks=chunks)


class _ColumnBuffer:
    """Pending column arrays awaiting shard cuts, in row-stream order."""

    def __init__(self, schema: Tuple[Tuple[str, str], ...]):
        self.schema = tuple(schema)
        self._pending: Dict[str, List[np.ndarray]] = {
            name: [] for name, _ in self.schema
        }
        self.rows = 0

    def append(self, columns: Dict[str, Sequence]) -> int:
        """Validate + buffer one batch; returns the rows appended."""
        arrays = {}
        count = None
        for name, dtype in self.schema:
            try:
                values = columns[name]
            except KeyError:
                raise StoreError(
                    f"append batch is missing column {name!r}"
                ) from None
            array = np.asarray(values, dtype=np.dtype(dtype))
            if count is None:
                count = len(array)
            elif len(array) != count:
                raise StoreError(
                    f"ragged append batch: column {name!r} has {len(array)} "
                    f"rows, expected {count}"
                )
            arrays[name] = array
        if not count:
            return 0
        for name, array in arrays.items():
            self._pending[name].append(array)
        self.rows += count
        return count

    def _take_rows(self, name: str, rows: int) -> np.ndarray:
        """Remove exactly ``rows`` leading rows from one pending column."""
        queue = self._pending[name]
        if not rows:
            dtype = dict(self.schema)[name]
            return np.empty(0, dtype=np.dtype(dtype))
        taken: List[np.ndarray] = []
        remaining = rows
        while remaining:
            head = queue[0]
            if len(head) <= remaining:
                taken.append(queue.pop(0))
                remaining -= len(head)
            else:
                taken.append(head[:remaining])
                queue[0] = head[remaining:]
                remaining = 0
        if len(taken) == 1:
            return taken[0]
        return np.concatenate(taken)

    def take(self, rows: int) -> Dict[str, np.ndarray]:
        """Remove the leading ``rows`` rows across every column."""
        if rows > self.rows:
            raise StoreError(
                f"cannot take {rows} rows from a {self.rows}-row buffer"
            )
        out = {name: self._take_rows(name, rows) for name, _ in self.schema}
        self.rows -= rows
        return out

    def clear(self) -> None:
        self._pending = {name: [] for name, _ in self.schema}
        self.rows = 0


class StoreWriter:
    """Write one store directory from appended column batches."""

    def __init__(
        self,
        path,
        provenance: Optional[Dict[str, object]] = None,
        schema: Tuple[Tuple[str, str], ...] = SAMPLE_SCHEMA,
        rows_per_shard: int = DEFAULT_ROWS_PER_SHARD,
        generation: int = 0,
        obs=None,
        fs=None,
        durable: bool = False,
    ):
        if rows_per_shard < 1:
            raise StoreError(f"rows_per_shard must be positive: {rows_per_shard}")
        self.path = Path(path)
        if generation == 0 and is_store_dir(self.path):
            raise StoreError(f"refusing to overwrite existing store at {self.path}")
        self.schema = tuple(schema)
        self.rows_per_shard = int(rows_per_shard)
        self.generation = int(generation)
        self.provenance = provenance
        self.obs = ensure_obs(obs)
        self.fs = ensure_fs(fs)
        #: With ``durable=True`` every chunk is fsynced (in bulk, at
        #: finalize, before the manifest commit) so the committed store
        #: survives power loss.  Off by default: a scratch writer's
        #: durability ends at atomicity, which keeps tight write loops
        #: (tests, benchmarks) off the fsync path.
        self.durable = bool(durable)
        self.path.mkdir(parents=True, exist_ok=True)
        self._buffer = _ColumnBuffer(self.schema)
        self._shards: List[ShardMeta] = []
        self._rows_written = 0
        self._windows: List[List[int]] = []
        self._finalized = False

    # -- appending -------------------------------------------------------------

    def append_columns(self, columns: Dict[str, Sequence]) -> int:
        """Buffer one batch of parallel columns; cut shards as they fill.

        ``columns`` must cover the schema exactly; values are cast to the
        schema's little-endian dtypes.  Returns the rows appended.
        """
        if self._finalized:
            raise StoreError("writer is finalized; no further appends")
        count = self._buffer.append(columns)
        if not count:
            return 0
        if "target_index" in dict(self.schema):
            self._extend_windows(np.asarray(columns["target_index"], dtype="<i4"))
        while self._buffer.rows >= self.rows_per_shard:
            self._cut_shard(self.rows_per_shard)
        return count

    def append_batch(
        self,
        probe_ids,
        target_index,
        timestamps,
        rtt_min,
        rtt_avg,
        sent,
        rcvd,
    ) -> int:
        """Append one measurement window's samples (sample schema only).

        ``target_index`` may be a scalar — the common case of one window
        sharing one target — or a per-row sequence.
        """
        count = len(probe_ids)
        if np.ndim(target_index) == 0:
            target_index = np.full(count, int(target_index), dtype="<i4")
        return self.append_columns(
            {
                "probe_id": probe_ids,
                "target_index": target_index,
                "timestamp": timestamps,
                "rtt_min": rtt_min,
                "rtt_avg": rtt_avg,
                "sent": sent,
                "rcvd": rcvd,
            }
        )

    def _extend_windows(self, targets: np.ndarray) -> None:
        """Fold one batch's target runs into the manifest window index.

        Runs that continue across batch (and shard) boundaries merge, so
        the encoding depends only on the concatenated row stream — the
        same invariance the shard layout has.
        """
        _fold_window_runs(self._windows, targets)

    # -- shard cutting ---------------------------------------------------------

    def _cut_shard(self, rows: int) -> None:
        name = shard_name(self.generation, len(self._shards))
        meta = write_shard_chunks(
            self.path, name, self._buffer.take(rows), self.schema, self.fs, self.obs
        )
        self._rows_written += rows
        self._shards.append(meta)
        self.obs.inc("store_shards_written_total")

    def flush(self) -> None:
        """Cut whatever is buffered as a (possibly short) final shard."""
        if self._buffer.rows:
            self._cut_shard(self._buffer.rows)

    # -- lifecycle -------------------------------------------------------------

    @property
    def rows_written(self) -> int:
        return self._rows_written + self._buffer.rows

    def finalize(self) -> Manifest:
        """Flush, then commit the store by writing its manifest."""
        if self._finalized:
            raise StoreError("writer is already finalized")
        self.flush()
        if self.durable:
            # Settle chunk durability in one pass, *before* the manifest
            # commit: once the manifest is durable, every byte it
            # references must be too.
            for shard in self._shards:
                for meta in shard.chunks.values():
                    self.fs.fsync_path(
                        self.path / meta.file, point=f"chunk:{meta.file}"
                    )
            self.fs.fsync_dir(self.path, point="store-dir")
        manifest = Manifest(
            schema=self.schema,
            rows=self._rows_written,
            generation=self.generation,
            rows_per_shard=self.rows_per_shard,
            provenance=self.provenance,
            shards=self._shards,
            windows=(
                tuple((target, rows) for target, rows in self._windows)
                if "target_index" in dict(self.schema)
                else None
            ),
        )
        manifest.save(self.path, fs=self.fs)
        self._finalized = True
        self.obs.inc("store_rows_written_total", self._rows_written)
        self.obs.event(
            "store.commit", rows=self._rows_written, shards=len(self._shards)
        )
        return manifest

    def abort(self) -> None:
        """Best-effort cleanup of an uncommitted store directory.

        Never removes a chunk the *committed* manifest references: when
        finalize fails after the manifest rename landed (e.g. the final
        directory sync errored), this writer's chunks are already the
        store's live generation, and deleting them would corrupt a
        committed store to clean up a phantom failure.
        """
        self._finalized = True
        self._buffer.clear()
        try:
            referenced = set(Manifest.load(self.path).chunk_files())
        except (StoreError, OSError):
            referenced = set()
        for shard in self._shards:
            for meta in shard.chunks.values():
                if meta.file in referenced:
                    continue
                try:
                    (self.path / meta.file).unlink()
                except OSError:
                    pass
        self._shards = []
        try:
            self.path.rmdir()
        except OSError:
            pass


@dataclass
class ShardRange:
    """What one worker's :class:`ShardRangeWriter` produced.

    The IPC-sized summary of a directly-written row range: full interior
    shards stay on disk and travel back as :class:`ShardMeta` fragments
    only, while the *partial* rows at either end of the range — the rows
    that share a ``rows_per_shard`` slice with a neighbouring worker —
    come back as small column arrays for the parent to stitch.
    """

    row_start: int
    rows: int
    #: Global index of the first interior shard this range wrote
    #: (meaningless when ``shards`` is empty).
    first_shard_index: int
    shards: List[ShardMeta] = field(default_factory=list)
    #: Rows before the first interior shard boundary, column name →
    #: array.  Empty dict when the range starts on a boundary.
    head: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Rows after the last interior shard boundary.
    tail: Dict[str, np.ndarray] = field(default_factory=dict)
    #: ``windows`` RLE over the whole range (partials included).
    windows: Tuple[Tuple[int, int], ...] = ()
    #: Chunk bytes written to disk by this range (interior shards only).
    bytes_written: int = 0

    @property
    def head_rows(self) -> int:
        return len(next(iter(self.head.values()))) if self.head else 0

    @property
    def tail_rows(self) -> int:
        return len(next(iter(self.tail.values()))) if self.tail else 0

    def chunk_files(self) -> List[str]:
        return [
            meta.file for shard in self.shards for meta in shard.chunks.values()
        ]


class ShardRangeWriter:
    """Direct-to-store writer for one worker's contiguous row range.

    The shared-nothing counterpart of :class:`StoreWriter`: given the
    global row offset its range starts at, it cuts **exactly the shards a
    single-pass writer would cut** for those rows — full
    ``rows_per_shard`` slices aligned to global boundaries, written
    atomically under their final global shard names — and holds back the
    boundary-straddling head/tail rows for the parent to stitch.  Because
    the shard layout is a pure function of the row stream, the union of
    every worker's interior shards plus the parent-stitched boundary
    shards is byte-identical to a serial write.
    """

    def __init__(
        self,
        path,
        row_start: int,
        rows_per_shard: int = DEFAULT_ROWS_PER_SHARD,
        schema: Tuple[Tuple[str, str], ...] = SAMPLE_SCHEMA,
        generation: int = 0,
        obs=None,
        fs=None,
        durable: bool = False,
    ):
        if rows_per_shard < 1:
            raise StoreError(f"rows_per_shard must be positive: {rows_per_shard}")
        if row_start < 0:
            raise StoreError(f"row_start must be non-negative: {row_start}")
        self.path = Path(path)
        self.schema = tuple(schema)
        self.rows_per_shard = int(rows_per_shard)
        self.row_start = int(row_start)
        self.generation = int(generation)
        self.obs = ensure_obs(obs)
        self.fs = ensure_fs(fs)
        self.durable = bool(durable)
        self.path.mkdir(parents=True, exist_ok=True)
        self._buffer = _ColumnBuffer(self.schema)
        self._windows: List[List[int]] = []
        #: Rows still owed to the head partial before interior cutting
        #: can start: the distance to the next global shard boundary.
        self._head_remaining = (
            -self.row_start
        ) % self.rows_per_shard
        self._head: Optional[Dict[str, np.ndarray]] = (
            None if self._head_remaining else {}
        )
        self._rows_appended = 0
        self._shards: List[ShardMeta] = []
        self._bytes_written = 0
        self._finished = False

    @property
    def first_shard_index(self) -> int:
        return (self.row_start + self._head_remaining) // self.rows_per_shard

    def append_columns(self, columns: Dict[str, Sequence]) -> int:
        """Buffer one batch; write interior shards as boundaries fill."""
        if self._finished:
            raise StoreError("range writer is finished; no further appends")
        count = self._buffer.append(columns)
        if not count:
            return 0
        self._rows_appended += count
        if "target_index" in dict(self.schema):
            _fold_window_runs(
                self._windows, np.asarray(columns["target_index"], dtype="<i4")
            )
        if self._head is None:
            if self._buffer.rows < self._head_remaining:
                return count
            self._head = self._buffer.take(self._head_remaining)
        while self._buffer.rows >= self.rows_per_shard:
            self._cut_interior()
        return count

    def append_batch(
        self, probe_ids, target_index, timestamps, rtt_min, rtt_avg, sent, rcvd
    ) -> int:
        """Sample-schema convenience mirroring :meth:`StoreWriter.append_batch`."""
        count = len(probe_ids)
        if np.ndim(target_index) == 0:
            target_index = np.full(count, int(target_index), dtype="<i4")
        return self.append_columns(
            {
                "probe_id": probe_ids,
                "target_index": target_index,
                "timestamp": timestamps,
                "rtt_min": rtt_min,
                "rtt_avg": rtt_avg,
                "sent": sent,
                "rcvd": rcvd,
            }
        )

    def _cut_interior(self) -> None:
        name = shard_name(self.generation, self.first_shard_index + len(self._shards))
        meta = write_shard_chunks(
            self.path,
            name,
            self._buffer.take(self.rows_per_shard),
            self.schema,
            self.fs,
            self.obs,
        )
        self._shards.append(meta)
        self._bytes_written += sum(c.bytes for c in meta.chunks.values())
        self.obs.inc("store_shards_written_total")

    def finish(self) -> ShardRange:
        """Settle durability and package the range's manifest fragment.

        The remaining buffered rows become the tail partial.  With
        ``durable=True`` every interior chunk is fsynced here, *in the
        worker* — the parent only syncs the directory and the manifest,
        so no process ever waits on another's data blocks.
        """
        if self._finished:
            raise StoreError("range writer is already finished")
        self._finished = True
        if self._head is None:
            # The whole range fits before the first boundary.
            self._head = self._buffer.take(self._buffer.rows)
        tail = self._buffer.take(self._buffer.rows)
        if self.durable:
            for shard in self._shards:
                for meta in shard.chunks.values():
                    self.fs.fsync_path(
                        self.path / meta.file, point=f"chunk:{meta.file}"
                    )
        return ShardRange(
            row_start=self.row_start,
            rows=self._rows_appended,
            first_shard_index=self.first_shard_index,
            shards=self._shards,
            head={name: np.ascontiguousarray(a) for name, a in self._head.items()},
            tail={name: np.ascontiguousarray(a) for name, a in tail.items()},
            windows=tuple((t, r) for t, r in self._windows),
            bytes_written=self._bytes_written,
        )

    def discard(self) -> None:
        """Unlink every interior chunk this range wrote (crash cleanup)."""
        self._finished = True
        self._buffer.clear()
        for shard in self._shards:
            for meta in shard.chunks.values():
                try:
                    (self.path / meta.file).unlink()
                except OSError:
                    pass
        self._shards = []


def _fold_window_runs(windows: List[List[int]], targets: np.ndarray) -> None:
    """Fold one batch's target runs into an accumulating RLE in place."""
    if not len(targets):
        return
    boundaries = np.flatnonzero(np.diff(targets)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(targets)]))
    for start, end in zip(starts, ends):
        target = int(targets[start])
        if windows and windows[-1][0] == target:
            windows[-1][1] += int(end - start)
        else:
            windows.append([target, int(end - start)])


def discard_fragments(path, fragments: Sequence[ShardRange]) -> None:
    """Unlink every chunk a set of range fragments wrote (abort path).

    Used when a direct-to-store collection fails after workers already
    streamed interior shards: the manifest was never written, so the
    directory is not a committed store, and these chunks are garbage a
    ``repro store gc`` would sweep — this just sweeps them eagerly.
    """
    path = Path(path)
    for fragment in fragments:
        for filename in fragment.chunk_files():
            try:
                (path / filename).unlink()
            except OSError:
                pass
    try:
        path.rmdir()
    except OSError:
        pass


def assemble_direct_store(
    path,
    fragments: Sequence[ShardRange],
    provenance: Optional[Dict[str, object]] = None,
    schema: Tuple[Tuple[str, str], ...] = SAMPLE_SCHEMA,
    rows_per_shard: int = DEFAULT_ROWS_PER_SHARD,
    generation: int = 0,
    obs=None,
    fs=None,
    durable: bool = True,
) -> Manifest:
    """Stitch per-worker range fragments into one committed store.

    ``fragments`` must cover ``[0, total_rows)`` contiguously in order.
    Interior shards were already written (and fsynced) by the workers;
    this writes the boundary shards — each assembled from the head/tail
    partials of the workers whose ranges straddle it — in global shard
    order, validates that the union is exactly the canonical one-pass
    layout, merges the per-range ``windows`` RLEs, and commits the
    manifest.  The result is byte-identical to a serial
    :class:`StoreWriter` pass over the same row stream.

    A failure anywhere before the manifest write leaves an uncommitted
    directory (chunks, no manifest) — invisible to readers and the
    catalog, sweepable by gc.
    """
    obs = ensure_obs(obs)
    fs = ensure_fs(fs)
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    schema = tuple(schema)
    rows_per_shard = int(rows_per_shard)
    # -- validate contiguity ---------------------------------------------------
    ordered = sorted(fragments, key=lambda f: f.row_start)
    cursor = 0
    for fragment in ordered:
        if fragment.row_start != cursor:
            raise StoreError(
                f"range fragments do not tile the row stream: expected a "
                f"fragment at row {cursor}, got {fragment.row_start}"
            )
        cursor += fragment.rows
    total_rows = cursor
    shard_count = max(1, -(-total_rows // rows_per_shard)) if total_rows else 0
    # -- index the interior shards the workers wrote ---------------------------
    by_index: Dict[int, ShardMeta] = {}
    for fragment in ordered:
        for offset, meta in enumerate(fragment.shards):
            index = fragment.first_shard_index + offset
            if shard_index_of(meta.name) != index:
                raise StoreError(
                    f"fragment shard {meta.name} is not at its global "
                    f"index {index}"
                )
            if meta.rows != rows_per_shard:
                raise StoreError(
                    f"interior shard {meta.name} has {meta.rows} rows, "
                    f"expected {rows_per_shard}"
                )
            if index in by_index:
                raise StoreError(f"two fragments both wrote shard index {index}")
            by_index[index] = meta
    # -- stitch the boundary shards from the partial rows ----------------------
    partials: List[Tuple[int, Dict[str, np.ndarray]]] = []
    for fragment in ordered:
        if fragment.head_rows:
            partials.append((fragment.row_start, fragment.head))
        if fragment.tail_rows:
            partials.append(
                (fragment.row_start + fragment.rows - fragment.tail_rows,
                 fragment.tail)
            )
    partials.sort(key=lambda item: item[0])
    parent_written: List[str] = []
    shards: List[ShardMeta] = []
    for index in range(shard_count):
        if index in by_index:
            shards.append(by_index.pop(index))
            continue
        lo = index * rows_per_shard
        hi = min(lo + rows_per_shard, total_rows)
        pieces: List[Dict[str, np.ndarray]] = []
        covered = lo
        for start, columns in partials:
            rows = len(next(iter(columns.values())))
            if start + rows <= lo or start >= hi:
                continue
            if start != covered:
                raise StoreError(
                    f"boundary shard {index} has a row gap at {covered}"
                )
            clip_lo = max(0, lo - start)
            clip_hi = min(rows, hi - start)
            pieces.append(
                {name: array[clip_lo:clip_hi] for name, array in columns.items()}
            )
            covered = start + clip_hi
        if covered != hi:
            raise StoreError(
                f"boundary shard {index} is missing rows {covered}..{hi}"
            )
        arrays = {
            name: (
                np.concatenate([piece[name] for piece in pieces])
                if len(pieces) > 1
                else pieces[0][name]
            )
            for name, _ in schema
        }
        meta = write_shard_chunks(
            path, shard_name(generation, index), arrays, schema, fs, obs
        )
        parent_written.extend(chunk.file for chunk in meta.chunks.values())
        shards.append(meta)
        obs.inc("store_shards_written_total")
    if by_index:
        raise StoreError(
            f"fragment shard indices {sorted(by_index)} fall outside the "
            f"{shard_count}-shard layout"
        )
    # -- commit ----------------------------------------------------------------
    if durable:
        for filename in parent_written:
            fs.fsync_path(path / filename, point=f"chunk:{filename}")
        fs.fsync_dir(path, point="store-dir")
    manifest = Manifest(
        schema=schema,
        rows=total_rows,
        generation=generation,
        rows_per_shard=rows_per_shard,
        provenance=provenance,
        shards=shards,
        windows=(
            merge_window_runs([fragment.windows for fragment in ordered])
            if "target_index" in dict(schema)
            else None
        ),
    )
    manifest.save(path, fs=fs)
    obs.inc("store_rows_written_total", total_rows)
    obs.event("store.commit", rows=total_rows, shards=len(shards))
    return manifest


def write_dataset(
    dataset,
    path,
    provenance: Optional[Dict[str, object]] = None,
    rows_per_shard: int = DEFAULT_ROWS_PER_SHARD,
    obs=None,
    fs=None,
) -> Manifest:
    """Persist a (frozen) :class:`~repro.core.dataset.CampaignDataset`.

    One batched pass through the shard writer; byte-identical to having
    streamed the same rows during collection.  Durable: the committed
    store survives power loss.
    """
    obs = ensure_obs(obs if obs is not None else getattr(dataset, "obs", None))
    dataset.freeze()
    with obs.span("store.write", path=str(path), rows=dataset.num_samples):
        writer = StoreWriter(
            path,
            provenance=provenance,
            rows_per_shard=rows_per_shard,
            obs=obs,
            fs=fs,
            durable=True,
        )
        try:
            writer.append_columns(
                {name: dataset.column(name) for name, _ in SAMPLE_SCHEMA}
            )
            return writer.finalize()
        except BaseException:
            writer.abort()
            raise


def is_canonical(manifest: Manifest, rows_per_shard: int) -> bool:
    """True when the shard layout already matches ``rows_per_shard``."""
    if manifest.rows_per_shard != rows_per_shard:
        return False
    for position, shard in enumerate(manifest.shards):
        last = position == len(manifest.shards) - 1
        if not last and shard.rows != rows_per_shard:
            return False
        if last and shard.rows > rows_per_shard:
            return False
    return True


def compact(
    path,
    rows_per_shard: int = DEFAULT_ROWS_PER_SHARD,
    obs=None,
    fs=None,
) -> Manifest:
    """Merge a store's shards into canonical ``rows_per_shard`` slices.

    Rows stream in shard order, so the result is byte-identical to a
    store written in one pass at that shard size; already-canonical
    stores are returned untouched (idempotence).  New-generation chunks
    land before the manifest swap and the old generation's chunks are
    unlinked after it — a crash at any point leaves a valid store plus,
    at worst, orphan chunks for ``gc`` to sweep.
    """
    from repro.store.reader import StoreReader

    obs = ensure_obs(obs)
    fs = ensure_fs(fs)
    path = Path(path)
    reader = StoreReader(path, verify="full", obs=obs)
    manifest = reader.manifest
    if is_canonical(manifest, rows_per_shard):
        return manifest
    with obs.span(
        "store.compact",
        path=str(path),
        shards_before=len(manifest.shards),
        rows=manifest.rows,
    ):
        old_files = manifest.chunk_files()
        writer = StoreWriter(
            path,
            provenance=manifest.provenance,
            schema=manifest.schema,
            rows_per_shard=rows_per_shard,
            generation=manifest.generation + 1,
            obs=obs,
            fs=fs,
            durable=True,
        )
        try:
            writer.append_columns(
                {name: reader.column(name) for name in manifest.columns}
            )
            compacted = writer.finalize()
        except BaseException:
            writer.abort()
            raise
        for filename in old_files:
            try:
                fs.unlink(path / filename, point=f"compact:{filename}")
            except OSError:
                pass
        obs.inc("store_compactions_total")
        return compacted


def gc_store(path, fs=None) -> List[str]:
    """Remove files a store's manifest does not reference.

    Sweeps stray ``*.tmp`` files and orphaned chunks (e.g. a prior
    generation left by a crash mid-compaction).  Returns the removed
    filenames.  ``path`` must hold a committed store; the live
    generation's files and subdirectories (e.g. ``quarantine/``) are
    never touched.
    """
    fs = ensure_fs(fs)
    path = Path(path)
    manifest = Manifest.load(path)
    referenced = set(manifest.chunk_files()) | {MANIFEST_NAME}
    removed: List[str] = []
    for entry in sorted(path.iterdir()):
        if entry.name in referenced or entry.is_dir():
            continue
        fs.unlink(entry, point=f"gc:{entry.name}")
        removed.append(entry.name)
    return removed
