"""Append-oriented store writer and the deterministic compaction pass.

:class:`StoreWriter` accepts per-measurement column batches — straight
off the campaign's columnar fast path — buffers them, and cuts shards at
*exact* ``rows_per_shard`` boundaries.  Because shard boundaries depend
only on the cumulative row stream (never on batch sizes, flush timing,
or worker count), streaming a collection through the writer produces the
same bytes as saving the frozen dataset afterwards, and a parallel
collection merged in canonical order produces the same bytes as a serial
one.

Chunks land atomically as they are cut; the manifest is written last by
:meth:`StoreWriter.finalize` and is the commit point — an aborted or
crashed write leaves chunk files but no manifest, which readers refuse
and ``repro store gc`` removes.

:func:`compact` merges a store's shards back into canonical
``rows_per_shard`` slices in shard order.  It is deterministic (the
output depends only on the row stream and the target shard size) and
idempotent (an already-canonical store is returned untouched).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StoreError
from repro.obs import ensure_obs
from repro.store.fsim import ensure_fs
from repro.store.format import (
    DEFAULT_ROWS_PER_SHARD,
    MANIFEST_NAME,
    SAMPLE_SCHEMA,
    ChunkMeta,
    Manifest,
    ShardMeta,
    ZoneMap,
    atomic_write_bytes,
    chunk_filename,
    is_store_dir,
    sha256_hex,
    shard_name,
)


class StoreWriter:
    """Write one store directory from appended column batches."""

    def __init__(
        self,
        path,
        provenance: Optional[Dict[str, object]] = None,
        schema: Tuple[Tuple[str, str], ...] = SAMPLE_SCHEMA,
        rows_per_shard: int = DEFAULT_ROWS_PER_SHARD,
        generation: int = 0,
        obs=None,
        fs=None,
        durable: bool = False,
    ):
        if rows_per_shard < 1:
            raise StoreError(f"rows_per_shard must be positive: {rows_per_shard}")
        self.path = Path(path)
        if generation == 0 and is_store_dir(self.path):
            raise StoreError(f"refusing to overwrite existing store at {self.path}")
        self.schema = tuple(schema)
        self.rows_per_shard = int(rows_per_shard)
        self.generation = int(generation)
        self.provenance = provenance
        self.obs = ensure_obs(obs)
        self.fs = ensure_fs(fs)
        #: With ``durable=True`` every chunk is fsynced (in bulk, at
        #: finalize, before the manifest commit) so the committed store
        #: survives power loss.  Off by default: a scratch writer's
        #: durability ends at atomicity, which keeps tight write loops
        #: (tests, benchmarks) off the fsync path.
        self.durable = bool(durable)
        self.path.mkdir(parents=True, exist_ok=True)
        self._pending: Dict[str, List[np.ndarray]] = {
            name: [] for name, _ in self.schema
        }
        self._pending_rows = 0
        self._shards: List[ShardMeta] = []
        self._rows_written = 0
        self._windows: List[List[int]] = []
        self._finalized = False

    # -- appending -------------------------------------------------------------

    def append_columns(self, columns: Dict[str, Sequence]) -> int:
        """Buffer one batch of parallel columns; cut shards as they fill.

        ``columns`` must cover the schema exactly; values are cast to the
        schema's little-endian dtypes.  Returns the rows appended.
        """
        if self._finalized:
            raise StoreError("writer is finalized; no further appends")
        arrays = {}
        count = None
        for name, dtype in self.schema:
            try:
                values = columns[name]
            except KeyError:
                raise StoreError(f"append batch is missing column {name!r}") from None
            array = np.asarray(values, dtype=np.dtype(dtype))
            if count is None:
                count = len(array)
            elif len(array) != count:
                raise StoreError(
                    f"ragged append batch: column {name!r} has {len(array)} "
                    f"rows, expected {count}"
                )
            arrays[name] = array
        if not count:
            return 0
        if "target_index" in arrays:
            self._extend_windows(arrays["target_index"])
        for name, array in arrays.items():
            self._pending[name].append(array)
        self._pending_rows += count
        while self._pending_rows >= self.rows_per_shard:
            self._cut_shard(self.rows_per_shard)
        return count

    def append_batch(
        self,
        probe_ids,
        target_index,
        timestamps,
        rtt_min,
        rtt_avg,
        sent,
        rcvd,
    ) -> int:
        """Append one measurement window's samples (sample schema only).

        ``target_index`` may be a scalar — the common case of one window
        sharing one target — or a per-row sequence.
        """
        count = len(probe_ids)
        if np.ndim(target_index) == 0:
            target_index = np.full(count, int(target_index), dtype="<i4")
        return self.append_columns(
            {
                "probe_id": probe_ids,
                "target_index": target_index,
                "timestamp": timestamps,
                "rtt_min": rtt_min,
                "rtt_avg": rtt_avg,
                "sent": sent,
                "rcvd": rcvd,
            }
        )

    def _extend_windows(self, targets: np.ndarray) -> None:
        """Fold one batch's target runs into the manifest window index.

        Runs that continue across batch (and shard) boundaries merge, so
        the encoding depends only on the concatenated row stream — the
        same invariance the shard layout has.
        """
        boundaries = np.flatnonzero(np.diff(targets)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(targets)]))
        for start, end in zip(starts, ends):
            target = int(targets[start])
            if self._windows and self._windows[-1][0] == target:
                self._windows[-1][1] += int(end - start)
            else:
                self._windows.append([target, int(end - start)])

    # -- shard cutting ---------------------------------------------------------

    def _take_rows(self, name: str, rows: int) -> np.ndarray:
        """Remove exactly ``rows`` leading rows from one pending column."""
        taken: List[np.ndarray] = []
        remaining = rows
        queue = self._pending[name]
        while remaining:
            head = queue[0]
            if len(head) <= remaining:
                taken.append(queue.pop(0))
                remaining -= len(head)
            else:
                taken.append(head[:remaining])
                queue[0] = head[remaining:]
                remaining = 0
        if len(taken) == 1:
            return taken[0]
        return np.concatenate(taken)

    def _cut_shard(self, rows: int) -> None:
        name = shard_name(self.generation, len(self._shards))
        chunks: Dict[str, ChunkMeta] = {}
        with self.obs.span("store.shard", shard=name, rows=rows):
            for column, dtype in self.schema:
                array = np.ascontiguousarray(
                    self._take_rows(column, rows), dtype=np.dtype(dtype)
                )
                data = array.tobytes()
                zone = ZoneMap.from_array(array)
                filename = chunk_filename(name, column)
                try:
                    atomic_write_bytes(
                        self.path / filename,
                        data,
                        fs=self.fs,
                        point=f"chunk:{filename}",
                    )
                except OSError as exc:
                    raise StoreError(
                        f"chunk write failed ({exc.strerror or exc}): partial "
                        f"store left at {self.path} — sweep with `repro store gc`"
                    ) from exc
                chunks[column] = ChunkMeta(
                    file=filename,
                    bytes=len(data),
                    sha256=sha256_hex(data),
                    zone=zone,
                )
                self.obs.inc("store_chunks_written_total")
                self.obs.inc("store_bytes_written_total", len(data))
        self._pending_rows -= rows
        self._rows_written += rows
        self._shards.append(ShardMeta(name=name, rows=rows, chunks=chunks))
        self.obs.inc("store_shards_written_total")

    def flush(self) -> None:
        """Cut whatever is buffered as a (possibly short) final shard."""
        if self._pending_rows:
            self._cut_shard(self._pending_rows)

    # -- lifecycle -------------------------------------------------------------

    @property
    def rows_written(self) -> int:
        return self._rows_written + self._pending_rows

    def finalize(self) -> Manifest:
        """Flush, then commit the store by writing its manifest."""
        if self._finalized:
            raise StoreError("writer is already finalized")
        self.flush()
        if self.durable:
            # Settle chunk durability in one pass, *before* the manifest
            # commit: once the manifest is durable, every byte it
            # references must be too.
            for shard in self._shards:
                for meta in shard.chunks.values():
                    self.fs.fsync_path(
                        self.path / meta.file, point=f"chunk:{meta.file}"
                    )
            self.fs.fsync_dir(self.path, point="store-dir")
        manifest = Manifest(
            schema=self.schema,
            rows=self._rows_written,
            generation=self.generation,
            rows_per_shard=self.rows_per_shard,
            provenance=self.provenance,
            shards=self._shards,
            windows=(
                tuple((target, rows) for target, rows in self._windows)
                if "target_index" in dict(self.schema)
                else None
            ),
        )
        manifest.save(self.path, fs=self.fs)
        self._finalized = True
        self.obs.inc("store_rows_written_total", self._rows_written)
        self.obs.event(
            "store.commit", rows=self._rows_written, shards=len(self._shards)
        )
        return manifest

    def abort(self) -> None:
        """Best-effort cleanup of an uncommitted store directory.

        Never removes a chunk the *committed* manifest references: when
        finalize fails after the manifest rename landed (e.g. the final
        directory sync errored), this writer's chunks are already the
        store's live generation, and deleting them would corrupt a
        committed store to clean up a phantom failure.
        """
        self._finalized = True
        self._pending = {name: [] for name, _ in self.schema}
        self._pending_rows = 0
        try:
            referenced = set(Manifest.load(self.path).chunk_files())
        except (StoreError, OSError):
            referenced = set()
        for shard in self._shards:
            for meta in shard.chunks.values():
                if meta.file in referenced:
                    continue
                try:
                    (self.path / meta.file).unlink()
                except OSError:
                    pass
        self._shards = []
        try:
            self.path.rmdir()
        except OSError:
            pass


def write_dataset(
    dataset,
    path,
    provenance: Optional[Dict[str, object]] = None,
    rows_per_shard: int = DEFAULT_ROWS_PER_SHARD,
    obs=None,
    fs=None,
) -> Manifest:
    """Persist a (frozen) :class:`~repro.core.dataset.CampaignDataset`.

    One batched pass through the shard writer; byte-identical to having
    streamed the same rows during collection.  Durable: the committed
    store survives power loss.
    """
    obs = ensure_obs(obs if obs is not None else getattr(dataset, "obs", None))
    dataset.freeze()
    with obs.span("store.write", path=str(path), rows=dataset.num_samples):
        writer = StoreWriter(
            path,
            provenance=provenance,
            rows_per_shard=rows_per_shard,
            obs=obs,
            fs=fs,
            durable=True,
        )
        try:
            writer.append_columns(
                {name: dataset.column(name) for name, _ in SAMPLE_SCHEMA}
            )
            return writer.finalize()
        except BaseException:
            writer.abort()
            raise


def is_canonical(manifest: Manifest, rows_per_shard: int) -> bool:
    """True when the shard layout already matches ``rows_per_shard``."""
    if manifest.rows_per_shard != rows_per_shard:
        return False
    for position, shard in enumerate(manifest.shards):
        last = position == len(manifest.shards) - 1
        if not last and shard.rows != rows_per_shard:
            return False
        if last and shard.rows > rows_per_shard:
            return False
    return True


def compact(
    path,
    rows_per_shard: int = DEFAULT_ROWS_PER_SHARD,
    obs=None,
    fs=None,
) -> Manifest:
    """Merge a store's shards into canonical ``rows_per_shard`` slices.

    Rows stream in shard order, so the result is byte-identical to a
    store written in one pass at that shard size; already-canonical
    stores are returned untouched (idempotence).  New-generation chunks
    land before the manifest swap and the old generation's chunks are
    unlinked after it — a crash at any point leaves a valid store plus,
    at worst, orphan chunks for ``gc`` to sweep.
    """
    from repro.store.reader import StoreReader

    obs = ensure_obs(obs)
    fs = ensure_fs(fs)
    path = Path(path)
    reader = StoreReader(path, verify="full", obs=obs)
    manifest = reader.manifest
    if is_canonical(manifest, rows_per_shard):
        return manifest
    with obs.span(
        "store.compact",
        path=str(path),
        shards_before=len(manifest.shards),
        rows=manifest.rows,
    ):
        old_files = manifest.chunk_files()
        writer = StoreWriter(
            path,
            provenance=manifest.provenance,
            schema=manifest.schema,
            rows_per_shard=rows_per_shard,
            generation=manifest.generation + 1,
            obs=obs,
            fs=fs,
            durable=True,
        )
        try:
            writer.append_columns(
                {name: reader.column(name) for name in manifest.columns}
            )
            compacted = writer.finalize()
        except BaseException:
            writer.abort()
            raise
        for filename in old_files:
            try:
                fs.unlink(path / filename, point=f"compact:{filename}")
            except OSError:
                pass
        obs.inc("store_compactions_total")
        return compacted


def gc_store(path, fs=None) -> List[str]:
    """Remove files a store's manifest does not reference.

    Sweeps stray ``*.tmp`` files and orphaned chunks (e.g. a prior
    generation left by a crash mid-compaction).  Returns the removed
    filenames.  ``path`` must hold a committed store; the live
    generation's files and subdirectories (e.g. ``quarantine/``) are
    never touched.
    """
    fs = ensure_fs(fs)
    path = Path(path)
    manifest = Manifest.load(path)
    referenced = set(manifest.chunk_files()) | {MANIFEST_NAME}
    removed: List[str] = []
    for entry in sorted(path.iterdir()):
        if entry.name in referenced or entry.is_dir():
            continue
        fs.unlink(entry, point=f"gc:{entry.name}")
        removed.append(entry.name)
    return removed
