"""Group-by engine for :class:`repro.frame.Frame`.

Supports grouping on one or more key columns and aggregating value columns
with named reducers — the operations the paper's per-country and
per-continent analyses need.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.errors import FrameError
from repro.frame.frame import Frame

#: Built-in reducer names accepted by :func:`aggregate`.
REDUCERS: Dict[str, Callable[[np.ndarray], float]] = {
    "min": lambda v: float(np.min(v)),
    "max": lambda v: float(np.max(v)),
    "mean": lambda v: float(np.mean(v)),
    "median": lambda v: float(np.median(v)),
    "sum": lambda v: float(np.sum(v)),
    "std": lambda v: float(np.std(v)),
    "count": lambda v: int(len(v)),
    "p25": lambda v: float(np.percentile(v, 25)),
    "p75": lambda v: float(np.percentile(v, 75)),
    "p90": lambda v: float(np.percentile(v, 90)),
    "p95": lambda v: float(np.percentile(v, 95)),
    "p99": lambda v: float(np.percentile(v, 99)),
}

Reducer = Union[str, Callable[[np.ndarray], Any]]
GroupKey = Union[Any, Tuple[Any, ...]]


def _resolve_reducer(spec: Reducer) -> Callable[[np.ndarray], Any]:
    if callable(spec):
        return spec
    try:
        return REDUCERS[spec]
    except KeyError:
        raise FrameError(
            f"unknown reducer {spec!r}; known: {sorted(REDUCERS)}"
        ) from None


def group_indices(frame: Frame, keys: Sequence[str]) -> "Dict[GroupKey, np.ndarray]":
    """Row indices of each distinct key combination, insertion-ordered.

    Single-key grouping uses the bare value as the group key; multi-key
    grouping uses a tuple.
    """
    if not keys:
        raise FrameError("group_indices requires at least one key column")
    key_arrays = [frame.col(name).values for name in keys]
    groups: Dict[GroupKey, List[int]] = {}
    single = len(key_arrays) == 1
    for i in range(len(frame)):
        if single:
            key: GroupKey = key_arrays[0][i]
        else:
            key = tuple(array[i] for array in key_arrays)
        groups.setdefault(key, []).append(i)
    return {key: np.asarray(rows, dtype=np.intp) for key, rows in groups.items()}


def group_by(frame: Frame, keys: Sequence[str]) -> Iterator[Tuple[GroupKey, Frame]]:
    """Yield ``(key, subframe)`` for each group, insertion-ordered."""
    for key, indices in group_indices(frame, keys).items():
        yield key, frame.take(indices)


def aggregate(
    frame: Frame,
    keys: Sequence[str],
    spec: Mapping[str, Tuple[str, Reducer]],
) -> Frame:
    """Aggregate ``frame`` grouped by ``keys``.

    ``spec`` maps *output column* -> ``(input column, reducer)`` where the
    reducer is a name from :data:`REDUCERS` or any callable on a numpy array.

    Example::

        aggregate(samples, ["continent"], {
            "rtt_min": ("rtt", "min"),
            "rtt_p95": ("rtt", "p95"),
            "n": ("rtt", "count"),
        })
    """
    keys = list(keys)
    out: Dict[str, list] = {name: [] for name in keys}
    for output_name in spec:
        if output_name in out:
            raise FrameError(f"aggregate output {output_name!r} collides with a key")
        out[output_name] = []

    for key, indices in group_indices(frame, keys).items():
        key_values = key if isinstance(key, tuple) and len(keys) > 1 else (key,)
        for name, value in zip(keys, key_values):
            out[name].append(value)
        for output_name, (input_name, reducer) in spec.items():
            values = frame.col(input_name).values[indices]
            out[output_name].append(_resolve_reducer(reducer)(values))
    return Frame(out)


def count_by(frame: Frame, key: str) -> Frame:
    """Convenience: rows per distinct value of ``key``."""
    return aggregate(frame, [key], {"count": (key, "count")})


def aggregate_chunks(
    chunks,
    keys: Sequence[str],
    spec: Mapping[str, Tuple[str, str]],
    max_groups: int = 100_000,
) -> Frame:
    """Out-of-core :func:`aggregate` over an iterable of column chunks.

    ``chunks`` yields ``Mapping[str, np.ndarray]`` dictionaries (what
    ``Scan.chunks()`` produces); reducers must be *names* from
    :data:`repro.frame.streaming.STREAMING_REDUCERS`, not callables —
    streaming needs mergeable state, not an arbitrary function over a
    materialized array.  Group insertion order and column layout match
    :func:`aggregate` on the concatenated rows; parity classes per
    reducer are documented in :mod:`repro.frame.streaming`.
    """
    from repro.frame.streaming import StreamingGroupBy

    engine = StreamingGroupBy(keys, spec, max_groups=max_groups)
    for chunk in chunks:
        engine.update(chunk)
    return engine.result()
