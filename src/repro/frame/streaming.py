"""Streaming (out-of-core) reducers with explicit parity contracts.

Every reducer here consumes a column **chunk at a time** — the unit the
store's scan layer (:mod:`repro.store.scan`) serves — holds O(1) or
O(groups) state, and is *mergeable*: two reducers fed disjoint row
ranges combine into the reducer of the concatenation.  That is what
lets every paper figure run over a store 100x paper scale without ever
materializing a column.

Parity contracts (enforced by ``tests/frame/test_streaming_parity.py``):

* **exact** — ``count``, ``min``, ``max``, every
  :class:`StreamingECDF` grid count, and every group key/count of
  :class:`StreamingGroupBy` equal the in-memory result bit for bit,
  invariant to chunk size and merge order;
* **float-associative** — ``sum``, ``mean``, ``std`` are the same
  mathematical value accumulated in a different association order, so
  they match the in-memory result to relative tolerance (documented
  here as 1e-9 per merge step, tested at 1e-6 end to end);
* **rank-bounded** — :class:`QuantileDigest` quantiles land within
  ``RANK_ERROR_BOUND`` *rank* error of the exact sample quantile:
  the estimate at ``q`` always lies between the exact quantiles at
  ``q - eps`` and ``q + eps`` with
  ``eps = digest_rank_eps(compression, count)``.
  ``q=0`` / ``q=1`` and single-sample digests are exact (the digest
  tracks true extremes separately).

NaN handling mirrors :mod:`repro.frame.stats`: NaNs poison min/max/mean
(as ``np.min``/``np.mean`` do), count toward ECDF denominators but never
fall below a grid edge, and are never silently dropped.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FrameError
from repro.frame.stats import ECDF, Summary

#: Default t-digest compression (max ~2x this many centroids retained).
DEFAULT_COMPRESSION = 200


def digest_rank_eps(compression: int, count: int) -> float:
    """Documented rank-error bound of :class:`QuantileDigest`.

    A centroid never exceeds ``cap = ceil(count / compression)`` weight,
    and linear interpolation over centroid mid-ranks can move an
    estimate by at most ~1.5 centroid weights of rank; ``2 * cap /
    count`` (~``2 / compression`` once ``count >> compression``, and
    never more than 1) covers that plus order-statistic rounding.  The
    property suite asserts every estimate at ``q`` lies between the
    exact sample quantiles at ``q - eps`` and ``q + eps``.
    """
    if count <= 0:
        return 1.0
    cap = math.ceil(count / compression)
    return min(1.0, 2.0 * cap / count)


class QuantileDigest:
    """A mergeable t-digest-style quantile sketch (uniform weight cap).

    Centroids are (mean, weight) pairs kept sorted by mean; compaction
    greedily merges adjacent centroids under a ``ceil(n/compression)``
    weight cap, which bounds the rank error of any quantile estimate by
    :func:`digest_rank_eps`.  Exact minimum and maximum are tracked
    separately so ``q=0``/``q=1`` are exact and every estimate is
    clamped into the true value range.  All operations are
    deterministic: the same chunks in the same order produce the same
    centroids.
    """

    __slots__ = ("compression", "_means", "_weights", "_buffer",
                 "_buffered", "_count", "_min", "_max", "_nan")

    def __init__(self, compression: int = DEFAULT_COMPRESSION):
        if compression < 2:
            raise FrameError(f"digest compression must be >= 2: {compression}")
        self.compression = int(compression)
        self._means = np.empty(0, dtype=np.float64)
        self._weights = np.empty(0, dtype=np.float64)
        self._buffer: List[np.ndarray] = []
        self._buffered = 0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._nan = 0

    @property
    def count(self) -> int:
        """Total values observed (NaNs excluded from rank space)."""
        return self._count

    def rank_eps(self) -> float:
        """This digest's rank-error bound (see :func:`digest_rank_eps`)."""
        return digest_rank_eps(self.compression, self._count)

    def update(self, values: Sequence[float]) -> None:
        """Fold one chunk of values into the sketch."""
        array = np.asarray(values, dtype=np.float64).ravel()
        if array.size == 0:
            return
        nan_mask = np.isnan(array)
        nans = int(nan_mask.sum())
        if nans:
            self._nan += nans
            array = array[~nan_mask]
            if array.size == 0:
                return
        self._count += array.size
        self._min = min(self._min, float(array.min()))
        self._max = max(self._max, float(array.max()))
        self._buffer.append(array)
        self._buffered += array.size
        if self._buffered >= 8 * self.compression:
            self._compress()

    def merge(self, other: "QuantileDigest") -> "QuantileDigest":
        """Fold another digest in (returns self)."""
        other._compress()
        if other._count:
            self._count += other._count
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
            self._buffer.append(np.repeat(other._means, 0))  # keep type
            self._means = np.concatenate([self._means, other._means])
            self._weights = np.concatenate([self._weights, other._weights])
            self._compress(force=True)
        self._nan += other._nan
        return self

    def _compress(self, force: bool = False) -> None:
        """Sort buffered values into the centroid list under the cap."""
        if not self._buffer and not force:
            return
        if self._buffer:
            buffered = np.concatenate(self._buffer)
            self._buffer = []
            self._buffered = 0
            means = np.concatenate([self._means, buffered])
            weights = np.concatenate(
                [self._weights, np.ones(len(buffered), dtype=np.float64)]
            )
        else:
            means, weights = self._means, self._weights
        if means.size == 0:
            return
        order = np.argsort(means, kind="stable")
        means, weights = means[order], weights[order]
        cap = max(1.0, math.ceil(self._count / self.compression))
        out_means: List[float] = []
        out_weights: List[float] = []
        acc_mean, acc_weight = float(means[0]), float(weights[0])
        for mean, weight in zip(means[1:], weights[1:]):
            if acc_weight + weight <= cap:
                total = acc_weight + weight
                acc_mean += (float(mean) - acc_mean) * (float(weight) / total)
                acc_weight = total
            else:
                out_means.append(acc_mean)
                out_weights.append(acc_weight)
                acc_mean, acc_weight = float(mean), float(weight)
        out_means.append(acc_mean)
        out_weights.append(acc_weight)
        self._means = np.asarray(out_means, dtype=np.float64)
        self._weights = np.asarray(out_weights, dtype=np.float64)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (rank error <= documented bound)."""
        if not 0.0 <= q <= 1.0:
            raise FrameError(f"quantile q must be in [0, 1], got {q}")
        if self._count == 0:
            if self._nan:
                return math.nan
            raise FrameError("quantile on empty digest")
        if q <= 0.0:
            return self._min
        if q >= 1.0:
            return self._max
        self._compress()
        means, weights = self._means, self._weights
        if len(means) == 1:
            return float(means[0])
        # Interpolate over centroid mid-ranks, clamped to true extremes.
        # _lerp must be exact in two regimes float arithmetic conflates:
        # at frac == 1.0 the one-sided a + (b-a)*frac cancels a
        # sub-ULP |b| to a + (-a) == 0.0, and for a == b the two-sided
        # a*(1-frac) + b*frac rounds one ULP off a. Short-circuiting the
        # endpoints keeps both exact.
        def _lerp(a: float, b: float, frac: float) -> float:
            if frac <= 0.0:
                return a
            if frac >= 1.0:
                return b
            return a + (b - a) * frac

        ends = np.cumsum(weights)
        mids = ends - weights / 2.0
        target = q * self._count
        if target <= mids[0]:
            span = mids[0]
            frac = target / span if span else 1.0
            value = _lerp(self._min, float(means[0]), frac)
        elif target >= mids[-1]:
            span = self._count - mids[-1]
            frac = (target - mids[-1]) / span if span else 0.0
            value = _lerp(float(means[-1]), self._max, frac)
        else:
            hi = int(np.searchsorted(mids, target, side="left"))
            lo = hi - 1
            span = mids[hi] - mids[lo]
            frac = (target - mids[lo]) / span if span else 0.0
            value = _lerp(float(means[lo]), float(means[hi]), frac)
        return min(max(value, self._min), self._max)

    # -- (de)serialization for the content-addressed aggregate cache --------

    def state(self) -> Dict[str, object]:
        self._compress()
        return {
            "compression": self.compression,
            "means": [float(m) for m in self._means],
            "weights": [float(w) for w in self._weights],
            "count": self._count,
            "min": None if self._count == 0 else self._min,
            "max": None if self._count == 0 else self._max,
            "nan": self._nan,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "QuantileDigest":
        digest = cls(compression=int(state["compression"]))
        digest._means = np.asarray(state["means"], dtype=np.float64)
        digest._weights = np.asarray(state["weights"], dtype=np.float64)
        digest._count = int(state["count"])
        digest._nan = int(state.get("nan", 0))
        if digest._count:
            digest._min = float(state["min"])
            digest._max = float(state["max"])
        return digest


class StreamingSummary:
    """Mergeable summary statistics over a value stream.

    ``count``/``min``/``max`` are exact; ``sum``/``mean``/``std`` use
    Chan's pairwise-merge moments (float-associative contract); the
    quantile fields of :meth:`result` come from an attached
    :class:`QuantileDigest` (rank-bounded contract).
    """

    __slots__ = ("count", "_min", "_max", "_sum", "_mean", "_m2", "digest")

    def __init__(self, compression: int = DEFAULT_COMPRESSION):
        self.count = 0
        self._min = math.inf
        self._max = -math.inf
        self._sum = 0.0
        self._mean = 0.0
        self._m2 = 0.0
        self.digest = QuantileDigest(compression=compression)

    def update(self, values: Sequence[float]) -> None:
        array = np.asarray(values, dtype=np.float64).ravel()
        if array.size == 0:
            return
        # np.min/np.mean propagate NaN; so do these merges, matching the
        # in-memory `summarize` on the same rows.  (inf - inf in the
        # moment update is nan, exactly as np.std gives on inf input.)
        chunk_mean = float(np.mean(array))
        with np.errstate(invalid="ignore"):
            chunk_m2 = float(np.sum(np.square(array - chunk_mean)))
        self._merge_moments(array.size, chunk_mean, chunk_m2)
        self._sum += float(np.sum(array))
        self._min = float(np.minimum(self._min, np.min(array)))
        self._max = float(np.maximum(self._max, np.max(array)))
        self.digest.update(array)

    def _merge_moments(self, count: int, mean: float, m2: float) -> None:
        if count == 0:
            return
        if self.count == 0:
            self.count, self._mean, self._m2 = count, mean, m2
            return
        total = self.count + count
        delta = mean - self._mean
        self._mean += delta * (count / total)
        self._m2 += m2 + delta * delta * (self.count * count / total)
        self.count = total

    def merge(self, other: "StreamingSummary") -> "StreamingSummary":
        """Fold another summary in (returns self)."""
        self._merge_moments(other.count, other._mean, other._m2)
        self._sum += other._sum
        self._min = float(np.minimum(self._min, other._min))
        self._max = float(np.maximum(self._max, other._max))
        self.digest.merge(other.digest)
        return self

    @property
    def minimum(self) -> float:
        if self.count == 0:
            raise FrameError("minimum of empty stream")
        return self._min

    @property
    def maximum(self) -> float:
        if self.count == 0:
            raise FrameError("maximum of empty stream")
        return self._max

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise FrameError("mean of empty stream")
        return self._mean

    @property
    def std(self) -> float:
        """Population standard deviation, matching ``np.std``."""
        if self.count == 0:
            raise FrameError("std of empty stream")
        return math.sqrt(max(self._m2, 0.0) / self.count)

    def quantile(self, q: float) -> float:
        return self.digest.quantile(q)

    def result(self) -> Summary:
        """The :class:`~repro.frame.stats.Summary` of the stream so far."""
        if self.count == 0:
            raise FrameError("summarize on empty sample")
        return Summary(
            count=self.count,
            minimum=self.minimum,
            p25=self.quantile(0.25),
            median=self.quantile(0.5),
            p75=self.quantile(0.75),
            p95=self.quantile(0.95),
            maximum=self.maximum,
            mean=self.mean,
            std=self.std,
        )

    # -- (de)serialization ---------------------------------------------------

    def state(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "min": None if self.count == 0 else _json_float(self._min),
            "max": None if self.count == 0 else _json_float(self._max),
            "sum": _json_float(self._sum),
            "mean": _json_float(self._mean),
            "m2": _json_float(self._m2),
            "digest": self.digest.state(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "StreamingSummary":
        summary = cls()
        summary.count = int(state["count"])
        if summary.count:
            summary._min = _from_json_float(state["min"])
            summary._max = _from_json_float(state["max"])
        summary._sum = _from_json_float(state["sum"])
        summary._mean = _from_json_float(state["mean"])
        summary._m2 = _from_json_float(state["m2"])
        summary.digest = QuantileDigest.from_state(state["digest"])
        return summary


def _json_float(value: float) -> object:
    """NaN/inf-safe float for strict-JSON serialization."""
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return float(value)


def _from_json_float(value: object) -> float:
    if isinstance(value, str):
        return float(value)
    return float(value)


class StreamingECDF:
    """Exact-count ECDF over a fixed value grid.

    For every grid edge ``e`` the reported cumulative fraction is
    *exactly* ``count(values <= e) / count(values)`` — integer counts,
    so the result is bit-identical regardless of chunk boundaries or
    merge order.  Values above the last edge (and NaNs, which are never
    ``<=`` anything) land in an overflow slot that keeps the denominator
    honest, mirroring how :func:`repro.frame.stats.ecdf` counts NaNs.
    """

    __slots__ = ("edges", "counts", "total")

    def __init__(self, edges: Sequence[float]):
        edges = np.asarray(edges, dtype=np.float64)
        if edges.ndim != 1 or edges.size == 0:
            raise FrameError("StreamingECDF needs a non-empty 1-D edge grid")
        if np.any(np.diff(edges) <= 0):
            raise FrameError("StreamingECDF edges must be strictly ascending")
        self.edges = edges
        #: counts[i] = values in (edges[i-1], edges[i]]; final slot is overflow.
        self.counts = np.zeros(len(edges) + 1, dtype=np.int64)
        self.total = 0

    @classmethod
    def from_range(
        cls, lo: float, hi: float, bins: int = 512
    ) -> "StreamingECDF":
        """A uniform grid covering ``[lo, hi]`` with ``bins`` edges."""
        if bins < 1:
            raise FrameError(f"StreamingECDF needs bins >= 1: {bins}")
        if not (lo < hi):
            # Degenerate range (single distinct value): one exact edge.
            return cls(np.asarray([lo], dtype=np.float64))
        # A range spanning fewer representable floats than ``bins``
        # (e.g. lo=0.0, hi=5e-324) makes linspace repeat edges; collapse
        # duplicates so the grid stays strictly ascending.
        return cls(np.unique(np.linspace(lo, hi, bins)))

    def update(self, values: Sequence[float]) -> None:
        array = np.asarray(values, dtype=np.float64).ravel()
        if array.size == 0:
            return
        slots = np.searchsorted(self.edges, array, side="left")
        np.add.at(self.counts, slots, 1)
        self.total += array.size

    def merge(self, other: "StreamingECDF") -> "StreamingECDF":
        if len(self.edges) != len(other.edges) or not np.array_equal(
            self.edges, other.edges
        ):
            raise FrameError("cannot merge StreamingECDFs over different grids")
        self.counts += other.counts
        self.total += other.total
        return self

    def fraction_below(self, edge: float) -> float:
        """Exact fraction of values ``<= edge`` for a grid edge."""
        idx = int(np.searchsorted(self.edges, edge, side="left"))
        if idx >= len(self.edges) or self.edges[idx] != edge:
            raise FrameError(f"{edge} is not an edge of this ECDF grid")
        if self.total == 0:
            raise FrameError("fraction_below on empty ECDF")
        return float(np.sum(self.counts[: idx + 1]) / self.total)

    def result(self) -> ECDF:
        """A :class:`~repro.frame.stats.ECDF` evaluated at the grid edges."""
        if self.total == 0:
            return ECDF(np.empty(0), np.empty(0))
        cumulative = np.cumsum(self.counts[:-1], dtype=np.float64)
        return ECDF(self.edges.copy(), cumulative / self.total)

    def state(self) -> Dict[str, object]:
        return {
            "edges": [float(e) for e in self.edges],
            "counts": [int(c) for c in self.counts],
            "total": self.total,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "StreamingECDF":
        grid = cls(np.asarray(state["edges"], dtype=np.float64))
        grid.counts = np.asarray(state["counts"], dtype=np.int64)
        grid.total = int(state["total"])
        return grid


#: Reducer names a :class:`StreamingGroupBy` can serve, with their
#: parity class (see module docstring).
STREAMING_REDUCERS: Dict[str, Callable[[StreamingSummary], object]] = {
    "count": lambda s: s.count,
    "min": lambda s: s.minimum,
    "max": lambda s: s.maximum,
    "sum": lambda s: s.sum,
    "mean": lambda s: s.mean,
    "std": lambda s: s.std,
    "median": lambda s: s.quantile(0.5),
    "p25": lambda s: s.quantile(0.25),
    "p75": lambda s: s.quantile(0.75),
    "p90": lambda s: s.quantile(0.90),
    "p95": lambda s: s.quantile(0.95),
    "p99": lambda s: s.quantile(0.99),
}


class StreamingGroupBy:
    """Spill-free streaming group-by for low-cardinality keys.

    Holds one :class:`StreamingSummary` per ``(group, input column)``;
    group insertion order is row order, matching
    :func:`repro.frame.groupby.aggregate` on the same stream.  The
    ``max_groups`` guard keeps the "spill-free" promise honest: this
    engine is for keys like continent/country/provider, not for
    grouping by a unique id.
    """

    def __init__(
        self,
        keys: Sequence[str],
        spec: Mapping[str, Tuple[str, str]],
        max_groups: int = 100_000,
        compression: int = DEFAULT_COMPRESSION,
    ):
        if not keys:
            raise FrameError("StreamingGroupBy requires at least one key")
        for output, (_, reducer) in spec.items():
            if reducer not in STREAMING_REDUCERS:
                raise FrameError(
                    f"streaming reducer {reducer!r} for {output!r} unknown; "
                    f"known: {sorted(STREAMING_REDUCERS)}"
                )
            if output in keys:
                raise FrameError(
                    f"aggregate output {output!r} collides with a key"
                )
        self.keys = tuple(keys)
        self.spec = dict(spec)
        self.max_groups = int(max_groups)
        self.compression = int(compression)
        self._inputs = tuple(sorted({col for col, _ in spec.values()}))
        self._groups: Dict[object, Dict[str, StreamingSummary]] = {}

    def _group(self, key) -> Dict[str, StreamingSummary]:
        state = self._groups.get(key)
        if state is None:
            if len(self._groups) >= self.max_groups:
                raise FrameError(
                    f"streaming group-by exceeded max_groups="
                    f"{self.max_groups}; this engine is for "
                    f"low-cardinality keys"
                )
            state = {
                col: StreamingSummary(compression=self.compression)
                for col in self._inputs
            }
            self._groups[key] = state
        return state

    def update(self, columns: Mapping[str, Sequence]) -> None:
        """Fold one chunk (parallel key + value columns) in."""
        key_arrays = [np.asarray(columns[name]) for name in self.keys]
        rows = len(key_arrays[0])
        for array in key_arrays[1:]:
            if len(array) != rows:
                raise FrameError("ragged key columns in streaming group-by")
        values = {name: np.asarray(columns[name]) for name in self._inputs}
        for array in values.values():
            if len(array) != rows:
                raise FrameError("ragged value columns in streaming group-by")
        if rows == 0:
            return
        if len(key_arrays) == 1:
            self._update_single(key_arrays[0], values)
        else:
            self._update_tuple(key_arrays, values, rows)

    def _update_single(self, keys: np.ndarray, values) -> None:
        uniq, inverse = np.unique(keys, return_inverse=True)
        # Visit groups in first-occurrence (row) order so insertion
        # order matches the in-memory group_indices contract.
        first_pos = np.full(len(uniq), len(keys), dtype=np.intp)
        np.minimum.at(first_pos, inverse, np.arange(len(keys), dtype=np.intp))
        for j in np.argsort(first_pos, kind="stable"):
            mask = inverse == j
            state = self._group(uniq[j])
            for col, array in values.items():
                state[col].update(array[mask])

    def _update_tuple(self, key_arrays, values, rows: int) -> None:
        seen: Dict[object, List[int]] = {}
        for i in range(rows):
            key = tuple(array[i] for array in key_arrays)
            seen.setdefault(key, []).append(i)
        for key, indices in seen.items():
            state = self._group(key)
            idx = np.asarray(indices, dtype=np.intp)
            for col, array in values.items():
                state[col].update(array[idx])

    def merge(self, other: "StreamingGroupBy") -> "StreamingGroupBy":
        """Fold another group-by in (returns self).

        Groups unseen here append in the other's insertion order, so a
        merge of row-ordered parts keeps row order.
        """
        if self.keys != other.keys or self.spec != other.spec:
            raise FrameError("cannot merge group-bys over different specs")
        for key, states in other._groups.items():
            mine = self._groups.get(key)
            if mine is None:
                self._group(key)
                mine = self._groups[key]
            for col, summary in states.items():
                mine[col].merge(summary)
        return self

    @property
    def num_groups(self) -> int:
        return len(self._groups)

    def result(self):
        """An aggregated :class:`~repro.frame.Frame`, insertion-ordered.

        Column layout matches
        ``repro.frame.groupby.aggregate(frame, keys, spec)`` on the same
        rows: key columns first, then one column per spec output.
        """
        from repro.frame.frame import Frame

        out: Dict[str, list] = {name: [] for name in self.keys}
        for output in self.spec:
            out[output] = []
        for key, states in self._groups.items():
            key_values = key if isinstance(key, tuple) else (key,)
            for name, value in zip(self.keys, key_values):
                out[name].append(value)
            for output, (col, reducer) in self.spec.items():
                out[output].append(STREAMING_REDUCERS[reducer](states[col]))
        return Frame(out)


def reduce_chunks(
    chunks,
    reducer,
    column: Optional[str] = None,
):
    """Drive one streaming reducer over an iterable of column chunks.

    ``chunks`` yields ``Dict[str, np.ndarray]`` (a scan) or bare arrays;
    ``reducer`` is any object with ``update``.  Returns the reducer.
    """
    for chunk in chunks:
        if isinstance(chunk, Mapping):
            if column is not None:
                reducer.update(chunk[column])
            else:
                reducer.update(chunk)
        else:
            reducer.update(chunk)
    return reducer
