"""Distribution statistics: ECDFs, percentiles, and summary tables.

The paper's core figures (5 and 6) are CDFs of latency samples; this module
implements the empirical CDF machinery those figures and their benchmark
harnesses share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import FrameError


@dataclass(frozen=True)
class ECDF:
    """An empirical cumulative distribution function.

    ``x`` is sorted ascending; ``p[i]`` is the fraction of samples ``<= x[i]``.
    """

    x: np.ndarray
    p: np.ndarray

    def __post_init__(self) -> None:
        if len(self.x) != len(self.p):
            raise FrameError("ECDF x and p must have equal length")

    def __len__(self) -> int:
        return len(self.x)

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples ``<= threshold``."""
        if len(self.x) == 0:
            raise FrameError("fraction_below on empty ECDF")
        idx = np.searchsorted(self.x, threshold, side="right")
        if idx == 0:
            return 0.0
        return float(self.p[idx - 1])

    def quantile(self, q: float) -> float:
        """Smallest x with cumulative probability >= q (q in [0, 1]).

        ``q=0`` is the sample minimum and ``q=1`` the sample maximum,
        even when accumulated probabilities stop just short of 1.0 in
        floating point.
        """
        if not 0.0 <= q <= 1.0:
            raise FrameError(f"quantile q must be in [0, 1], got {q}")
        if len(self.x) == 0:
            raise FrameError("quantile on empty ECDF")
        if q <= 0.0:
            return float(self.x[0])
        if q >= 1.0:
            return float(self.x[-1])
        idx = np.searchsorted(self.p, q, side="left")
        idx = min(idx, len(self.x) - 1)
        return float(self.x[idx])

    def sample_points(self, num: int = 100) -> "ECDF":
        """Downsample to ~``num`` evenly spaced points for plotting/export.

        The final point (p = 1) is always retained so the curve closes;
        with ``num=1`` that final point is the one kept.  With
        ``num >= 2`` the first point is retained too.
        """
        if num <= 0:
            raise FrameError("sample_points needs num > 0")
        if len(self.x) <= num:
            return self
        if num == 1:
            return ECDF(self.x[-1:].copy(), self.p[-1:].copy())
        indices = np.linspace(0, len(self.x) - 1, num).astype(np.intp)
        indices[-1] = len(self.x) - 1
        return ECDF(self.x[indices], self.p[indices])


def ecdf(values: Sequence[float]) -> ECDF:
    """Build an ECDF from raw samples."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise FrameError("ecdf expects a 1-D sample array")
    if len(array) == 0:
        return ECDF(np.empty(0), np.empty(0))
    x = np.sort(array)
    p = np.arange(1, len(x) + 1, dtype=np.float64) / len(x)
    return ECDF(x, p)


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float
    mean: float
    std: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "min": self.minimum,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p95": self.p95,
            "max": self.maximum,
            "mean": self.mean,
            "std": self.std,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty numeric sample."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise FrameError("summarize on empty sample")
    return Summary(
        count=int(array.size),
        minimum=float(np.min(array)),
        p25=float(np.percentile(array, 25)),
        median=float(np.median(array)),
        p75=float(np.percentile(array, 75)),
        p95=float(np.percentile(array, 95)),
        maximum=float(np.max(array)),
        mean=float(np.mean(array)),
        std=float(np.std(array)),
    )


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of ``values`` at or below ``threshold``."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise FrameError("fraction_below on empty sample")
    return float(np.count_nonzero(array <= threshold) / array.size)


def bucketize(values: Sequence[float], edges: Sequence[float]) -> Tuple[int, ...]:
    """Count samples per bucket.

    ``edges`` are ascending upper bounds; bucket ``i`` holds samples in
    ``(edges[i-1], edges[i]]`` with bucket 0 being ``(-inf, edges[0]]``.
    A final implicit bucket catches everything above the last edge, so the
    returned tuple has ``len(edges) + 1`` entries.
    """
    edges = list(edges)
    if edges != sorted(edges):
        raise FrameError("bucketize edges must be ascending")
    array = np.asarray(values, dtype=np.float64)
    counts = [0] * (len(edges) + 1)
    for value in array:
        for i, edge in enumerate(edges):
            if value <= edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    return tuple(counts)
