"""Mini column-store dataframe (pandas stand-in for the offline environment)."""

from repro.frame.columns import Column, as_column_array
from repro.frame.frame import Frame
from repro.frame.groupby import REDUCERS, aggregate, count_by, group_by, group_indices
from repro.frame.io import (
    from_csv_text,
    from_json_text,
    read_csv,
    read_json,
    to_csv_text,
    to_json_text,
    write_csv,
    write_json,
)
from repro.frame.stats import ECDF, Summary, bucketize, ecdf, fraction_below, summarize

__all__ = [
    "Column",
    "ECDF",
    "Frame",
    "REDUCERS",
    "Summary",
    "aggregate",
    "as_column_array",
    "bucketize",
    "count_by",
    "ecdf",
    "fraction_below",
    "from_csv_text",
    "from_json_text",
    "group_by",
    "group_indices",
    "read_csv",
    "read_json",
    "summarize",
    "to_csv_text",
    "to_json_text",
    "write_csv",
    "write_json",
]
