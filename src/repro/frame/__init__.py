"""Mini column-store dataframe (pandas stand-in for the offline environment)."""

from repro.frame.columns import Column, as_column_array
from repro.frame.frame import Frame
from repro.frame.groupby import (
    REDUCERS,
    aggregate,
    aggregate_chunks,
    count_by,
    group_by,
    group_indices,
)
from repro.frame.io import (
    from_csv_text,
    from_json_text,
    read_csv,
    read_json,
    to_csv_text,
    to_json_text,
    write_csv,
    write_json,
)
from repro.frame.stats import ECDF, Summary, bucketize, ecdf, fraction_below, summarize
from repro.frame.streaming import (
    STREAMING_REDUCERS,
    QuantileDigest,
    StreamingECDF,
    StreamingGroupBy,
    StreamingSummary,
    digest_rank_eps,
    reduce_chunks,
)

__all__ = [
    "Column",
    "ECDF",
    "Frame",
    "QuantileDigest",
    "REDUCERS",
    "STREAMING_REDUCERS",
    "StreamingECDF",
    "StreamingGroupBy",
    "StreamingSummary",
    "Summary",
    "aggregate",
    "aggregate_chunks",
    "as_column_array",
    "bucketize",
    "count_by",
    "digest_rank_eps",
    "ecdf",
    "fraction_below",
    "from_csv_text",
    "from_json_text",
    "group_by",
    "group_indices",
    "read_csv",
    "read_json",
    "reduce_chunks",
    "summarize",
    "to_csv_text",
    "to_json_text",
    "write_csv",
    "write_json",
]
