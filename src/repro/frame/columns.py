"""Typed column store underlying :class:`repro.frame.Frame`.

pandas is not available in the offline environment, so the analysis layer
runs on this small column abstraction: a named, 1-D numpy array with a
handful of type-aware conveniences.  Numeric columns are stored as
``float64``/``int64`` arrays; string columns as ``object`` arrays (numpy
unicode arrays silently truncate, which we must not risk with country names).
"""

from __future__ import annotations

from typing import Any, Sequence, Union

import numpy as np

from repro.errors import ColumnError

ArrayLike = Union[Sequence[Any], np.ndarray]


def as_column_array(values: ArrayLike) -> np.ndarray:
    """Coerce ``values`` into a 1-D array suitable for a column.

    Numeric input becomes ``float64`` or ``int64``; booleans stay boolean;
    everything else is stored as ``object``.
    """
    if isinstance(values, np.ndarray):
        array = values
    else:
        values = list(values)
        array = np.asarray(values)
        if array.dtype.kind in ("U", "S"):
            # Re-wrap strings as objects to avoid fixed-width truncation
            # on later appends.
            array = np.asarray(values, dtype=object)
    if array.ndim != 1:
        raise ColumnError(f"columns must be 1-D, got shape {array.shape}")
    if array.dtype.kind in ("U", "S"):
        array = array.astype(object)
    return array


class Column:
    """A named, immutable-by-convention 1-D array."""

    __slots__ = ("name", "values")

    def __init__(self, name: str, values: ArrayLike):
        if not name:
            raise ColumnError("column name must be non-empty")
        self.name = name
        self.values = as_column_array(values)

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, index):
        return self.values[index]

    def __repr__(self) -> str:
        return f"Column({self.name!r}, n={len(self)}, dtype={self.values.dtype})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return self.name == other.name and np.array_equal(
            self.values, other.values
        )

    # -- type information --------------------------------------------------

    @property
    def is_numeric(self) -> bool:
        return self.values.dtype.kind in ("f", "i", "u")

    @property
    def is_boolean(self) -> bool:
        return self.values.dtype.kind == "b"

    # -- transformations ---------------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """New column with rows reordered/selected by integer ``indices``."""
        return Column(self.name, self.values[indices])

    def mask(self, predicate: np.ndarray) -> "Column":
        """New column with rows where the boolean ``predicate`` holds."""
        if predicate.dtype.kind != "b":
            raise ColumnError("mask expects a boolean array")
        if len(predicate) != len(self):
            raise ColumnError(
                f"mask length {len(predicate)} != column length {len(self)}"
            )
        return Column(self.name, self.values[predicate])

    def rename(self, name: str) -> "Column":
        return Column(name, self.values)

    def astype(self, dtype) -> "Column":
        return Column(self.name, self.values.astype(dtype))

    def concat(self, other: "Column") -> "Column":
        """This column followed by ``other`` (names must match)."""
        if other.name != self.name:
            raise ColumnError(
                f"cannot concat column {other.name!r} onto {self.name!r}"
            )
        if self.values.dtype == object or other.values.dtype == object:
            merged = np.concatenate(
                [self.values.astype(object), other.values.astype(object)]
            )
        else:
            merged = np.concatenate([self.values, other.values])
        return Column(self.name, merged)

    # -- reductions ----------------------------------------------------------

    def _require_numeric(self, op: str) -> np.ndarray:
        if not self.is_numeric:
            raise ColumnError(f"{op}() requires a numeric column, not {self.name!r}")
        return self.values

    def min(self) -> float:
        return float(np.min(self._require_numeric("min")))

    def max(self) -> float:
        return float(np.max(self._require_numeric("max")))

    def mean(self) -> float:
        return float(np.mean(self._require_numeric("mean")))

    def median(self) -> float:
        return float(np.median(self._require_numeric("median")))

    def sum(self) -> float:
        return float(np.sum(self._require_numeric("sum")))

    def std(self) -> float:
        return float(np.std(self._require_numeric("std")))

    def percentile(self, q: float) -> float:
        if not 0.0 <= q <= 100.0:
            raise ColumnError(f"percentile q must be in [0, 100], got {q}")
        return float(np.percentile(self._require_numeric("percentile"), q))

    def unique(self) -> list:
        """Distinct values in first-appearance order."""
        seen = set()
        out = []
        for value in self.values:
            if value not in seen:
                seen.add(value)
                out.append(value)
        return out

    def value_counts(self) -> dict:
        """Mapping value -> occurrence count, insertion-ordered."""
        counts: dict = {}
        for value in self.values:
            counts[value] = counts.get(value, 0) + 1
        return counts
