"""The :class:`Frame` column-store dataframe.

A deliberately small subset of the pandas API, sufficient for the paper's
analysis pipeline: construction from dicts/records, boolean filtering,
column projection, sorting, concatenation, and row access.  Group-by lives
in :mod:`repro.frame.groupby`, distribution statistics in
:mod:`repro.frame.stats`, and serialization in :mod:`repro.frame.io`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ColumnError, FrameError
from repro.frame.columns import ArrayLike, Column


class Frame:
    """An ordered collection of equal-length named columns."""

    def __init__(self, columns: Mapping[str, ArrayLike] = None):
        self._columns: Dict[str, Column] = {}
        self._length = 0
        if columns:
            for name, values in columns.items():
                self._add_column(Column(name, values))

    # -- construction --------------------------------------------------------

    @classmethod
    def from_records(
        cls, records: Iterable[Mapping[str, Any]], columns: Sequence[str] = None
    ) -> "Frame":
        """Build a frame from an iterable of dict-like rows.

        ``columns`` fixes the column set and order; when omitted it is taken
        from the first record (all records must then share its keys).
        """
        records = list(records)
        if not records and columns is None:
            return cls()
        if columns is None:
            columns = list(records[0].keys())
        data: Dict[str, list] = {name: [] for name in columns}
        for i, record in enumerate(records):
            for name in columns:
                try:
                    data[name].append(record[name])
                except KeyError:
                    raise FrameError(
                        f"record {i} is missing column {name!r}"
                    ) from None
        return cls(data)

    @classmethod
    def from_columns(cls, columns: Iterable[Column]) -> "Frame":
        frame = cls()
        for column in columns:
            frame._add_column(column)
        return frame

    def _add_column(self, column: Column) -> None:
        if column.name in self._columns:
            raise ColumnError(f"duplicate column {column.name!r}")
        if self._columns and len(column) != self._length:
            raise ColumnError(
                f"column {column.name!r} has length {len(column)}, "
                f"frame has {self._length}"
            )
        self._columns[column.name] = column
        self._length = len(column)

    # -- introspection ---------------------------------------------------------

    @property
    def columns(self) -> Tuple[str, ...]:
        return tuple(self._columns)

    @property
    def num_rows(self) -> int:
        return self._length

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __repr__(self) -> str:
        return f"Frame(rows={self._length}, columns={list(self._columns)})"

    def is_empty(self) -> bool:
        return self._length == 0

    # -- column access -----------------------------------------------------------

    def col(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise ColumnError(
                f"no column {name!r}; available: {list(self._columns)}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.col(name).values

    # -- row access ----------------------------------------------------------------

    def row(self, index: int) -> Dict[str, Any]:
        if not -self._length <= index < self._length:
            raise FrameError(f"row index {index} out of range for {self._length} rows")
        return {name: col.values[index] for name, col in self._columns.items()}

    def iter_rows(self) -> Iterator[Dict[str, Any]]:
        for i in range(self._length):
            yield self.row(i)

    def to_records(self) -> List[Dict[str, Any]]:
        return list(self.iter_rows())

    # -- transformations ---------------------------------------------------------------

    def select(self, names: Sequence[str]) -> "Frame":
        """Project onto the given columns, in the given order."""
        return Frame.from_columns(self.col(name) for name in names)

    def with_column(self, name: str, values: ArrayLike) -> "Frame":
        """New frame with an extra (or replaced) column appended."""
        frame = Frame()
        for col_name, column in self._columns.items():
            if col_name != name:
                frame._add_column(column)
        frame._add_column(Column(name, values))
        return frame

    def rename(self, mapping: Mapping[str, str]) -> "Frame":
        frame = Frame()
        for name, column in self._columns.items():
            frame._add_column(column.rename(mapping.get(name, name)))
        return frame

    def filter(self, predicate) -> "Frame":
        """Rows where ``predicate`` holds.

        ``predicate`` is either a boolean numpy array of frame length, or a
        callable applied to each row dict (slower; for convenience in tests
        and examples).
        """
        if callable(predicate):
            mask = np.fromiter(
                (bool(predicate(row)) for row in self.iter_rows()),
                dtype=bool,
                count=self._length,
            )
        else:
            mask = np.asarray(predicate)
            if mask.dtype.kind != "b":
                raise FrameError("filter mask must be boolean")
            if len(mask) != self._length:
                raise FrameError(
                    f"filter mask length {len(mask)} != frame length {self._length}"
                )
        return Frame.from_columns(col.mask(mask) for col in self._columns.values())

    def take(self, indices: ArrayLike) -> "Frame":
        indices = np.asarray(indices, dtype=np.intp)
        return Frame.from_columns(col.take(indices) for col in self._columns.values())

    def head(self, n: int = 5) -> "Frame":
        return self.take(np.arange(min(n, self._length)))

    def sort_by(self, name: str, descending: bool = False) -> "Frame":
        """Stable sort by one column."""
        order = np.argsort(self.col(name).values, kind="stable")
        if descending:
            order = order[::-1]
        return self.take(order)

    def concat(self, other: "Frame") -> "Frame":
        """This frame's rows followed by ``other``'s (same column sets)."""
        if self.is_empty() and not self._columns:
            return other
        if other.is_empty() and not other._columns:
            return self
        if set(self.columns) != set(other.columns):
            raise FrameError(
                f"cannot concat frames with columns {self.columns} and {other.columns}"
            )
        return Frame.from_columns(
            self._columns[name].concat(other.col(name)) for name in self.columns
        )

    @staticmethod
    def concat_all(frames: Iterable["Frame"]) -> "Frame":
        result = Frame()
        for frame in frames:
            result = result.concat(frame)
        return result

    def join(self, other: "Frame", on: str, how: str = "inner") -> "Frame":
        """Join with ``other`` on an equality key.

        ``how`` is ``"inner"`` (drop unmatched left rows) or ``"left"``
        (keep them, filling the right side's columns with ``None``).
        ``other`` must have unique key values — this is a lookup join,
        which is all the analysis layer needs (joining samples against
        probe or country metadata).
        """
        if how not in ("inner", "left"):
            raise FrameError(f"unsupported join type {how!r}")
        right_keys = list(other.col(on).values)
        if len(set(right_keys)) != len(right_keys):
            raise FrameError(f"join key {on!r} is not unique in the right frame")
        lookup = {key: index for index, key in enumerate(right_keys)}
        right_columns = [name for name in other.columns if name != on]
        data: Dict[str, list] = {name: [] for name in self.columns}
        for name in right_columns:
            if name in data:
                raise FrameError(f"join would duplicate column {name!r}")
            data[name] = []
        for row_index in range(self._length):
            key = self.col(on).values[row_index]
            match = lookup.get(key)
            if match is None and how == "inner":
                continue
            for name in self.columns:
                data[name].append(self.col(name).values[row_index])
            for name in right_columns:
                value = other.col(name).values[match] if match is not None else None
                data[name].append(value)
        return Frame(data)

    def pivot(self, index: str, columns: str, values: str, fill=None) -> "Frame":
        """Long-to-wide reshape.

        Distinct values of ``columns`` become new columns holding
        ``values``, one row per distinct ``index`` value.  Duplicate
        (index, column) cells raise; missing cells take ``fill``.
        """
        column_names = []
        for value in self.col(columns).values:
            if value not in column_names:
                column_names.append(value)
        rows: Dict[Any, Dict[Any, Any]] = {}
        order: List[Any] = []
        idx_values = self.col(index).values
        col_values = self.col(columns).values
        val_values = self.col(values).values
        for i in range(self._length):
            key = idx_values[i]
            if key not in rows:
                rows[key] = {}
                order.append(key)
            if col_values[i] in rows[key]:
                raise FrameError(
                    f"pivot cell ({key!r}, {col_values[i]!r}) is duplicated"
                )
            rows[key][col_values[i]] = val_values[i]
        data: Dict[str, list] = {index: order}
        for name in column_names:
            data[str(name)] = [rows[key].get(name, fill) for key in order]
        return Frame(data)

    def map_column(self, name: str, func: Callable[[Any], Any], out: str = None) -> "Frame":
        """Apply ``func`` element-wise to column ``name``.

        The result is stored under ``out`` (defaults to overwriting ``name``).
        """
        values = [func(value) for value in self.col(name).values]
        return self.with_column(out or name, values)

    # -- summaries -----------------------------------------------------------

    def describe(self) -> "Frame":
        """Summary statistics of every numeric column (pandas-style)."""
        numeric = [name for name in self.columns if self.col(name).is_numeric]
        if not numeric:
            raise FrameError("describe() needs at least one numeric column")
        stats = ("count", "mean", "std", "min", "median", "max")
        data: Dict[str, list] = {"stat": list(stats)}
        for name in numeric:
            column = self.col(name)
            data[name] = [
                float(len(column)),
                column.mean(),
                column.std(),
                column.min(),
                column.median(),
                column.max(),
            ]
        return Frame(data)

    def to_markdown(self, float_fmt: str = "{:.2f}", max_rows: int = 50) -> str:
        """Render as a GitHub-flavored Markdown table."""
        header = "| " + " | ".join(self.columns) + " |"
        separator = "|" + "|".join("---" for _ in self.columns) + "|"
        lines = [header, separator]
        for index, row in enumerate(self.iter_rows()):
            if index >= max_rows:
                lines.append(
                    "| " + " | ".join("..." for _ in self.columns) + " |"
                )
                break
            cells = []
            for name in self.columns:
                value = row[name]
                if isinstance(value, float):
                    cells.append(float_fmt.format(value))
                else:
                    cells.append(str(value))
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    # -- equality (mostly for tests) -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        if self.columns != other.columns or len(self) != len(other):
            return False
        return all(self._columns[name] == other._columns[name] for name in self.columns)
