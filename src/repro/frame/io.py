"""Frame serialization: CSV and JSON round-trips.

The paper publishes its raw dataset for public use; :mod:`repro.core.dataset`
uses these helpers to export the synthetic equivalent in the same spirit.

CSV writes are **atomic** (private temp file + rename, the same
discipline as checkpoint saves) so a crash mid-export can never leave a
truncated file that a later read half-parses.  With ``dtypes=True`` the
CSV carries a leading ``#dtypes`` annotation row, and
:func:`from_csv_text` uses it to rebuild every column at its exact
original dtype — integer columns (probe ids, timestamps) come back as
the same integer type they were written from instead of being re-inferred
cell by cell.
"""

from __future__ import annotations

import csv
import io
import json
import os
import threading
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.errors import FrameError
from repro.frame.frame import Frame

PathLike = Union[str, Path]

#: First cell of the optional dtype-annotation row.
DTYPE_MARKER = "#dtypes"


def _coerce(text: str):
    """Best-effort typed parse of a CSV cell: int, then float, then str."""
    if text == "":
        return ""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _dtype_token(values) -> str:
    """Portable dtype name for one column: ``str``, ``bool``, or a numpy
    scalar dtype name like ``int32`` / ``float64``."""
    kind = np.asarray(values).dtype.kind
    if kind in ("U", "S", "O"):
        return "str"
    if kind == "b":
        return "bool"
    return np.asarray(values).dtype.name


def _cast_cells(cells: List[str], token: str):
    """Rebuild one column's cells at its annotated dtype."""
    if token == "str":
        return list(cells)
    if token == "bool":
        return np.asarray([cell == "True" for cell in cells], dtype=bool)
    try:
        dtype = np.dtype(token)
    except TypeError as exc:
        raise FrameError(f"unknown dtype annotation {token!r}") from exc
    if dtype.kind in ("i", "u"):
        return np.asarray([int(cell) for cell in cells], dtype=dtype)
    if dtype.kind == "f":
        return np.asarray([float(cell) for cell in cells], dtype=dtype)
    raise FrameError(f"unsupported dtype annotation {token!r}")


def to_csv_text(frame: Frame, dtypes: bool = False) -> str:
    """Serialize a frame to CSV text (header + rows).

    ``dtypes=True`` prepends a ``#dtypes`` row mapping each column to its
    storage dtype, which :func:`from_csv_text` consumes for a
    dtype-exact round trip (older readers see it as a comment-ish row
    and must be tolerant; ours strips it).
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    if dtypes:
        writer.writerow(
            [DTYPE_MARKER]
            + [f"{name}={_dtype_token(frame[name])}" for name in frame.columns]
        )
    writer.writerow(frame.columns)
    for row in frame.iter_rows():
        writer.writerow([row[name] for name in frame.columns])
    return buffer.getvalue()


def from_csv_text(text: str) -> Frame:
    """Parse CSV text produced by :func:`to_csv_text`.

    A leading ``#dtypes`` annotation row, when present, drives an exact
    per-column dtype rebuild; without one, numeric-looking cells are
    coerced to int/float cell by cell (the legacy behavior, which can
    widen dtypes and mistake numeric-looking strings).
    """
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        raise FrameError("cannot parse empty CSV")
    annotations = None
    if rows[0] and rows[0][0] == DTYPE_MARKER:
        annotations = {}
        for cell in rows[0][1:]:
            name, _, token = cell.partition("=")
            if not token:
                raise FrameError(f"malformed dtype annotation {cell!r}")
            annotations[name] = token
        rows = rows[1:]
        if not rows:
            raise FrameError("dtype-annotated CSV is missing its header row")
    header = rows[0]
    body = rows[1:]
    if annotations is None:
        records = [
            {name: _coerce(cell) for name, cell in zip(header, row)} for row in body
        ]
        return Frame.from_records(records, columns=header)
    missing = [name for name in header if name not in annotations]
    if missing:
        raise FrameError(f"dtype annotations missing columns {missing}")
    columns = {}
    for position, name in enumerate(header):
        cells = [row[position] for row in body]
        columns[name] = _cast_cells(cells, annotations[name])
    return Frame(columns)


def write_csv(
    frame: Frame, path: PathLike, dtypes: bool = False, fs=None
) -> None:
    """Durably write ``frame`` as CSV (temp file + fsync + rename)."""
    _atomic_write_text(Path(path), to_csv_text(frame, dtypes=dtypes), fs=fs)


def read_csv(path: PathLike) -> Frame:
    return from_csv_text(Path(path).read_text(encoding="utf-8"))


def _atomic_write_text(path: Path, text: str, fs=None) -> None:
    # Atomic *and* durable: fsync the temp file before the rename and
    # the parent directory after it — os.replace alone leaves the new
    # directory entry in cache, where a power cut rolls it back.
    from repro.store.fsim import ensure_fs

    fs = ensure_fs(fs)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
    fs.write_bytes(tmp, text.encode("utf-8"), point=path.name)
    fs.fsync_path(tmp, point=path.name)
    fs.replace(tmp, path, point=path.name)
    fs.fsync_dir(path.parent, point=path.name)


def to_json_text(frame: Frame, indent: int = None) -> str:
    """Serialize to a JSON object of column arrays (compact and typed)."""
    payload = {}
    for name in frame.columns:
        values = frame[name]
        payload[name] = [_jsonable(value) for value in values]
    return json.dumps(payload, indent=indent)


def _jsonable(value):
    """Convert numpy scalars to plain Python for json.dumps."""
    if hasattr(value, "item"):
        return value.item()
    return value


def from_json_text(text: str) -> Frame:
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise FrameError("frame JSON must be an object of column arrays")
    return Frame(payload)


def write_json(frame: Frame, path: PathLike, indent: int = None) -> None:
    Path(path).write_text(to_json_text(frame, indent=indent), encoding="utf-8")


def read_json(path: PathLike) -> Frame:
    return from_json_text(Path(path).read_text(encoding="utf-8"))
