"""Frame serialization: CSV and JSON round-trips.

The paper publishes its raw dataset for public use; :mod:`repro.core.dataset`
uses these helpers to export the synthetic equivalent in the same spirit.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Union

from repro.errors import FrameError
from repro.frame.frame import Frame

PathLike = Union[str, Path]


def _coerce(text: str):
    """Best-effort typed parse of a CSV cell: int, then float, then str."""
    if text == "":
        return ""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def to_csv_text(frame: Frame) -> str:
    """Serialize a frame to CSV text (header + rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(frame.columns)
    for row in frame.iter_rows():
        writer.writerow([row[name] for name in frame.columns])
    return buffer.getvalue()


def from_csv_text(text: str) -> Frame:
    """Parse CSV text produced by :func:`to_csv_text`.

    Numeric-looking cells are coerced to int/float; this matches how the
    frame was numeric before serialization for all datasets we produce.
    """
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        raise FrameError("cannot parse empty CSV")
    header = rows[0]
    records = [
        {name: _coerce(cell) for name, cell in zip(header, row)} for row in rows[1:]
    ]
    return Frame.from_records(records, columns=header)


def write_csv(frame: Frame, path: PathLike) -> None:
    Path(path).write_text(to_csv_text(frame), encoding="utf-8")


def read_csv(path: PathLike) -> Frame:
    return from_csv_text(Path(path).read_text(encoding="utf-8"))


def to_json_text(frame: Frame, indent: int = None) -> str:
    """Serialize to a JSON object of column arrays (compact and typed)."""
    payload = {}
    for name in frame.columns:
        values = frame[name]
        payload[name] = [_jsonable(value) for value in values]
    return json.dumps(payload, indent=indent)


def _jsonable(value):
    """Convert numpy scalars to plain Python for json.dumps."""
    if hasattr(value, "item"):
        return value.item()
    return value


def from_json_text(text: str) -> Frame:
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise FrameError("frame JSON must be an object of column arrays")
    return Frame(payload)


def write_json(frame: Frame, path: PathLike, indent: int = None) -> None:
    Path(path).write_text(to_json_text(frame, indent=indent), encoding="utf-8")


def read_json(path: PathLike) -> Frame:
    return from_json_text(Path(path).read_text(encoding="utf-8"))
