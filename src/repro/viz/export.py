"""Figure-data export.

Each figure's underlying data can be exported as JSON (series and
parameters) so external plotting tools can regenerate publication-quality
graphics from a benchmark run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping

from repro.errors import ReproError
from repro.frame import ECDF, Frame


def ecdf_payload(curves: Mapping[str, ECDF], points: int = 200) -> Dict:
    """Serializable payload for a family of CDFs (downsampled)."""
    payload = {}
    for label, curve in curves.items():
        sampled = curve.sample_points(points)
        payload[str(label)] = {
            "x": [round(float(v), 4) for v in sampled.x],
            "p": [round(float(v), 6) for v in sampled.p],
        }
    return payload


def frame_payload(frame: Frame) -> Dict:
    """Serializable payload for a Frame (column-oriented)."""
    return {
        name: [value.item() if hasattr(value, "item") else value for value in frame[name]]
        for name in frame.columns
    }


def export_figure(path, *, figure: str, data: Dict, notes: str = "") -> None:
    """Write one figure's data bundle to ``path`` as JSON."""
    if not figure:
        raise ReproError("figure name must be non-empty")
    bundle = {"figure": figure, "notes": notes, "data": data}
    Path(path).write_text(json.dumps(bundle, indent=2), encoding="utf-8")


def load_figure(path) -> Dict:
    """Read back a bundle written by :func:`export_figure`."""
    bundle = json.loads(Path(path).read_text(encoding="utf-8"))
    if "figure" not in bundle or "data" not in bundle:
        raise ReproError(f"{path} is not a figure bundle")
    return bundle
