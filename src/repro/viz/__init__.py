"""Text-mode figure rendering and data export."""

from repro.viz.ascii import bar_chart, cdf_plot, hbar, line_chart, table
from repro.viz.choropleth import BUCKET_SYMBOLS, bucket_listing, world_map
from repro.viz.export import ecdf_payload, export_figure, frame_payload, load_figure

__all__ = [
    "BUCKET_SYMBOLS",
    "bar_chart",
    "bucket_listing",
    "cdf_plot",
    "ecdf_payload",
    "export_figure",
    "frame_payload",
    "hbar",
    "line_chart",
    "load_figure",
    "table",
    "world_map",
]
