"""Terminal renderers for figures.

matplotlib is unavailable offline, so the examples and benchmark harnesses
render figures as text: CDF plots, line charts, horizontal bars, and
aligned tables.  Pure functions returning strings — callers decide where
to print.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import ReproError
from repro.frame import ECDF, Frame

_BLOCKS = " ▏▎▍▌▋▊▉█"


def hbar(value: float, maximum: float, width: int = 40) -> str:
    """A horizontal bar of ``value / maximum`` scaled to ``width`` cells."""
    if maximum <= 0:
        raise ReproError("hbar maximum must be positive")
    value = max(0.0, min(value, maximum))
    cells = value / maximum * width
    full = int(cells)
    frac = int((cells - full) * (len(_BLOCKS) - 1))
    bar = "█" * full
    if frac and full < width:
        bar += _BLOCKS[frac]
    return bar.ljust(width)


def bar_chart(
    items: Mapping[str, float], width: int = 40, fmt: str = "{:.1f}"
) -> str:
    """Labelled horizontal bar chart."""
    if not items:
        raise ReproError("bar_chart needs at least one item")
    peak = max(items.values())
    label_width = max(len(str(label)) for label in items)
    lines = []
    for label, value in items.items():
        lines.append(
            f"{str(label):>{label_width}} |{hbar(value, peak, width)}| "
            + fmt.format(value)
        )
    return "\n".join(lines)


def cdf_plot(
    curves: Mapping[str, ECDF],
    x_max: float = None,
    width: int = 64,
    height: int = 16,
    x_label: str = "RTT (ms)",
) -> str:
    """Multi-series CDF plot on a character grid.

    Each series gets a letter marker (its label's first character,
    uppercased, de-duplicated A-Z as needed).
    """
    if not curves:
        raise ReproError("cdf_plot needs at least one curve")
    if x_max is None:
        x_max = max(curve.x[-1] for curve in curves.values() if len(curve))
    grid = [[" "] * width for _ in range(height)]
    markers: Dict[str, str] = {}
    used = set()
    for label in curves:
        marker = str(label)[0].upper()
        while marker in used:
            marker = chr(ord(marker) + 1) if marker < "Z" else "#"
            if marker == "#":
                break
        used.add(marker)
        markers[str(label)] = marker
    for label, curve in curves.items():
        if not len(curve):
            continue
        for col in range(width):
            x = (col + 0.5) / width * x_max
            p = curve.fraction_below(x)
            row = height - 1 - int(p * (height - 1))
            grid[row][col] = markers[str(label)]
    lines = []
    for index, row in enumerate(grid):
        p = 1.0 - index / (height - 1)
        lines.append(f"{p:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"     0{x_label:^{width - 12}}{x_max:.0f} ms")
    legend = "  ".join(f"{marker}={label}" for label, marker in markers.items())
    lines.append("     " + legend)
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 14,
) -> str:
    """Multi-series line chart over (x, y) points."""
    if not series:
        raise ReproError("line_chart needs at least one series")
    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    if not xs:
        raise ReproError("line_chart series are empty")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = {}
    used = set()
    for label in series:
        marker = str(label)[0].upper()
        while marker in used and marker < "Z":
            marker = chr(ord(marker) + 1)
        used.add(marker)
        markers[str(label)] = marker
    for label, points in series.items():
        for x, y in points:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = markers[str(label)]
    lines = [f"{y_hi:8.1f} |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append("         |" + "".join(row))
    lines.append(f"{y_lo:8.1f} |" + "".join(grid[-1]))
    lines.append("         +" + "-" * width)
    lines.append(f"          {x_lo:<10.1f}{'':^{max(0, width - 22)}}{x_hi:>10.1f}")
    lines.append(
        "          " + "  ".join(f"{m}={l}" for l, m in markers.items())
    )
    return "\n".join(lines)


def table(frame: Frame, max_rows: int = 30, float_fmt: str = "{:.2f}") -> str:
    """Render a Frame as an aligned text table."""
    header = list(frame.columns)
    rows: List[List[str]] = []
    for index, row in enumerate(frame.iter_rows()):
        if index >= max_rows:
            rows.append(["..."] * len(header))
            break
        cells = []
        for name in header:
            value = row[name]
            if isinstance(value, float):
                cells.append(float_fmt.format(value))
            else:
                cells.append(str(value))
        rows.append(cells)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for cells in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)
