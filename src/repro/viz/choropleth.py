"""Text-mode rendering of the Figure 4 latency choropleth.

Two views: a bucketed country listing (the map legend's content) and a
coarse ASCII world map where each country's centroid cell is painted with
its latency bucket's symbol.
"""

from __future__ import annotations

from typing import Dict, List

from repro.constants import FIG4_BUCKET_LABELS as BUCKET_LABELS
from repro.errors import ReproError
from repro.frame import Frame
from repro.geo.countries import get_country

#: Symbol per Figure 4 bucket, best to worst.
BUCKET_SYMBOLS: Dict[str, str] = {
    "<10 ms": "#",
    "10-20 ms": "+",
    "20-50 ms": "o",
    "50-100 ms": ".",
    ">100 ms": "!",
}


def bucket_listing(country_frame: Frame, columns: int = 4) -> str:
    """Countries grouped by latency bucket (the choropleth as a list)."""
    if columns <= 0:
        raise ReproError("columns must be positive")
    groups: Dict[str, List[str]] = {label: [] for label in BUCKET_LABELS}
    for row in country_frame.iter_rows():
        groups[str(row["bucket"])].append(str(row["country"]))
    lines = []
    for label in BUCKET_LABELS:
        members = sorted(groups[label])
        lines.append(f"{label} ({len(members)} countries):")
        for start in range(0, len(members), 16):
            lines.append("    " + " ".join(members[start : start + 16]))
        if not members:
            lines.append("    (none)")
    return "\n".join(lines)


def world_map(country_frame: Frame, width: int = 72, height: int = 24) -> str:
    """ASCII world map painted with latency-bucket symbols.

    Each country paints the cell of its centroid; later (worse) buckets
    never overwrite better ones in a shared cell.
    """
    if width <= 0 or height <= 0:
        raise ReproError("map dimensions must be positive")
    grid = [[" "] * width for _ in range(height)]
    rank = {label: i for i, label in enumerate(BUCKET_LABELS)}
    painted: Dict[tuple, int] = {}
    for row in country_frame.iter_rows():
        country = get_country(str(row["country"]))
        lat, lon = country.centroid.lat, country.centroid.lon
        col = int((lon + 180.0) / 360.0 * (width - 1))
        # Clip to inhabited latitudes for a better aspect ratio.
        lat = max(-60.0, min(72.0, lat))
        line = int((72.0 - lat) / 132.0 * (height - 1))
        bucket = str(row["bucket"])
        key = (line, col)
        if key in painted and painted[key] <= rank[bucket]:
            continue
        painted[key] = rank[bucket]
        grid[line][col] = BUCKET_SYMBOLS[bucket]
    legend = "   ".join(
        f"{symbol} {label}" for label, symbol in BUCKET_SYMBOLS.items()
    )
    return "\n".join("".join(line) for line in grid) + "\n" + legend
