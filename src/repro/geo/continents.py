"""Continent registry.

The paper groups results by six continents (Figures 5 and 6): North America,
Europe, Oceania, Latin America, Asia, and Africa.  Note that the paper's
"Latin America" grouping covers South America plus Central America and the
Caribbean, so Mexico belongs to ``SA`` here even though it is geographically
part of North America.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import GeoError


@dataclass(frozen=True)
class Continent:
    """A continent as grouped by the paper's analysis."""

    code: str
    name: str
    #: Display order used by the paper's figures (best connectivity first).
    figure_order: int


_CONTINENTS: Dict[str, Continent] = {
    "NA": Continent("NA", "North America", 0),
    "EU": Continent("EU", "Europe", 1),
    "OC": Continent("OC", "Oceania", 2),
    "AS": Continent("AS", "Asia", 3),
    "SA": Continent("SA", "Latin America", 4),
    "AF": Continent("AF", "Africa", 5),
}

#: Continent codes in the paper's figure order.
CONTINENT_CODES: Tuple[str, ...] = tuple(
    sorted(_CONTINENTS, key=lambda code: _CONTINENTS[code].figure_order)
)

#: Continents the paper calls "well-connected" (§5, §7).
WELL_CONNECTED: Tuple[str, ...] = ("NA", "EU", "OC")

#: Continents the paper identifies as under-served (§4.3, §6).
UNDER_SERVED: Tuple[str, ...] = ("AS", "SA", "AF")

#: Cross-continent measurement fallbacks (§4.1): probes in continents with
#: low datacenter density also measure to adjacent continents.
ADJACENT_TARGETS: Dict[str, Tuple[str, ...]] = {
    "AF": ("EU",),
    "SA": ("NA",),
}


def get_continent(code: str) -> Continent:
    """Look up a continent by its two-letter code."""
    try:
        return _CONTINENTS[code.upper()]
    except KeyError:
        raise GeoError(f"unknown continent code: {code!r}") from None


def all_continents() -> Tuple[Continent, ...]:
    """All continents in the paper's figure order."""
    return tuple(_CONTINENTS[code] for code in CONTINENT_CODES)


def is_well_connected(code: str) -> bool:
    """True when the paper treats this continent as well-connected."""
    return get_continent(code).code in WELL_CONNECTED


def adjacent_target_continents(code: str) -> Tuple[str, ...]:
    """Extra continents probes in ``code`` measure to (paper §4.1)."""
    return ADJACENT_TARGETS.get(get_continent(code).code, ())
