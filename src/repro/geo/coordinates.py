"""Geodesic coordinate math.

The latency model is driven by great-circle distances between probes and
datacenters, so this module provides a small, well-tested set of spherical
geometry helpers.  Distances use the haversine formula on a spherical Earth,
which is accurate to ~0.5 % — far below the path-inflation uncertainty of the
latency model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.errors import GeoError

#: Mean Earth radius in kilometres (IUGG).
EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True, order=True)
class LatLon:
    """A point on the Earth's surface in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise GeoError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise GeoError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "LatLon") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.lat, self.lon)


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two (lat, lon) points in kilometres."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    # Clamp against floating-point drift before the asin.
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def initial_bearing_deg(origin: LatLon, target: LatLon) -> float:
    """Initial bearing from ``origin`` to ``target`` in degrees [0, 360)."""
    phi1 = math.radians(origin.lat)
    phi2 = math.radians(target.lat)
    dlam = math.radians(target.lon - origin.lon)
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlam)
    return (math.degrees(math.atan2(y, x)) + 360.0) % 360.0


def destination_point(origin: LatLon, bearing_deg: float, distance_km: float) -> LatLon:
    """Point reached travelling ``distance_km`` from ``origin`` at ``bearing_deg``."""
    if distance_km < 0:
        raise GeoError(f"distance must be non-negative, got {distance_km}")
    delta = distance_km / EARTH_RADIUS_KM
    theta = math.radians(bearing_deg)
    phi1 = math.radians(origin.lat)
    lam1 = math.radians(origin.lon)
    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    sin_phi2 = min(1.0, max(-1.0, sin_phi2))
    phi2 = math.asin(sin_phi2)
    y = math.sin(theta) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * sin_phi2
    lam2 = lam1 + math.atan2(y, x)
    lon = math.degrees(lam2)
    # Normalize longitude into [-180, 180].
    lon = (lon + 540.0) % 360.0 - 180.0
    return LatLon(math.degrees(phi2), lon)


def midpoint(a: LatLon, b: LatLon) -> LatLon:
    """Geodesic midpoint between two points."""
    phi1 = math.radians(a.lat)
    lam1 = math.radians(a.lon)
    phi2 = math.radians(b.lat)
    dlam = math.radians(b.lon - a.lon)
    bx = math.cos(phi2) * math.cos(dlam)
    by = math.cos(phi2) * math.sin(dlam)
    phi3 = math.atan2(
        math.sin(phi1) + math.sin(phi2),
        math.sqrt((math.cos(phi1) + bx) ** 2 + by**2),
    )
    lam3 = lam1 + math.atan2(by, math.cos(phi1) + bx)
    lon = (math.degrees(lam3) + 540.0) % 360.0 - 180.0
    return LatLon(math.degrees(phi3), lon)


def nearest(point: LatLon, candidates: Iterable[Tuple[str, LatLon]]) -> Tuple[str, float]:
    """Return ``(key, distance_km)`` of the candidate closest to ``point``.

    ``candidates`` is an iterable of ``(key, LatLon)`` pairs.  Raises
    :class:`GeoError` when the iterable is empty.
    """
    best_key = None
    best_dist = math.inf
    for key, loc in candidates:
        dist = point.distance_km(loc)
        if dist < best_dist:
            best_key, best_dist = key, dist
    if best_key is None:
        raise GeoError("nearest() called with no candidates")
    return best_key, best_dist


def bounding_box(points: Iterable[LatLon]) -> Tuple[LatLon, LatLon]:
    """Axis-aligned bounding box ``(south_west, north_east)`` of ``points``."""
    lats = []
    lons = []
    for point in points:
        lats.append(point.lat)
        lons.append(point.lon)
    if not lats:
        raise GeoError("bounding_box() called with no points")
    return LatLon(min(lats), min(lons)), LatLon(max(lats), max(lons))
